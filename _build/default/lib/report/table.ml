(** Plain-text table rendering for experiment output.

    Produces aligned, monospaced tables in the style of the paper's Tables 4
    and 7 — one label column followed by right-aligned numeric columns. *)

type align = Left | Right

type t = {
  headers : string list;
  mutable rows : string list list;  (** reversed *)
  mutable seps : int list;  (** row indices after which to draw a separator *)
}

let create ~headers = { headers; rows = []; seps = [] }

let add_row t cells = t.rows <- cells :: t.rows

let add_separator t = t.seps <- List.length t.rows :: t.seps

(** Format a float like the paper's tables: one decimal, explicit sign for
    interaction rows when [signed] is set. *)
let cell_f ?(signed = false) v =
  if signed && v >= 0.05 then Printf.sprintf "+%.1f" v else Printf.sprintf "%.1f" v

let cell_i v = string_of_int v

let render ?(align_first = Left) t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let pad r = r @ List.init (ncols - List.length r) (fun _ -> "") in
  let all = List.map pad all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun c s -> widths.(c) <- max widths.(c) (String.length s)))
    all;
  let fmt_cell c s =
    let w = widths.(c) in
    let a = if c = 0 then align_first else Right in
    match a with
    | Left -> Printf.sprintf "%-*s" w s
    | Right -> Printf.sprintf "%*s" w s
  in
  let fmt_row r = String.concat "  " (List.mapi fmt_cell r) in
  let sep_line =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (fmt_row (pad t.headers));
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep_line;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i r ->
      Buffer.add_string buf (fmt_row r);
      Buffer.add_char buf '\n';
      if List.mem (i + 1) t.seps then begin
        Buffer.add_string buf sep_line;
        Buffer.add_char buf '\n'
      end)
    rows;
  Buffer.contents buf

let print ?align_first t = print_string (render ?align_first t)
