(** Minimal CSV output, so experiment results can be post-processed with
    external plotting tools. *)

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let to_string rows = String.concat "\n" (List.map row_to_string rows) ^ "\n"

let write path rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string rows))
