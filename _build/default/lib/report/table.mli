(** Plain-text table rendering in the style of the paper's Tables 4 and 7:
    one label column followed by right-aligned numeric columns. *)

type align = Left | Right

type t

val create : headers:string list -> t
val add_row : t -> string list -> unit
val add_separator : t -> unit
(** Draw a horizontal rule after the last added row. *)

val cell_f : ?signed:bool -> float -> string
(** One decimal; an explicit [+] for positive values when [signed] (used
    for interaction rows). *)

val cell_i : int -> string

val render : ?align_first:align -> t -> string
val print : ?align_first:align -> t -> unit
