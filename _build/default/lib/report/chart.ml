(** ASCII charts: the stacked bar of Figure 1b (positive interaction costs
    extend the bar above 100%, serial interactions plot below the axis) and
    the multi-series line chart of Figure 3. *)

(** One segment of a stacked breakdown bar. *)
type segment = { label : string; value : float }

(** Render a breakdown as a horizontal stacked bar: positive segments first
    (their widths proportional to their percentage), then negative segments
    on a second "below the axis" line.  [width] is the number of characters
    representing 100%. *)
let stacked_bar ?(width = 60) (segments : segment list) : string =
  let buf = Buffer.create 512 in
  let glyphs = [| '#'; '='; '%'; '@'; '+'; '*'; ':'; '~'; 'o'; '.' |] in
  let pos = List.filter (fun s -> s.value > 0.) segments in
  let neg = List.filter (fun s -> s.value < 0.) segments in
  let bar_of items =
    let b = Buffer.create 128 in
    List.iteri
      (fun i s ->
        let n =
          int_of_float (Float.round (Float.abs s.value *. float_of_int width /. 100.))
        in
        Buffer.add_string b (String.make (max 0 n) glyphs.(i mod Array.length glyphs)))
      items;
    Buffer.contents b
  in
  let total_pos = List.fold_left (fun a s -> a +. s.value) 0. pos in
  let total_neg = List.fold_left (fun a s -> a +. s.value) 0. neg in
  Buffer.add_string buf
    (Printf.sprintf "  above axis (%5.1f%%): |%s\n" total_pos (bar_of pos));
  Buffer.add_string buf
    (Printf.sprintf "  below axis (%5.1f%%): |%s\n" total_neg (bar_of neg));
  let axis_100 = String.make width '-' in
  Buffer.add_string buf (Printf.sprintf "  scale:               |%s| = 100%%\n" axis_100);
  Buffer.add_string buf "  legend:";
  List.iteri
    (fun i s ->
      if s.value <> 0. then
        Buffer.add_string buf
          (Printf.sprintf " %c=%s(%.1f)" glyphs.(i mod Array.length glyphs) s.label
             s.value))
    segments;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(** A line-chart series: a name and (x, y) points. *)
type series = { name : string; points : (float * float) list }

(** Render series as an ASCII scatter/line chart of the given size. *)
let line_chart ?(rows = 16) ?(cols = 56) ~x_label ~y_label (series : series list) :
    string =
  let all_pts = List.concat_map (fun s -> s.points) series in
  if all_pts = [] then "(empty chart)\n"
  else begin
    let xs = List.map fst all_pts and ys = List.map snd all_pts in
    let xmin = List.fold_left min infinity xs and xmax = List.fold_left max neg_infinity xs in
    let ymin = List.fold_left min infinity ys and ymax = List.fold_left max neg_infinity ys in
    let ymin = min ymin 0. in
    let xspan = if xmax = xmin then 1. else xmax -. xmin in
    let yspan = if ymax = ymin then 1. else ymax -. ymin in
    let grid = Array.make_matrix rows cols ' ' in
    let marks = [| '*'; 'o'; '+'; 'x'; '#'; '@' |] in
    List.iteri
      (fun si s ->
        List.iter
          (fun (x, y) ->
            let c =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (cols - 1))
            in
            let r =
              rows - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (rows - 1))
            in
            if r >= 0 && r < rows && c >= 0 && c < cols then
              grid.(r).(c) <- marks.(si mod Array.length marks))
          s.points)
      series;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf (Printf.sprintf "  %s\n" y_label);
    Array.iteri
      (fun r line ->
        let yv = ymax -. (float_of_int r /. float_of_int (rows - 1) *. yspan) in
        Buffer.add_string buf (Printf.sprintf "  %8.2f |%s\n" yv (String.init cols (Array.get line))))
      grid;
    Buffer.add_string buf
      (Printf.sprintf "           +%s\n" (String.make cols '-'));
    Buffer.add_string buf
      (Printf.sprintf "            %-8.6g%*s%8.6g  (%s)\n" xmin (cols - 16) "" xmax x_label);
    Buffer.add_string buf "  series:";
    List.iteri
      (fun si s ->
        Buffer.add_string buf
          (Printf.sprintf " %c=%s" marks.(si mod Array.length marks) s.name))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
