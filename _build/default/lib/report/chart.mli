(** ASCII charts: the stacked breakdown bar of Figure 1b (positive
    interaction costs extend past 100%, serial interactions plot below the
    axis) and the multi-series line chart of Figure 3. *)

type segment = { label : string; value : float }

val stacked_bar : ?width:int -> segment list -> string
(** [width] characters represent 100%. *)

type series = { name : string; points : (float * float) list }

val line_chart :
  ?rows:int -> ?cols:int -> x_label:string -> y_label:string -> series list -> string
