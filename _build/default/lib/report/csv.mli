(** Minimal CSV output for post-processing experiment results externally. *)

val escape : string -> string
val row_to_string : string list -> string
val to_string : string list list -> string
val write : string -> string list list -> unit
