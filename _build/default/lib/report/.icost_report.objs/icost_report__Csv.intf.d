lib/report/csv.mli:
