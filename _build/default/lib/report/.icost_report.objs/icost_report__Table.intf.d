lib/report/table.mli:
