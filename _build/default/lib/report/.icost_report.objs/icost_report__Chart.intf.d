lib/report/chart.mli:
