(** vortex-like kernel: object-database surrogate.

    Vortex performs object lookups through multi-level tables: each
    transaction chases index -> object -> part -> attribute, a chain of
    dependent loads that mostly *hit* the L1 (the object store is compact),
    wrapped in a subroutine.  Transactions are independent, so throughput
    is set by how many chains fit in the instruction window — the paper's
    vortex has the largest window cost of the suite, a large dl1 cost
    (dependent L1 hits on the critical path), the strongest serial dl1+win
    interaction, and almost no branch-misprediction cost. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(index_entries = 3 * 1024) ?(store_objects = 512)
    ?(seed = 0x50b) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"vortex" () in
  let index_base = Kernel_util.data_base in
  let store_base = index_base + (8 * index_entries) + 4096 in
  (* object store: compact (fits caches); objects are 2 words:
     (link to another object, payload) *)
  let obj_addr k = store_base + (16 * k) in
  for k = 0 to store_objects - 1 do
    Asm.init_word a ~addr:(obj_addr k) ~value:(obj_addr (Prng.int prng store_objects));
    Asm.init_word a ~addr:(obj_addr k + 8) ~value:(Prng.int prng 1_000_000)
  done;
  (* index: large (streams through the L1), points into the store *)
  for i = 0 to index_entries - 1 do
    Asm.init_word a ~addr:(index_base + (8 * i))
      ~value:(obj_addr (Prng.int prng store_objects))
  done;
  let cursor = 1 and obj = 2 and part = 3 and attr = 4 and acc = 5 and v = 6 in
  let ibase = 7 and iend = 8 in
  Asm.li a ~rd:ibase index_base;
  Asm.li a ~rd:iend (index_base + (8 * index_entries));
  Asm.li a ~rd:Isa.reg_sp Kernel_util.stack_base;
  Asm.jmp a "outer";
  (* fetch_object: four dependent loads (index -> object -> part -> attr).
     The cursor walks the index sequentially, so transactions are
     independent of each other and overlap up to the window limit. *)
  Asm.label a "fetch_object";
  Asm.load a ~rd:obj ~base:cursor ~offset:0;
  Asm.load a ~rd:part ~base:obj ~offset:0;
  Asm.load a ~rd:attr ~base:part ~offset:0;
  Asm.load a ~rd:v ~base:attr ~offset:8;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:v;
  Asm.ret a;
  Asm.label a "outer";
  Asm.mv a ~rd:cursor ~rs:ibase;
  Asm.label a "txn";
  Asm.call a "fetch_object";
  Asm.addi a ~rd:cursor ~rs1:cursor 8;
  Asm.blt a ~rs1:cursor ~rs2:iend "txn";
  Asm.jmp a "outer";
  Asm.assemble a
