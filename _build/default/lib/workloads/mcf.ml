(** mcf-like kernel: network-simplex surrogate.

    SPEC's mcf walks arc lists far larger than the caches: nearly all of its
    time is data-cache misses, but the loaded costs also decide branches, so
    branch resolution *waits on cache misses*.  A mispredict therefore stops
    the run-ahead that would otherwise overlap misses from independent arcs
    — the paper observes both a large bmisp cost for mcf and the suite's
    strongest serial bmisp+dmiss interaction (optimizing either one makes
    much of the other redundant).

    Structure: an index of arc-list heads is walked sequentially (so work
    on different heads is independent and can overlap in the window); each
    head points at a chain of two nodes laid out one per cache line over an
    8 MiB region (missing L2); each node's loaded cost decides a 50/50
    branch. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let node_stride = 64 (* one node per cache line *)

let program ?(nodes = 128 * 1024) ?(heads = 16 * 1024) ?(seed = 0x3cf) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"mcf" () in
  let head_base = Kernel_util.data_base in
  let node_base = head_base + (8 * heads) + 4096 in
  let node_addr k = node_base + (k * node_stride) in
  (* nodes: (next pointer, cost) *)
  for k = 0 to nodes - 1 do
    Asm.init_word a ~addr:(node_addr k) ~value:(node_addr (Prng.int prng nodes));
    Asm.init_word a ~addr:(node_addr k + 8) ~value:(Prng.int prng 1_000_000)
  done;
  (* heads: pointers into the node pool *)
  for i = 0 to heads - 1 do
    Asm.init_word a ~addr:(head_base + (8 * i)) ~value:(node_addr (Prng.int prng nodes))
  done;
  let cursor = 1 and node = 2 and cost = 3 and acc = 4 and tmp = 5 in
  let hbase = 7 and hend = 8 and depth = 9 in
  Asm.li a ~rd:hbase head_base;
  Asm.li a ~rd:hend (head_base + (8 * heads));
  Asm.label a "outer";
  Asm.mv a ~rd:cursor ~rs:hbase;
  Asm.label a "head";
  Asm.load a ~rd:node ~base:cursor ~offset:0;
  Asm.li a ~rd:depth 2;
  Asm.label a "walk";
  (* the cost load misses; its value decides the branch, so resolution
     waits on the miss *)
  Asm.load a ~rd:cost ~base:node ~offset:8;
  Asm.andi a ~rd:tmp ~rs1:cost 1;
  Asm.beq a ~rs1:tmp ~rs2:Isa.reg_zero "even";
  Asm.add a ~rd:acc ~rs1:acc ~rs2:cost;
  Asm.jmp a "advance";
  Asm.label a "even";
  Asm.sub a ~rd:acc ~rs1:acc ~rs2:cost;
  Asm.label a "advance";
  Asm.load a ~rd:node ~base:node ~offset:0;
  Asm.addi a ~rd:depth ~rs1:depth (-1);
  Asm.bne a ~rs1:depth ~rs2:Isa.reg_zero "walk";
  Asm.addi a ~rd:cursor ~rs1:cursor 8;
  Asm.blt a ~rs1:cursor ~rs2:hend "head";
  Asm.jmp a "outer";
  Asm.assemble a
