lib/workloads/parser.ml: Icost_isa Icost_util Kernel_util
