lib/workloads/kernel_util.ml: Array Icost_isa Icost_util
