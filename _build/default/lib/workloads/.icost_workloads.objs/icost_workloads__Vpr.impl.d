lib/workloads/vpr.ml: Icost_isa Icost_util Kernel_util
