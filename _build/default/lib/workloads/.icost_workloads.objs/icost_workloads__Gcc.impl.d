lib/workloads/gcc.ml: Icost_isa Icost_util Kernel_util
