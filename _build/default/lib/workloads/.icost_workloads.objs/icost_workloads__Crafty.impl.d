lib/workloads/crafty.ml: Icost_isa Icost_util Kernel_util
