lib/workloads/gap.ml: Icost_isa Icost_util Kernel_util
