lib/workloads/twolf.ml: Icost_isa Icost_util Kernel_util
