lib/workloads/workload.mli: Icost_isa
