lib/workloads/istress.ml: Icost_isa Icost_util Printf
