lib/workloads/workload.ml: Bzip2 Crafty Eon Gap Gcc Gzip Icost_isa List Mcf Parser Perlbmk Printf String Twolf Vortex Vpr
