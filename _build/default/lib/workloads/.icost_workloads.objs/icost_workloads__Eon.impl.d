lib/workloads/eon.ml: Icost_isa Icost_util Kernel_util
