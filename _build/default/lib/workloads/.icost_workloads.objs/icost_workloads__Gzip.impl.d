lib/workloads/gzip.ml: Icost_isa Icost_util Kernel_util
