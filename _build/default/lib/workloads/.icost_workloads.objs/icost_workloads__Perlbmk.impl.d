lib/workloads/perlbmk.ml: Icost_isa Icost_util Kernel_util Printf
