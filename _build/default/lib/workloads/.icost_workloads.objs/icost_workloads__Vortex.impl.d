lib/workloads/vortex.ml: Icost_isa Icost_util Kernel_util
