lib/workloads/mcf.ml: Icost_isa Icost_util Kernel_util
