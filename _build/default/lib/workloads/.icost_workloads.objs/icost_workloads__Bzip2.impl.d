lib/workloads/bzip2.ml: Icost_isa Icost_util Kernel_util
