(** Shared helpers for workload kernels.

    Conventions used by all kernels:
    - data segments start at {!data_base} and are laid out per kernel;
    - register 30 is the stack pointer for kernels that recurse
      (the stack grows down from {!stack_base});
    - kernels run an infinite outer loop; the trace is cut at the
      instruction budget, so no kernel needs to terminate. *)

module Prng = Icost_util.Prng

let data_base = 0x0010_0000 (* 1 MiB *)
let stack_base = 0x7000_0000

let word_size = 8

(** Initialize [count] consecutive words from [f]. *)
let init_words asm ~base ~count f =
  for i = 0 to count - 1 do
    Icost_isa.Asm.init_word asm ~addr:(base + (word_size * i)) ~value:(f i)
  done

(** Initialize [count] consecutive words with uniform values in [0, range). *)
let init_random_words asm prng ~base ~count ~range =
  init_words asm ~base ~count (fun _ -> Prng.int prng range)

(** A random permutation of [0..count-1]. *)
let permutation prng count =
  let p = Array.init count (fun i -> i) in
  Prng.shuffle prng p;
  p

(** Emit a counted inner loop: initialize [counter] to [count], run [body],
    decrement and branch back while non-zero.  [tag] must be unique within
    the kernel (it names the loop label). *)
let counted_loop asm ~tag ~counter ~count body =
  let open Icost_isa.Asm in
  li asm ~rd:counter count;
  label asm tag;
  body ();
  addi asm ~rd:counter ~rs1:counter (-1);
  bne asm ~rs1:counter ~rs2:Icost_isa.Isa.reg_zero tag
