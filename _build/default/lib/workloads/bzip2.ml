(** bzip2-like kernel: block-sort surrogate.

    Burrows-Wheeler compression spends its time in data-dependent compare
    loops whose branches are nearly random — the paper's breakdown shows
    bzip with the largest branch-misprediction cost of the suite.  This
    kernel histograms a random byte buffer and runs adjacent-element
    comparisons whose outcomes depend on the data. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(input_words = 8 * 1024) ?(seed = 0xb21) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"bzip2" () in
  let input_base = Kernel_util.data_base in
  let hist_base = input_base + (8 * input_words) + 4096 in
  (* run-structured bytes: real block-sort inputs have runs, which leaves
     the compare branches data dependent but not pure coin flips *)
  let prev = ref 0 in
  Kernel_util.init_words a ~base:input_base ~count:input_words (fun _ ->
      if Prng.bool prng 0.55 then !prev
      else begin
        prev := Prng.int prng 256;
        !prev
      end);
  Kernel_util.init_words a ~base:hist_base ~count:256 (fun _ -> 0);
  let ptr = 1 and cur = 2 and prev = 3 and tmp = 4 and slot = 5 in
  let cnt = 6 and inbase = 7 and inend = 8 and hbase = 9 and runs = 10 and acc = 11 in
  Asm.li a ~rd:inbase input_base;
  Asm.li a ~rd:inend (input_base + (8 * input_words));
  Asm.li a ~rd:hbase hist_base;
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:inbase;
  Asm.li a ~rd:prev 0;
  Asm.label a "inner";
  Asm.load a ~rd:cur ~base:ptr ~offset:0;
  (* histogram update: read-modify-write H[cur] *)
  Asm.shli a ~rd:tmp ~rs1:cur 3;
  Asm.add a ~rd:slot ~rs1:hbase ~rs2:tmp;
  Asm.load a ~rd:cnt ~base:slot ~offset:0;
  Asm.addi a ~rd:cnt ~rs1:cnt 1;
  Asm.store a ~rs:cnt ~base:slot ~offset:0;
  (* data-dependent comparison chain: which of cur/prev is larger, run
     detection — both essentially random *)
  Asm.blt a ~rs1:cur ~rs2:prev "smaller";
  Asm.sub a ~rd:acc ~rs1:cur ~rs2:prev;
  Asm.jmp a "after_cmp";
  Asm.label a "smaller";
  Asm.sub a ~rd:acc ~rs1:prev ~rs2:cur;
  Asm.label a "after_cmp";
  Asm.andi a ~rd:tmp ~rs1:cur 3;
  Asm.beq a ~rs1:tmp ~rs2:Isa.reg_zero "run";
  Asm.addi a ~rd:runs ~rs1:runs 1;
  Asm.label a "run";
  Asm.mv a ~rd:prev ~rs:cur;
  Asm.addi a ~rd:ptr ~rs1:ptr 8;
  Asm.blt a ~rs1:ptr ~rs2:inend "inner";
  Asm.jmp a "outer";
  Asm.assemble a
