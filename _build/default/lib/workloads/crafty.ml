(** crafty-like kernel: chess-engine surrogate.

    Crafty is bitboard arithmetic: shifts, masks and population counts over
    64-bit words, small lookup tables that live in the L1, deep branchy
    evaluation with moderately predictable branches, and short call/return
    chains.  Memory misses are rare; branch mispredictions and short-ALU
    work dominate. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(positions = 512) ?(seed = 0xc4f) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"crafty" () in
  let board_base = Kernel_util.data_base in
  let table_base = board_base + (8 * positions) + 512 in
  (* random board words and a small 256-entry evaluation table (fits L1) *)
  (* sparse boards: ~25%% of bits set, so piece-presence tests are biased *)
  Kernel_util.init_words a ~base:board_base ~count:positions (fun _ ->
      Icost_util.Prng.bits prng land Icost_util.Prng.bits prng);
  Kernel_util.init_random_words a prng ~base:table_base ~count:256 ~range:4096;
  let ptr = 1 and bits = 2 and acc = 3 and tmp = 4 and idx = 5 in
  let score = 6 and bbase = 7 and bend = 8 and tbase = 9 and sq = 10 in
  Asm.li a ~rd:bbase board_base;
  Asm.li a ~rd:bend (board_base + (8 * positions));
  Asm.li a ~rd:tbase table_base;
  Asm.li a ~rd:Isa.reg_sp Kernel_util.stack_base;
  Asm.jmp a "outer";
  (* eval(bits in r2) -> r6: table lookup on the low byte plus mobility *)
  Asm.label a "eval";
  Asm.andi a ~rd:idx ~rs1:bits 255;
  Asm.shli a ~rd:idx ~rs1:idx 3;
  Asm.add a ~rd:idx ~rs1:tbase ~rs2:idx;
  Asm.load a ~rd:score ~base:idx ~offset:0;
  Asm.shri a ~rd:tmp ~rs1:bits 32;
  Asm.xor a ~rd:score ~rs1:score ~rs2:tmp;
  Asm.ret a;
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:bbase;
  Asm.label a "position";
  Asm.load a ~rd:bits ~base:ptr ~offset:0;
  Asm.call a "eval";
  Asm.add a ~rd:acc ~rs1:acc ~rs2:score;
  (* scan 8 "squares": test random bits of the board word *)
  Asm.li a ~rd:sq 8;
  Asm.label a "square";
  Asm.andi a ~rd:tmp ~rs1:bits 1;
  Asm.shri a ~rd:bits ~rs1:bits 1;
  (* data-dependent: roughly 50/50 taken *)
  Asm.beq a ~rs1:tmp ~rs2:Isa.reg_zero "empty";
  Asm.shli a ~rd:tmp ~rs1:sq 2;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:tmp;
  Asm.xor a ~rd:acc ~rs1:acc ~rs2:sq;
  Asm.label a "empty";
  Asm.addi a ~rd:sq ~rs1:sq (-1);
  Asm.bne a ~rs1:sq ~rs2:Isa.reg_zero "square";
  Asm.addi a ~rd:ptr ~rs1:ptr 8;
  Asm.blt a ~rs1:ptr ~rs2:bend "position";
  Asm.jmp a "outer";
  Asm.assemble a
