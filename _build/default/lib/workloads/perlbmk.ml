(** perlbmk-like kernel: bytecode-interpreter surrogate.

    Perl's hot loop is opcode dispatch: an indirect jump whose target
    changes from iteration to iteration, defeating a single-target BTB
    entry.  This kernel interprets a random bytecode stream through an
    in-memory jump table (built with assembler label fixups), with small
    handler bodies touching an operand stack. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let num_ops = 8

let program ?(bytecodes = 16 * 1024) ?(seed = 0x9e7) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"perlbmk" () in
  let code_base = Kernel_util.data_base in
  let table_base = code_base + (8 * bytecodes) + 4096 in
  let stack_mem = table_base + (8 * num_ops) + 4096 in
  (* skewed opcode distribution, as in real interpreters *)
  (* opcode runs: real bytecode repeats idioms, so the indirect target is
     often the same as last time (BTB-friendly) with bursts of change *)
  let prev_op = ref 0 in
  for i = 0 to bytecodes - 1 do
    let op =
      if Prng.bool prng 0.55 then !prev_op
      else
        Prng.weighted prng
          [ (0, 0.30); (1, 0.20); (2, 0.15); (3, 0.10); (4, 0.09); (5, 0.08);
            (6, 0.05); (7, 0.03) ]
    in
    prev_op := op;
    Asm.init_word a ~addr:(code_base + (8 * i)) ~value:op
  done;
  for op = 0 to num_ops - 1 do
    Asm.init_label a ~addr:(table_base + (8 * op)) (Printf.sprintf "op%d" op)
  done;
  Kernel_util.init_words a ~base:stack_mem ~count:64 (fun i -> i);
  let ip = 1 and op = 2 and target = 3 and acc = 4 and tmp = 5 in
  let cbase = 7 and cend = 8 and tbase = 9 and smem = 10 in
  Asm.li a ~rd:cbase code_base;
  Asm.li a ~rd:cend (code_base + (8 * bytecodes));
  Asm.li a ~rd:tbase table_base;
  Asm.li a ~rd:smem stack_mem;
  Asm.label a "outer";
  Asm.mv a ~rd:ip ~rs:cbase;
  Asm.label a "dispatch";
  Asm.load a ~rd:op ~base:ip ~offset:0;
  Asm.addi a ~rd:ip ~rs1:ip 8;
  Asm.shli a ~rd:tmp ~rs1:op 3;
  Asm.add a ~rd:tmp ~rs1:tbase ~rs2:tmp;
  Asm.load a ~rd:target ~base:tmp ~offset:0;
  Asm.jr a ~rs:target;
  (* handlers *)
  Asm.label a "op0"; (* push-const *)
  Asm.addi a ~rd:acc ~rs1:acc 1;
  Asm.jmp a "check";
  Asm.label a "op1"; (* add *)
  Asm.add a ~rd:acc ~rs1:acc ~rs2:op;
  Asm.jmp a "check";
  Asm.label a "op2"; (* load local *)
  Asm.andi a ~rd:tmp ~rs1:acc 504;
  Asm.add a ~rd:tmp ~rs1:smem ~rs2:tmp;
  Asm.load a ~rd:acc ~base:tmp ~offset:0;
  Asm.jmp a "check";
  Asm.label a "op3"; (* store local *)
  Asm.andi a ~rd:tmp ~rs1:acc 504;
  Asm.add a ~rd:tmp ~rs1:smem ~rs2:tmp;
  Asm.store a ~rs:acc ~base:tmp ~offset:0;
  Asm.jmp a "check";
  Asm.label a "op4"; (* xor hash *)
  Asm.shli a ~rd:tmp ~rs1:acc 1;
  Asm.xor a ~rd:acc ~rs1:tmp ~rs2:op;
  Asm.jmp a "check";
  Asm.label a "op5"; (* compare *)
  Asm.slti a ~rd:tmp ~rs1:acc 1000;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:tmp;
  Asm.jmp a "check";
  Asm.label a "op6"; (* multiply *)
  Asm.li a ~rd:tmp 31;
  Asm.mul a ~rd:acc ~rs1:acc ~rs2:tmp;
  Asm.jmp a "check";
  Asm.label a "op7"; (* mask *)
  Asm.andi a ~rd:acc ~rs1:acc 0xFFFF;
  Asm.jmp a "check";
  Asm.label a "check";
  Asm.blt a ~rs1:ip ~rs2:cend "dispatch";
  Asm.jmp a "outer";
  Asm.assemble a
