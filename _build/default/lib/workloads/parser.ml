(** parser-like kernel: recursive-descent surrogate.

    SPEC's parser builds linkages over a dictionary: deep recursion driven
    by input tokens, hash-table lookups into a dictionary larger than the
    L1, and data-dependent control flow.  This kernel recursively descends
    over a random token stream (call/return pairs exercise the RAS) and
    probes a 512 KiB dictionary. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(tokens = 8 * 1024) ?(dict_entries = 32 * 1024) ?(seed = 0xa53) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"parser" () in
  let tok_base = Kernel_util.data_base in
  let dict_base = tok_base + (8 * tokens) + 4096 in
  (* token stream: mostly leaf tokens (>= 4); "open" tokens that trigger
     recursion are the minority, as in real sentences *)
  Kernel_util.init_words a ~base:tok_base ~count:tokens (fun _ ->
      if Prng.bool prng 0.3 then Prng.int prng 4 else 4 + Prng.int prng 6);
  Kernel_util.init_random_words a prng ~base:dict_base ~count:dict_entries ~range:977;
  let ptr = 1 and tok = 2 and acc = 3 and tmp = 4 and slot = 5 in
  let depth = 6 and tbase = 7 and tend = 8 and dbase = 9 in
  let sp = Isa.reg_sp in
  Asm.li a ~rd:tbase tok_base;
  Asm.li a ~rd:tend (tok_base + (8 * tokens));
  Asm.li a ~rd:dbase dict_base;
  Asm.li a ~rd:sp Kernel_util.stack_base;
  Asm.jmp a "outer";
  (* parse_term: consumes one token (r1 advances), may recurse.
     depth (r6) bounds recursion. *)
  Asm.label a "parse_term";
  Asm.load a ~rd:tok ~base:ptr ~offset:0;
  Asm.addi a ~rd:ptr ~rs1:ptr 8;
  (* dictionary probe: hash the token with the position *)
  Asm.sub a ~rd:tmp ~rs1:ptr ~rs2:tbase;
  Asm.xor a ~rd:tmp ~rs1:tmp ~rs2:tok;
  Asm.shli a ~rd:tmp ~rs1:tmp 1;
  Asm.andi a ~rd:tmp ~rs1:tmp ((dict_entries - 1) * 8);
  Asm.add a ~rd:slot ~rs1:dbase ~rs2:tmp;
  Asm.load a ~rd:tmp ~base:slot ~offset:0;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:tmp;
  (* recurse on "open" tokens (0..3) while depth remains *)
  Asm.slti a ~rd:tmp ~rs1:tok 4;
  Asm.beq a ~rs1:tmp ~rs2:Isa.reg_zero "leaf";
  Asm.beq a ~rs1:depth ~rs2:Isa.reg_zero "leaf";
  Asm.addi a ~rd:depth ~rs1:depth (-1);
  (* push return address, recurse, pop *)
  Asm.addi a ~rd:sp ~rs1:sp (-8);
  Asm.store a ~rs:Isa.reg_ra ~base:sp ~offset:0;
  Asm.call a "parse_term";
  Asm.load a ~rd:Isa.reg_ra ~base:sp ~offset:0;
  Asm.addi a ~rd:sp ~rs1:sp 8;
  Asm.addi a ~rd:depth ~rs1:depth 1;
  Asm.label a "leaf";
  Asm.ret a;
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:tbase;
  Asm.label a "sentence";
  Asm.li a ~rd:depth 6;
  Asm.call a "parse_term";
  Asm.blt a ~rs1:ptr ~rs2:tend "sentence";
  Asm.jmp a "outer";
  Asm.assemble a
