(** twolf-like kernel: placement/annealing surrogate.

    TimberWolf evaluates cell swaps at pseudo-random locations of a large
    placement grid: scattered reads that miss frequently, a data-dependent
    accept/reject branch, and occasional writes back — the paper's twolf
    shows both high window cost and high data-miss cost with a serial
    dl1+win interaction. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(cells = 32 * 1024) ?(seed = 0x2ae) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"twolf" () in
  let base = Kernel_util.data_base in
  Kernel_util.init_random_words a prng ~base ~count:cells ~range:4096;
  let lcg = 1 and idx1 = 2 and idx2 = 3 and c1 = 4 and c2 = 5 in
  let delta = 6 and acc = 7 and gbase = 8 and tmp = 9 and thresh = 10 in
  Asm.li a ~rd:gbase base;
  Asm.li a ~rd:thresh (-1536);
  Asm.li a ~rd:lcg (Prng.int prng 1_000_000 + 1);
  Asm.label a "swap";
  (* LCG: next pseudo-random cell pair *)
  Asm.li a ~rd:tmp 1103515245;
  Asm.mul a ~rd:lcg ~rs1:lcg ~rs2:tmp;
  Asm.addi a ~rd:lcg ~rs1:lcg 12345;
  Asm.andi a ~rd:lcg ~rs1:lcg 0x3FFFFFFF;
  Asm.andi a ~rd:idx1 ~rs1:lcg ((cells - 1) * 8);
  Asm.shri a ~rd:idx2 ~rs1:lcg 12;
  Asm.andi a ~rd:idx2 ~rs1:idx2 ((cells - 1) * 8);
  (* load the two cells (scattered -> misses) *)
  Asm.add a ~rd:tmp ~rs1:gbase ~rs2:idx1;
  Asm.load a ~rd:c1 ~base:tmp ~offset:0;
  Asm.add a ~rd:tmp ~rs1:gbase ~rs2:idx2;
  Asm.load a ~rd:c2 ~base:tmp ~offset:0;
  (* cost delta and accept/reject: data dependent *)
  Asm.sub a ~rd:delta ~rs1:c1 ~rs2:c2;
  (* annealing-style skewed accept: most swaps accepted, so the branch is
     biased (but still data dependent) *)
  Asm.blt a ~rs1:delta ~rs2:thresh "reject";
  (* accept: swap the two cells *)
  Asm.add a ~rd:tmp ~rs1:gbase ~rs2:idx1;
  Asm.store a ~rs:c2 ~base:tmp ~offset:0;
  Asm.add a ~rd:tmp ~rs1:gbase ~rs2:idx2;
  Asm.store a ~rs:c1 ~base:tmp ~offset:0;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:delta;
  Asm.jmp a "swap";
  Asm.label a "reject";
  Asm.sub a ~rd:acc ~rs1:acc ~rs2:delta;
  Asm.jmp a "swap";
  Asm.assemble a
