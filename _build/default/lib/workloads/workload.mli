(** Registry of workload kernels: the twelve SPECint2000 surrogates used by
    the paper's evaluation (see DESIGN.md for the substitution rationale
    and each kernel's module for its microarchitectural character). *)

type t = {
  name : string;
  description : string;
  build : unit -> Icost_isa.Program.t;
}

val all : t list
(** The suite, alphabetical: bzip2, crafty, eon, gap, gcc, gzip, mcf,
    parser, perlbmk, twolf, vortex, vpr. *)

val names : string list
val find : string -> t option

val find_exn : string -> t
(** @raise Invalid_argument for unknown names (the message lists the
    known ones). *)
