(** eon-like kernel: ray-tracer surrogate.

    Eon is the one SPECint benchmark with heavy floating-point content:
    long multiply/add chains with an occasional divide, small working set,
    highly predictable loop branches.  The paper's breakdown gives eon the
    largest long-ALU cost of the suite and small cache costs. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(rays = 1024) ?(seed = 0xe08) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"eon" () in
  let base = Kernel_util.data_base in
  (* ray directions: 3 words per ray, small footprint *)
  Kernel_util.init_random_words a prng ~base ~count:(3 * rays) ~range:1024;
  let ptr = 1 and x = 2 and y = 3 and z = 4 and dot = 5 in
  let t1 = 6 and t2 = 7 and acc = 8 and rbase = 9 and rend = 10 and k = 11 in
  Asm.li a ~rd:rbase base;
  Asm.li a ~rd:rend (base + (24 * rays));
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:rbase;
  Asm.label a "ray";
  Asm.load a ~rd:x ~base:ptr ~offset:0;
  Asm.load a ~rd:y ~base:ptr ~offset:8;
  Asm.load a ~rd:z ~base:ptr ~offset:16;
  (* dot products and normalization: FP chains *)
  Asm.fmul a ~rd:t1 ~rs1:x ~rs2:x;
  Asm.fmul a ~rd:t2 ~rs1:y ~rs2:y;
  Asm.fadd a ~rd:dot ~rs1:t1 ~rs2:t2;
  Asm.fmul a ~rd:t1 ~rs1:z ~rs2:z;
  Asm.fadd a ~rd:dot ~rs1:dot ~rs2:t1;
  (* bounce iterations: dependent FP chain with integer bookkeeping and a
     texture-table read per bounce *)
  Asm.li a ~rd:k 2;
  Asm.label a "bounce";
  Asm.fmul a ~rd:dot ~rs1:dot ~rs2:x;
  Asm.fadd a ~rd:dot ~rs1:dot ~rs2:y;
  Asm.andi a ~rd:t2 ~rs1:dot 2040;
  Asm.add a ~rd:t2 ~rs1:rbase ~rs2:t2;
  Asm.load a ~rd:t2 ~base:t2 ~offset:0;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:t2;
  Asm.addi a ~rd:k ~rs1:k (-1);
  Asm.bne a ~rs1:k ~rs2:Isa.reg_zero "bounce";
  (* occasional divide (reflection coefficient) *)
  Asm.andi a ~rd:t1 ~rs1:dot 7;
  Asm.bne a ~rs1:t1 ~rs2:Isa.reg_zero "no_div";
  Asm.addi a ~rd:t2 ~rs1:dot 3;
  Asm.fdiv a ~rd:dot ~rs1:dot ~rs2:t2;
  Asm.label a "no_div";
  Asm.fadd a ~rd:acc ~rs1:acc ~rs2:dot;
  Asm.addi a ~rd:ptr ~rs1:ptr 24;
  Asm.blt a ~rs1:ptr ~rs2:rend "ray";
  Asm.jmp a "outer";
  Asm.assemble a
