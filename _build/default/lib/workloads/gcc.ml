(** gcc-like kernel: compiler-pass surrogate.

    GCC walks intermediate-representation structures, dispatching on node
    kinds through chains of compares — a large, branchy footprint with a
    skewed opcode distribution (common kinds predictable, rare kinds not),
    and mixed ALU/memory work.  Working set ~1 MiB. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(ir_nodes = 16 * 1024) ?(seed = 0x6cc) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"gcc" () in
  let ir_base = Kernel_util.data_base in
  (* IR stream: 2 words per node (kind, operand).  Kinds are Markov
     correlated — compiler IR arrives in runs of similar nodes — which is
     what makes real gcc branches largely learnable. *)
  let prev_kind = ref 0 in
  for i = 0 to ir_nodes - 1 do
    let kind =
      if Prng.bool prng 0.85 then !prev_kind
      else Prng.weighted prng [ (0, 0.5); (1, 0.25); (2, 0.1); (3, 0.08); (4, 0.07) ]
    in
    prev_kind := kind;
    Asm.init_word a ~addr:(ir_base + (16 * i)) ~value:kind;
    Asm.init_word a ~addr:(ir_base + (16 * i) + 8) ~value:(Prng.int prng 65536)
  done;
  let ptr = 1 and kind = 2 and opnd = 3 and acc = 4 and tmp = 5 in
  let ibase = 7 and iend = 8 and consts = 9 in
  Asm.li a ~rd:ibase ir_base;
  Asm.li a ~rd:iend (ir_base + (16 * ir_nodes));
  Asm.li a ~rd:consts 3;
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:ibase;
  Asm.label a "node";
  Asm.load a ~rd:kind ~base:ptr ~offset:0;
  Asm.load a ~rd:opnd ~base:ptr ~offset:8;
  (* switch over node kinds: compare chain *)
  Asm.bne a ~rs1:kind ~rs2:Isa.reg_zero "k1";
  (* kind 0: constant fold *)
  Asm.add a ~rd:acc ~rs1:acc ~rs2:opnd;
  Asm.jmp a "next";
  Asm.label a "k1";
  Asm.li a ~rd:tmp 1;
  Asm.bne a ~rs1:kind ~rs2:tmp "k2";
  (* kind 1: strength-reduce (shift) *)
  Asm.shli a ~rd:tmp ~rs1:opnd 1;
  Asm.xor a ~rd:acc ~rs1:acc ~rs2:tmp;
  Asm.jmp a "next";
  Asm.label a "k2";
  Asm.li a ~rd:tmp 2;
  Asm.bne a ~rs1:kind ~rs2:tmp "k3";
  (* kind 2: re-associate: writes back to the IR *)
  Asm.add a ~rd:tmp ~rs1:opnd ~rs2:acc;
  Asm.store a ~rs:tmp ~base:ptr ~offset:8;
  Asm.jmp a "next";
  Asm.label a "k3";
  Asm.li a ~rd:tmp 3;
  Asm.bne a ~rs1:kind ~rs2:tmp "k4";
  (* kind 3: multiply by a loop constant *)
  Asm.mul a ~rd:tmp ~rs1:opnd ~rs2:consts;
  Asm.add a ~rd:acc ~rs1:acc ~rs2:tmp;
  Asm.jmp a "next";
  Asm.label a "k4";
  (* kind 4: compare-and-set, data dependent *)
  Asm.blt a ~rs1:opnd ~rs2:acc "skip";
  Asm.sub a ~rd:acc ~rs1:opnd ~rs2:acc;
  Asm.label a "skip";
  Asm.label a "next";
  Asm.addi a ~rd:ptr ~rs1:ptr 16;
  Asm.blt a ~rs1:ptr ~rs2:iend "node";
  Asm.jmp a "outer";
  Asm.assemble a
