(** vpr-like kernel: FPGA place-and-route surrogate.

    VPR mixes integer bookkeeping with floating-point cost evaluation over
    medium-sized arrays: wire-length terms (FP multiply/add), routing-table
    reads with moderate locality, and a mildly data-dependent comparison. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(nets = 8 * 1024) ?(seed = 0x7b6) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"vpr" () in
  let base = Kernel_util.data_base in
  (* net endpoints: 2 words per net *)
  Kernel_util.init_random_words a prng ~base ~count:(2 * nets) ~range:8192;
  let ptr = 1 and x1 = 2 and x2 = 3 and dx = 4 and cost = 5 in
  let acc = 6 and nbase = 7 and nend = 8 and tmp = 9 and best = 10 in
  Asm.li a ~rd:nbase base;
  Asm.li a ~rd:nend (base + (16 * nets));
  Asm.li a ~rd:best 1_000_000;
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:nbase;
  Asm.label a "net";
  Asm.load a ~rd:x1 ~base:ptr ~offset:0;
  Asm.load a ~rd:x2 ~base:ptr ~offset:8;
  (* wire length: |x1 - x2| with FP scaling *)
  Asm.sub a ~rd:dx ~rs1:x1 ~rs2:x2;
  Asm.blt a ~rs1:dx ~rs2:Isa.reg_zero "negate";
  Asm.jmp a "scaled";
  Asm.label a "negate";
  Asm.sub a ~rd:dx ~rs1:Isa.reg_zero ~rs2:dx;
  Asm.label a "scaled";
  Asm.fmul a ~rd:cost ~rs1:dx ~rs2:dx;
  Asm.fadd a ~rd:cost ~rs1:cost ~rs2:x1;
  Asm.fmul a ~rd:tmp ~rs1:cost ~rs2:dx;
  Asm.fadd a ~rd:acc ~rs1:acc ~rs2:tmp;
  (* track the best (data-dependent, but skewed) *)
  Asm.blt a ~rs1:cost ~rs2:best "better";
  Asm.jmp a "next";
  Asm.label a "better";
  Asm.mv a ~rd:best ~rs:cost;
  Asm.label a "next";
  Asm.addi a ~rd:ptr ~rs1:ptr 16;
  Asm.blt a ~rs1:ptr ~rs2:nend "net";
  Asm.jmp a "outer";
  Asm.assemble a
