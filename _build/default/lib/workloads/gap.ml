(** gap-like kernel: computer-algebra surrogate.

    GAP manipulates large integers: each limb is loaded and pushed through a
    dependent carry/normalize chain, but distinct limbs are independent, so
    the machine overlaps them up to the instruction-window limit.  That
    makes gap window-bound — the paper's breakdown shows gap with the
    largest window cost of Table 4a and the strongest shalu+win serial
    interaction of Table 4b.  Loads stream a 48 KiB limb array (one L1 miss
    per line, L2 resident). *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(limbs = 6 * 1024) ?(chain = 14) ?(seed = 0x9a9) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"gap" () in
  let base = Kernel_util.data_base in
  Kernel_util.init_random_words a prng ~base ~count:limbs ~range:1_000_000;
  let ptr = 1 and limb = 2 and acc = 3 and t = 4 and tmp = 5 in
  let abase = 7 and aend = 8 in
  Asm.li a ~rd:abase base;
  Asm.li a ~rd:aend (base + (8 * limbs));
  Asm.label a "outer";
  Asm.mv a ~rd:ptr ~rs:abase;
  Asm.label a "inner";
  Asm.load a ~rd:limb ~base:ptr ~offset:0;
  (* per-limb dependent chain: starts fresh from the loaded limb, so
     different limbs can overlap (bounded by the window) *)
  Asm.mv a ~rd:t ~rs:limb;
  for k = 1 to chain do
    if k mod 3 = 0 then Asm.xori a ~rd:t ~rs1:t 0x55
    else Asm.addi a ~rd:t ~rs1:t 7
  done;
  (* single loop-carried accumulate *)
  Asm.add a ~rd:acc ~rs1:acc ~rs2:t;
  (* occasional long multiply, as in bignum scaling (predictable pattern:
     depends on the address, not the data) *)
  Asm.andi a ~rd:tmp ~rs1:ptr 127;
  Asm.bne a ~rs1:tmp ~rs2:Isa.reg_zero "no_mul";
  Asm.mul a ~rd:acc ~rs1:acc ~rs2:limb;
  Asm.label a "no_mul";
  Asm.addi a ~rd:ptr ~rs1:ptr 8;
  Asm.blt a ~rs1:ptr ~rs2:aend "inner";
  Asm.jmp a "outer";
  Asm.assemble a
