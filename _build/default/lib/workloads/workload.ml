(** Registry of workload kernels.

    The twelve kernels mirror the SPECint2000 suite used by the paper; each
    is a synthetic surrogate reproducing the microarchitectural character
    of its namesake (see the per-kernel module documentation and DESIGN.md
    for the substitution rationale). *)

type t = {
  name : string;
  description : string;
  build : unit -> Icost_isa.Program.t;
}

let all =
  [
    { name = "bzip2"; description = "block-sort surrogate: random compare branches";
      build = (fun () -> Bzip2.program ()) };
    { name = "crafty"; description = "chess surrogate: bitboards, branchy eval, calls";
      build = (fun () -> Crafty.program ()) };
    { name = "eon"; description = "ray-tracer surrogate: FP chains, predictable";
      build = (fun () -> Eon.program ()) };
    { name = "gap"; description = "computer-algebra surrogate: serial carry chains";
      build = (fun () -> Gap.program ()) };
    { name = "gcc"; description = "compiler surrogate: IR walk, kind dispatch";
      build = (fun () -> Gcc.program ()) };
    { name = "gzip"; description = "LZ77 surrogate: stream + hash probes";
      build = (fun () -> Gzip.program ()) };
    { name = "mcf"; description = "network-simplex surrogate: pointer chasing";
      build = (fun () -> Mcf.program ()) };
    { name = "parser"; description = "recursive-descent surrogate: recursion + dictionary";
      build = (fun () -> Parser.program ()) };
    { name = "perlbmk"; description = "interpreter surrogate: indirect dispatch";
      build = (fun () -> Perlbmk.program ()) };
    { name = "twolf"; description = "annealing surrogate: scattered reads, accept/reject";
      build = (fun () -> Twolf.program ()) };
    { name = "vortex"; description = "object-database surrogate: dependent load chains";
      build = (fun () -> Vortex.program ()) };
    { name = "vpr"; description = "place-and-route surrogate: FP cost evaluation";
      build = (fun () -> Vpr.program ()) };
  ]

let names = List.map (fun w -> w.name) all

let find name = List.find_opt (fun w -> w.name = name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "Workload.find_exn: unknown workload %S (known: %s)" name
         (String.concat ", " names))
