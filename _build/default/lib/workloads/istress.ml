(** Instruction-cache stress kernel (not part of the SPECint-like suite).

    The twelve suite kernels all have tiny code footprints, so the [imiss]
    category is structurally zero for them — as it nearly is for most of
    SPECint in the paper's Table 4a.  This kernel exists to exercise the
    I-cache path end to end: a long chain of distinct basic blocks (several
    times the 32 KiB L1 I-cache) is traversed round-robin, so every block
    fetch misses.  Used by unit tests and the imiss ablation. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

(** [program ~blocks ()] builds [blocks] basic blocks of straight-line code
    (16 instructions each = one I-cache line per 16) chained by jumps. *)
let program ?(blocks = 1024) ?(seed = 0x1ca) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"istress" () in
  Asm.jmp a "block0";
  for b = 0 to blocks - 1 do
    Asm.label a (Printf.sprintf "block%d" b);
    (* 14 filler ops + jump = 15 instructions; blocks land on distinct lines *)
    for _ = 1 to 14 do
      let rd = 1 + Prng.int prng 8 in
      Asm.addi a ~rd ~rs1:rd (Prng.int prng 16)
    done;
    if b < blocks - 1 then Asm.jmp a (Printf.sprintf "block%d" (b + 1))
    else Asm.jmp a "block0"
  done;
  Asm.assemble a
