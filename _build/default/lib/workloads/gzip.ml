(** gzip-like kernel: LZ77 surrogate.

    Streams through an input buffer computing a rolling hash, probes a hash
    table of previous positions and compares candidate matches.  The input
    streams with good spatial locality; the hash table (64 KiB) exceeds the
    L1, giving a moderate D-cache miss rate; match/no-match branches are
    data dependent. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let program ?(input_words = 8 * 1024) ?(hash_entries = 8 * 1024) ?(seed = 0x91b) () =
  let prng = Prng.create seed in
  let a = Asm.create ~name:"gzip" () in
  let input_base = Kernel_util.data_base in
  let hash_base = input_base + (8 * input_words) + 4096 in
  (* input: mostly distinct symbols with a repeated marker so matches occur
     but stay rare (the match branch is biased, as in real gzip) *)
  Kernel_util.init_words a ~base:input_base ~count:input_words (fun _ ->
      if Prng.bool prng 0.4 then 42 else Prng.int prng 4096);
  (* hash slots hold candidate positions; initially all point at element 0 *)
  Kernel_util.init_words a ~base:hash_base ~count:hash_entries (fun _ -> input_base);
  let ptr = 1 and sym = 2 and hash = 3 and slot = 4 and cand = 5 in
  let tmp = 6 and inbase = 7 and inend = 8 and htbase = 9 and matches = 10 in
  let cand_sym = 11 in
  Asm.li a ~rd:inbase input_base;
  Asm.li a ~rd:inend (input_base + (8 * input_words));
  Asm.li a ~rd:htbase hash_base;
  let start = 12 in
  Asm.mv a ~rd:start ~rs:inbase;
  Asm.label a "outer";
  (* per-pass salt: models streaming fresh data — the same context hashes
     to a different slot each pass, so stale candidates rarely match *)
  Asm.addi a ~rd:start ~rs1:start 1;
  Asm.andi a ~rd:start ~rs1:start 1023;
  Asm.mv a ~rd:ptr ~rs:inbase;
  Asm.label a "inner";
  Asm.load a ~rd:sym ~base:ptr ~offset:0;
  (* rolling hash: h = ((h << 2) ^ sym) mod entries *)
  Asm.shli a ~rd:tmp ~rs1:hash 2;
  Asm.xor a ~rd:hash ~rs1:tmp ~rs2:sym;
  Asm.xor a ~rd:hash ~rs1:hash ~rs2:start;
  Asm.andi a ~rd:hash ~rs1:hash (hash_entries - 1);
  Asm.shli a ~rd:tmp ~rs1:hash 3;
  Asm.add a ~rd:slot ~rs1:htbase ~rs2:tmp;
  Asm.load a ~rd:cand ~base:slot ~offset:0;
  Asm.store a ~rs:ptr ~base:slot ~offset:0;
  (* fetch the candidate symbol and compare: a true LZ match test, so the
     branch is heavily biased toward "no match" *)
  Asm.load a ~rd:cand_sym ~base:cand ~offset:0;
  Asm.bne a ~rs1:cand_sym ~rs2:sym "no_match";
  Asm.addi a ~rd:matches ~rs1:matches 1;
  (* emit a back-reference: a couple of extra ALU ops *)
  Asm.sub a ~rd:tmp ~rs1:ptr ~rs2:inbase;
  Asm.shri a ~rd:tmp ~rs1:tmp 3;
  Asm.add a ~rd:matches ~rs1:matches ~rs2:tmp;
  Asm.label a "no_match";
  Asm.addi a ~rd:ptr ~rs1:ptr 8;
  Asm.blt a ~rs1:ptr ~rs2:inend "inner";
  Asm.jmp a "outer";
  Asm.assemble a
