(** Parallelism-aware performance breakdowns (Section 2.3).

    One row per base category plus one per displayed interaction; serial
    interactions appear as negative rows, and an [Other] row completes the
    account so the table sums to exactly 100% of execution time — the
    paper's Table 4 layout. *)

type row_kind =
  | Base of Category.t
  | Pair of Category.t * Category.t  (** interaction row, focus first *)
  | Other  (** all interaction costs not displayed *)

type row = { kind : row_kind; percent : float; cycles : float }

type t = { baseline_cycles : float; rows : row list }

val row_label : row -> string
(** "dl1", "dl1+win", "Other", ... *)

val focus : oracle:Cost.oracle -> focus_cat:Category.t -> t
(** Table 4-style breakdown: all base rows (focus first), the focus's
    pairwise interaction rows, and Other. *)

val total : t -> float
(** Sum of all rows; 100 by construction. *)

val find_row : t -> row_kind -> row option
(** Look a row up; [Pair] keys match in either order. *)

val percent_of : t -> row_kind -> float option

val pairwise : oracle:Cost.oracle -> (Category.t * Category.t * float) list
(** The full pairwise interaction matrix (icost as percent of baseline),
    one entry per unordered category pair. *)

val higher_order :
  oracle:Cost.oracle ->
  max_order:int ->
  Category.t list ->
  (Category.Set.t * float) list
(** icost of every subset of the given categories with cardinality in
    [2, max_order], as percent of baseline, sorted by cardinality. *)
