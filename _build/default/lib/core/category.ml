(** Event categories for parallelism-aware breakdowns.

    These are the eight base categories of the paper's Table 4:

    - [Dl1]: level-one data-cache (hit) latency
    - [Win]: instruction-window stalls
    - [Bw]: processor bandwidth (fetch, issue and commit bandwidths)
    - [Bmisp]: branch mispredictions
    - [Dmiss]: data-cache misses (including D-TLB misses)
    - [Shalu]: one-cycle integer operations
    - [Lgalu]: multi-cycle integer and floating-point operations
    - [Imiss]: instruction-cache misses (including I-TLB misses)

    A {!Set.t} of categories denotes a set of events to idealize together;
    costs and interaction costs are functions of such sets. *)

type t = Dl1 | Win | Bw | Bmisp | Dmiss | Shalu | Lgalu | Imiss

let all = [ Dl1; Win; Bw; Bmisp; Dmiss; Shalu; Lgalu; Imiss ]

let count = List.length all

let to_int = function
  | Dl1 -> 0
  | Win -> 1
  | Bw -> 2
  | Bmisp -> 3
  | Dmiss -> 4
  | Shalu -> 5
  | Lgalu -> 6
  | Imiss -> 7

let of_int = function
  | 0 -> Dl1
  | 1 -> Win
  | 2 -> Bw
  | 3 -> Bmisp
  | 4 -> Dmiss
  | 5 -> Shalu
  | 6 -> Lgalu
  | 7 -> Imiss
  | n -> invalid_arg (Printf.sprintf "Category.of_int: %d" n)

let name = function
  | Dl1 -> "dl1"
  | Win -> "win"
  | Bw -> "bw"
  | Bmisp -> "bmisp"
  | Dmiss -> "dmiss"
  | Shalu -> "shalu"
  | Lgalu -> "lgalu"
  | Imiss -> "imiss"

let of_name = function
  | "dl1" -> Some Dl1
  | "win" -> Some Win
  | "bw" -> Some Bw
  | "bmisp" -> Some Bmisp
  | "dmiss" -> Some Dmiss
  | "shalu" | "shortalu" -> Some Shalu
  | "lgalu" | "longalu" -> Some Lgalu
  | "imiss" -> Some Imiss
  | _ -> None

let description = function
  | Dl1 -> "level-one data-cache access latency"
  | Win -> "instruction window stalls"
  | Bw -> "fetch/issue/commit bandwidth"
  | Bmisp -> "branch mispredictions"
  | Dmiss -> "data-cache misses"
  | Shalu -> "one-cycle integer operations"
  | Lgalu -> "multi-cycle integer and FP operations"
  | Imiss -> "instruction-cache misses"

(** Sets of categories, represented as bit masks.  The empty set means "no
    idealization" (the baseline). *)
module Set = struct
  type cat = t

  type t = int
  (** bit [i] set iff category [of_int i] is in the set *)

  let empty = 0
  let full = (1 lsl count) - 1
  let singleton c = 1 lsl to_int c
  let mem c s = s land singleton c <> 0
  let add c s = s lor singleton c
  let remove c s = s land lnot (singleton c)
  let union a b = a lor b
  let inter a b = a land b
  let diff a b = a land lnot b
  let is_empty s = s = 0
  let equal (a : t) (b : t) = a = b
  let subset a b = a land b = a
  let cardinal s =
    let rec go acc s = if s = 0 then acc else go (acc + (s land 1)) (s lsr 1) in
    go 0 s

  let of_list cs = List.fold_left (fun s c -> add c s) empty cs
  let to_list s = List.filter (fun c -> mem c s) all
  let pair a b = union (singleton a) (singleton b)

  (** All subsets of [s], including [empty] and [s] itself. *)
  let subsets s =
    (* enumerate submasks of the bitmask [s] *)
    let rec go acc sub =
      let acc = sub :: acc in
      if sub = 0 then acc else go acc ((sub - 1) land s)
    in
    go [] s

  (** Proper subsets: all subsets of [s] except [s] itself. *)
  let proper_subsets s = List.filter (fun v -> v <> s) (subsets s)

  let name s =
    match to_list s with
    | [] -> "(none)"
    | cs -> String.concat "+" (List.map name cs)

  let fold f s acc = List.fold_left (fun acc c -> f c acc) acc (to_list s)
  let iter f s = List.iter f (to_list s)
end
