(** Event categories for parallelism-aware breakdowns.

    The eight base categories of the paper's Table 4.  A {!Set.t} of
    categories denotes a set of event classes to idealize together; costs
    and interaction costs ({!Cost}) are functions of such sets. *)

type t =
  | Dl1  (** level-one data-cache (hit) latency *)
  | Win  (** instruction-window stalls *)
  | Bw  (** processor bandwidth: fetch, issue and commit *)
  | Bmisp  (** branch mispredictions *)
  | Dmiss  (** data-cache misses (including D-TLB misses) *)
  | Shalu  (** one-cycle integer operations *)
  | Lgalu  (** multi-cycle integer and floating-point operations *)
  | Imiss  (** instruction-cache misses (including I-TLB misses) *)

val all : t list
(** All categories, in canonical (breakdown-row) order. *)

val count : int
(** [List.length all]. *)

val to_int : t -> int
(** Stable index in [0, count). *)

val of_int : int -> t
(** Inverse of {!to_int}.  @raise Invalid_argument outside [0, count). *)

val name : t -> string
(** Short name as used in the paper's tables ("dl1", "win", ...). *)

val of_name : string -> t option
(** Parse {!name} (also accepts the paper's "shortalu"/"longalu"). *)

val description : t -> string
(** One-line human description. *)

(** Sets of categories, represented as bit masks (exposed as [int] so that
    sets can serve directly as hash keys and be enumerated cheaply; treat
    the representation as read-only). *)
module Set : sig
  type cat = t

  type t = int
  (** bit [to_int c] is set iff [c] is in the set *)

  val empty : t
  val full : t

  val singleton : cat -> t
  val mem : cat -> t -> bool
  val add : cat -> t -> t
  val remove : cat -> t -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val subset : t -> t -> bool
  (** [subset a b] is true iff [a] is a subset of [b]. *)

  val cardinal : t -> int
  val of_list : cat list -> t
  val to_list : t -> cat list
  val pair : cat -> cat -> t

  val subsets : t -> t list
  (** All subsets, including [empty] and the set itself. *)

  val proper_subsets : t -> t list
  (** All subsets except the set itself. *)

  val name : t -> string
  (** e.g. ["dl1+win"]; [("(none)")] for the empty set. *)

  val fold : (cat -> 'a -> 'a) -> t -> 'a -> 'a
  val iter : (cat -> unit) -> t -> unit
end
