lib/core/advisor.mli: Category Cost
