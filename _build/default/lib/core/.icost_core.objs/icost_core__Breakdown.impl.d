lib/core/breakdown.ml: Category Cost List Option
