lib/core/category.mli:
