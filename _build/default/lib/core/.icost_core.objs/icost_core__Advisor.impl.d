lib/core/advisor.ml: Buffer Category Cost Float List Printf
