lib/core/breakdown.mli: Category Cost
