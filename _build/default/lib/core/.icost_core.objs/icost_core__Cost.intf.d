lib/core/cost.mli: Category
