lib/core/cost.ml: Category Hashtbl List
