lib/core/category.ml: List Printf String
