(** Set-associative cache with true-LRU replacement.  Used for the L1
    caches, the shared L2 and (with associativity = entries) the TLBs.
    Tracks presence only — the timing model needs hit/miss classification,
    not data. *)

type t

val create : name:string -> lines:int -> ways:int -> line_size:int -> t
(** [lines] must be divisible by [ways]; the set count and line size must
    be powers of two.  @raise Invalid_argument otherwise. *)

val create_bytes : name:string -> size:int -> ways:int -> line_size:int -> t
(** Convenience constructor from a total size in bytes. *)

val line_addr : t -> int -> int
(** The line number of a byte address. *)

val probe : t -> int -> bool
(** Presence check without any state change. *)

val access : t -> int -> bool
(** Look an address up; on a miss, fill the line (evicting the LRU way).
    Returns [true] on a hit. *)

val miss_rate : t -> float
val stats : t -> int * int
(** (accesses, misses) since creation or the last {!reset_stats}. *)

val reset_stats : t -> unit
