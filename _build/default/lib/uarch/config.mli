(** Machine configuration.  {!default} reproduces the paper's Table 6; the
    long-pipeline case studies of Section 4 are the knob variants
    {!loop_dl1}, {!loop_wakeup} and {!loop_bmisp}. *)

module Isa = Icost_isa.Isa

(** Idealization switches, one per event class (Table 1 lists the
    idealization technique for each). *)
type ideal = {
  perfect_icache : bool;  (** imiss: I-cache (and I-TLB) misses become hits *)
  perfect_dcache : bool;  (** dmiss: D-cache (and D-TLB) misses become hits *)
  zero_dl1 : bool;  (** dl1: level-one D-cache hit latency becomes 0 *)
  zero_short_alu : bool;  (** shalu: 1-cycle integer ops take 0 cycles *)
  zero_long_alu : bool;  (** lgalu: multi-cycle int and FP ops take 0 cycles *)
  perfect_bpred : bool;  (** bmisp: mispredictions become correct predictions *)
  infinite_bw : bool;  (** bw: infinite fetch, issue and commit bandwidth *)
  big_window : bool;  (** win: window 20x larger than baseline *)
}

val no_ideal : ideal

type t = {
  (* core *)
  window_size : int;
  issue_width : int;
  fetch_bw : int;
  commit_bw : int;
  store_commit_bw : int;
      (** stores that can retire to the cache per cycle (L1 write ports) *)
  fetch_taken_limit : int;  (** taken branches that terminate a fetch cycle *)
  frontend_depth : int;  (** fetch-to-dispatch stages *)
  branch_recovery : int;
      (** cycles between a mispredicted branch completing and the first
          correct-path instruction dispatching (the mispredict loop) *)
  wakeup_latency : int;  (** issue-wakeup loop: 1 = back-to-back issue *)
  window_ideal_factor : int;  (** multiplier used by the big_window idealization *)
  (* execution latencies *)
  short_alu_lat : int;
  int_mul_lat : int;
  int_div_lat : int;
  fp_add_lat : int;
  fp_mul_lat : int;
  fp_div_lat : int;
  (* functional unit counts *)
  num_int_alu : int;
  num_int_mul : int;
  num_fp_alu : int;
  num_fp_mul : int;
  num_mem_ports : int;
  (* memory hierarchy *)
  line_size : int;
  il1_size : int;
  il1_ways : int;
  il1_lat : int;
  dl1_size : int;
  dl1_ways : int;
  dl1_lat : int;
  l2_size : int;
  l2_ways : int;
  l2_lat : int;
  mem_lat : int;
  page_size : int;
  dtlb_entries : int;
  itlb_entries : int;
  tlb_miss_lat : int;
  (* branch prediction *)
  bimodal_entries : int;
  gshare_entries : int;
  gshare_history : int;
  meta_entries : int;
  btb_entries : int;
  btb_ways : int;
  ras_entries : int;
  (* idealizations *)
  ideal : ideal;
}

val default : t
(** The Table 6 machine: 64-entry window, 6-wide, 32KB 2-cycle L1s, 1MB
    12-cycle L2, 100-cycle memory, combined 8k bimodal/gshare/meta. *)

val loop_dl1 : t
(** Table 4a's machine: four-cycle level-one data cache. *)

val loop_wakeup : t
(** Table 4b's machine: two-cycle issue-wakeup loop. *)

val loop_bmisp : t
(** Table 4c's machine: 15-cycle branch-misprediction loop. *)

val effective_window : t -> int
val huge_bw : int
val effective_fetch_bw : t -> int
val effective_commit_bw : t -> int
val effective_issue_width : t -> int

val exec_latency : t -> Isa.op_class -> int
(** Base (un-idealized) execution latency of an operation class. *)

type fu_pool = Int_alu_pool | Int_mul_pool | Fp_alu_pool | Fp_mul_pool | Mem_port_pool

val fu_pool_of_class : Isa.op_class -> fu_pool
val fu_pool_size : t -> fu_pool -> int
