(** Set-associative cache with true-LRU replacement.

    Used for the L1 instruction and data caches, the shared L2, and (with
    associativity = number of entries) the TLBs.  The cache tracks only
    presence, not data — the architectural values live in the interpreter;
    the timing model only needs hit/miss classification. *)

type t = {
  name : string;
  sets : int;
  ways : int;
  line_bits : int;  (** log2 of line size; 0 for TLBs indexed by page *)
  tags : int array array;  (** [sets][ways], -1 = invalid *)
  stamps : int array array;  (** LRU timestamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** [create ~name ~lines ~ways ~line_size] builds a cache of [lines] total
    lines, [ways]-way associative, with [line_size]-byte lines.  [lines]
    must be a multiple of [ways] and the set count a power of two. *)
let create ~name ~lines ~ways ~line_size =
  if lines mod ways <> 0 then invalid_arg "Cache.create: lines not divisible by ways";
  let sets = lines / ways in
  if not (is_pow2 sets) then invalid_arg "Cache.create: set count must be a power of two";
  if not (is_pow2 line_size) then invalid_arg "Cache.create: line size must be a power of two";
  {
    name;
    sets;
    ways;
    line_bits = log2 line_size;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    stamps = Array.init sets (fun _ -> Array.make ways 0);
    clock = 0;
    accesses = 0;
    misses = 0;
  }

(** Convenience constructor from a size in bytes. *)
let create_bytes ~name ~size ~ways ~line_size =
  create ~name ~lines:(size / line_size) ~ways ~line_size

let line_addr t addr = addr lsr t.line_bits

let set_of t line = line land (t.sets - 1)

let tag_of t line = line lsr log2 t.sets

(** [probe t addr] checks for presence without updating any state. *)
let probe t addr =
  let line = line_addr t addr in
  let set = set_of t line in
  let tag = tag_of t line in
  Array.exists (fun w -> w = tag) t.tags.(set)

(** [access t addr] looks up [addr]; on a miss, fills the line, evicting the
    LRU way.  Returns [true] on hit. *)
let access t addr =
  t.clock <- t.clock + 1;
  t.accesses <- t.accesses + 1;
  let line = line_addr t addr in
  let set = set_of t line in
  let tag = tag_of t line in
  let tags = t.tags.(set) and stamps = t.stamps.(set) in
  let found = ref (-1) in
  for w = 0 to t.ways - 1 do
    if tags.(w) = tag then found := w
  done;
  if !found >= 0 then begin
    stamps.(!found) <- t.clock;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if stamps.(w) < stamps.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.clock;
    false
  end

let miss_rate t = if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let stats t = (t.accesses, t.misses)

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
