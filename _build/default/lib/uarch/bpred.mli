(** Branch prediction (Table 6): combined bimodal/gshare with a meta
    chooser for conditional branches, a set-associative BTB for indirect
    targets, and a return address stack. *)

type t

val create : Config.t -> t

val predict_cond : t -> pc:int -> bool
(** Predicted direction for a conditional branch; no state change. *)

val update_cond : t -> pc:int -> taken:bool -> bool
(** Update the combined predictor with the outcome; returns whether the
    pre-update prediction was correct. *)

val predict_indirect : t -> pc:int -> int option
(** BTB target for an indirect jump, if any; no state change. *)

val update_indirect : t -> pc:int -> target:int -> bool
(** Record the actual target; returns whether the pre-update BTB
    prediction matched. *)

val ras_push : t -> return_pc:int -> unit
(** Push a call's return address (overflow drops the oldest entry). *)

val ras_pop_check : t -> target:int -> bool
(** Pop and compare with the actual return target; an empty RAS
    mispredicts. *)
