(** Machine configuration.

    The [default] configuration reproduces Table 6 of the paper:

    - dynamically scheduled core: 64-entry instruction window, 6-way issue,
      15-cycle pipeline, perfect memory disambiguation, fetch stops at the
      second taken branch in a cycle;
    - branch prediction: combined bimodal (8k) / gshare (8k) with an 8k meta
      predictor, 4k-entry 2-way BTB, 64-entry return address stack;
    - memory: 32KB 2-way L1 I and D (2-cycle), shared 1MB 4-way 12-cycle L2,
      100-cycle memory, 128-entry DTLB / 64-entry ITLB with 30-cycle miss
      handling;
    - functional units: 6 int ALU (1-cycle), 2 int MUL (3), 4 FP ALU (2),
      2 FP MUL/DIV (4/12), 3 load/store ports (2-cycle).

    The long-pipeline case studies of Section 4 are expressed as knob
    changes: [dl1_lat = 4] (Table 4a), [wakeup_latency = 2] (Table 4b) and
    [branch_recovery = 15] (Table 4c). *)

module Isa = Icost_isa.Isa

(** Idealization switches, one per event class of the paper's breakdowns
    (Table 1 lists the idealization technique for each). *)
type ideal = {
  perfect_icache : bool;  (** imiss: I-cache (and I-TLB) misses become hits *)
  perfect_dcache : bool;  (** dmiss: D-cache (and D-TLB) misses become hits *)
  zero_dl1 : bool;  (** dl1: level-one D-cache hit latency becomes 0 *)
  zero_short_alu : bool;  (** shalu: 1-cycle integer ops take 0 cycles *)
  zero_long_alu : bool;  (** lgalu: multi-cycle int and FP ops take 0 cycles *)
  perfect_bpred : bool;  (** bmisp: mispredictions become correct predictions *)
  infinite_bw : bool;  (** bw: infinite fetch, issue and commit bandwidth *)
  big_window : bool;  (** win: window 20x larger than baseline *)
}

let no_ideal =
  {
    perfect_icache = false;
    perfect_dcache = false;
    zero_dl1 = false;
    zero_short_alu = false;
    zero_long_alu = false;
    perfect_bpred = false;
    infinite_bw = false;
    big_window = false;
  }

type t = {
  (* core *)
  window_size : int;
  issue_width : int;
  fetch_bw : int;
  commit_bw : int;
  store_commit_bw : int;
      (** stores that can retire to the cache per cycle (L1 write ports) *)
  fetch_taken_limit : int;  (** taken branches that terminate a fetch cycle *)
  frontend_depth : int;  (** fetch-to-dispatch stages *)
  branch_recovery : int;
      (** cycles between a mispredicted branch completing and the first
          correct-path instruction dispatching (the mispredict loop) *)
  wakeup_latency : int;  (** issue-wakeup loop: 1 = back-to-back issue *)
  window_ideal_factor : int;  (** multiplier used by the big_window idealization *)
  (* execution latencies *)
  short_alu_lat : int;
  int_mul_lat : int;
  int_div_lat : int;
  fp_add_lat : int;
  fp_mul_lat : int;
  fp_div_lat : int;
  (* functional unit counts *)
  num_int_alu : int;
  num_int_mul : int;
  num_fp_alu : int;
  num_fp_mul : int;
  num_mem_ports : int;
  (* memory hierarchy *)
  line_size : int;
  il1_size : int;
  il1_ways : int;
  il1_lat : int;
  dl1_size : int;
  dl1_ways : int;
  dl1_lat : int;
  l2_size : int;
  l2_ways : int;
  l2_lat : int;
  mem_lat : int;
  page_size : int;
  dtlb_entries : int;
  itlb_entries : int;
  tlb_miss_lat : int;
  (* branch prediction *)
  bimodal_entries : int;
  gshare_entries : int;
  gshare_history : int;
  meta_entries : int;
  btb_entries : int;
  btb_ways : int;
  ras_entries : int;
  (* idealizations *)
  ideal : ideal;
}

let default =
  {
    window_size = 64;
    issue_width = 6;
    fetch_bw = 6;
    commit_bw = 6;
    store_commit_bw = 2;
    fetch_taken_limit = 2;
    frontend_depth = 7;
    branch_recovery = 10;
    wakeup_latency = 1;
    window_ideal_factor = 20;
    short_alu_lat = 1;
    int_mul_lat = 3;
    int_div_lat = 12;
    fp_add_lat = 2;
    fp_mul_lat = 4;
    fp_div_lat = 12;
    num_int_alu = 6;
    num_int_mul = 2;
    num_fp_alu = 4;
    num_fp_mul = 2;
    num_mem_ports = 3;
    line_size = 64;
    il1_size = 32 * 1024;
    il1_ways = 2;
    il1_lat = 2;
    dl1_size = 32 * 1024;
    dl1_ways = 2;
    dl1_lat = 2;
    l2_size = 1024 * 1024;
    l2_ways = 4;
    l2_lat = 12;
    mem_lat = 100;
    page_size = 4096;
    dtlb_entries = 128;
    itlb_entries = 64;
    tlb_miss_lat = 30;
    bimodal_entries = 8192;
    gshare_entries = 8192;
    gshare_history = 13;
    meta_entries = 8192;
    btb_entries = 4096;
    btb_ways = 2;
    ras_entries = 64;
    ideal = no_ideal;
  }

(** The three long-pipeline case studies of Section 4. *)
let loop_dl1 = { default with dl1_lat = 4 }

let loop_wakeup = { default with wakeup_latency = 2 }
let loop_bmisp = { default with branch_recovery = 15 }

(** Effective window size after idealization. *)
let effective_window cfg =
  if cfg.ideal.big_window then cfg.window_size * cfg.window_ideal_factor
  else cfg.window_size

let huge_bw = 10_000

let effective_fetch_bw cfg = if cfg.ideal.infinite_bw then huge_bw else cfg.fetch_bw
let effective_commit_bw cfg = if cfg.ideal.infinite_bw then huge_bw else cfg.commit_bw
let effective_issue_width cfg = if cfg.ideal.infinite_bw then huge_bw else cfg.issue_width

(** Base (un-idealized) execution latency for an operation class. *)
let exec_latency cfg (c : Isa.op_class) =
  match c with
  | Isa.Short_alu -> cfg.short_alu_lat
  | Isa.Int_mul -> cfg.int_mul_lat
  | Isa.Int_div -> cfg.int_div_lat
  | Isa.Fp_add -> cfg.fp_add_lat
  | Isa.Fp_mul -> cfg.fp_mul_lat
  | Isa.Fp_div -> cfg.fp_div_lat
  | Isa.Mem_load -> cfg.dl1_lat (* hit latency; miss penalties are added on top *)
  | Isa.Mem_store -> 1 (* address generation; data drains from the write buffer *)
  | Isa.Ctrl -> 1
  | Isa.Nop_class -> 1

(** Which functional-unit pool an operation class issues to.
    Returns [None] for classes that need no FU (control ops use an int ALU). *)
type fu_pool = Int_alu_pool | Int_mul_pool | Fp_alu_pool | Fp_mul_pool | Mem_port_pool

let fu_pool_of_class (c : Isa.op_class) =
  match c with
  | Isa.Short_alu | Isa.Ctrl | Isa.Nop_class -> Int_alu_pool
  | Isa.Int_mul | Isa.Int_div -> Int_mul_pool
  | Isa.Fp_add -> Fp_alu_pool
  | Isa.Fp_mul | Isa.Fp_div -> Fp_mul_pool
  | Isa.Mem_load | Isa.Mem_store -> Mem_port_pool

let fu_pool_size cfg = function
  | Int_alu_pool -> cfg.num_int_alu
  | Int_mul_pool -> cfg.num_int_mul
  | Fp_alu_pool -> cfg.num_fp_alu
  | Fp_mul_pool -> cfg.num_fp_mul
  | Mem_port_pool -> cfg.num_mem_ports
