(** Branch prediction: combined bimodal/gshare with a meta chooser, a 2-way
    BTB for indirect targets, and a return address stack — the predictor of
    Table 6.

    Conditional branches are predicted by the combined predictor (the meta
    table chooses between bimodal and gshare per branch).  Direct jumps and
    calls are always predicted correctly (their target is in the binary).
    Returns are predicted through the RAS, other indirect jumps through the
    BTB; a wrong target is a misprediction. *)

type counters = { table : int array }

let make_counters entries = { table = Array.make entries 1 (* weakly not-taken *) }

let ctr_predict c ix = c.table.(ix) >= 2

let ctr_update c ix taken =
  let v = c.table.(ix) in
  c.table.(ix) <- (if taken then min 3 (v + 1) else max 0 (v - 1))

type t = {
  bimodal : counters;
  gshare : counters;
  meta : counters;
  bimodal_mask : int;
  gshare_mask : int;
  meta_mask : int;
  history_mask : int;
  mutable history : int;
  btb_tags : int array;  (** [entries * ways] *)
  btb_targets : int array;
  btb_stamps : int array;
  btb_sets : int;
  btb_ways : int;
  mutable btb_clock : int;
  ras : int array;
  mutable ras_top : int;  (** number of valid entries, capped at capacity *)
}

let create (cfg : Config.t) =
  let btb_sets = cfg.btb_entries / cfg.btb_ways in
  {
    bimodal = make_counters cfg.bimodal_entries;
    gshare = make_counters cfg.gshare_entries;
    meta = make_counters cfg.meta_entries;
    bimodal_mask = cfg.bimodal_entries - 1;
    gshare_mask = cfg.gshare_entries - 1;
    meta_mask = cfg.meta_entries - 1;
    history_mask = (1 lsl cfg.gshare_history) - 1;
    history = 0;
    btb_tags = Array.make cfg.btb_entries (-1);
    btb_targets = Array.make cfg.btb_entries 0;
    btb_stamps = Array.make cfg.btb_entries 0;
    btb_sets;
    btb_ways = cfg.btb_ways;
    btb_clock = 0;
    ras = Array.make cfg.ras_entries 0;
    ras_top = 0;
  }

let pc_index pc = pc lsr 2

(** Predict the direction of a conditional branch at [pc].  Does not update
    any state (use {!update_cond} afterwards with the outcome). *)
let predict_cond t ~pc =
  let ix = pc_index pc in
  let b = ctr_predict t.bimodal (ix land t.bimodal_mask) in
  let g = ctr_predict t.gshare ((ix lxor t.history) land t.gshare_mask) in
  let use_gshare = ctr_predict t.meta (ix land t.meta_mask) in
  if use_gshare then g else b

(** Update the combined predictor with the actual outcome of a conditional
    branch.  Returns whether the pre-update prediction was correct. *)
let update_cond t ~pc ~taken =
  let ix = pc_index pc in
  let bix = ix land t.bimodal_mask in
  let gix = (ix lxor t.history) land t.gshare_mask in
  let mix = ix land t.meta_mask in
  let b = ctr_predict t.bimodal bix in
  let g = ctr_predict t.gshare gix in
  let use_gshare = ctr_predict t.meta mix in
  let predicted = if use_gshare then g else b in
  ctr_update t.bimodal bix taken;
  ctr_update t.gshare gix taken;
  (* The meta chooser trains toward the component that was right, only when
     the components disagree. *)
  if b <> g then ctr_update t.meta mix (g = taken);
  t.history <- ((t.history lsl 1) lor (if taken then 1 else 0)) land t.history_mask;
  predicted = taken

(* --- BTB --- *)

let btb_lookup t ~pc =
  let ix = pc_index pc in
  let set = ix land (t.btb_sets - 1) in
  let tag = ix lsr 1 in
  let base = set * t.btb_ways in
  let rec find w = if w >= t.btb_ways then None
    else if t.btb_tags.(base + w) = tag then Some (base + w)
    else find (w + 1)
  in
  find 0

(** Predicted target for an indirect jump at [pc], if the BTB has one. *)
let predict_indirect t ~pc =
  match btb_lookup t ~pc with
  | Some slot -> Some t.btb_targets.(slot)
  | None -> None

(** Record the actual target of an indirect jump.  Returns whether the
    pre-update BTB prediction matched. *)
let update_indirect t ~pc ~target =
  t.btb_clock <- t.btb_clock + 1;
  let predicted_ok =
    match predict_indirect t ~pc with Some p -> p = target | None -> false
  in
  let ix = pc_index pc in
  let set = ix land (t.btb_sets - 1) in
  let tag = ix lsr 1 in
  let base = set * t.btb_ways in
  (match btb_lookup t ~pc with
   | Some slot ->
     t.btb_targets.(slot) <- target;
     t.btb_stamps.(slot) <- t.btb_clock
   | None ->
     (* evict the LRU way in this set *)
     let victim = ref base in
     for w = 1 to t.btb_ways - 1 do
       if t.btb_stamps.(base + w) < t.btb_stamps.(!victim) then victim := base + w
     done;
     t.btb_tags.(!victim) <- tag;
     t.btb_targets.(!victim) <- target;
     t.btb_stamps.(!victim) <- t.btb_clock);
  predicted_ok

(* --- return address stack --- *)

let ras_push t ~return_pc =
  let cap = Array.length t.ras in
  if t.ras_top < cap then begin
    t.ras.(t.ras_top) <- return_pc;
    t.ras_top <- t.ras_top + 1
  end
  else begin
    (* overflow: shift (rare with 64 entries; models a circular stack losing
       its oldest entry) *)
    Array.blit t.ras 1 t.ras 0 (cap - 1);
    t.ras.(cap - 1) <- return_pc
  end

(** Pop the RAS and compare with the actual return target.  Returns whether
    the prediction was correct.  An empty RAS mispredicts. *)
let ras_pop_check t ~target =
  if t.ras_top = 0 then false
  else begin
    t.ras_top <- t.ras_top - 1;
    t.ras.(t.ras_top) = target
  end
