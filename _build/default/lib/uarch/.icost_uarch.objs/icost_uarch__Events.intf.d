lib/uarch/events.mli: Config Icost_isa
