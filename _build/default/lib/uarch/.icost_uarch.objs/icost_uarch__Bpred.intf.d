lib/uarch/bpred.mli: Config
