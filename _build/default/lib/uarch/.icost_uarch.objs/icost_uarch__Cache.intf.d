lib/uarch/cache.mli:
