lib/uarch/config.mli: Icost_isa
