lib/uarch/bpred.ml: Array Config
