lib/uarch/events.ml: Array Bpred Cache Config Hashtbl Icost_isa Option
