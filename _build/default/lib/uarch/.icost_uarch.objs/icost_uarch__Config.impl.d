lib/uarch/config.ml: Icost_isa
