lib/sim/ooo.ml: Array Hashtbl Icost_isa Icost_uarch List Option
