lib/sim/multisim.ml: Icost_core Icost_isa Icost_uarch Ooo
