lib/sim/multisim.mli: Icost_core Icost_isa Icost_uarch
