lib/sim/ooo.mli: Icost_isa Icost_uarch
