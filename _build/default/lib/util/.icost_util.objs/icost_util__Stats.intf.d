lib/util/stats.mli:
