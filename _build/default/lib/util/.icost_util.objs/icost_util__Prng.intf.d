lib/util/prng.mli:
