(** Small numeric helpers used by the experiment harness and the profiler
    validation: means, deviations, percentage formatting and error metrics. *)

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. Float.of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) ** 2.) xs) in
    sqrt var

let fmin xs = List.fold_left min infinity xs
let fmax xs = List.fold_left max neg_infinity xs

(** [percent part whole] is [part / whole * 100.], or 0 when [whole = 0]. *)
let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

(** Absolute error between a measurement and a reference. *)
let abs_error ~measured ~reference = Float.abs (measured -. reference)

(** Relative error in percent, guarding against a zero reference (the paper
    excludes categories under 5% from its averages for the same reason). *)
let rel_error_pct ~measured ~reference =
  if Float.abs reference < 1e-9 then 0.
  else 100. *. Float.abs (measured -. reference) /. Float.abs reference

(** Geometric mean of positive values (used for speedup summaries). *)
let geomean = function
  | [] -> 1.
  | xs ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (s /. Float.of_int (List.length xs))

(** Running statistics accumulator (Welford). *)
module Running = struct
  type t = { mutable n : int; mutable mean : float; mutable m2 : float }

  let create () = { n = 0; mean = 0.; m2 = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. Float.of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean))

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mean

  let stddev t =
    if t.n < 2 then 0. else sqrt (t.m2 /. Float.of_int (t.n - 1))
end
