(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the repository flows through this module so that
    every workload, sampling decision and experiment is reproducible from
    a fixed seed. *)

type t

val create : int -> t
val copy : t -> t

val next_int64 : t -> int64
(** One raw SplitMix64 step. *)

val bits : t -> int
(** 62 uniformly distributed non-negative bits. *)

val int : t -> int -> int
(** Uniform in [0, n); requires [n > 0]. *)

val int_range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val choose : t -> 'a array -> 'a
(** A uniformly random element of a non-empty array. *)

val weighted : t -> ('a * float) list -> 'a
(** First component of a pair with probability proportional to its weight. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates permutation. *)

val split : t -> t
(** Derive an independent generator from this stream. *)
