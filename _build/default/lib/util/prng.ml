(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that every
    workload, sampling decision and experiment is reproducible from a fixed
    seed.  The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014),
    which is small, fast and has no measurable bias for our purposes. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* One SplitMix64 step: advance the state by the golden-ratio increment and
   scramble the output with two xor-shift-multiply rounds. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [bits t] returns 62 uniformly distributed non-negative bits. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [int t n] returns a uniform integer in [0, n). Requires [n > 0]. *)
let int t n =
  assert (n > 0);
  bits t mod n

(** [int_range t lo hi] returns a uniform integer in [lo, hi] inclusive. *)
let int_range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(** [float t] returns a uniform float in [0, 1). *)
let float t = Float.of_int (bits t) *. 0x1p-62

(** [bool t p] returns [true] with probability [p]. *)
let bool t p = float t < p

(** [choose t arr] picks a uniformly random element of [arr]. *)
let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** [weighted t pairs] picks the first component of a pair with probability
    proportional to its (non-negative) weight. *)
let weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. pairs in
  assert (total > 0.);
  let x = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted: empty"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0. pairs

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** [split t] derives an independent generator from [t]'s stream. *)
let split t = { state = next_int64 t }
