(** Small numeric helpers for the experiment harness and the profiler
    validation. *)

val mean : float list -> float
val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val fmin : float list -> float
val fmax : float list -> float

val percent : float -> float -> float
(** [percent part whole] = [100 * part / whole], or 0 when [whole = 0]. *)

val abs_error : measured:float -> reference:float -> float

val rel_error_pct : measured:float -> reference:float -> float
(** Relative error in percent; 0 when the reference is ~0. *)

val geomean : float list -> float
(** Geometric mean of positive values; 1 for the empty list. *)

(** Running statistics accumulator (Welford; sample standard deviation). *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
end
