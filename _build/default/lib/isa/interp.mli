(** Architectural interpreter: executes a program at the register/memory
    level (no timing) and records the committed dynamic instruction stream
    — the ground truth for the timing simulator and the profiler's
    reconstruction. *)

exception Stuck of string
(** The program counter left the program, or an enabled trap fired. *)

type config = {
  max_instrs : int;  (** stop after this many dynamic instructions *)
  trap_div_by_zero : bool;  (** if false, division by zero yields 0 *)
}

val default_config : config
(** 100k instructions, division by zero yields 0. *)

val run : ?config:config -> Program.t -> Trace.t
(** Execute the program from its entry point.  [Halt] ends the run early
    (and is not recorded in the trace).  @raise Stuck on invalid control
    flow. *)
