lib/isa/trace.ml: Array Hashtbl Isa List Option Program
