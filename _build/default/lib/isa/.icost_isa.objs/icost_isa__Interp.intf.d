lib/isa/interp.mli: Program Trace
