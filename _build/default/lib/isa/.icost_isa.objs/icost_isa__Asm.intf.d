lib/isa/asm.mli: Isa Program
