lib/isa/isa.mli:
