lib/isa/program.ml: Array Format Isa List Printf
