lib/isa/asm.ml: Array Hashtbl Isa List Printf Program
