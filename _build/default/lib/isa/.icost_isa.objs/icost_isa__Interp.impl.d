lib/isa/interp.ml: Array Hashtbl Isa List Option Printf Program Trace
