lib/isa/trace.mli: Hashtbl Isa Program
