(** Static programs ("binaries"): an instruction array plus an initial
    memory image.  The shotgun profiler's reconstruction reads the binary
    to infer control flow and register dependences (Figure 5b's "static"
    information). *)

type t = {
  name : string;
  code : Isa.instr array;
  entry : int;  (** static index of the first instruction *)
  mem_image : (int * int) list;  (** initial (byte address, word value) pairs *)
}

val make : ?entry:int -> ?mem_image:(int * int) list -> name:string -> Isa.instr array -> t

val length : t -> int

val fetch : t -> int -> Isa.instr
(** @raise Invalid_argument out of bounds. *)

val fetch_pc : t -> int -> Isa.instr

val invalid_targets : t -> int list
(** Static indices whose direct control-transfer target is out of range. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
