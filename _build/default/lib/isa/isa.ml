(** The miniature load/store RISC ISA executed by the simulator.

    The paper evaluates on Alpha binaries; we substitute a small but real
    register-machine ISA.  Programs are arrays of static instructions indexed
    by a program counter (one instruction = 4 bytes of PC space, so
    [pc = 4 * static_index]).  There are 32 integer registers; [r0] is
    hard-wired to zero.  Memory is word-addressed through byte addresses
    (loads and stores move 8-byte words).

    The instruction classes map one-to-one onto the event categories of the
    paper's breakdowns: single-cycle integer ops ([shalu]), multi-cycle
    integer multiply/divide and floating-point ops ([lgalu]), loads and
    stores (data-cache events), and control transfers (branch-prediction
    events). *)

type reg = int
(** Register number, 0..31. Register 0 always reads as zero. *)

let num_regs = 32
let reg_zero : reg = 0
let reg_ra : reg = 31 (* link register used by Call/Ret *)
let reg_sp : reg = 30 (* conventionally the stack pointer *)

(** Arithmetic/logical operations on integer registers. *)
type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Slt (** set-if-less-than: rd <- if rs1 < src2 then 1 else 0 *)

(** Floating-point operations (registers hold bit patterns; we reuse the
    integer register file, as the distinction only matters for latency). *)
type fpu_op = Fadd | Fmul | Fdiv

(** Branch conditions, comparing two registers. *)
type cond = Eq | Ne | Lt | Ge

type operand = Reg of reg | Imm of int

type instr =
  | Alu of { op : alu_op; rd : reg; rs1 : reg; src2 : operand }
  | Fpu of { op : fpu_op; rd : reg; rs1 : reg; rs2 : reg }
  | Load of { rd : reg; base : reg; offset : int }
  | Store of { rs : reg; base : reg; offset : int }
  | Branch of { cond : cond; rs1 : reg; rs2 : reg; target : int }
      (** direct conditional branch; [target] is a static instruction index *)
  | Jump of { target : int }  (** direct unconditional jump *)
  | Call of { target : int }  (** direct call: writes return PC to [reg_ra] *)
  | Ret  (** indirect jump through [reg_ra] *)
  | Jump_reg of { rs : reg }  (** general indirect jump (e.g. dispatch tables) *)
  | Halt

(** Latency classes used by the timing model and by the breakdown
    categories. *)
type op_class =
  | Short_alu  (** 1-cycle integer ops *)
  | Int_mul    (** integer multiply *)
  | Int_div    (** integer divide (shares the multiplier pool) *)
  | Fp_add
  | Fp_mul
  | Fp_div
  | Mem_load
  | Mem_store
  | Ctrl       (** branches, jumps, calls, returns *)
  | Nop_class  (** Halt *)

let class_of = function
  | Alu { op = Mul; _ } -> Int_mul
  | Alu { op = Div; _ } -> Int_div
  | Alu _ -> Short_alu
  | Fpu { op = Fadd; _ } -> Fp_add
  | Fpu { op = Fmul; _ } -> Fp_mul
  | Fpu { op = Fdiv; _ } -> Fp_div
  | Load _ -> Mem_load
  | Store _ -> Mem_store
  | Branch _ | Jump _ | Call _ | Ret | Jump_reg _ -> Ctrl
  | Halt -> Nop_class

(** A "long" ALU operation in the paper's sense: multi-cycle integer or any
    floating-point arithmetic. *)
let is_long_alu i =
  match class_of i with
  | Int_mul | Int_div | Fp_add | Fp_mul | Fp_div -> true
  | Short_alu | Mem_load | Mem_store | Ctrl | Nop_class -> false

let is_short_alu i = class_of i = Short_alu
let is_load = function Load _ -> true | _ -> false
let is_store = function Store _ -> true | _ -> false

let is_branch = function
  | Branch _ | Jump _ | Call _ | Ret | Jump_reg _ -> true
  | _ -> false

let is_cond_branch = function Branch _ -> true | _ -> false

let is_indirect = function Ret | Jump_reg _ -> true | _ -> false

let is_mem i = is_load i || is_store i

(** Source registers read by an instruction (register 0 excluded: it is a
    constant, never a dependence). *)
let sources i =
  let srcs =
    match i with
    | Alu { rs1; src2 = Reg rs2; _ } -> [ rs1; rs2 ]
    | Alu { rs1; src2 = Imm _; _ } -> [ rs1 ]
    | Fpu { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Load { base; _ } -> [ base ]
    | Store { rs; base; _ } -> [ rs; base ]
    | Branch { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Jump _ | Call _ | Halt -> []
    | Ret -> [ reg_ra ]
    | Jump_reg { rs } -> [ rs ]
  in
  List.filter (fun r -> r <> reg_zero) srcs

(** Destination register written by an instruction, if any. *)
let dest = function
  | Alu { rd; _ } | Fpu { rd; _ } | Load { rd; _ } ->
    if rd = reg_zero then None else Some rd
  | Call _ -> Some reg_ra
  | Store _ | Branch _ | Jump _ | Ret | Jump_reg _ | Halt -> None

let string_of_alu_op = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Slt -> "slt"

let string_of_fpu_op = function Fadd -> "fadd" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_cond = function Eq -> "beq" | Ne -> "bne" | Lt -> "blt" | Ge -> "bge"

let string_of_operand = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm n -> Printf.sprintf "#%d" n

let to_string = function
  | Alu { op; rd; rs1; src2 } ->
    Printf.sprintf "%s r%d, r%d, %s" (string_of_alu_op op) rd rs1
      (string_of_operand src2)
  | Fpu { op; rd; rs1; rs2 } ->
    Printf.sprintf "%s r%d, r%d, r%d" (string_of_fpu_op op) rd rs1 rs2
  | Load { rd; base; offset } -> Printf.sprintf "ld r%d, %d(r%d)" rd offset base
  | Store { rs; base; offset } -> Printf.sprintf "st r%d, %d(r%d)" rs offset base
  | Branch { cond; rs1; rs2; target } ->
    Printf.sprintf "%s r%d, r%d, @%d" (string_of_cond cond) rs1 rs2 target
  | Jump { target } -> Printf.sprintf "jmp @%d" target
  | Call { target } -> Printf.sprintf "call @%d" target
  | Ret -> "ret"
  | Jump_reg { rs } -> Printf.sprintf "jr r%d" rs
  | Halt -> "halt"

(** PC encoding: each static instruction occupies 4 bytes. *)
let pc_of_index ix = 4 * ix

let index_of_pc pc =
  assert (pc land 3 = 0);
  pc / 4
