(** The miniature load/store RISC ISA executed by the simulator.

    Programs are arrays of static instructions indexed by a program
    counter ([pc = 4 * static_index]).  There are 32 integer registers;
    [r0] is hard-wired to zero.  Memory is word-addressed through byte
    addresses (8-byte words).  Instruction classes map one-to-one onto the
    breakdown categories: one-cycle integer ops (shalu), multi-cycle
    integer and FP ops (lgalu), loads/stores (data-cache events), control
    transfers (branch-prediction events). *)

type reg = int
(** Register number, 0..31; register 0 always reads as zero. *)

val num_regs : int
val reg_zero : reg
val reg_ra : reg
(** Link register written by [Call] and read by [Ret] (r31). *)

val reg_sp : reg
(** Conventional stack pointer (r30). *)

type alu_op = Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Slt
type fpu_op = Fadd | Fmul | Fdiv
type cond = Eq | Ne | Lt | Ge
type operand = Reg of reg | Imm of int

type instr =
  | Alu of { op : alu_op; rd : reg; rs1 : reg; src2 : operand }
  | Fpu of { op : fpu_op; rd : reg; rs1 : reg; rs2 : reg }
  | Load of { rd : reg; base : reg; offset : int }
  | Store of { rs : reg; base : reg; offset : int }
  | Branch of { cond : cond; rs1 : reg; rs2 : reg; target : int }
      (** direct conditional branch; [target] is a static index *)
  | Jump of { target : int }
  | Call of { target : int }  (** writes the return PC to [reg_ra] *)
  | Ret  (** indirect jump through [reg_ra] *)
  | Jump_reg of { rs : reg }  (** general indirect jump *)
  | Halt

(** Latency classes used by the timing model and the categories. *)
type op_class =
  | Short_alu
  | Int_mul
  | Int_div
  | Fp_add
  | Fp_mul
  | Fp_div
  | Mem_load
  | Mem_store
  | Ctrl
  | Nop_class

val class_of : instr -> op_class

val is_long_alu : instr -> bool
(** Multi-cycle integer or any FP arithmetic (the paper's "lgalu"). *)

val is_short_alu : instr -> bool
val is_load : instr -> bool
val is_store : instr -> bool
val is_mem : instr -> bool
val is_branch : instr -> bool
(** Any control transfer, conditional or not. *)

val is_cond_branch : instr -> bool
val is_indirect : instr -> bool

val sources : instr -> reg list
(** Source registers read (register 0 excluded: it is a constant). *)

val dest : instr -> reg option
(** Destination register written, if any (writes to r0 are discarded). *)

val string_of_alu_op : alu_op -> string
val string_of_fpu_op : fpu_op -> string
val string_of_cond : cond -> string
val string_of_operand : operand -> string
val to_string : instr -> string

val pc_of_index : int -> int
(** Each static instruction occupies 4 bytes of PC space. *)

val index_of_pc : int -> int
