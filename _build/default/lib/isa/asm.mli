(** A tiny assembler for writing workload kernels.

    Instructions are emitted sequentially; control-flow targets are
    symbolic labels resolved at {!assemble} time.  See the library's
    workload kernels ([lib/workloads]) for idiomatic usage. *)

type t

val create : name:string -> unit -> t

val here : t -> int
(** Index of the next instruction to be emitted. *)

val label : t -> string -> unit
(** Define a label at the current position.
    @raise Invalid_argument on duplicates. *)

val init_word : t -> addr:int -> value:int -> unit
(** Seed the initial memory image with [value] at byte address [addr]. *)

val init_label : t -> addr:int -> string -> unit
(** Seed memory with the PC of a label (for jump tables in data memory). *)

(** {2 Integer ALU} *)

val alu : t -> Isa.alu_op -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val alui : t -> Isa.alu_op -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val add : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val addi : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val sub : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val mul : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val div : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val and_ : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val andi : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val or_ : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val xor : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val xori : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val shli : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val shri : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit
val slt : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val slti : t -> rd:Isa.reg -> rs1:Isa.reg -> int -> unit

val li : t -> rd:Isa.reg -> int -> unit
(** Load an immediate (pseudo: [add rd, r0, #v]). *)

val mv : t -> rd:Isa.reg -> rs:Isa.reg -> unit
(** Register copy (pseudo: [add rd, rs, #0]). *)

val li_label : t -> rd:Isa.reg -> string -> unit
(** Load the PC of a label into a register. *)

(** {2 Floating point} *)

val fpu : t -> Isa.fpu_op -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val fadd : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val fmul : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit
val fdiv : t -> rd:Isa.reg -> rs1:Isa.reg -> rs2:Isa.reg -> unit

(** {2 Memory} *)

val load : t -> rd:Isa.reg -> base:Isa.reg -> offset:int -> unit
val store : t -> rs:Isa.reg -> base:Isa.reg -> offset:int -> unit

(** {2 Control flow} *)

val branch : t -> Isa.cond -> rs1:Isa.reg -> rs2:Isa.reg -> string -> unit
val beq : t -> rs1:Isa.reg -> rs2:Isa.reg -> string -> unit
val bne : t -> rs1:Isa.reg -> rs2:Isa.reg -> string -> unit
val blt : t -> rs1:Isa.reg -> rs2:Isa.reg -> string -> unit
val bge : t -> rs1:Isa.reg -> rs2:Isa.reg -> string -> unit
val jmp : t -> string -> unit
val call : t -> string -> unit
val ret : t -> unit
val jr : t -> rs:Isa.reg -> unit
val halt : t -> unit

val assemble : t -> Program.t
(** Resolve all fixups and validate the program.
    @raise Invalid_argument on undefined labels or invalid targets. *)
