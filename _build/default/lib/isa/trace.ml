(** Dynamic instruction traces.

    The architectural interpreter ({!Interp}) turns a static program into a
    sequence of [dyn] records: the committed dynamic instruction stream,
    annotated with everything a timing model needs — register producers,
    effective addresses, store-to-load forwarding sources and branch
    outcomes.  Wrong-path instructions never appear in the trace; the timing
    simulator charges misprediction recovery as a fetch bubble, matching the
    dependence-graph model's PD edge. *)

type dyn = {
  seq : int;  (** dynamic sequence number, starting at 0 *)
  static_ix : int;  (** index into the program's code array *)
  pc : int;
  instr : Isa.instr;
  reg_deps : (Isa.reg * int) list;
      (** (source register, producer's [seq]); producers before the start of
          the trace are omitted *)
  mem_addr : int option;  (** effective byte address for loads and stores *)
  mem_dep : int option;
      (** for a load: [seq] of the most recent earlier store to the same
          address, if within the trace (store-to-load forwarding — the
          machine has perfect memory disambiguation) *)
  taken : bool;  (** for control transfers: was the branch taken *)
  next_pc : int;  (** PC of the next dynamic instruction *)
}

type t = {
  program : Program.t;
  instrs : dyn array;
  halted : bool;  (** executed a Halt (as opposed to hitting the budget) *)
}

let length t = Array.length t.instrs
let get t i = t.instrs.(i)

(** Mix of the trace by latency class, for quick workload characterization. *)
let class_mix t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun d ->
      let c = Isa.class_of d.instr in
      Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)))
    t.instrs;
  tbl

let count_if t pred = Array.fold_left (fun acc d -> if pred d then acc + 1 else acc) 0 t.instrs

(** [slice t ~start ~len] extracts a sub-trace, renumbering [seq] from zero
    and dropping dependences that point before the slice (they behave like
    already-completed producers).  Used to discard warm-up instructions while
    keeping cache and predictor state warmed by them. *)
let slice t ~start ~len =
  let n = Array.length t.instrs in
  if start < 0 || len < 0 || start + len > n then invalid_arg "Trace.slice";
  let remap s = if s >= start then Some (s - start) else None in
  let instrs =
    Array.init len (fun i ->
        let d = t.instrs.(start + i) in
        {
          d with
          seq = i;
          reg_deps =
            List.filter_map
              (fun (r, p) -> Option.map (fun p' -> (r, p')) (remap p))
              d.reg_deps;
          mem_dep = Option.bind d.mem_dep remap;
        })
  in
  { t with instrs }

let num_loads t = count_if t (fun d -> Isa.is_load d.instr)
let num_stores t = count_if t (fun d -> Isa.is_store d.instr)
let num_branches t = count_if t (fun d -> Isa.is_cond_branch d.instr)
