(** Static programs ("binaries").

    A program is an array of static instructions plus an initial memory
    image.  The shotgun profiler's software graph-construction algorithm
    reads the binary to infer control flow and register dependences, exactly
    as the paper's Figure 5b prescribes ("S" = static information). *)

type t = {
  name : string;
  code : Isa.instr array;
  entry : int;  (** static index of the first instruction *)
  mem_image : (int * int) list;  (** initial (byte address, word value) pairs *)
}

let make ?(entry = 0) ?(mem_image = []) ~name code = { name; code; entry; mem_image }

let length t = Array.length t.code

(** [fetch t ix] returns the instruction at static index [ix].
    @raise Invalid_argument if [ix] is out of bounds. *)
let fetch t ix =
  if ix < 0 || ix >= Array.length t.code then
    invalid_arg (Printf.sprintf "Program.fetch: index %d out of bounds (%s)" ix t.name);
  t.code.(ix)

let fetch_pc t pc = fetch t (Isa.index_of_pc pc)

(** Static sanity checks: all direct control-transfer targets must land
    inside the code array.  Returns the list of offending static indices. *)
let invalid_targets t =
  let n = Array.length t.code in
  let bad = ref [] in
  Array.iteri
    (fun ix instr ->
      let check target = if target < 0 || target >= n then bad := ix :: !bad in
      match instr with
      | Isa.Branch { target; _ } | Isa.Jump { target } | Isa.Call { target } ->
        check target
      | _ -> ())
    t.code;
  List.rev !bad

let validate t =
  match invalid_targets t with
  | [] -> Ok ()
  | ixs ->
    Error
      (Printf.sprintf "program %s: %d instruction(s) with out-of-range targets (first at @%d)"
         t.name (List.length ixs) (List.hd ixs))

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s (%d instrs, entry @%d)@," t.name
    (Array.length t.code) t.entry;
  Array.iteri (fun ix i -> Format.fprintf ppf "%4d: %s@," ix (Isa.to_string i)) t.code;
  Format.fprintf ppf "@]"
