(** Dynamic instruction traces: the committed instruction stream produced
    by the architectural interpreter, annotated with everything a timing
    model needs.  Wrong-path instructions never appear. *)

type dyn = {
  seq : int;  (** dynamic sequence number, from 0 *)
  static_ix : int;  (** index into the program's code array *)
  pc : int;
  instr : Isa.instr;
  reg_deps : (Isa.reg * int) list;
      (** (source register, producer's [seq]); pre-trace producers omitted *)
  mem_addr : int option;  (** effective byte address for loads and stores *)
  mem_dep : int option;
      (** for a load: [seq] of the most recent earlier store to the same
          address (store-to-load forwarding; the machine has perfect
          memory disambiguation) *)
  taken : bool;  (** for control transfers: was the branch taken *)
  next_pc : int;
}

type t = {
  program : Program.t;
  instrs : dyn array;
  halted : bool;  (** executed a Halt (vs. hitting the budget) *)
}

val length : t -> int
val get : t -> int -> dyn

val class_mix : t -> (Isa.op_class, int) Hashtbl.t
val count_if : t -> (dyn -> bool) -> int
val num_loads : t -> int
val num_stores : t -> int
val num_branches : t -> int
(** Conditional branches only. *)

val slice : t -> start:int -> len:int -> t
(** Extract a sub-trace, renumbering [seq] from zero and dropping
    dependences that point before the slice (they behave like
    already-completed producers).  Used to discard warm-up instructions
    while keeping cache/predictor state warmed by them. *)
