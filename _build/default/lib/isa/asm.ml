(** A tiny assembler for writing workload kernels.

    Instructions are emitted sequentially; control-flow targets are symbolic
    labels resolved at [assemble] time.  The DSL keeps kernels readable:

    {[
      let a = Asm.create ~name:"loop" () in
      Asm.label a "top";
      Asm.load a ~rd:3 ~base:2 ~offset:0;
      Asm.addi a ~rd:2 ~rs1:2 8;
      Asm.addi a ~rd:4 ~rs1:4 (-1);
      Asm.bne a ~rs1:4 ~rs2:0 "top";
      Asm.halt a;
      Asm.assemble a
    ]} *)

type fixup =
  | Branch_to of { cond : Isa.cond; rs1 : Isa.reg; rs2 : Isa.reg; label : string }
  | Jump_to of { label : string }
  | Call_to of { label : string }
  | Li_label of { rd : Isa.reg; label : string }
      (** load the PC of a label into a register (for jump tables) *)

type slot = Fixed of Isa.instr | Needs of fixup

type mem_init = Word of int | Label_pc of string

type t = {
  name : string;
  mutable slots : slot list;  (** reversed *)
  mutable count : int;
  labels : (string, int) Hashtbl.t;
  mutable mem_image : (int * mem_init) list;
}

let create ~name () =
  { name; slots = []; count = 0; labels = Hashtbl.create 16; mem_image = [] }

let here t = t.count

let emit t i =
  t.slots <- Fixed i :: t.slots;
  t.count <- t.count + 1

let emit_fixup t f =
  t.slots <- Needs f :: t.slots;
  t.count <- t.count + 1

let label t name =
  if Hashtbl.mem t.labels name then
    invalid_arg (Printf.sprintf "Asm.label: duplicate label %S in %s" name t.name);
  Hashtbl.replace t.labels name t.count

(** Seed the initial memory image with [value] at byte address [addr]. *)
let init_word t ~addr ~value = t.mem_image <- (addr, Word value) :: t.mem_image

(** Seed memory with the PC of [label] (resolved at assembly time), so code
    can build jump tables in data memory. *)
let init_label t ~addr label = t.mem_image <- (addr, Label_pc label) :: t.mem_image

(* --- integer ALU --- *)

let alu t op ~rd ~rs1 ~rs2 = emit t (Isa.Alu { op; rd; rs1; src2 = Reg rs2 })
let alui t op ~rd ~rs1 imm = emit t (Isa.Alu { op; rd; rs1; src2 = Imm imm })
let add t ~rd ~rs1 ~rs2 = alu t Isa.Add ~rd ~rs1 ~rs2
let addi t ~rd ~rs1 imm = alui t Isa.Add ~rd ~rs1 imm
let sub t ~rd ~rs1 ~rs2 = alu t Isa.Sub ~rd ~rs1 ~rs2
let mul t ~rd ~rs1 ~rs2 = alu t Isa.Mul ~rd ~rs1 ~rs2
let div t ~rd ~rs1 ~rs2 = alu t Isa.Div ~rd ~rs1 ~rs2
let and_ t ~rd ~rs1 ~rs2 = alu t Isa.And ~rd ~rs1 ~rs2
let andi t ~rd ~rs1 imm = alui t Isa.And ~rd ~rs1 imm
let or_ t ~rd ~rs1 ~rs2 = alu t Isa.Or ~rd ~rs1 ~rs2
let xor t ~rd ~rs1 ~rs2 = alu t Isa.Xor ~rd ~rs1 ~rs2
let xori t ~rd ~rs1 imm = alui t Isa.Xor ~rd ~rs1 imm
let shli t ~rd ~rs1 imm = alui t Isa.Shl ~rd ~rs1 imm
let shri t ~rd ~rs1 imm = alui t Isa.Shr ~rd ~rs1 imm
let slt t ~rd ~rs1 ~rs2 = alu t Isa.Slt ~rd ~rs1 ~rs2
let slti t ~rd ~rs1 imm = alui t Isa.Slt ~rd ~rs1 imm

(** [li t ~rd v] loads the immediate [v] into [rd] (pseudo: add rd, r0, #v). *)
let li t ~rd v = alui t Isa.Add ~rd ~rs1:Isa.reg_zero v

(** [mv t ~rd ~rs] copies a register (pseudo: add rd, rs, #0). *)
let mv t ~rd ~rs = alui t Isa.Add ~rd ~rs1:rs 0

(* --- floating point --- *)

let fpu t op ~rd ~rs1 ~rs2 = emit t (Isa.Fpu { op; rd; rs1; rs2 })
let fadd t ~rd ~rs1 ~rs2 = fpu t Isa.Fadd ~rd ~rs1 ~rs2
let fmul t ~rd ~rs1 ~rs2 = fpu t Isa.Fmul ~rd ~rs1 ~rs2
let fdiv t ~rd ~rs1 ~rs2 = fpu t Isa.Fdiv ~rd ~rs1 ~rs2

(* --- memory --- *)

let load t ~rd ~base ~offset = emit t (Isa.Load { rd; base; offset })
let store t ~rs ~base ~offset = emit t (Isa.Store { rs; base; offset })

(* --- control flow --- *)

let branch t cond ~rs1 ~rs2 label = emit_fixup t (Branch_to { cond; rs1; rs2; label })
let beq t ~rs1 ~rs2 label = branch t Isa.Eq ~rs1 ~rs2 label
let bne t ~rs1 ~rs2 label = branch t Isa.Ne ~rs1 ~rs2 label
let blt t ~rs1 ~rs2 label = branch t Isa.Lt ~rs1 ~rs2 label
let bge t ~rs1 ~rs2 label = branch t Isa.Ge ~rs1 ~rs2 label
let jmp t label = emit_fixup t (Jump_to { label })
let call t label = emit_fixup t (Call_to { label })

(** [li_label t ~rd label] loads the PC of [label] into [rd]. *)
let li_label t ~rd label = emit_fixup t (Li_label { rd; label })
let ret t = emit t Isa.Ret
let jr t ~rs = emit t (Isa.Jump_reg { rs })
let halt t = emit t Isa.Halt

let resolve t name =
  match Hashtbl.find_opt t.labels name with
  | Some ix -> ix
  | None -> invalid_arg (Printf.sprintf "Asm.assemble: undefined label %S in %s" name t.name)

let assemble t =
  let slots = Array.of_list (List.rev t.slots) in
  let code =
    Array.map
      (function
        | Fixed i -> i
        | Needs (Branch_to { cond; rs1; rs2; label }) ->
          Isa.Branch { cond; rs1; rs2; target = resolve t label }
        | Needs (Jump_to { label }) -> Isa.Jump { target = resolve t label }
        | Needs (Call_to { label }) -> Isa.Call { target = resolve t label }
        | Needs (Li_label { rd; label }) ->
          Isa.Alu
            { op = Isa.Add; rd; rs1 = Isa.reg_zero;
              src2 = Imm (Isa.pc_of_index (resolve t label)) })
      slots
  in
  let mem_image =
    List.rev_map
      (fun (addr, init) ->
        match init with
        | Word v -> (addr, v)
        | Label_pc l -> (addr, Isa.pc_of_index (resolve t l)))
      t.mem_image
  in
  let program = Program.make ~name:t.name ~mem_image code in
  match Program.validate program with
  | Ok () -> program
  | Error msg -> invalid_arg ("Asm.assemble: " ^ msg)
