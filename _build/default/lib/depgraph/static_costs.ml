(** Per-static-instruction costs and interactions.

    The paper points out that icost analysis can attribute costs not only
    to machine resources but to *program locations*: "even determining the
    static instructions where it occurs, helping to guide prefetch
    optimizations" (Section 4.2), and the introduction's example groups
    "all cache misses from a single static load".

    This module groups a graph's dynamic events by static instruction and
    measures, with Tune et al.'s edge-editing method:

    - the cost of one static instruction's dynamic events (e.g. all misses
      of one load idealized to hits);
    - the interaction cost between two static instructions' event sets,
      classifying the pair as parallel (prefetch both), serial (one
      suffices) or independent. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Events = Icost_uarch.Events
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost

type t = {
  graph : Graph.t;
  cfg : Config.t;
  trace : Trace.t;
  (* static index -> dynamic seqs of its D-cache misses *)
  miss_seqs : (int, int list) Hashtbl.t;
  base : int;
}

let create (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array)
    (graph : Graph.t) : t =
  let miss_seqs = Hashtbl.create 64 in
  Array.iteri
    (fun i (e : Events.evt) ->
      let d = Trace.get trace i in
      if Isa.is_load d.instr && e.dl1_miss then
        Hashtbl.replace miss_seqs d.static_ix
          (i :: Option.value ~default:[] (Hashtbl.find_opt miss_seqs d.static_ix)))
    evts;
  { graph; cfg; trace; miss_seqs; base = Graph.critical_length graph }

(** Static loads that missed at least once, with their dynamic miss counts,
    most frequent first. *)
let missing_loads (t : t) : (int * int) list =
  Hashtbl.fold (fun ix seqs acc -> (ix, List.length seqs) :: acc) t.miss_seqs []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let seq_set (t : t) (static_ixs : int list) : (int, unit) Hashtbl.t =
  let set = Hashtbl.create 256 in
  List.iter
    (fun ix ->
      List.iter
        (fun seq -> Hashtbl.replace set seq ())
        (Option.value ~default:[] (Hashtbl.find_opt t.miss_seqs ix)))
    static_ixs;
  set

(** [miss_cost t ixs] is the speedup (cycles) from turning every D-cache
    miss of the static loads [ixs] into a hit — the benefit of perfectly
    prefetching those loads. *)
let miss_cost (t : t) (static_ixs : int list) : int =
  let set = seq_set t static_ixs in
  let override (e : Graph.edge) =
    match e.kind with
    | Graph.EP when Hashtbl.mem set (Graph.seq_of_node e.dst) ->
      (* reduce the load to its hit latency *)
      Some t.cfg.dl1_lat
    | Graph.PP when Hashtbl.mem set (Graph.seq_of_node e.src) ->
      (* the covering miss is gone, so the sharing constraint is too;
         keeping the edge at latency 0 is harmless but we drop its effect
         by zeroing it explicitly *)
      Some 0
    | _ -> None
  in
  t.base - Graph.critical_length ~override t.graph

(** Interaction cost between two static loads' miss sets. *)
let miss_icost (t : t) a b : int =
  miss_cost t [ a; b ] - miss_cost t [ a ] - miss_cost t [ b ]

(** Interaction cost between one static load's misses and a whole event
    category (the paper's conclusion suggests prioritizing prefetches for
    loads whose misses {e serially} interact with branch mispredictions:
    prefetching them also shortens branch resolution). *)
let category_icost (t : t) static_ix (cat : Category.t) : int =
  let set = seq_set t [ static_ix ] in
  let override (e : Graph.edge) =
    match e.kind with
    | Graph.EP when Hashtbl.mem set (Graph.seq_of_node e.dst) -> Some t.cfg.dl1_lat
    | Graph.PP when Hashtbl.mem set (Graph.seq_of_node e.src) -> Some 0
    | _ -> None
  in
  let ideal = Category.Set.singleton cat in
  let cost_load = t.base - Graph.critical_length ~override t.graph in
  let cost_cat = t.base - Graph.critical_length ~ideal t.graph in
  let cost_both = t.base - Graph.critical_length ~ideal ~override t.graph in
  cost_both - cost_load - cost_cat

type advice = Prefetch_both | Prefetch_either | Independent

let advice_of_icost ?(threshold = 0) ic =
  if ic > threshold then Prefetch_both
  else if ic < -threshold then Prefetch_either
  else Independent

let advice_name = function
  | Prefetch_both -> "parallel interaction: prefetch both to realize the gain"
  | Prefetch_either -> "serial interaction: prefetching one largely covers the other"
  | Independent -> "independent: decide per load"

(** Pairwise advice for the [top] most frequently missing loads.  The
    threshold for calling an interaction parallel/serial is 0.5% of the
    baseline execution time. *)
let pairwise_advice ?(top = 4) (t : t) : (int * int * int * advice) list =
  let loads = List.filteri (fun i _ -> i < top) (List.map fst (missing_loads t)) in
  let threshold = t.base / 200 in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  List.map
    (fun (a, b) ->
      let ic = miss_icost t a b in
      (a, b, ic, advice_of_icost ~threshold ic))
    (pairs loads)

(** Aggregate cost of a static instruction's execution latency (all its
    dynamic instances), regardless of class — useful for ranking hot
    dependences beyond loads. *)
let static_exec_cost (t : t) (static_ix : int) : int =
  let set = Hashtbl.create 256 in
  Array.iter
    (fun (d : Trace.dyn) -> if d.static_ix = static_ix then Hashtbl.replace set d.seq ())
    t.trace.instrs;
  Graph.cost_of_edges t.graph (fun e ->
      e.kind = Graph.EP && Hashtbl.mem set (Graph.seq_of_node e.dst))
