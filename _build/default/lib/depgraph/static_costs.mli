(** Per-static-instruction costs and interactions.

    Groups a graph's dynamic cache-miss events by static load and measures,
    with Tune et al.'s edge editing, the cost of prefetching one load's
    misses and the interaction cost between two loads' miss sets — the
    paper's prefetch-guidance application. *)

module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace

type t = {
  graph : Graph.t;
  cfg : Config.t;
  trace : Trace.t;
  miss_seqs : (int, int list) Hashtbl.t;
      (** static index -> dynamic seqs of its D-cache misses *)
  base : int;  (** baseline critical-path length *)
}

val create : Config.t -> Trace.t -> Events.evt array -> Graph.t -> t

val missing_loads : t -> (int * int) list
(** Static loads that missed, with dynamic miss counts, most frequent
    first. *)

val miss_cost : t -> int list -> int
(** Cycles saved by turning every D-cache miss of the given static loads
    into a hit (the benefit of perfectly prefetching them). *)

val miss_icost : t -> int -> int -> int
(** Interaction cost between two static loads' miss sets. *)

val category_icost : t -> int -> Icost_core.Category.t -> int
(** Interaction cost between one static load's misses and a whole event
    category (e.g. [Bmisp]: negative means prefetching the load also
    shortens branch resolution). *)

type advice = Prefetch_both | Prefetch_either | Independent

val advice_of_icost : ?threshold:int -> int -> advice
val advice_name : advice -> string

val pairwise_advice : ?top:int -> t -> (int * int * int * advice) list
(** Advice for every pair among the [top] most frequently missing loads:
    (load a, load b, icost, advice). *)

val static_exec_cost : t -> int -> int
(** Aggregate cost of one static instruction's execution latency over all
    its dynamic instances. *)
