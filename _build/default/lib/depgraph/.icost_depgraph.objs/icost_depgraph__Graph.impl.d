lib/depgraph/graph.ml: Array Buffer Format Hashtbl Icost_core List Option Printf
