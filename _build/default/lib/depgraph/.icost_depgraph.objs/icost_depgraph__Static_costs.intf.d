lib/depgraph/static_costs.mli: Graph Hashtbl Icost_core Icost_isa Icost_uarch
