lib/depgraph/static_costs.ml: Array Graph Hashtbl Icost_core Icost_isa Icost_uarch List Option
