lib/depgraph/graph.mli: Format Hashtbl Icost_core
