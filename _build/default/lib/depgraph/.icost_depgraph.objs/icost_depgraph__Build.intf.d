lib/depgraph/build.mli: Graph Icost_core Icost_isa Icost_sim Icost_uarch
