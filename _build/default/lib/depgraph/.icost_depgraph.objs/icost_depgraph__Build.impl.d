lib/depgraph/build.ml: Array Builder Graph Icost_core Icost_isa Icost_sim Icost_uarch List Option Queue
