(** Model of the hardware performance monitors (Section 5.1): signature
    samples (start PC + 2 signature bits per instruction over a long
    window) and detailed samples (latencies and dynamic dependences of a
    single instruction, with local signature context).  The software side
    ({!Construct}) never sees anything beyond these samples and the
    program binary. *)

module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo

type signature_sample = {
  start_pc : int;
  sig_bits : int array;  (** [sig_len] entries of 2-bit values (Table 5) *)
}

type detailed_sample = {
  pc : int;
  context_bits : int array;  (** [2*context+1] entries centered on the instruction *)
  exec_lat : int;  (** measured execution latency (includes miss handling) *)
  fu_wait : int;
  store_wait : int;
  imiss_delay : int;
  mem_dep_dist : int option;  (** dynamic distance to the forwarding store *)
  share_dist : int option;  (** distance to the load whose miss covers this line *)
  indirect_target : int option;  (** actual target, for indirect jumps *)
  mispredict : bool;
  taken : bool;
}

type opts = {
  sig_len : int;
  sig_period : int;  (** average instructions between signature samples *)
  det_period : int;  (** instructions between detailed samples *)
  context : int;  (** signature context on each side of a detailed sample *)
  seed : int;
}

val default_opts : opts
(** 1000-instruction signatures every ~1500 instructions, one detailed
    sample per 13 instructions, context +-10 — the paper's design point. *)

type db = {
  signatures : signature_sample array;
  detailed : (int, detailed_sample list) Hashtbl.t;  (** indexed by PC *)
  num_detailed : int;
}

val all_bits : Trace.t -> Events.evt array -> int array
(** The signature bits of every instruction of the run. *)

val detailed_of :
  Icost_uarch.Config.t -> Trace.t -> Events.evt array -> Ooo.result ->
  int array -> context:int -> int -> detailed_sample
(** The detailed sample the hardware would emit for one instruction. *)

val collect :
  ?opts:opts -> Icost_uarch.Config.t -> Trace.t -> Events.evt array ->
  Ooo.result -> db
(** Run the monitors over an execution and collect both sample streams. *)

val lookup : db -> int -> detailed_sample list
(** All detailed samples recorded for a PC. *)
