lib/profiler/construct.mli: Icost_core Icost_depgraph Icost_isa Icost_uarch Icost_util Sampler
