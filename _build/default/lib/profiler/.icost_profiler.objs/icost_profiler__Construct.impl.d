lib/profiler/construct.ml: Array Icost_core Icost_depgraph Icost_isa Icost_uarch Icost_util List Option Sampler Signature
