lib/profiler/sampler.mli: Hashtbl Icost_isa Icost_sim Icost_uarch
