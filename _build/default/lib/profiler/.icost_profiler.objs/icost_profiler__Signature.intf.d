lib/profiler/signature.mli: Icost_isa Icost_uarch
