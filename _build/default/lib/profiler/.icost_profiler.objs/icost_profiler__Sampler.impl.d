lib/profiler/sampler.ml: Array Hashtbl Icost_isa Icost_sim Icost_uarch Icost_util List Option Signature
