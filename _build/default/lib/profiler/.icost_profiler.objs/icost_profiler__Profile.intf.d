lib/profiler/profile.mli: Construct Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch Sampler
