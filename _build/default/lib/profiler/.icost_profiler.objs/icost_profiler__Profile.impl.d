lib/profiler/profile.ml: Array Construct Hashtbl Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch List Option Sampler
