lib/profiler/signature.ml: Array Icost_isa Icost_uarch
