(** Post-mortem software graph construction (Figure 5a of the paper).

    A signature sample provides the skeleton: a start PC and 2 signature
    bits per instruction.  The algorithm walks the program binary from the
    start PC, inferring each next PC (falling through, following direct
    targets using signature bit 1 for conditional branch directions,
    maintaining a call stack for returns, and reading indirect targets from
    detailed samples).  For every instruction it selects the detailed
    sample whose signature context best matches the skeleton, supplying
    dynamic latencies and memory dependences; register dependences and
    static latencies come from the binary and the machine description
    (Figure 5b).  Impossible signature-bit settings abort the fragment, as
    in the paper (95-100% of errant walks are discarded this way). *)

module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng
module Program = Icost_isa.Program
module Config = Icost_uarch.Config
module Build = Icost_depgraph.Build
module Category = Icost_core.Category

type abort_reason =
  | Bad_pc  (** walked outside the binary *)
  | Inconsistent_bits  (** signature bit impossible for the decoded instruction *)
  | Missing_indirect_target  (** indirect jump with no detailed sample to supply a target *)

let abort_reason_name = function
  | Bad_pc -> "bad-pc"
  | Inconsistent_bits -> "inconsistent-bits"
  | Missing_indirect_target -> "missing-indirect-target"

type fragment = {
  infos : Build.instr_info array;
  static_ixs : int array;  (** inferred static index per instruction *)
  matched : int;  (** instructions with a matching detailed sample *)
  defaulted : int;  (** instructions that fell back to static defaults *)
}

type outcome = Built of fragment | Aborted of abort_reason * int  (** progress made *)

(** Static execution-latency decomposition used when no detailed sample is
    available (the <2% fallback): loads are assumed to hit. *)
let default_exec_components (cfg : Config.t) (instr : Isa.instr) =
  let cls = Isa.class_of instr in
  match cls with
  | Isa.Mem_load -> [ (Category.Dl1, cfg.dl1_lat) ]
  | Isa.Mem_store | Isa.Short_alu | Isa.Ctrl | Isa.Nop_class ->
    [ (Category.Shalu, Config.exec_latency cfg cls) ]
  | Isa.Int_mul | Isa.Int_div | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div ->
    [ (Category.Lgalu, Config.exec_latency cfg cls) ]

(** Decompose a measured load latency into dl1-hit and miss components. *)
let measured_exec_components (cfg : Config.t) (instr : Isa.instr) ~exec_lat =
  let cls = Isa.class_of instr in
  match cls with
  | Isa.Mem_load ->
    let hit = min exec_lat cfg.dl1_lat in
    let miss = max 0 (exec_lat - cfg.dl1_lat) in
    [ (Category.Dl1, hit); (Category.Dmiss, miss) ]
  | Isa.Mem_store | Isa.Short_alu | Isa.Ctrl | Isa.Nop_class ->
    [ (Category.Shalu, exec_lat) ]
  | Isa.Int_mul | Isa.Int_div | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div ->
    [ (Category.Lgalu, exec_lat) ]

(** Select a detailed sample whose context bits closely match the signature
    window around position [k].

    Rather than a deterministic argmax, we draw uniformly among the samples
    within [slack] of the best score.  Rare dynamic behaviours (e.g., the
    mispredicted occurrences of a branch) often have contexts
    indistinguishable from the common case; an argmax would then always
    return the same "modal" sample and systematically under-represent the
    rare behaviour, while drawing from the near-best set reproduces the
    conditional frequency of each behaviour given the context. *)
let best_sample (db : Sampler.db) ~prng ~context ~(sig_bits : int array) ~k pc :
    Sampler.detailed_sample option =
  match Sampler.lookup db pc with
  | [] -> None
  | samples ->
    let n = Array.length sig_bits in
    let window =
      Array.init ((2 * context) + 1) (fun o ->
          let j = k - context + o in
          if j >= 0 && j < n then sig_bits.(j) else 0)
    in
    let slack = 4 in
    let scored =
      List.map
        (fun s -> (Signature.similarity_centered s.Sampler.context_bits window, s))
        samples
    in
    let best = List.fold_left (fun m (sc, _) -> max m sc) min_int scored in
    let near = List.filter_map (fun (sc, s) -> if sc >= best - slack then Some s else None) scored in
    Some (Prng.choose prng (Array.of_list near))

(** Build one graph fragment from a signature sample.  [context] must match
    the sampler's context width. *)
let fragment_of_signature ?(seed = 0x7a11) (cfg : Config.t)
    (program : Program.t) (db : Sampler.db) ~context
    (ss : Sampler.signature_sample) : outcome =
  let prng = Prng.create seed in
  let len = Array.length ss.sig_bits in
  let infos = Array.make len None in
  let static_ixs = Array.make len 0 in
  let last_writer = Array.make Isa.num_regs (-1) in
  let call_stack = ref [] in
  let matched = ref 0 and defaulted = ref 0 in
  let code_len = Program.length program in
  let rec walk k cur_ix =
    if k >= len then None
    else if cur_ix < 0 || cur_ix >= code_len then Some (Bad_pc, k)
    else begin
      let instr = Program.fetch program cur_ix in
      let pc = Isa.pc_of_index cur_ix in
      let bits_k = ss.sig_bits.(k) in
      (* consistency check: bit 1 set requires a load, store or branch *)
      if
        Signature.bit1 bits_k
        && not (Isa.is_mem instr || Isa.is_branch instr)
      then Some (Inconsistent_bits, k)
      else begin
        let sample = best_sample db ~prng ~context ~sig_bits:ss.sig_bits ~k pc in
        (match sample with Some _ -> incr matched | None -> incr defaulted);
        (* register dependences: static scan along the inferred path *)
        let reg_producers =
          List.filter_map
            (fun r ->
              let w = last_writer.(r) in
              if w >= 0 then Some w else None)
            (Isa.sources instr)
        in
        let info : Build.instr_info =
          match sample with
          | Some s ->
            {
              reg_producers;
              mem_producer =
                Option.bind s.mem_dep_dist (fun d ->
                    if k - d >= 0 then Some (k - d) else None);
              share_src =
                Option.bind s.share_dist (fun d ->
                    if k - d >= 0 then Some (k - d) else None);
              exec_base = 0;
              exec_components =
                measured_exec_components cfg instr ~exec_lat:s.exec_lat;
              imiss_delay = s.imiss_delay;
              fu_wait = s.fu_wait;
              store_wait = s.store_wait;
              mispredict = s.mispredict;
              taken_branch = Isa.is_branch instr && Signature.bit1 bits_k;
            }
          | None ->
            {
              reg_producers;
              mem_producer = None;
              share_src = None;
              exec_base = 0;
              exec_components = default_exec_components cfg instr;
              imiss_delay = 0;
              fu_wait = 0;
              store_wait = 0;
              mispredict = false;
              taken_branch = Isa.is_branch instr && Signature.bit1 bits_k;
            }
        in
        infos.(k) <- Some info;
        static_ixs.(k) <- cur_ix;
        (match Isa.dest instr with
         | Some rd -> last_writer.(rd) <- k
         | None -> ());
        (* infer the next PC (step 2d of the algorithm) *)
        match instr with
        | Isa.Branch { target; _ } ->
          let taken = Signature.bit1 bits_k in
          walk (k + 1) (if taken then target else cur_ix + 1)
        | Isa.Jump { target } -> walk (k + 1) target
        | Isa.Call { target } ->
          call_stack := (cur_ix + 1) :: !call_stack;
          walk (k + 1) target
        | Isa.Ret -> begin
          match !call_stack with
          | ret_ix :: rest ->
            call_stack := rest;
            walk (k + 1) ret_ix
          | [] -> begin
            match Option.bind sample (fun s -> s.indirect_target) with
            | Some t -> walk (k + 1) (Isa.index_of_pc t)
            | None -> Some (Missing_indirect_target, k)
          end
        end
        | Isa.Jump_reg _ -> begin
          match Option.bind sample (fun s -> s.indirect_target) with
          | Some t -> walk (k + 1) (Isa.index_of_pc t)
          | None -> Some (Missing_indirect_target, k)
        end
        | Isa.Halt -> Some (Bad_pc, k)
        | _ -> walk (k + 1) (cur_ix + 1)
      end
    end
  in
  match walk 0 (Isa.index_of_pc ss.start_pc) with
  | Some (reason, k) -> Aborted (reason, k)
  | None ->
    let infos = Array.map Option.get infos in
    Built { infos; static_ixs; matched = !matched; defaulted = !defaulted }
