(** Signature bits (Table 5 of the paper).

    Two bits per dynamic instruction identify a microexecution path:

    - bit 1: set if the instruction is (1) a taken branch or (2) a load or
      store; reset to 0 if the access misses in the L2 D-cache.
    - bit 2: set if the instruction suffers (1) an L1 or L2 I-cache miss,
      (2) an L1 or L2 D-cache miss, or (3) a TLB miss.

    The bits are cheap to collect (they indicate stalls, off the critical
    circuit paths) yet, combined with the start PC, identify hot
    microexecution paths with high probability. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Events = Icost_uarch.Events

(** Encode the two signature bits for one instruction: bit 1 is the low bit,
    bit 2 the high bit, giving values 0..3. *)
let bits (d : Trace.dyn) (e : Events.evt) : int =
  let bit1 =
    let raw = (Isa.is_branch d.instr && d.taken) || Isa.is_mem d.instr in
    raw && not e.dl2_miss
  in
  let bit2 =
    e.il1_miss || e.il2_miss || e.dl1_miss || e.dl2_miss || e.itlb_miss
    || e.dtlb_miss
  in
  (if bit1 then 1 else 0) lor if bit2 then 2 else 0

let bit1 v = v land 1 = 1
let bit2 v = v land 2 = 2

(** Hamming similarity between two bit vectors (higher = closer match);
    counts identical positions over the overlap. *)
let similarity (a : int array) (b : int array) : int =
  let n = min (Array.length a) (Array.length b) in
  let s = ref 0 in
  for i = 0 to n - 1 do
    (* two bits per entry: count each matching bit *)
    let x = a.(i) lxor b.(i) in
    if x land 1 = 0 then incr s;
    if x land 2 = 0 then incr s
  done;
  !s

(** Center-weighted similarity for matching a detailed sample's context
    against a signature window: the sampled instruction's own bits (the
    center position) are the strongest signal that the sample comes from
    the same microexecution situation (e.g., the same branch direction or
    the same hit/miss behaviour), so they count [center_weight] times. *)
let center_weight = 8

let similarity_centered (a : int array) (b : int array) : int =
  let n = min (Array.length a) (Array.length b) in
  let center = n / 2 in
  let s = ref 0 in
  for i = 0 to n - 1 do
    let w = if i = center then center_weight else 1 in
    let x = a.(i) lxor b.(i) in
    if x land 1 = 0 then s := !s + w;
    if x land 2 = 0 then s := !s + w
  done;
  !s
