(** Signature bits (Table 5): two bits per dynamic instruction identifying
    a microexecution path.

    - bit 1: set for a taken branch or a load/store; reset if the access
      misses in the L2 D-cache;
    - bit 2: set on any L1/L2 I- or D-cache miss or TLB miss. *)

module Trace = Icost_isa.Trace
module Events = Icost_uarch.Events

val bits : Trace.dyn -> Events.evt -> int
(** Encoded bits: bit 1 is the low bit, bit 2 the high bit (values 0-3). *)

val bit1 : int -> bool
val bit2 : int -> bool

val similarity : int array -> int array -> int
(** Matching bits over the overlap of two bit vectors. *)

val center_weight : int

val similarity_centered : int array -> int array -> int
(** Like {!similarity} but the center position (the sampled instruction's
    own bits) counts {!center_weight} times — it is the strongest signal
    that a detailed sample comes from the same microexecution situation. *)
