(** End-to-end shotgun profiling (Section 5): collect samples, reconstruct
    graph fragments, and expose the aggregate as a cost oracle that drops
    in for the simulator-based oracles. *)

module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace
module Program = Icost_isa.Program
module Ooo = Icost_sim.Ooo
module Graph = Icost_depgraph.Graph

type stats = {
  num_signatures : int;
  num_detailed : int;
  fragments_built : int;
  fragments_aborted : int;
  aborted_by : (Construct.abort_reason * int) list;
  match_rate : float;  (** fraction of instructions with a detailed sample *)
  instructions_covered : int;
}

type t = {
  graphs : Graph.t array;  (** one per successfully built fragment *)
  stats : stats;
}

val profile :
  ?opts:Sampler.opts ->
  Config.t ->
  Program.t ->
  Trace.t ->
  Events.evt array ->
  Ooo.result ->
  t
(** Run the hardware monitors over an execution and reconstruct fragments;
    [opts] controls sampling rates. *)

val oracle : t -> Icost_core.Cost.oracle
(** Summed critical-path length of all fragments under an idealization.
    Breakdowns are ratios, so uniform fragment sampling makes the estimate
    statistically representative. *)
