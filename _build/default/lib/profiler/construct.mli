(** Post-mortem software graph construction (Figure 5a of the paper):
    walk the binary from a signature sample's start PC, infer each next PC
    from signature bits / the call stack / sampled indirect targets, match
    detailed samples by signature context for dynamic latencies, scan
    register dependences statically, and abort on impossible signature
    settings. *)

module Config = Icost_uarch.Config
module Program = Icost_isa.Program
module Build = Icost_depgraph.Build

type abort_reason =
  | Bad_pc  (** walked outside the binary *)
  | Inconsistent_bits  (** signature bit impossible for the decoded instruction *)
  | Missing_indirect_target
      (** indirect jump with no detailed sample to supply a target *)

val abort_reason_name : abort_reason -> string

type fragment = {
  infos : Build.instr_info array;
  static_ixs : int array;  (** inferred static index per instruction *)
  matched : int;  (** instructions with a matching detailed sample *)
  defaulted : int;  (** instructions that fell back to static defaults *)
}

type outcome =
  | Built of fragment
  | Aborted of abort_reason * int  (** reason and progress made *)

val default_exec_components :
  Config.t -> Icost_isa.Isa.instr -> (Icost_core.Category.t * int) list
(** Static fallback latency decomposition (loads assumed to hit). *)

val measured_exec_components :
  Config.t -> Icost_isa.Isa.instr -> exec_lat:int -> (Icost_core.Category.t * int) list
(** Decompose a measured latency into category components. *)

val best_sample :
  Sampler.db ->
  prng:Icost_util.Prng.t ->
  context:int ->
  sig_bits:int array ->
  k:int ->
  int ->
  Sampler.detailed_sample option
(** Pick a detailed sample for position [k]: drawn uniformly among the
    samples within a small slack of the best (center-weighted) context
    match, so rare behaviours keep their conditional frequency. *)

val fragment_of_signature :
  ?seed:int ->
  Config.t ->
  Program.t ->
  Sampler.db ->
  context:int ->
  Sampler.signature_sample ->
  outcome
(** Build one graph fragment from a signature sample.  [context] must
    match the sampler's context width. *)
