lib/experiments/runner.ml: Icost_core Icost_depgraph Icost_isa Icost_profiler Icost_sim Icost_uarch Icost_workloads List Printf
