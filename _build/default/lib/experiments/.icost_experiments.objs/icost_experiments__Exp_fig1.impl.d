lib/experiments/exp_fig1.ml: Buffer Icost_core Icost_report Icost_uarch List Printf Runner
