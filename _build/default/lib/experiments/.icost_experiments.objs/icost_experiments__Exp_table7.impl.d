lib/experiments/exp_table7.ml: Buffer Float Icost_core Icost_report Icost_uarch Icost_util List Option Printf Runner
