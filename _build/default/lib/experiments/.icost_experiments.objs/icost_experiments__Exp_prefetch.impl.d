lib/experiments/exp_prefetch.ml: Array Hashtbl Icost_core Icost_depgraph Icost_isa Icost_report Icost_sim Icost_uarch Icost_workloads List Printf Runner
