lib/experiments/exp_table4.ml: Float Icost_core Icost_report Icost_uarch List Printf Runner
