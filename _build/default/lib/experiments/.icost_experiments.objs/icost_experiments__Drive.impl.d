lib/experiments/drive.ml: Buffer Exp_fig1 Exp_fig3 Exp_prefetch Exp_profiler_stats Exp_table4 Exp_table7 Float Icost_core Icost_uarch Icost_util List Printf Runner String
