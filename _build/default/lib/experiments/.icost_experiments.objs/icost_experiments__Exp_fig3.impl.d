lib/experiments/exp_fig3.ml: Buffer Icost_core Icost_report Icost_sim Icost_uarch Icost_util List Printf Runner
