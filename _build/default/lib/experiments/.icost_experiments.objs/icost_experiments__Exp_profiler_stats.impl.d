lib/experiments/exp_profiler_stats.ml: Float Icost_core Icost_profiler Icost_report Icost_uarch Icost_util List Printf Runner String
