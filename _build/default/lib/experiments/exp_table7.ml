(** Table 7: validating the profiler (and the graph model) against multiple
    idealized simulations (Section 6).

    For each benchmark the same Table 4a breakdown is computed three ways:

    - [multisim]: one idealized simulation per breakdown entry (ground truth);
    - [fullgraph]: the dependence graph built during simulation;
    - [profiler]: graph fragments reconstructed by the shotgun profiler.

    As in the paper, fullgraph and profiler columns are reported as
    *absolute error* against multisim (in percentage points of total
    execution time), and the summary errors replicate the paper's two
    metrics: per-category error of the profiler against the full graph,
    abs(profiler - fullgraph) / (multisim + fullgraph), and against
    multisim, abs(profiler - multisim) / multisim, both averaged over
    categories whose multisim share is at least 5%. *)

module Category = Icost_core.Category
module Breakdown = Icost_core.Breakdown
module Config = Icost_uarch.Config
module Table = Icost_report.Table

type bench_rows = {
  bench : string;
  rows : (Breakdown.row_kind * float * float * float) list;
      (** (row, multisim %, fullgraph %, profiler %) *)
}

type result = {
  benches : bench_rows list;
  err_vs_graph : (string * float) list;  (** per-bench mean % error *)
  err_vs_multisim : (string * float) list;
}

let default_benches = [ "gcc"; "parser"; "twolf" ]

let compute ?(cfg = Config.loop_dl1) ?(focus = Category.Dl1) ?profiler_opts
    (prepared : Runner.prepared list) : result =
  let benches =
    List.map
      (fun (p : Runner.prepared) ->
        let bd kind =
          let oracle = Runner.oracle_of_kind ?opts:profiler_opts kind cfg p in
          Breakdown.focus ~oracle ~focus_cat:focus
        in
        let m = bd Runner.Multisim in
        let g = bd Runner.Fullgraph in
        let f = bd Runner.Profiler in
        let rows =
          List.filter_map
            (fun (row : Breakdown.row) ->
              match row.kind with
              | Breakdown.Other -> None
              | kind ->
                let v b = Option.value ~default:0. (Breakdown.percent_of b kind) in
                Some (kind, v m, v g, v f))
            m.rows
        in
        { bench = p.name; rows })
      prepared
  in
  (* paper's error metrics, averaged over categories with multisim >= 5% *)
  let errors f =
    List.map
      (fun b ->
        let es =
          List.filter_map
            (fun (_, m, g, p) -> if Float.abs m >= 5. then Some (f m g p) else None)
            b.rows
        in
        (b.bench, 100. *. Icost_util.Stats.mean es))
      benches
  in
  let err_vs_graph =
    errors (fun m g p ->
        if Float.abs (m +. g) < 1e-9 then 0. else Float.abs (p -. g) /. Float.abs (m +. g))
  in
  let err_vs_multisim =
    errors (fun m _ p -> if Float.abs m < 1e-9 then 0. else Float.abs (p -. m) /. Float.abs m)
  in
  { benches; err_vs_graph; err_vs_multisim }

let render (r : result) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Table 7: profiler accuracy vs full graph vs multiple simulations\n";
  Buffer.add_string buf
    "(multisim in percent of CPI; fullgraph and profiler as signed error vs multisim)\n\n";
  List.iter
    (fun b ->
      let t =
        Table.create ~headers:[ b.bench; "multisim"; "fullgraph"; "profiler" ]
      in
      List.iter
        (fun (kind, m, g, p) ->
          let label =
            match kind with
            | Breakdown.Base c -> Category.name c
            | Breakdown.Pair (a, c) -> Category.name a ^ "+" ^ Category.name c
            | Breakdown.Other -> "Other"
          in
          Table.add_row t
            [ label; Table.cell_f m; Table.cell_f ~signed:true (g -. m);
              Table.cell_f ~signed:true (p -. m) ])
        b.rows;
      Buffer.add_string buf (Table.render t);
      Buffer.add_char buf '\n')
    r.benches;
  Buffer.add_string buf "Average per-category error (categories with multisim >= 5%):\n";
  let t = Table.create ~headers:[ "bench"; "profiler vs fullgraph"; "profiler vs multisim" ] in
  List.iter2
    (fun (bench, eg) (_, em) ->
      Table.add_row t [ bench; Printf.sprintf "%.0f%%" eg; Printf.sprintf "%.0f%%" em ])
    r.err_vs_graph r.err_vs_multisim;
  Buffer.add_string buf (Table.render t);
  let overall l = Icost_util.Stats.mean (List.map snd l) in
  Buffer.add_string buf
    (Printf.sprintf "Overall: profiler vs fullgraph %.0f%%, profiler vs multisim %.0f%%\n"
       (overall r.err_vs_graph) (overall r.err_vs_multisim));
  Buffer.contents buf
