(** Section 5 internals: shotgun-profiler operating statistics.

    The paper reports that detailed samples are found for a looked-up PC
    more than 98% of the time, that inferred control paths are consistent
    60-99% of the time, and that 95-100% of errant graph walks are caught
    by the impossible-signature check.  This experiment reports the
    equivalent statistics for our profiler, plus an ablation over the
    sampling parameters (signature length, context width, detailed-sample
    density). *)

module Config = Icost_uarch.Config
module Sampler = Icost_profiler.Sampler
module Profile = Icost_profiler.Profile
module Construct = Icost_profiler.Construct
module Table = Icost_report.Table

type bench_stats = { bench : string; stats : Profile.stats }

let compute ?(cfg = Config.default) ?opts (prepared : Runner.prepared list) :
    bench_stats list =
  List.map
    (fun (p : Runner.prepared) ->
      let prof = Runner.profiler_run ?opts cfg p in
      { bench = p.name; stats = prof.Profile.stats })
    prepared

let render (rows : bench_stats list) : string =
  let t =
    Table.create
      ~headers:
        [ "bench"; "signatures"; "detailed"; "built"; "aborted"; "match%"; "reasons" ]
  in
  List.iter
    (fun { bench; stats } ->
      let reasons =
        String.concat ","
          (List.map
             (fun (r, c) -> Printf.sprintf "%s:%d" (Construct.abort_reason_name r) c)
             stats.aborted_by)
      in
      Table.add_row t
        [ bench; string_of_int stats.num_signatures; string_of_int stats.num_detailed;
          string_of_int stats.fragments_built; string_of_int stats.fragments_aborted;
          Printf.sprintf "%.1f" (100. *. stats.match_rate);
          (if reasons = "" then "-" else reasons) ])
    rows;
  "Shotgun profiler operating statistics (Section 5):\n" ^ Table.render t

(** Ablation: error of the profiler breakdown against the full graph as the
    sampling parameters vary.  Returns (label, mean |error| in percentage
    points over base categories, averaged over benchmarks). *)
let ablation ?(cfg = Config.loop_dl1) (prepared : Runner.prepared list) :
    (string * float) list =
  let module Cat = Icost_core.Category in
  let module B = Icost_core.Breakdown in
  let variants =
    [
      ("default (sig=1000 ctx=10 det=1/13)", Sampler.default_opts);
      ("short signatures (sig=250)", { Sampler.default_opts with sig_len = 250; sig_period = 400 });
      ("narrow context (ctx=2)", { Sampler.default_opts with context = 2 });
      ("sparse detailed (det=1/53)", { Sampler.default_opts with det_period = 53 });
      ("dense detailed (det=1/5)", { Sampler.default_opts with det_period = 5 });
    ]
  in
  List.map
    (fun (label, opts) ->
      let errs =
        List.concat_map
          (fun (p : Runner.prepared) ->
            let g = B.focus ~oracle:(Runner.graph_oracle cfg p) ~focus_cat:Cat.Dl1 in
            let f =
              B.focus ~oracle:(Runner.profiler_oracle ~opts cfg p) ~focus_cat:Cat.Dl1
            in
            List.filter_map
              (fun c ->
                let kind = B.Base c in
                match (B.percent_of g kind, B.percent_of f kind) with
                | Some a, Some b -> Some (Float.abs (a -. b))
                | _ -> None)
              Cat.all)
          prepared
      in
      (label, Icost_util.Stats.mean errs))
    variants

let render_ablation (rows : (string * float) list) : string =
  let t = Table.create ~headers:[ "sampling variant"; "mean |error| (pct points)" ] in
  List.iter (fun (l, e) -> Table.add_row t [ l; Printf.sprintf "%.2f" e ]) rows;
  "Profiler sampling ablation (error vs fullgraph, base categories):\n"
  ^ Table.render t
