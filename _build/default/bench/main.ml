(* Bench harness.

   Running with no arguments regenerates every table and figure of the
   paper (Figure 1, Tables 4a/4b/4c, Figure 3 + the Section 4.3 sensitivity
   comparison, Table 7, the Section 5 profiler statistics and the sampling
   ablation), printing PASS/FAIL shape checks against the paper's
   qualitative findings, and then runs Bechamel micro-benchmarks of the
   analysis engines.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- <id> ...     -- selected experiments
                                                 (fig1 table4a table4b table4c
                                                  fig3 table7 profstats ablation)
     dune exec bench/main.exe -- micro        -- only the micro-benchmarks
*)

module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Workload = Icost_workloads.Workload
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Profile = Icost_profiler.Profile

(* ------------------------------------------------------------------ *)
(* paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let settings = Runner.default_settings in
  let reports =
    match ids with
    | [] -> Drive.all_reports ~settings ()
    | ids ->
      let prepared = Runner.prepare_all settings in
      let t7 =
        List.filter
          (fun (p : Runner.prepared) ->
            List.mem p.name Icost_experiments.Exp_table7.default_benches)
          prepared
      in
      List.map
        (function
          | "fig1" -> Drive.fig1 prepared
          | "table4a" -> Drive.table4a prepared
          | "table4b" -> Drive.table4b prepared
          | "table4c" -> Drive.table4c prepared
          | "fig3" -> Drive.fig3 prepared
          | "table7" -> Drive.table7 t7
          | "profstats" -> Drive.profstats t7
          | "ablation" -> Drive.ablation t7
          | "prefetch" -> Drive.prefetch ~settings ()
          | "conclusion" -> Drive.conclusion ~settings ()
          | "advisor" -> Drive.advisor prepared
          | other -> failwith (Printf.sprintf "unknown experiment %S" other))
        ids
  in
  List.iter Drive.print_report reports;
  let checks = List.concat_map (fun (r : Drive.report) -> r.checks) reports in
  let failed = List.filter (fun (_, ok) -> not ok) checks in
  Printf.printf "shape checks: %d/%d passed\n"
    (List.length checks - List.length failed)
    (List.length checks);
  List.iter (fun (d, _) -> Printf.printf "  FAILED: %s\n" d) failed

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the analysis machinery                 *)
(* ------------------------------------------------------------------ *)

open Bechamel
open Toolkit

let micro_tests () =
  (* one mid-size prepared workload shared by all engine benchmarks *)
  let settings =
    { Runner.default_settings with benches = [ "gcc" ]; measure = 10_000 }
  in
  let p = List.hd (Runner.prepare_all settings) in
  let cfg = Config.loop_dl1 in
  let result = Runner.baseline_run cfg p in
  let graph = Build.of_sim cfg p.trace p.evts result in
  let dl1_win = Category.Set.pair Category.Dl1 Category.Win in
  Test.make_grouped ~name:"engines"
    [
      Test.make ~name:"sim-10k-instrs"
        (Staged.stage (fun () -> ignore (Ooo.cycles cfg p.trace p.evts)));
      Test.make ~name:"graph-build-10k"
        (Staged.stage (fun () -> ignore (Build.of_sim cfg p.trace p.evts result)));
      Test.make ~name:"graph-eval-baseline"
        (Staged.stage (fun () -> ignore (Graph.critical_length graph)));
      Test.make ~name:"graph-eval-idealized"
        (Staged.stage (fun () -> ignore (Graph.critical_length ~ideal:dl1_win graph)));
      Test.make ~name:"icost-pair-graph-oracle"
        (Staged.stage (fun () ->
             let oracle = Build.oracle graph in
             ignore (Cost.icost_pair oracle Category.Dl1 Category.Win)));
      Test.make ~name:"profiler-end-to-end"
        (Staged.stage (fun () ->
             ignore (Profile.profile cfg p.program p.trace p.evts result)));
    ]

let run_micro () =
  let tests = micro_tests () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_b = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg_b instances tests in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  let results = Analyze.merge ols instances results in
  Printf.printf "\nmicro-benchmarks (time per call):\n";
  Hashtbl.iter
    (fun _clock tbl ->
      let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) tbl [] in
      List.sort (fun (a, _) (b, _) -> compare a b) rows
      |> List.iter (fun (name, r) ->
             match Analyze.OLS.estimates r with
             | Some [ est ] -> Printf.printf "  %-36s %10.3f ms/run\n" name (est /. 1e6)
             | _ -> Printf.printf "  %-36s (no estimate)\n" name))
    results

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "micro" ] -> run_micro ()
  | [] ->
    run_experiments [];
    run_micro ()
  | ids ->
    run_experiments (List.filter (fun i -> i <> "micro") ids);
    if List.mem "micro" ids then run_micro ()
