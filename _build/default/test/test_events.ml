(* Tests for event annotation: miss classification, line sharing,
   misprediction flags, slicing. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events

let run build =
  let a = Asm.create ~name:"t" () in
  build a;
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 10_000 }
      (Asm.assemble a)
  in
  let evts, summary = Events.annotate Config.default trace in
  (trace, evts, summary)

let test_load_misses_once () =
  let _, evts, summary =
    run (fun a ->
        Asm.li a ~rd:1 0x4000;
        Asm.load a ~rd:2 ~base:1 ~offset:0;
        Asm.load a ~rd:3 ~base:1 ~offset:8;
        (* same line: hit *)
        Asm.load a ~rd:4 ~base:1 ~offset:0;
        (* hit *)
        Asm.halt a)
  in
  Alcotest.(check int) "one dl1 miss" 1 summary.dl1_misses;
  Alcotest.(check bool) "first load missed" true evts.(1).dl1_miss;
  Alcotest.(check bool) "second load hit" false evts.(2).dl1_miss

let test_line_sharing () =
  let _, evts, _ =
    run (fun a ->
        Asm.li a ~rd:1 0x4000;
        Asm.load a ~rd:2 ~base:1 ~offset:0;
        (* seq 1: misses line *)
        Asm.load a ~rd:3 ~base:1 ~offset:16;
        (* seq 2: same line -> shares *)
        Asm.halt a)
  in
  Alcotest.(check (option int)) "second load shares the miss" (Some 1)
    evts.(2).share_src;
  Alcotest.(check (option int)) "missing load itself has no source" None
    evts.(1).share_src

let test_store_not_sharing () =
  let _, evts, _ =
    run (fun a ->
        Asm.li a ~rd:1 0x4000;
        Asm.load a ~rd:2 ~base:1 ~offset:0;
        Asm.store a ~rs:2 ~base:1 ~offset:8;
        Asm.halt a)
  in
  Alcotest.(check (option int)) "stores never get PP sources" None
    evts.(2).share_src

let test_mispredict_flags () =
  let trace, evts, summary =
    run (fun a ->
        (* a loop whose exit branch mispredicts once at the end *)
        Asm.li a ~rd:1 200;
        Asm.label a "top";
        Asm.addi a ~rd:1 ~rs1:1 (-1);
        Asm.bne a ~rs1:1 ~rs2:0 "top";
        Asm.halt a)
  in
  Alcotest.(check bool) "some branch behaviour recorded" true
    (summary.cond_branches > 100);
  (* the final not-taken occurrence should be the mispredicted one *)
  let last_branch = Trace.length trace - 1 in
  Alcotest.(check bool) "exit mispredicted" true evts.(last_branch).mispredict;
  Alcotest.(check bool) "steady-state predicted" false evts.(last_branch - 2).mispredict

let test_icache_small_code_hits () =
  let _, _, summary =
    run (fun a ->
        Asm.li a ~rd:1 500;
        Asm.label a "top";
        Asm.addi a ~rd:1 ~rs1:1 (-1);
        Asm.bne a ~rs1:1 ~rs2:0 "top";
        Asm.halt a)
  in
  (* the loop occupies one I-cache line: one cold miss *)
  Alcotest.(check int) "cold I-miss only" 1 summary.il1_misses

let test_slice_share_src () =
  let evts =
    [|
      { Events.no_evt with line = 1 };
      { Events.no_evt with share_src = Some 0 };
      { Events.no_evt with share_src = Some 1 };
    |]
  in
  let s = Events.slice evts ~start:1 ~len:2 in
  Alcotest.(check (option int)) "out-of-window source dropped" None s.(0).share_src;
  Alcotest.(check (option int)) "in-window source renumbered" (Some 0) s.(1).share_src

let test_determinism () =
  let w = Icost_workloads.Workload.find_exn "twolf" in
  let t = Interp.run ~config:{ Interp.default_config with max_instrs = 5000 } (w.build ()) in
  let e1, s1 = Events.annotate Config.default t in
  let e2, s2 = Events.annotate Config.default t in
  Alcotest.(check int) "same dl1 misses" s1.dl1_misses s2.dl1_misses;
  Alcotest.(check int) "same mispredicts" s1.mispredicts s2.mispredicts;
  Alcotest.(check bool) "identical annotations" true (e1 = e2)

let prop_summary_consistent =
  QCheck.Test.make ~name:"summary counts match per-instruction flags" ~count:6
    (QCheck.make (QCheck.Gen.oneofl [ "gzip"; "vortex"; "bzip2" ]))
    (fun name ->
      let w = Icost_workloads.Workload.find_exn name in
      let t =
        Interp.run ~config:{ Interp.default_config with max_instrs = 4000 } (w.build ())
      in
      let evts, s = Events.annotate Config.default t in
      let count f = Array.fold_left (fun a e -> if f e then a + 1 else a) 0 evts in
      count (fun (e : Events.evt) -> e.dl1_miss) = s.dl1_misses
      && count (fun e -> e.mispredict) = s.mispredicts
      && count (fun e -> e.il1_miss) = s.il1_misses)

let suite =
  ( "events",
    [
      Alcotest.test_case "load miss classification" `Quick test_load_misses_once;
      Alcotest.test_case "cache-line sharing" `Quick test_line_sharing;
      Alcotest.test_case "stores don't share" `Quick test_store_not_sharing;
      Alcotest.test_case "mispredict flags" `Quick test_mispredict_flags;
      Alcotest.test_case "icache on tiny code" `Quick test_icache_small_code_hits;
      Alcotest.test_case "slice share_src" `Quick test_slice_share_src;
      Alcotest.test_case "determinism" `Quick test_determinism;
      QCheck_alcotest.to_alcotest prop_summary_consistent;
    ] )
