(* Tests for the set-associative cache and TLB model. *)

module Cache = Icost_uarch.Cache

let test_cold_miss_then_hit () =
  let c = Cache.create ~name:"t" ~lines:8 ~ways:2 ~line_size:64 in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x1000);
  Alcotest.(check bool) "then hit" true (Cache.access c 0x1000);
  Alcotest.(check bool) "same line hits" true (Cache.access c 0x103F);
  Alcotest.(check bool) "next line misses" false (Cache.access c 0x1040)

let test_lru_eviction () =
  (* 2-way, 4 sets; addresses mapping to set 0: line numbers 0, 4, 8, ... *)
  let c = Cache.create ~name:"t" ~lines:8 ~ways:2 ~line_size:64 in
  let addr line = line * 64 in
  ignore (Cache.access c (addr 0));
  ignore (Cache.access c (addr 4));
  (* set 0 now holds lines 0 and 4; touch 0 to make 4 the LRU *)
  ignore (Cache.access c (addr 0));
  ignore (Cache.access c (addr 8));
  (* evicts 4 *)
  Alcotest.(check bool) "0 survives" true (Cache.access c (addr 0));
  Alcotest.(check bool) "8 present" true (Cache.access c (addr 8));
  Alcotest.(check bool) "4 was evicted" false (Cache.access c (addr 4))

let test_probe_no_update () =
  let c = Cache.create ~name:"t" ~lines:4 ~ways:1 ~line_size:64 in
  Alcotest.(check bool) "probe cold" false (Cache.probe c 0x40);
  Alcotest.(check bool) "probe does not fill" false (Cache.probe c 0x40);
  ignore (Cache.access c 0x40);
  Alcotest.(check bool) "probe after fill" true (Cache.probe c 0x40);
  let accesses, misses = Cache.stats c in
  Alcotest.(check (pair int int)) "probe not counted" (1, 1) (accesses, misses)

let test_fully_associative () =
  (* TLB-style: ways = lines *)
  let c = Cache.create ~name:"tlb" ~lines:4 ~ways:4 ~line_size:4096 in
  List.iter (fun p -> ignore (Cache.access c (p * 4096))) [ 0; 1; 2; 3 ];
  Alcotest.(check bool) "all four resident" true
    (List.for_all (fun p -> Cache.probe c (p * 4096)) [ 0; 1; 2; 3 ]);
  ignore (Cache.access c (9 * 4096));
  (* LRU (page 0) evicted *)
  Alcotest.(check bool) "page 0 evicted" false (Cache.probe c 0);
  Alcotest.(check bool) "page 1 resident" true (Cache.probe c 4096)

let test_create_validation () =
  Alcotest.check_raises "lines % ways"
    (Invalid_argument "Cache.create: lines not divisible by ways") (fun () ->
      ignore (Cache.create ~name:"x" ~lines:6 ~ways:4 ~line_size:64));
  Alcotest.check_raises "pow2 sets"
    (Invalid_argument "Cache.create: set count must be a power of two") (fun () ->
      ignore (Cache.create ~name:"x" ~lines:12 ~ways:2 ~line_size:64))

let test_miss_rate () =
  let c = Cache.create ~name:"t" ~lines:64 ~ways:2 ~line_size:64 in
  for i = 0 to 9 do
    ignore (Cache.access c (i * 64))
  done;
  for i = 0 to 9 do
    ignore (Cache.access c (i * 64))
  done;
  Alcotest.(check (float 1e-9)) "10/20 missed" 0.5 (Cache.miss_rate c);
  Cache.reset_stats c;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Cache.stats c)

let prop_misses_bounded =
  QCheck.Test.make ~name:"misses <= accesses, hits monotone on re-access" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 10_000))
    (fun addrs ->
      let c = Cache.create ~name:"q" ~lines:16 ~ways:4 ~line_size:64 in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let accesses, misses = Cache.stats c in
      accesses = List.length addrs && misses <= accesses)

let prop_working_set_fits =
  QCheck.Test.make ~name:"second pass over a fitting working set never misses"
    ~count:50
    QCheck.(int_bound 15)
    (fun n ->
      let c = Cache.create ~name:"q" ~lines:16 ~ways:16 ~line_size:64 in
      let lines = n + 1 in
      for i = 0 to lines - 1 do
        ignore (Cache.access c (i * 64))
      done;
      let all_hit = ref true in
      for i = 0 to lines - 1 do
        if not (Cache.access c (i * 64)) then all_hit := false
      done;
      !all_hit)

let suite =
  ( "cache",
    [
      Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "probe is read-only" `Quick test_probe_no_update;
      Alcotest.test_case "fully associative (TLB)" `Quick test_fully_associative;
      Alcotest.test_case "constructor validation" `Quick test_create_validation;
      Alcotest.test_case "miss rate accounting" `Quick test_miss_rate;
      QCheck_alcotest.to_alcotest prop_misses_bounded;
      QCheck_alcotest.to_alcotest prop_working_set_fits;
    ] )
