(* Tests for the reporting helpers: tables, charts, CSV. *)

module Table = Icost_report.Table
module Chart = Icost_report.Chart
module Csv = Icost_report.Csv

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "v1"; "v2" ] in
  Table.add_row t [ "alpha"; "1.0"; "2.5" ];
  Table.add_separator t;
  Table.add_row t [ "beta"; "10.0"; "-3.5" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (contains ~needle:"name" s);
  Alcotest.(check bool) "has rows" true (contains ~needle:"alpha" s && contains ~needle:"beta" s);
  (* alignment: all lines equal width modulo trailing content *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + sep + 2 rows + mid-sep" 5 (List.length lines)

let test_cell_formatting () =
  Alcotest.(check string) "plain" "3.5" (Table.cell_f 3.51);
  Alcotest.(check string) "signed positive" "+3.5" (Table.cell_f ~signed:true 3.51);
  Alcotest.(check string) "signed negative" "-3.5" (Table.cell_f ~signed:true (-3.51));
  Alcotest.(check string) "signed zero unsigned" "0.0" (Table.cell_f ~signed:true 0.0);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_stacked_bar () =
  let s =
    Chart.stacked_bar
      [ { Chart.label = "a"; value = 60. }; { label = "b"; value = 55. };
        { label = "c"; value = -15. } ]
  in
  Alcotest.(check bool) "above axis total" true (contains ~needle:"115.0" s);
  Alcotest.(check bool) "below axis total" true (contains ~needle:"-15.0" s);
  Alcotest.(check bool) "legend" true (contains ~needle:"a(60.0)" s)

let test_line_chart () =
  let s =
    Chart.line_chart ~x_label:"x" ~y_label:"y"
      [ { Chart.name = "s1"; points = [ (1., 1.); (2., 4.); (3., 9.) ] };
        { Chart.name = "s2"; points = [ (1., 2.); (2., 2.); (3., 2.) ] } ]
  in
  Alcotest.(check bool) "series legend" true (contains ~needle:"s1" s && contains ~needle:"s2" s);
  Alcotest.(check bool) "axis labels" true (contains ~needle:"(x)" s)

let test_line_chart_empty () =
  Alcotest.(check string) "empty chart" "(empty chart)\n"
    (Chart.line_chart ~x_label:"x" ~y_label:"y" [])

let test_csv () =
  let s = Csv.to_string [ [ "a"; "b,c"; "d\"e" ]; [ "1"; "2"; "3" ] ] in
  Alcotest.(check string) "escaping" "a,\"b,c\",\"d\"\"e\"\n1,2,3\n" s

let suite =
  ( "report",
    [
      Alcotest.test_case "table render" `Quick test_table_render;
      Alcotest.test_case "cell formatting" `Quick test_cell_formatting;
      Alcotest.test_case "stacked bar" `Quick test_stacked_bar;
      Alcotest.test_case "line chart" `Quick test_line_chart;
      Alcotest.test_case "empty chart" `Quick test_line_chart_empty;
      Alcotest.test_case "csv escaping" `Quick test_csv;
    ] )
