(* Tests for Icost_isa.Isa: operand extraction, classification, PC codec. *)

module Isa = Icost_isa.Isa

let sources_of i = List.sort compare (Isa.sources i)

let test_sources () =
  Alcotest.(check (list int)) "alu reg/reg" [ 1; 2 ]
    (sources_of (Isa.Alu { op = Isa.Add; rd = 3; rs1 = 1; src2 = Reg 2 }));
  Alcotest.(check (list int)) "alu reg/imm" [ 1 ]
    (sources_of (Isa.Alu { op = Isa.Add; rd = 3; rs1 = 1; src2 = Imm 5 }));
  Alcotest.(check (list int)) "r0 never a source" []
    (sources_of (Isa.Alu { op = Isa.Add; rd = 3; rs1 = 0; src2 = Reg 0 }));
  Alcotest.(check (list int)) "load base" [ 4 ]
    (sources_of (Isa.Load { rd = 2; base = 4; offset = 8 }));
  Alcotest.(check (list int)) "store data+base" [ 2; 4 ]
    (sources_of (Isa.Store { rs = 2; base = 4; offset = 0 }));
  Alcotest.(check (list int)) "branch both regs" [ 1; 2 ]
    (sources_of (Isa.Branch { cond = Isa.Eq; rs1 = 1; rs2 = 2; target = 0 }));
  Alcotest.(check (list int)) "ret reads ra" [ Isa.reg_ra ] (sources_of Isa.Ret);
  Alcotest.(check (list int)) "jump_reg reads rs" [ 9 ]
    (sources_of (Isa.Jump_reg { rs = 9 }))

let test_dest () =
  let check name expected i =
    Alcotest.(check (option int)) name expected (Isa.dest i)
  in
  check "alu dest" (Some 3) (Isa.Alu { op = Isa.Sub; rd = 3; rs1 = 1; src2 = Imm 1 });
  check "alu dest r0 suppressed" None
    (Isa.Alu { op = Isa.Sub; rd = 0; rs1 = 1; src2 = Imm 1 });
  check "load dest" (Some 2) (Isa.Load { rd = 2; base = 1; offset = 0 });
  check "store no dest" None (Isa.Store { rs = 2; base = 1; offset = 0 });
  check "call writes ra" (Some Isa.reg_ra) (Isa.Call { target = 0 });
  check "halt no dest" None Isa.Halt

let test_class () =
  let check name expected i = Alcotest.(check bool) name true (Isa.class_of i = expected) in
  check "add is short" Isa.Short_alu (Isa.Alu { op = Isa.Add; rd = 1; rs1 = 1; src2 = Imm 1 });
  check "mul is int_mul" Isa.Int_mul (Isa.Alu { op = Isa.Mul; rd = 1; rs1 = 1; src2 = Imm 1 });
  check "div is int_div" Isa.Int_div (Isa.Alu { op = Isa.Div; rd = 1; rs1 = 1; src2 = Imm 1 });
  check "fadd" Isa.Fp_add (Isa.Fpu { op = Isa.Fadd; rd = 1; rs1 = 1; rs2 = 2 });
  check "fdiv" Isa.Fp_div (Isa.Fpu { op = Isa.Fdiv; rd = 1; rs1 = 1; rs2 = 2 });
  check "load" Isa.Mem_load (Isa.Load { rd = 1; base = 2; offset = 0 });
  check "branch is ctrl" Isa.Ctrl (Isa.Jump { target = 0 })

let test_predicates () =
  let mul = Isa.Alu { op = Isa.Mul; rd = 1; rs1 = 1; src2 = Imm 1 } in
  let add = Isa.Alu { op = Isa.Add; rd = 1; rs1 = 1; src2 = Imm 1 } in
  Alcotest.(check bool) "mul long" true (Isa.is_long_alu mul);
  Alcotest.(check bool) "add short" true (Isa.is_short_alu add);
  Alcotest.(check bool) "add not long" false (Isa.is_long_alu add);
  Alcotest.(check bool) "ret indirect" true (Isa.is_indirect Isa.Ret);
  Alcotest.(check bool) "jump direct" false (Isa.is_indirect (Isa.Jump { target = 1 }));
  Alcotest.(check bool) "branch is cond" true
    (Isa.is_cond_branch (Isa.Branch { cond = Isa.Lt; rs1 = 1; rs2 = 2; target = 0 }));
  Alcotest.(check bool) "jump not cond" false (Isa.is_cond_branch (Isa.Jump { target = 0 }))

let prop_pc_roundtrip =
  QCheck.Test.make ~name:"pc/index round trip" ~count:500 QCheck.small_nat (fun ix ->
      Isa.index_of_pc (Isa.pc_of_index ix) = ix)

let test_to_string () =
  Alcotest.(check string) "load render" "ld r2, 8(r4)"
    (Isa.to_string (Isa.Load { rd = 2; base = 4; offset = 8 }));
  Alcotest.(check string) "branch render" "blt r1, r2, @7"
    (Isa.to_string (Isa.Branch { cond = Isa.Lt; rs1 = 1; rs2 = 2; target = 7 }))

let suite =
  ( "isa",
    [
      Alcotest.test_case "sources" `Quick test_sources;
      Alcotest.test_case "dest" `Quick test_dest;
      Alcotest.test_case "op classes" `Quick test_class;
      Alcotest.test_case "predicates" `Quick test_predicates;
      Alcotest.test_case "to_string" `Quick test_to_string;
      QCheck_alcotest.to_alcotest prop_pc_roundtrip;
    ] )
