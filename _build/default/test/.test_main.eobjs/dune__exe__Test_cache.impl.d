test/test_cache.ml: Alcotest Gen Icost_uarch List QCheck QCheck_alcotest
