test/test_interp.ml: Alcotest Array Icost_isa Icost_workloads List QCheck QCheck_alcotest
