test/test_events.ml: Alcotest Array Icost_isa Icost_uarch Icost_workloads QCheck QCheck_alcotest
