test/test_profiler.ml: Alcotest Array Float Hashtbl Icost_core Icost_depgraph Icost_isa Icost_profiler Icost_sim Icost_uarch Icost_workloads List
