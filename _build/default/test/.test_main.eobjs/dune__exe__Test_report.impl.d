test/test_report.ml: Alcotest Icost_report List String
