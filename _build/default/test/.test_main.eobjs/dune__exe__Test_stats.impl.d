test/test_stats.ml: Alcotest Float Gen Icost_util List Printf QCheck QCheck_alcotest
