test/test_sim.ml: Alcotest Array Gen Hashtbl Icost_core Icost_isa Icost_sim Icost_uarch Icost_workloads List Option Printf QCheck QCheck_alcotest
