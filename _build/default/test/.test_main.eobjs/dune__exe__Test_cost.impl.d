test/test_cost.ml: Alcotest Float Hashtbl Icost_core Icost_util List Printf QCheck QCheck_alcotest
