test/test_fuzz.ml: Array Float Gen_program Icost_core Icost_depgraph Icost_isa Icost_profiler Icost_sim Icost_uarch List QCheck QCheck_alcotest
