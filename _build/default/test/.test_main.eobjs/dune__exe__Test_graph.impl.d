test/test_graph.ml: Alcotest Array Float Hashtbl Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch Icost_workloads List Option Printf QCheck QCheck_alcotest String
