test/test_advisor.ml: Alcotest Array Hashtbl Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch Icost_workloads List Option Printf String
