test/test_asm.ml: Alcotest Icost_isa String
