test/gen_program.ml: Array Icost_isa Icost_util Kernel_util_loop Printf
