test/test_isa.ml: Alcotest Icost_isa List QCheck QCheck_alcotest
