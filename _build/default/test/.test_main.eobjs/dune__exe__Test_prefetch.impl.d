test/test_prefetch.ml: Alcotest Array Hashtbl Icost_isa Icost_sim Icost_uarch Icost_workloads Kernel_util_shim Option Printf
