test/kernel_util_shim.ml: Icost_isa
