test/test_bpred.ml: Alcotest Gen Icost_uarch Icost_util List Printf QCheck QCheck_alcotest
