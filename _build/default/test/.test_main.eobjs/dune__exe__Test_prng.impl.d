test/test_prng.ml: Alcotest Array Float Gen Icost_util List Printf QCheck QCheck_alcotest
