test/test_integration.ml: Alcotest Array Float Hashtbl Icost_core Icost_depgraph Icost_experiments Icost_isa Icost_sim Icost_uarch Icost_workloads List Printf String
