test/kernel_util_loop.ml: Icost_isa
