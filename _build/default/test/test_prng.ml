(* Tests for Icost_util.Prng: determinism, ranges, distribution sanity. *)

module Prng = Icost_util.Prng

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.bits a) (Prng.bits b)
  done

let test_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits a = Prng.bits b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_copy_independent () =
  let a = Prng.create 7 in
  let _ = Prng.bits a in
  let b = Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Prng.bits a) (Prng.bits b)

let test_float_range () =
  let t = Prng.create 3 in
  for _ = 1 to 10_000 do
    let f = Prng.float t in
    if f < 0. || f >= 1. then Alcotest.failf "float out of range: %f" f
  done

let test_bool_bias () =
  let t = Prng.create 9 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bool t 0.25 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bool(0.25) frequency %.3f within 0.02" p)
    true
    (Float.abs (p -. 0.25) < 0.02)

let test_weighted () =
  let t = Prng.create 11 in
  let n = 30_000 in
  let counts = Array.make 3 0 in
  for _ = 1 to n do
    let v = Prng.weighted t [ (0, 0.5); (1, 0.3); (2, 0.2) ] in
    counts.(v) <- counts.(v) + 1
  done;
  List.iteri
    (fun i expected ->
      let p = float_of_int counts.(i) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "weight %d frequency %.3f ~ %.2f" i p expected)
        true
        (Float.abs (p -. expected) < 0.02))
    [ 0.5; 0.3; 0.2 ]

let test_split_independent () =
  let t = Prng.create 5 in
  let u = Prng.split t in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Prng.bits t = Prng.bits u then incr same
  done;
  Alcotest.(check bool) "split stream differs" true (!same < 5)

let prop_int_range =
  QCheck.Test.make ~name:"int_range stays within bounds" ~count:500
    QCheck.(triple small_int small_int small_int)
    (fun (seed, a, b) ->
      let lo = min a b and hi = max a b in
      let t = Prng.create seed in
      let v = Prng.int_range t lo hi in
      v >= lo && v <= hi)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 40) int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let orig = Array.copy arr in
      Prng.shuffle (Prng.create seed) arr;
      List.sort compare (Array.to_list arr) = List.sort compare (Array.to_list orig))

let suite =
  ( "prng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "different seeds" `Quick test_different_seeds;
      Alcotest.test_case "copy" `Quick test_copy_independent;
      Alcotest.test_case "float range" `Quick test_float_range;
      Alcotest.test_case "bool bias" `Quick test_bool_bias;
      Alcotest.test_case "weighted distribution" `Quick test_weighted;
      Alcotest.test_case "split" `Quick test_split_independent;
      QCheck_alcotest.to_alcotest prop_int_range;
      QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    ] )
