(* Tests for the prefetcher models and the store-bandwidth commit path. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo

let dl1_misses evts =
  Array.fold_left (fun a (e : Events.evt) -> if e.dl1_miss then a + 1 else a) 0 evts

let il1_misses evts =
  Array.fold_left (fun a (e : Events.evt) -> if e.il1_miss then a + 1 else a) 0 evts

(* a simple array-streaming program: ideal prey for a stride prefetcher *)
let stream_program () =
  let a = Asm.create ~name:"stream" () in
  Kernel_util_shim.init_zero a ~base:0x100000 ~count:8192;
  Asm.li a ~rd:1 0x100000;
  Asm.li a ~rd:2 (0x100000 + (8 * 8192));
  Asm.label a "loop";
  Asm.load a ~rd:3 ~base:1 ~offset:0;
  Asm.add a ~rd:4 ~rs1:4 ~rs2:3;
  Asm.addi a ~rd:1 ~rs1:1 8;
  Asm.blt a ~rs1:1 ~rs2:2 "loop";
  Asm.li a ~rd:1 0x100000;
  Asm.jmp a "loop";
  Asm.assemble a

let test_stride_prefetch_removes_stream_misses () =
  let program = stream_program () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 20_000 } program in
  let cfg = Config.default in
  let evts_off, _ = Events.annotate cfg trace in
  let evts_on, _ =
    Events.annotate ~prefetch:{ Events.no_prefetch with stride_loads = true } cfg trace
  in
  let before = dl1_misses evts_off and after = dl1_misses evts_on in
  Alcotest.(check bool)
    (Printf.sprintf "stream misses before %d after %d" before after)
    true
    (before > 300 && after * 10 < before)

let test_stride_prefetch_neutral_on_random () =
  (* mcf's randomized pointer chains have no stride; the prefetcher must
     neither help much nor hurt correctness *)
  let w = Icost_workloads.Workload.find_exn "twolf" in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 10_000 } (w.build ())
  in
  let cfg = Config.default in
  let evts_off, _ = Events.annotate cfg trace in
  let evts_on, _ =
    Events.annotate ~prefetch:{ Events.no_prefetch with stride_loads = true } cfg trace
  in
  let before = dl1_misses evts_off and after = dl1_misses evts_on in
  Alcotest.(check bool)
    (Printf.sprintf "random-access misses barely change (%d -> %d)" before after)
    true
    (float_of_int (abs (before - after)) < 0.15 *. float_of_int before)

let test_next_line_iprefetch () =
  let program = Icost_workloads.Istress.program ~blocks:4096 () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 20_000 } program in
  let cfg = Config.default in
  let evts_off, _ = Events.annotate cfg trace in
  let evts_on, _ =
    Events.annotate ~prefetch:{ Events.no_prefetch with next_line_icache = true } cfg
      trace
  in
  let before = il1_misses evts_off and after = il1_misses evts_on in
  Alcotest.(check bool)
    (Printf.sprintf "sequential code fetch misses halve (%d -> %d)" before after)
    true
    (after * 3 < before * 2)

let test_prefetch_speeds_up_sim () =
  let program = stream_program () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 20_000 } program in
  let cfg = Config.default in
  let evts_off, _ = Events.annotate cfg trace in
  let evts_on, _ =
    Events.annotate ~prefetch:{ Events.no_prefetch with stride_loads = true } cfg trace
  in
  let c_off = Ooo.cycles cfg trace evts_off in
  let c_on = Ooo.cycles cfg trace evts_on in
  Alcotest.(check bool)
    (Printf.sprintf "prefetching speeds the stream up (%d -> %d)" c_off c_on)
    true (c_on < c_off)

(* --- store-bandwidth commit contention --- *)

let test_store_bandwidth_contention () =
  (* a burst of independent stores is limited by store_commit_bw/cycle *)
  let a = Asm.create ~name:"stores" () in
  Asm.li a ~rd:1 0x100000;
  for i = 1 to 120 do
    Asm.store a ~rs:2 ~base:1 ~offset:(8 * i)
  done;
  Asm.halt a;
  let program = Asm.assemble a in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 500 } program in
  let cfg =
    { Config.default with
      ideal = { Config.no_ideal with perfect_icache = true; perfect_dcache = true } }
  in
  let evts, _ = Events.annotate cfg trace in
  let r = Ooo.run cfg trace evts in
  (* 120 stores at 2/cycle >= 60 cycles regardless of the 6-wide commit *)
  Alcotest.(check bool)
    (Printf.sprintf "store-BW bound (%d cycles)" r.cycles)
    true
    (r.cycles >= 120 / cfg.store_commit_bw);
  (* store_wait recorded on some instructions *)
  let waited =
    Array.fold_left (fun a (s : Ooo.slot) -> if s.store_wait > 0 then a + 1 else a) 0 r.slots
  in
  Alcotest.(check bool) "store_wait recorded" true (waited > 10)

let test_store_bw_per_cycle_limit () =
  let a = Asm.create ~name:"stores2" () in
  Asm.li a ~rd:1 0x100000;
  for i = 1 to 60 do
    Asm.store a ~rs:2 ~base:1 ~offset:(8 * i)
  done;
  Asm.halt a;
  let program = Asm.assemble a in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 500 } program in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let r = Ooo.run cfg trace evts in
  let per_cycle = Hashtbl.create 64 in
  Array.iteri
    (fun i (s : Ooo.slot) ->
      if Isa.is_store (Trace.get trace i).instr then
        Hashtbl.replace per_cycle s.commit
          (1 + Option.value ~default:0 (Hashtbl.find_opt per_cycle s.commit)))
    r.slots;
  Hashtbl.iter
    (fun cyc n ->
      if n > cfg.store_commit_bw then
        Alcotest.failf "%d stores retired in cycle %d (limit %d)" n cyc
          cfg.store_commit_bw)
    per_cycle

let suite =
  ( "prefetch+storebw",
    [
      Alcotest.test_case "stride prefetch on streams" `Quick
        test_stride_prefetch_removes_stream_misses;
      Alcotest.test_case "stride prefetch neutral on random" `Quick
        test_stride_prefetch_neutral_on_random;
      Alcotest.test_case "next-line I-prefetch" `Quick test_next_line_iprefetch;
      Alcotest.test_case "prefetch speeds up the sim" `Quick test_prefetch_speeds_up_sim;
      Alcotest.test_case "store bandwidth bound" `Quick test_store_bandwidth_contention;
      Alcotest.test_case "store per-cycle limit" `Quick test_store_bw_per_cycle_limit;
    ] )
