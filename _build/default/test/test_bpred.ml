(* Tests for the combined branch predictor, BTB and RAS. *)

module Config = Icost_uarch.Config
module Bpred = Icost_uarch.Bpred
module Prng = Icost_util.Prng

let fresh () = Bpred.create Config.default

let misp_rate bp outcomes pc =
  let wrong = List.filter (fun t -> not (Bpred.update_cond bp ~pc ~taken:t)) outcomes in
  float_of_int (List.length wrong) /. float_of_int (List.length outcomes)

let test_biased_branch_learned () =
  let bp = fresh () in
  let outcomes = List.init 2000 (fun _ -> true) in
  let r = misp_rate bp outcomes 0x400 in
  Alcotest.(check bool) (Printf.sprintf "always-taken learned (%.3f)" r) true (r < 0.01)

let test_random_branch_floor () =
  let bp = fresh () in
  let prng = Prng.create 17 in
  let outcomes = List.init 5000 (fun _ -> Prng.bool prng 0.5) in
  let r = misp_rate bp outcomes 0x400 in
  Alcotest.(check bool) (Printf.sprintf "coin flip ~50%% (%.3f)" r) true
    (r > 0.4 && r < 0.6)

let test_pattern_learned_by_gshare () =
  let bp = fresh () in
  (* period-4 pattern TTTN: bimodal alone would miss 25%, gshare learns it *)
  let outcomes = List.init 4000 (fun i -> i mod 4 <> 3) in
  let r = misp_rate bp outcomes 0x400 in
  Alcotest.(check bool) (Printf.sprintf "pattern learned (%.3f)" r) true (r < 0.05)

let test_aliasing_isolation () =
  (* two branches with opposite bias must not destroy each other *)
  let bp = fresh () in
  let wrong = ref 0 in
  for _ = 1 to 2000 do
    if not (Bpred.update_cond bp ~pc:0x100 ~taken:true) then incr wrong;
    if not (Bpred.update_cond bp ~pc:0x104 ~taken:false) then incr wrong
  done;
  let r = float_of_int !wrong /. 4000. in
  Alcotest.(check bool) (Printf.sprintf "both learned (%.3f)" r) true (r < 0.05)

let test_ras_matched_calls () =
  let bp = fresh () in
  Bpred.ras_push bp ~return_pc:0x10;
  Bpred.ras_push bp ~return_pc:0x20;
  Alcotest.(check bool) "inner return predicted" true (Bpred.ras_pop_check bp ~target:0x20);
  Alcotest.(check bool) "outer return predicted" true (Bpred.ras_pop_check bp ~target:0x10);
  Alcotest.(check bool) "empty RAS mispredicts" false (Bpred.ras_pop_check bp ~target:0x10)

let test_ras_overflow () =
  let bp = fresh () in
  let cap = Config.default.ras_entries in
  for i = 1 to cap + 3 do
    Bpred.ras_push bp ~return_pc:(4 * i)
  done;
  (* the newest [cap] entries survive; the oldest were dropped *)
  let ok = ref true in
  for i = cap + 3 downto 4 do
    if not (Bpred.ras_pop_check bp ~target:(4 * i)) then ok := false
  done;
  Alcotest.(check bool) "newest entries correct after overflow" true !ok

let test_btb_learns_target () =
  let bp = fresh () in
  Alcotest.(check bool) "cold BTB mispredicts" false
    (Bpred.update_indirect bp ~pc:0x200 ~target:0x500);
  Alcotest.(check bool) "stable target predicted" true
    (Bpred.update_indirect bp ~pc:0x200 ~target:0x500);
  Alcotest.(check bool) "changed target mispredicts" false
    (Bpred.update_indirect bp ~pc:0x200 ~target:0x900);
  Alcotest.(check bool) "new target learned" true
    (Bpred.update_indirect bp ~pc:0x200 ~target:0x900)

let test_btb_lookup () =
  let bp = fresh () in
  Alcotest.(check (option int)) "cold lookup" None (Bpred.predict_indirect bp ~pc:0x300);
  ignore (Bpred.update_indirect bp ~pc:0x300 ~target:0x600);
  Alcotest.(check (option int)) "warm lookup" (Some 0x600)
    (Bpred.predict_indirect bp ~pc:0x300)

let prop_predict_matches_update =
  QCheck.Test.make ~name:"predict_cond agrees with update_cond's verdict" ~count:200
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 50) bool))
    (fun (pc_seed, outcomes) ->
      let pc = (pc_seed land 0xFFF) * 4 in
      let bp = fresh () in
      List.for_all
        (fun taken ->
          let predicted = Bpred.predict_cond bp ~pc in
          let correct = Bpred.update_cond bp ~pc ~taken in
          correct = (predicted = taken))
        outcomes)

let suite =
  ( "bpred",
    [
      Alcotest.test_case "biased branch learned" `Quick test_biased_branch_learned;
      Alcotest.test_case "random branch ~50%" `Quick test_random_branch_floor;
      Alcotest.test_case "gshare learns patterns" `Quick test_pattern_learned_by_gshare;
      Alcotest.test_case "aliasing isolation" `Quick test_aliasing_isolation;
      Alcotest.test_case "RAS matched calls" `Quick test_ras_matched_calls;
      Alcotest.test_case "RAS overflow" `Quick test_ras_overflow;
      Alcotest.test_case "BTB learns targets" `Quick test_btb_learns_target;
      Alcotest.test_case "BTB lookup" `Quick test_btb_lookup;
      QCheck_alcotest.to_alcotest prop_predict_matches_update;
    ] )
