(* Small helpers shared by test modules. *)

let init_zero a ~base ~count =
  for i = 0 to count - 1 do
    Icost_isa.Asm.init_word a ~addr:(base + (8 * i)) ~value:0
  done
