(* Tests for the architectural interpreter: semantics, dependence
   annotation, trace slicing. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace

let run ?(max_instrs = 1000) build =
  let a = Asm.create ~name:"t" () in
  build a;
  Interp.run ~config:{ Interp.default_config with max_instrs } (Asm.assemble a)

let test_arith () =
  (* computes (5+3)*2 - 1 = 15 and stores it *)
  let t =
    run (fun a ->
        Asm.li a ~rd:1 5;
        Asm.addi a ~rd:1 ~rs1:1 3;
        Asm.li a ~rd:2 2;
        Asm.mul a ~rd:3 ~rs1:1 ~rs2:2;
        Asm.addi a ~rd:3 ~rs1:3 (-1);
        Asm.li a ~rd:4 0x800;
        Asm.store a ~rs:3 ~base:4 ~offset:0;
        Asm.load a ~rd:5 ~base:4 ~offset:0;
        Asm.halt a)
  in
  Alcotest.(check bool) "halted" true t.halted;
  Alcotest.(check int) "8 instructions (halt not recorded)" 8 (Trace.length t);
  (* the final load reads back the stored 15 through memory *)
  let last_load = Trace.get t 7 in
  Alcotest.(check (option int)) "load address" (Some 0x800) last_load.mem_addr;
  Alcotest.(check (option int)) "store-to-load dependence" (Some 6) last_load.mem_dep

let test_branching () =
  (* loop three times *)
  let t =
    run (fun a ->
        Asm.li a ~rd:1 3;
        Asm.label a "top";
        Asm.addi a ~rd:1 ~rs1:1 (-1);
        Asm.bne a ~rs1:1 ~rs2:0 "top";
        Asm.halt a)
  in
  Alcotest.(check int) "1 + 3*2 instructions" 7 (Trace.length t);
  let branch_outcomes =
    Array.to_list t.instrs
    |> List.filter_map (fun (d : Trace.dyn) ->
           if Isa.is_cond_branch d.instr then Some d.taken else None)
  in
  Alcotest.(check (list bool)) "taken, taken, not-taken" [ true; true; false ]
    branch_outcomes

let test_call_ret () =
  let t =
    run (fun a ->
        Asm.jmp a "main";
        Asm.label a "sub";
        Asm.addi a ~rd:2 ~rs1:2 10;
        Asm.ret a;
        Asm.label a "main";
        Asm.call a "sub";
        Asm.call a "sub";
        Asm.halt a)
  in
  Alcotest.(check bool) "halted" true t.halted;
  (* jmp, call, addi, ret, call, addi, ret (halt not recorded) *)
  Alcotest.(check int) "7 dynamic instructions" 7 (Trace.length t);
  let ret = Trace.get t 3 in
  Alcotest.(check bool) "ret taken" true ret.taken;
  Alcotest.(check int) "ret returns past first call" (Isa.pc_of_index 4) ret.next_pc

let test_reg_deps () =
  let t =
    run (fun a ->
        Asm.li a ~rd:1 1;
        (* seq 0: writes r1 *)
        Asm.li a ~rd:2 2;
        (* seq 1: writes r2 *)
        Asm.add a ~rd:3 ~rs1:1 ~rs2:2;
        (* seq 2: reads r1(0), r2(1) *)
        Asm.add a ~rd:3 ~rs1:3 ~rs2:1;
        (* seq 3: reads r3(2), r1(0) *)
        Asm.halt a)
  in
  let deps i = List.sort compare (List.map snd (Trace.get t i).reg_deps) in
  Alcotest.(check (list int)) "seq2 deps" [ 0; 1 ] (deps 2);
  Alcotest.(check (list int)) "seq3 deps" [ 0; 2 ] (deps 3)

let test_budget_cut () =
  let t =
    run ~max_instrs:10 (fun a ->
        Asm.label a "spin";
        Asm.addi a ~rd:1 ~rs1:1 1;
        Asm.jmp a "spin")
  in
  Alcotest.(check int) "cut at budget" 10 (Trace.length t);
  Alcotest.(check bool) "not halted" false t.halted

let test_stuck_detection () =
  let a = Asm.create ~name:"stuck" () in
  Asm.addi a ~rd:1 ~rs1:1 1;
  (* no halt: PC falls off the end *)
  let p = Asm.assemble a in
  Alcotest.check_raises "falls off program"
    (Interp.Stuck "PC fell off the program at index 1") (fun () ->
      ignore (Interp.run ~config:{ Interp.default_config with max_instrs = 10 } p))

let test_div_by_zero_default () =
  let t =
    run (fun a ->
        Asm.li a ~rd:1 5;
        Asm.div a ~rd:2 ~rs1:1 ~rs2:0;
        Asm.halt a)
  in
  Alcotest.(check int) "runs through" 2 (Trace.length t)

let test_slice () =
  let t =
    run (fun a ->
        Asm.li a ~rd:1 100;
        (* seq 0 *)
        Asm.addi a ~rd:2 ~rs1:1 1;
        (* seq 1, dep on 0 *)
        Asm.addi a ~rd:3 ~rs1:2 1;
        (* seq 2, dep on 1 *)
        Asm.addi a ~rd:4 ~rs1:3 1;
        (* seq 3, dep on 2 *)
        Asm.halt a)
  in
  let s = Trace.slice t ~start:2 ~len:2 in
  Alcotest.(check int) "slice length" 2 (Trace.length s);
  let d0 = Trace.get s 0 in
  Alcotest.(check int) "renumbered" 0 d0.seq;
  Alcotest.(check (list (pair int int))) "dep before slice dropped" [] d0.reg_deps;
  let d1 = Trace.get s 1 in
  Alcotest.(check (list (pair int int))) "in-slice dep renumbered" [ (3, 0) ]
    d1.reg_deps

let test_mixes () =
  let t =
    run (fun a ->
        Asm.li a ~rd:1 0x900;
        Asm.load a ~rd:2 ~base:1 ~offset:0;
        Asm.store a ~rs:2 ~base:1 ~offset:8;
        Asm.fadd a ~rd:3 ~rs1:2 ~rs2:2;
        Asm.beq a ~rs1:0 ~rs2:0 "end";
        Asm.halt a;
        Asm.label a "end";
        Asm.halt a)
  in
  Alcotest.(check int) "loads" 1 (Trace.num_loads t);
  Alcotest.(check int) "stores" 1 (Trace.num_stores t);
  Alcotest.(check int) "branches" 1 (Trace.num_branches t)

let prop_workload_determinism =
  QCheck.Test.make ~name:"interpretation is deterministic" ~count:8
    (QCheck.make (QCheck.Gen.oneofl [ "gcc"; "mcf"; "gap"; "crafty" ]))
    (fun name ->
      let w = Icost_workloads.Workload.find_exn name in
      let cfg = { Interp.default_config with max_instrs = 2000 } in
      let t1 = Interp.run ~config:cfg (w.build ()) in
      let t2 = Interp.run ~config:cfg (w.build ()) in
      Trace.length t1 = Trace.length t2
      && Array.for_all2
           (fun (a : Trace.dyn) (b : Trace.dyn) ->
             a.pc = b.pc && a.mem_addr = b.mem_addr && a.taken = b.taken)
           t1.instrs t2.instrs)

let suite =
  ( "interp",
    [
      Alcotest.test_case "arithmetic and memory" `Quick test_arith;
      Alcotest.test_case "branching" `Quick test_branching;
      Alcotest.test_case "call/ret" `Quick test_call_ret;
      Alcotest.test_case "register dependences" `Quick test_reg_deps;
      Alcotest.test_case "budget cut" `Quick test_budget_cut;
      Alcotest.test_case "stuck detection" `Quick test_stuck_detection;
      Alcotest.test_case "div by zero yields 0" `Quick test_div_by_zero_default;
      Alcotest.test_case "trace slice" `Quick test_slice;
      Alcotest.test_case "class counting" `Quick test_mixes;
      QCheck_alcotest.to_alcotest prop_workload_determinism;
    ] )
