(* Tests for the assembler DSL: label resolution, fixups, memory image. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Program = Icost_isa.Program

let test_forward_and_backward_labels () =
  let a = Asm.create ~name:"labels" () in
  Asm.label a "start";
  Asm.addi a ~rd:1 ~rs1:1 1;
  Asm.bne a ~rs1:1 ~rs2:0 "end";
  Asm.jmp a "start";
  Asm.label a "end";
  Asm.halt a;
  let p = Asm.assemble a in
  (match Program.fetch p 1 with
   | Isa.Branch { target; _ } -> Alcotest.(check int) "forward target" 3 target
   | _ -> Alcotest.fail "expected branch");
  match Program.fetch p 2 with
  | Isa.Jump { target } -> Alcotest.(check int) "backward target" 0 target
  | _ -> Alcotest.fail "expected jump"

let test_duplicate_label () =
  let a = Asm.create ~name:"dup" () in
  Asm.label a "x";
  Asm.halt a;
  Alcotest.check_raises "duplicate label"
    (Invalid_argument "Asm.label: duplicate label \"x\" in dup") (fun () ->
      Asm.label a "x")

let test_undefined_label () =
  let a = Asm.create ~name:"undef" () in
  Asm.jmp a "nowhere";
  (try
     let _ = Asm.assemble a in
     Alcotest.fail "expected assemble failure"
   with Invalid_argument msg ->
     Alcotest.(check bool) "mentions label" true
       (String.length msg > 0 && String.index_opt msg 'n' <> None))

let test_li_label () =
  let a = Asm.create ~name:"lil" () in
  Asm.jmp a "main";
  Asm.label a "handler";
  Asm.halt a;
  Asm.label a "main";
  Asm.li_label a ~rd:5 "handler";
  Asm.jr a ~rs:5;
  let p = Asm.assemble a in
  match Program.fetch p 2 with
  | Isa.Alu { src2 = Imm v; rd = 5; _ } ->
    Alcotest.(check int) "label PC loaded" (Isa.pc_of_index 1) v
  | _ -> Alcotest.fail "expected li of label PC"

let test_init_label () =
  let a = Asm.create ~name:"initl" () in
  Asm.init_label a ~addr:0x100 "h";
  Asm.jmp a "h";
  Asm.label a "h";
  Asm.halt a;
  let p = Asm.assemble a in
  Alcotest.(check (list (pair int int))) "mem image holds label PC"
    [ (0x100, Isa.pc_of_index 1) ]
    p.mem_image

let test_init_word_order () =
  let a = Asm.create ~name:"mem" () in
  Asm.init_word a ~addr:8 ~value:1;
  Asm.init_word a ~addr:16 ~value:2;
  Asm.halt a;
  let p = Asm.assemble a in
  Alcotest.(check (list (pair int int))) "image in insertion order"
    [ (8, 1); (16, 2) ] p.mem_image

let test_pseudo_instructions () =
  let a = Asm.create ~name:"pseudo" () in
  Asm.li a ~rd:4 42;
  Asm.mv a ~rd:5 ~rs:4;
  Asm.halt a;
  let p = Asm.assemble a in
  (match Program.fetch p 0 with
   | Isa.Alu { op = Isa.Add; rd = 4; rs1 = 0; src2 = Imm 42 } -> ()
   | _ -> Alcotest.fail "li expansion");
  match Program.fetch p 1 with
  | Isa.Alu { op = Isa.Add; rd = 5; rs1 = 4; src2 = Imm 0 } -> ()
  | _ -> Alcotest.fail "mv expansion"

let test_validate_targets () =
  let bad =
    Program.make ~name:"bad" [| Isa.Jump { target = 99 }; Isa.Halt |]
  in
  match Program.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected out-of-range target error"

let test_here_counts () =
  let a = Asm.create ~name:"here" () in
  Alcotest.(check int) "empty" 0 (Asm.here a);
  Asm.halt a;
  Alcotest.(check int) "after one" 1 (Asm.here a)

let suite =
  ( "asm",
    [
      Alcotest.test_case "labels forward/backward" `Quick test_forward_and_backward_labels;
      Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
      Alcotest.test_case "undefined label" `Quick test_undefined_label;
      Alcotest.test_case "li_label" `Quick test_li_label;
      Alcotest.test_case "init_label" `Quick test_init_label;
      Alcotest.test_case "init_word order" `Quick test_init_word_order;
      Alcotest.test_case "pseudo instructions" `Quick test_pseudo_instructions;
      Alcotest.test_case "validate targets" `Quick test_validate_targets;
      Alcotest.test_case "here" `Quick test_here_counts;
    ] )
