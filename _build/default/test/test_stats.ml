(* Tests for Icost_util.Stats. *)

module Stats = Icost_util.Stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) < eps

let test_mean () =
  Alcotest.(check bool) "mean [1;2;3] = 2" true (feq (Stats.mean [ 1.; 2.; 3. ]) 2.);
  Alcotest.(check bool) "mean [] = 0" true (feq (Stats.mean []) 0.)

let test_stddev () =
  Alcotest.(check bool) "stddev singleton = 0" true (feq (Stats.stddev [ 5. ]) 0.);
  let s = Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check bool) (Printf.sprintf "stddev = %f" s) true (feq ~eps:1e-6 s 2.)

let test_percent () =
  Alcotest.(check bool) "50/200 = 25%" true (feq (Stats.percent 50. 200.) 25.);
  Alcotest.(check bool) "x/0 = 0" true (feq (Stats.percent 5. 0.) 0.)

let test_geomean () =
  Alcotest.(check bool) "geomean [2;8] = 4" true
    (feq ~eps:1e-9 (Stats.geomean [ 2.; 8. ]) 4.);
  Alcotest.(check bool) "geomean [] = 1" true (feq (Stats.geomean []) 1.)

let test_errors () =
  Alcotest.(check bool) "abs error" true
    (feq (Stats.abs_error ~measured:3. ~reference:5.) 2.);
  Alcotest.(check bool) "rel error pct" true
    (feq (Stats.rel_error_pct ~measured:6. ~reference:5.) 20.);
  Alcotest.(check bool) "rel error zero ref" true
    (feq (Stats.rel_error_pct ~measured:6. ~reference:0.) 0.)

let prop_running_matches_direct =
  QCheck.Test.make ~name:"Running matches direct mean/stddev" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let r = Stats.Running.create () in
      List.iter (Stats.Running.add r) xs;
      let n = float_of_int (List.length xs) in
      let m = Stats.mean xs in
      let sample_sd =
        sqrt (List.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs /. (n -. 1.))
      in
      feq ~eps:1e-6 (Stats.Running.mean r) m
      && Float.abs (Stats.Running.stddev r -. sample_sd) < 1e-6 *. (1. +. sample_sd)
      && Stats.Running.count r = List.length xs)

let prop_minmax =
  QCheck.Test.make ~name:"fmin <= mean <= fmax" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let m = Stats.mean xs in
      Stats.fmin xs <= m +. 1e-9 && m <= Stats.fmax xs +. 1e-9)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "percent" `Quick test_percent;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "errors" `Quick test_errors;
      QCheck_alcotest.to_alcotest prop_running_matches_direct;
      QCheck_alcotest.to_alcotest prop_minmax;
    ] )
