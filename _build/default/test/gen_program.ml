(* Random-program generation for property-based testing.

   Builds structurally valid, non-stuck programs exercising the whole ISA:
   straight-line arithmetic, guarded memory accesses (always inside a
   dedicated data region), counted loops, data-dependent branches, calls to
   generated leaf subroutines, and jump-table dispatch through li_label.
   Programs run forever (outer loop); traces are cut by the interpreter's
   instruction budget. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Prng = Icost_util.Prng

let data_base = 0x0100_0000
let data_words = 4096 (* 32 KiB region; all accesses masked into it *)

(* register allocation: r1..r12 scratch, r13 loop counters, r14 address
   temp, r15 data base, r30 sp, r31 ra *)
let scratch prng = 1 + Prng.int prng 12
let addr_tmp = 14
let base_reg = 15

let emit_guarded_addr a prng =
  (* addr_tmp <- data_base + (scratch & mask), word aligned *)
  let src = scratch prng in
  Asm.andi a ~rd:addr_tmp ~rs1:src (((data_words - 1) * 8) land lnot 7);
  Asm.add a ~rd:addr_tmp ~rs1:base_reg ~rs2:addr_tmp

let emit_op a prng ~labels ~depth =
  match Prng.int prng 100 with
  | n when n < 30 ->
    (* plain ALU *)
    let op = Prng.choose prng [| Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor |] in
    let rd = scratch prng and rs1 = scratch prng and rs2 = scratch prng in
    if Prng.bool prng 0.5 then
      Asm.alu a op ~rd ~rs1 ~rs2
    else Asm.alui a op ~rd ~rs1 (Prng.int_range prng (-64) 64)
  | n when n < 38 ->
    (* shifts and compares *)
    let rd = scratch prng and rs1 = scratch prng in
    if Prng.bool prng 0.5 then Asm.shli a ~rd ~rs1 (Prng.int prng 8)
    else Asm.slti a ~rd ~rs1 (Prng.int_range prng (-32) 32)
  | n when n < 46 ->
    (* long ALU *)
    let rd = scratch prng and rs1 = scratch prng and rs2 = scratch prng in
    (match Prng.int prng 4 with
     | 0 -> Asm.mul a ~rd ~rs1 ~rs2
     | 1 -> Asm.div a ~rd ~rs1 ~rs2
     | 2 -> Asm.fadd a ~rd ~rs1 ~rs2
     | _ -> Asm.fmul a ~rd ~rs1 ~rs2)
  | n when n < 66 ->
    (* guarded load *)
    emit_guarded_addr a prng;
    Asm.load a ~rd:(scratch prng) ~base:addr_tmp ~offset:(8 * Prng.int prng 4)
  | n when n < 78 ->
    (* guarded store *)
    emit_guarded_addr a prng;
    Asm.store a ~rs:(scratch prng) ~base:addr_tmp ~offset:(8 * Prng.int prng 4)
  | n when n < 90 && labels <> [] ->
    (* forward data-dependent branch to a known label *)
    let target = Prng.choose prng (Array.of_list labels) in
    let cond = Prng.choose prng [| Isa.Eq; Isa.Ne; Isa.Lt; Isa.Ge |] in
    Asm.branch a cond ~rs1:(scratch prng) ~rs2:(scratch prng) target
  | _ when depth > 0 ->
    (* nothing: handled by block structure (loops/calls) *)
    Asm.addi a ~rd:(scratch prng) ~rs1:(scratch prng) 1
  | _ -> Asm.addi a ~rd:(scratch prng) ~rs1:(scratch prng) 1

(* one basic block: a skip label so forward branches always land safely *)
let emit_block a prng ~tag ~depth =
  let skip = Printf.sprintf "skip_%s" tag in
  let ops = 3 + Prng.int prng 8 in
  for _ = 1 to ops do
    emit_op a prng ~labels:[ skip ] ~depth
  done;
  Asm.label a skip

let generate seed : Icost_isa.Program.t =
  let prng = Prng.create seed in
  let a = Asm.create ~name:(Printf.sprintf "fuzz_%d" seed) () in
  (* data region: random contents *)
  for i = 0 to data_words - 1 do
    Asm.init_word a ~addr:(data_base + (8 * i)) ~value:(Prng.int prng 1_000_000)
  done;
  let num_subs = Prng.int prng 3 in
  let num_blocks = 2 + Prng.int prng 5 in
  (* entry: initialize registers, jump over subroutines *)
  Asm.li a ~rd:base_reg data_base;
  Asm.li a ~rd:Isa.reg_sp 0x7000_0000;
  for r = 1 to 12 do
    Asm.li a ~rd:r (Prng.int prng 4096)
  done;
  Asm.jmp a "main";
  (* leaf subroutines *)
  for s = 0 to num_subs - 1 do
    Asm.label a (Printf.sprintf "sub_%d" s);
    emit_block a prng ~tag:(Printf.sprintf "s%d" s) ~depth:1;
    Asm.ret a
  done;
  (* main: an endless outer loop over blocks, with counted inner loops and
     calls sprinkled in *)
  Asm.label a "main";
  for b = 0 to num_blocks - 1 do
    let tag = Printf.sprintf "b%d" b in
    (match Prng.int prng 3 with
     | 0 when num_subs > 0 ->
       Asm.call a (Printf.sprintf "sub_%d" (Prng.int prng num_subs))
     | 1 ->
       (* counted inner loop *)
       Kernel_util_loop.counted a ~tag ~counter:13 ~count:(2 + Prng.int prng 6)
         (fun () -> emit_block a prng ~tag:(tag ^ "_in") ~depth:0)
     | _ -> emit_block a prng ~tag ~depth:1)
  done;
  Asm.jmp a "main";
  Asm.assemble a
