(* Counted-loop emission helper for generated test programs. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa

let counted a ~tag ~counter ~count body =
  Asm.li a ~rd:counter count;
  Asm.label a ("loop_" ^ tag);
  body ();
  Asm.addi a ~rd:counter ~rs1:counter (-1);
  Asm.bne a ~rs1:counter ~rs2:Isa.reg_zero ("loop_" ^ tag)
