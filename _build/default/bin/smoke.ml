(* Quick end-to-end smoke check: run every workload through the interpreter,
   event annotation, baseline simulation and graph construction; print the
   headline statistics. *)

module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Workload = Icost_workloads.Workload

let () =
  let cfg = Config.default in
  let warmup = 200_000 and measure = 30_000 in
  Printf.printf "%-9s %8s %8s %6s %7s %7s %7s %8s %8s\n" "bench" "cycles" "ipc"
    "br-mr%" "dl1m%" "dl2m%" "il1m%" "graphCP" "err%";
  List.iter
    (fun (w : Workload.t) ->
      let program = w.build () in
      let t0 = Unix.gettimeofday () in
      let trace =
        Interp.run ~config:{ Interp.default_config with max_instrs = warmup + measure }
          program
      in
      let evts, _sum = Events.annotate cfg trace in
      let trace = Trace.slice trace ~start:warmup ~len:measure in
      let evts = Events.slice evts ~start:warmup ~len:measure in
      let result = Ooo.run cfg trace evts in
      let g = Build.of_sim cfg trace evts result in
      let cp = Graph.critical_length g in
      let n = float_of_int (Trace.length trace) in
      let loads = Trace.num_loads trace in
      let brs = Trace.num_branches trace in
      let misp = Array.fold_left (fun a (e : Events.evt) -> if e.mispredict then a + 1 else a) 0 evts in
      let dl1m = Array.fold_left (fun a (e : Events.evt) -> if e.dl1_miss then a + 1 else a) 0 evts in
      let dl2m = Array.fold_left (fun a (e : Events.evt) -> if e.dl2_miss then a + 1 else a) 0 evts in
      let il1m = Array.fold_left (fun a (e : Events.evt) -> if e.il1_miss then a + 1 else a) 0 evts in
      let t1 = Unix.gettimeofday () in
      Printf.printf "%-9s %8d %8.2f %6.1f %7.1f %7.1f %7.1f %8d %8.1f  (%.2fs)\n" w.name
        result.cycles (Ooo.ipc result)
        (100. *. float_of_int misp /. float_of_int (max 1 brs))
        (100. *. float_of_int dl1m /. float_of_int (max 1 loads))
        (100. *. float_of_int dl2m /. float_of_int (max 1 loads))
        (100. *. float_of_int il1m /. n)
        cp
        (100. *. float_of_int (abs (cp - result.cycles)) /. float_of_int result.cycles)
        (t1 -. t0))
    Workload.all
