(* Graph demo: an instance of the dependence-graph model (Figure 2).

   Builds the paper's illustration setting — a machine with a four-entry
   re-order buffer and two-wide fetch/commit — runs a small code snippet
   with a cache-missing load, a dependent chain and a mispredicted branch,
   and prints the graph: node times, edges with latencies, the critical
   path, and Graphviz DOT output.

   Run with: dune exec examples/graph_demo.exe *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category

let tiny_program () =
  let a = Asm.create ~name:"fig2-snippet" () in
  (* two loads to the same cache line (the second is a "partial miss"), a
     dependent ALU chain, and a data-dependent branch *)
  Asm.init_word a ~addr:0x1000 ~value:7;
  Asm.init_word a ~addr:0x1008 ~value:3;
  Asm.li a ~rd:1 0x1000;
  Asm.label a "top";
  Asm.load a ~rd:2 ~base:1 ~offset:0;
  Asm.load a ~rd:3 ~base:1 ~offset:8;
  Asm.add a ~rd:4 ~rs1:2 ~rs2:3;
  Asm.mul a ~rd:5 ~rs1:4 ~rs2:4;
  Asm.andi a ~rd:6 ~rs1:5 1;
  Asm.beq a ~rs1:6 ~rs2:0 "skip";
  Asm.addi a ~rd:7 ~rs1:7 1;
  Asm.label a "skip";
  Asm.addi a ~rd:8 ~rs1:8 1;
  Asm.slti a ~rd:9 ~rs1:8 4;
  Asm.bne a ~rs1:9 ~rs2:0 "top";
  Asm.halt a;
  Asm.assemble a

let () =
  (* Figure 2's machine: 4-entry ROB, 2-wide fetch/commit *)
  let cfg =
    { Config.default with window_size = 4; fetch_bw = 2; commit_bw = 2; issue_width = 2 }
  in
  let program = tiny_program () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 40 } program in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  let g = Build.of_sim cfg trace evts result in
  Printf.printf "program:\n%s\n" (Format.asprintf "%a" Icost_isa.Program.pp program);
  Printf.printf "\n%d dynamic instructions, %d cycles, graph: %d nodes, %d edges\n\n"
    (Trace.length trace) result.cycles (Graph.num_nodes g) (Graph.num_edges g);
  Printf.printf "node arrival times and edges:\n%s\n"
    (Format.asprintf "%a" (fun ppf () -> Graph.pp_small ppf g) ());
  (* critical path *)
  let cp = Graph.critical_path g in
  Printf.printf "\ncritical path (%d cycles):\n  " (Graph.critical_length g);
  List.iter
    (fun (v, k) ->
      match k with
      | None -> Printf.printf "%s" (Graph.node_name v)
      | Some k -> Printf.printf " -[%s]-> %s" (Graph.edge_kind_name k) (Graph.node_name v))
    cp;
  print_newline ();
  (* the Figure 2 observation: EP edges (load latency) are in series with CD
     (window) edges, so dl1 and win can interact serially *)
  let base = Graph.critical_length g in
  let c s = base - Graph.critical_length ~ideal:s g in
  let dl1 = Category.Set.singleton Category.Dl1 in
  let win = Category.Set.singleton Category.Win in
  let both = Category.Set.union dl1 win in
  Printf.printf
    "\ncost(dl1)=%d cost(win)=%d cost(dl1+win)=%d icost=%+d (serial if negative)\n"
    (c dl1) (c win) (c both)
    (c both - c dl1 - c win);
  (* DOT output for visual inspection *)
  let path = "graph_demo.dot" in
  let oc = open_out path in
  output_string oc (Graph.to_dot g);
  close_out oc;
  Printf.printf "\nwrote Graphviz rendering to %s (render with: dot -Tsvg %s)\n" path path
