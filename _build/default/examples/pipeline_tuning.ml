(* Pipeline tuning: the Section 4 tutorial as a runnable walkthrough.

   A deep pipeline has made three critical loops slower: the level-one
   data-cache access (4 cycles), the issue-wakeup loop (2 cycles), and the
   branch-misprediction loop (15 cycles).  For each, interaction costs tell
   the architect which *other* resource to strengthen:

   - dl1 loop:    serial dl1+win  -> grow the window to hide dl1 latency;
   - wakeup loop: serial shalu+win -> the window also hides ALU latency;
   - bmisp loop:  PARALLEL bmisp+win -> growing the window does NOT help;
                  look for serial partners (e.g. dmiss on pointer codes).

   Run with: dune exec examples/pipeline_tuning.exe *)

module R = Icost_experiments.Runner
module E4 = Icost_experiments.Exp_table4
module Category = Icost_core.Category
module Breakdown = Icost_core.Breakdown
module Cost = Icost_core.Cost

let benches = [ "gap"; "gcc"; "mcf"; "vortex" ]

let () =
  let settings = { R.default_settings with benches; measure = 20_000 } in
  let prepared = R.prepare_all settings in
  List.iter
    (fun (v : E4.variant) ->
      Printf.printf "=== %s ===\n" v.label;
      let r = E4.compute v prepared in
      List.iter
        (fun (bench, bd) ->
          let pct kind = Option.value ~default:0. (Breakdown.percent_of bd kind) in
          let focus = v.focus in
          Printf.printf "%-8s cost(%s) = %5.1f%%  " bench (Category.name focus)
            (pct (Breakdown.Base focus));
          (* the strongest interaction partner tells us what to tune *)
          let partners =
            List.filter (fun c -> c <> focus) Category.all
            |> List.map (fun c -> (c, pct (Breakdown.Pair (focus, c))))
          in
          let c, v' =
            List.fold_left
              (fun (bc, bv) (c, v) -> if Float.abs v > Float.abs bv then (c, v) else (bc, bv))
              (List.hd partners) (List.tl partners)
          in
          Printf.printf "strongest partner: %s (%+.1f%%, %s)\n" (Category.name c) v'
            (Cost.interaction_name (Cost.classify v'))
        )
        r.breakdowns;
      print_newline ())
    [ E4.table4a; E4.table4b; E4.table4c ];
  print_string
    "Reading the results: a serial (negative) partner is a resource whose\n\
     improvement also hides the studied loop's latency; a parallel (positive)\n\
     partner only pays off if both are attacked together (Section 4).\n"
