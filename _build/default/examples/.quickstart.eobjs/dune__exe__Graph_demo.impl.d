examples/graph_demo.ml: Format Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch List Printf
