examples/quickstart.mli:
