examples/quickstart.ml: Icost_core Icost_depgraph Icost_isa Icost_sim Icost_uarch Icost_workloads List Printf
