examples/pipeline_tuning.ml: Float Icost_core Icost_experiments List Option Printf
