examples/prefetch_advisor.mli:
