(* Prefetch advisor: the paper's motivating software application.

   A prefetching compiler wants to know, per static load, how much execution
   time its cache misses cost — and, crucially, how pairs of loads interact:

   - parallel interaction (positive icost): the loads' misses overlap;
     prefetching only one gains little, prefetch BOTH;
   - serial interaction (negative icost): the misses are in series with each
     other but parallel to other work; prefetching one is enough;
   - independent (zero): decide for each load in isolation.

   The heavy lifting lives in Icost_depgraph.Static_costs (Tune et al.'s
   edge-cost measurement grouped by static instruction); this example also
   cross-checks the advice by actually enabling the stride prefetcher and
   measuring the realized speedup.

   Run with: dune exec examples/prefetch_advisor.exe *)

module Workload = Icost_workloads.Workload
module Interp = Icost_isa.Interp
module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Static_costs = Icost_depgraph.Static_costs

let () =
  let program = (Workload.find_exn "mcf").build () in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 30_000 } program
  in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  let graph = Build.of_sim cfg trace evts result in
  let sc = Static_costs.create cfg trace evts graph in
  Printf.printf "%s: %d instructions, %d cycles\n\n" program.name
    (Trace.length trace) result.cycles;

  Printf.printf "static loads with cache misses (cost = cycles saved by prefetching):\n";
  List.iter
    (fun (ix, n) ->
      let c = Static_costs.miss_cost sc [ ix ] in
      Printf.printf "  @%-4d %-24s %5d misses  cost %6d cycles (%4.1f%%)\n" ix
        (Isa.to_string (Icost_isa.Program.fetch program ix))
        n c
        (100. *. float_of_int c /. float_of_int result.cycles))
    (Static_costs.missing_loads sc);

  Printf.printf "\npairwise prefetch advice:\n";
  List.iter
    (fun (a, b, icost, advice) ->
      Printf.printf "  @%d & @%d: icost %+d -> %s\n" a b icost
        (Static_costs.advice_name advice))
    (Static_costs.pairwise_advice sc);

  (* cross-check: actually prefetch (stride prefetcher) and measure *)
  let evts_pf, _ =
    Events.annotate ~prefetch:{ Events.no_prefetch with stride_loads = true } cfg trace
  in
  let result_pf = Ooo.run cfg trace evts_pf in
  Printf.printf
    "\ncross-check with a real stride prefetcher: %d -> %d cycles (%.1f%% speedup)\n"
    result.cycles result_pf.cycles
    (100. *. (float_of_int result.cycles /. float_of_int result_pf.cycles -. 1.));
  print_string
    "(mcf's pointer chains are stride-hostile, so most of its miss cost\n\
     survives; compare with `dune exec bin/main.exe -- experiment prefetch`\n\
     where streaming kernels lose most of theirs.)\n"
