(* Quickstart: measure costs and interaction costs of an execution.

   Pipeline: pick a workload -> interpret it -> classify events -> simulate
   -> build the dependence graph -> ask cost/icost questions.

   Run with: dune exec examples/quickstart.exe *)

module Workload = Icost_workloads.Workload
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown

let () =
  (* 1. a program: here the gcc-like kernel; any Icost_isa.Program.t works *)
  let program = (Workload.find_exn "gcc").build () in

  (* 2. architectural execution: the committed dynamic instruction stream *)
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 50_000 } program
  in
  Printf.printf "executed %d instructions of %s\n" (Trace.length trace)
    program.name;

  (* 3. classify microarchitectural events on the Table 6 machine *)
  let cfg = Config.default in
  let evts, summary = Events.annotate cfg trace in
  Printf.printf "events: %d dl1 misses, %d mispredicts, %d il1 misses\n"
    summary.dl1_misses summary.mispredicts summary.il1_misses;

  (* 4. cycle-level timing *)
  let result = Ooo.run cfg trace evts in
  Printf.printf "baseline: %d cycles (IPC %.2f)\n" result.cycles (Ooo.ipc result);

  (* 5. dependence graph + cost oracle *)
  let graph = Build.of_sim cfg trace evts result in
  let oracle = Cost.memoize (Build.oracle graph) in

  (* individual costs: speedup from idealizing one event class *)
  Printf.printf "\ncosts (cycles saved by idealizing each class alone):\n";
  List.iter
    (fun c ->
      Printf.printf "  %-6s %6.0f cycles  (%s)\n" (Category.name c)
        (Cost.cost oracle (Category.Set.singleton c))
        (Category.description c))
    Category.all;

  (* interaction costs: how classes combine *)
  Printf.printf "\nselected interaction costs:\n";
  let show a b =
    let v = Cost.icost_pair oracle a b in
    Printf.printf "  icost(%s, %s) = %+.0f cycles -> %s interaction\n"
      (Category.name a) (Category.name b) v
      (Cost.interaction_name (Cost.classify v))
  in
  show Category.Dmiss Category.Bmisp;
  show Category.Dl1 Category.Win;
  show Category.Dl1 Category.Bw;

  (* a complete parallelism-aware breakdown *)
  let bd = Breakdown.focus ~oracle ~focus_cat:Category.Dl1 in
  Printf.printf "\nbreakdown (focus dl1), percent of execution time:\n";
  List.iter
    (fun (row : Breakdown.row) ->
      Printf.printf "  %-12s %6.1f%%\n" (Breakdown.row_label row) row.percent)
    bd.rows;
  Printf.printf "  %-12s %6.1f%%\n" "Total" (Breakdown.total bd)
