(* Tests for the deterministic fault-injection framework: spec parsing
   and normalization, the disabled fast path, probability determinism
   under a fixed seed, @K / @K+ schedules, trip semantics, and the
   accounting (plain tally and the mirrored telemetry counter). *)

module Fault = Icost_util.Fault
module Telemetry = Icost_util.Telemetry

(* every test leaves the global framework disabled *)
let wrap f () = Fun.protect ~finally:(fun () -> Fault.disable ()) f

let test_parse_and_normalize () =
  List.iter
    (fun (spec, normalized) ->
      (match Fault.configure spec with
       | Ok () -> ()
       | Error msg -> Alcotest.fail (Printf.sprintf "%S rejected: %s" spec msg));
      Alcotest.(check bool) (spec ^ " enables") true (Fault.enabled ());
      Alcotest.(check (option string))
        (spec ^ " normalizes")
        (Some normalized) (Fault.active_spec ()))
    [
      ("worker_raise", "worker_raise:@1+;seed=0");
      ("a:0.5,b:@3,c:@2+;seed=7", "a:0.5,b:@3,c:@2+;seed=7");
      ("seed=9;x:1", "x:1;seed=9");
      ("b:@2+,a:0.25;seed=3", "b:@2+,a:0.25;seed=3");
    ];
  Fault.disable ();
  Alcotest.(check bool) "disable turns it off" false (Fault.enabled ());
  Alcotest.(check (option string)) "no spec when disabled" None
    (Fault.active_spec ())

let test_parse_errors () =
  List.iter
    (fun spec ->
      match Fault.configure spec with
      | Error _ -> ()
      | Ok () -> Alcotest.fail (Printf.sprintf "%S should not parse" spec))
    [
      "";
      "a:";
      "a:1.5";
      "a:-0.1";
      "a:@0";
      "a:@x";
      "a:0.5:b";
      ";seed=1";
      "a;seed=";
      "a;seed=notanumber";
    ]

let test_from_env () =
  (* unset/empty: a no-op that leaves the framework alone *)
  Unix.putenv "ICOST_FAULTS" "";
  (match Fault.from_env () with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("empty env rejected: " ^ msg));
  Alcotest.(check bool) "empty env does not enable" false (Fault.enabled ());
  Unix.putenv "ICOST_FAULTS" "p:@1;seed=5";
  (match Fault.from_env () with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("env spec rejected: " ^ msg));
  Alcotest.(check (option string)) "env spec armed" (Some "p:@1;seed=5")
    (Fault.active_spec ());
  Unix.putenv "ICOST_FAULTS" ""

let test_disabled_fast_path () =
  let p = Fault.point "never_armed" in
  let before = Fault.injected_total () in
  for _ = 1 to 1000 do
    if Fault.fire p then Alcotest.fail "disabled point fired"
  done;
  Fault.trip p (* must not raise *);
  Alcotest.(check int) "no injections tallied" before (Fault.injected_total ())

let test_probability_deterministic () =
  let p = Fault.point "prob_point" in
  let run () =
    Fault.configure_exn "prob_point:0.3;seed=42";
    List.init 200 (fun _ -> Fault.fire p)
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "same seed, same sequence" true (a = b);
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Printf.sprintf "p=0.3 fired %d/200 times" fired)
    true
    (fired > 20 && fired < 120);
  Fault.configure_exn "prob_point:0.3;seed=43";
  let c = List.init 200 (fun _ -> Fault.fire p) in
  Alcotest.(check bool) "different seed, different sequence" false (a = c)

let test_schedules () =
  let once = Fault.point "sched_once" in
  let from = Fault.point "sched_from" in
  Fault.configure_exn "sched_once:@3,sched_from:@4+";
  let seq p = List.init 6 (fun _ -> Fault.fire p) in
  Alcotest.(check (list bool)) "@3 fires on the third hit only"
    [ false; false; true; false; false; false ]
    (seq once);
  Alcotest.(check (list bool)) "@4+ fires from the fourth hit onward"
    [ false; false; false; true; true; true ]
    (seq from);
  Alcotest.(check int) "hits counted" 6 (Fault.hits once);
  Alcotest.(check int) "fires counted" 1 (Fault.fired once);
  Alcotest.(check int) "from-fires counted" 3 (Fault.fired from);
  (* reconfigure resets the counters and replays the schedule *)
  Fault.configure_exn "sched_once:@3,sched_from:@4+";
  Alcotest.(check int) "hit count reset" 0 (Fault.hits once);
  Alcotest.(check (list bool)) "schedule replays after re-arm"
    [ false; false; true; false; false; false ]
    (seq once)

let test_trip () =
  let p = Fault.point "trip_point" in
  Fault.configure_exn "trip_point:@2";
  Fault.trip p (* hit 1: no fire *);
  (match Fault.trip p with
   | () -> Alcotest.fail "second hit should raise"
   | exception Fault.Injected name ->
     Alcotest.(check string) "exception carries the point name" "trip_point"
       name);
  Fault.trip p (* hit 3: quiet again *);
  Alcotest.(check int) "one injection" 1 (Fault.fired p)

let test_accounting () =
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  Telemetry.reset ();
  Telemetry.enable ();
  let p = Fault.point "tally_point" in
  let before = Fault.injected_total () in
  Fault.configure_exn "tally_point";
  for _ = 1 to 5 do
    ignore (Fault.fire p)
  done;
  Alcotest.(check int) "plain tally counts every injection" (before + 5)
    (Fault.injected_total ());
  match List.assoc_opt "fault.injected" (Telemetry.counters ()) with
  | Some n -> Alcotest.(check bool) "telemetry mirror counts" true (n >= 5)
  | None -> Alcotest.fail "fault.injected counter missing"

let suite =
  ( "fault",
    [
      Alcotest.test_case "spec parse and normalize" `Quick
        (wrap test_parse_and_normalize);
      Alcotest.test_case "malformed specs rejected" `Quick
        (wrap test_parse_errors);
      Alcotest.test_case "ICOST_FAULTS environment" `Quick (wrap test_from_env);
      Alcotest.test_case "disabled fast path never fires" `Quick
        (wrap test_disabled_fast_path);
      Alcotest.test_case "probability deterministic under seed" `Quick
        (wrap test_probability_deterministic);
      Alcotest.test_case "@K and @K+ schedules" `Quick (wrap test_schedules);
      Alcotest.test_case "trip raises the typed exception" `Quick
        (wrap test_trip);
      Alcotest.test_case "injection accounting" `Quick (wrap test_accounting);
    ] )
