(* Tests for the conformance subsystem: workload generation, the law
   table, the shrinker, replay artifacts, and the fault -> violation ->
   shrink -> replay loop end to end. *)

module Gen = Icost_check.Gen
module Laws = Icost_check.Laws
module Case = Icost_check.Case
module Shrink = Icost_check.Shrink
module Repro = Icost_check.Repro
module Harness = Icost_check.Harness
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Category = Icost_core.Category
module Json = Icost_service.Json
module Fault = Icost_util.Fault
module Texport = Icost_report.Telemetry_export

(* ---------- generator ---------- *)

let trace_of program n =
  Interp.run ~config:{ Interp.default_config with max_instrs = n } program

let test_gen_deterministic () =
  List.iter
    (fun profile ->
      let p1 = Gen.generate ~profile 12345 and p2 = Gen.generate ~profile 12345 in
      let t1 = trace_of p1 1000 and t2 = trace_of p2 1000 in
      Alcotest.(check int)
        (Gen.profile_name profile ^ " trace length")
        (Trace.length t1) (Trace.length t2);
      Array.iteri
        (fun i (a : Trace.dyn) ->
          let b = t2.Trace.instrs.(i) in
          if a.pc <> b.pc || a.mem_addr <> b.mem_addr then
            Alcotest.failf "%s: traces diverge at %d"
              (Gen.profile_name profile) i)
        t1.Trace.instrs)
    Gen.all_profiles

let test_gen_profiles_differ () =
  (* same seed, different profiles: measurably different programs *)
  let mix profile =
    let t = trace_of (Gen.generate ~profile 777) 2000 in
    let mem = ref 0 and br = ref 0 in
    Array.iter
      (fun (d : Trace.dyn) ->
        (match d.instr with
         | Icost_isa.Isa.Load _ | Icost_isa.Isa.Store _ -> incr mem
         | Icost_isa.Isa.Branch _ -> incr br
         | _ -> ());
        ())
      t.Trace.instrs;
    (!mem, !br)
  in
  let mem_alias, _ = mix Gen.Alias_heavy in
  let mem_mixed, br_mixed = mix Gen.Mixed in
  let _, br_branch = mix Gen.Branch_heavy in
  Alcotest.(check bool) "alias profile is memory-denser" true
    (mem_alias > mem_mixed);
  Alcotest.(check bool) "branch profile is branch-denser" true
    (br_branch > br_mixed)

let test_gen_profile_names () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("profile name round-trips: " ^ Gen.profile_name p)
        true
        (Gen.profile_of_name (Gen.profile_name p) = Some p))
    Gen.all_profiles;
  Alcotest.(check bool) "unknown profile" true (Gen.profile_of_name "x" = None)

(* ---------- law table ---------- *)

let test_law_table_sane () =
  let names = Laws.names in
  Alcotest.(check bool) "at least a dozen laws" true (List.length names >= 12);
  let uniq = List.sort_uniq compare names in
  Alcotest.(check int) "law ids unique" (List.length names) (List.length uniq);
  List.iter
    (fun n ->
      match Laws.find n with
      | Some _ -> ()
      | None -> Alcotest.failf "find %S failed" n)
    names;
  Alcotest.(check bool) "find unknown" true (Laws.find "no-such-law" = None)

(* The whole table on one small kernel case: everything passes. *)
let test_laws_hold_on_small_case () =
  let case =
    { Case.target = Case.Bench "gcc"; variant = "base"; warmup = 2000;
      measure = 800; sample_seed = 42 }
  in
  let prepared = Case.prepare case in
  let ctx =
    Laws.make_ctx ~prof_opts:(Case.prof_opts case) (Case.config case) prepared
  in
  let results = Laws.run_all ctx in
  List.iter
    (fun ((law : Laws.law), outcomes) ->
      List.iter
        (fun (o : Laws.outcome) ->
          match o.Laws.status with
          | Laws.Pass | Laws.Skip _ -> ()
          | Laws.Fail v ->
            Alcotest.failf "law %s failed on a healthy case: %s" law.Laws.id
              v.Laws.msg)
        outcomes)
    results

(* ---------- case serialization ---------- *)

let test_case_json_roundtrip () =
  List.iter
    (fun case ->
      match Case.of_json (Json.parse (Json.encode (Case.to_json case))) with
      | Ok case' ->
        Alcotest.(check bool) (Case.name case ^ " round-trips") true
          (case = case')
      | Error m -> Alcotest.fail ("case rejected: " ^ m))
    [
      { Case.target = Case.Bench "mcf"; variant = "dl1"; warmup = 0;
        measure = 500; sample_seed = 7 };
      { Case.target = Case.Generated (Gen.Alias_heavy, 991); variant = "base";
        warmup = 100; measure = 4000; sample_seed = 42 };
    ]

(* ---------- shrinker ---------- *)

let test_shrink_minimizes () =
  let original =
    { Case.target = Case.Generated (Gen.Mixed, 800_000); variant = "bmisp";
      warmup = 20_000; measure = 4_000; sample_seed = 42 }
  in
  (* a pure size predicate: "fails" while the measured window stays above
     600 instructions — no simulation, so the test is instant *)
  let still_fails (c : Case.t) = c.Case.measure > 600 in
  let minimized, attempts = Shrink.minimize ~still_fails original in
  Alcotest.(check bool) "shrunk case still fails" true (still_fails minimized);
  Alcotest.(check bool) "strictly smaller" true
    (Shrink.size minimized < Shrink.size original);
  Alcotest.(check bool) "windows shrunk toward the bound" true
    (minimized.Case.measure < 4_000 && minimized.Case.measure > 600);
  Alcotest.(check bool) "warmup dropped" true (minimized.Case.warmup = 0);
  Alcotest.(check string) "variant reduced to base" "base"
    minimized.Case.variant;
  Alcotest.(check bool) "attempts counted" true (attempts > 0)

(* ---------- artifacts ---------- *)

let check_bits a b =
  Alcotest.(check int64) "bit-identical floats" (Int64.bits_of_float b)
    (Int64.bits_of_float a)

let test_repro_roundtrip () =
  let repro =
    { Repro.law = "cost-nonneg"; engine = "fullgraph"; detail = "dl1";
      case =
        { Case.target = Case.Generated (Gen.Branch_heavy, 123); variant = "dl1";
          warmup = 0; measure = 250; sample_seed = 9 };
      observed = -1000.25; expected = 0.; msg = "-1000.25 <> 0"; faults = "none" }
  in
  let m = Texport.manifest ~seed:42 ~workloads:[ "gen" ] () in
  match Repro.of_string (Repro.to_json ~manifest:m repro) with
  | Error e -> Alcotest.fail ("artifact rejected: " ^ e)
  | Ok r ->
    Alcotest.(check bool) "artifact round-trips" true (r = repro);
    check_bits r.Repro.observed repro.Repro.observed

let test_repro_rejects () =
  List.iter
    (fun (what, s) ->
      match Repro.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " should have been rejected"))
    [
      ("not json", "nope");
      ("wrong schema", {|{"schema":"icost.check.repro.v0"}|});
      ( "bad bits",
        {|{"schema":"icost.check.repro.v1","law":"l","engine":"e","detail":"d","observed_bits":"xyz","expected_bits":"0","msg":"m","faults":"none","case":{"target":{"kind":"bench","name":"gcc"},"variant":"base","warmup":0,"measure":100,"sample_seed":1}}|}
      );
    ]

(* ---------- the full loop: fault -> violation -> shrink -> replay ---------- *)

let test_fault_shrink_replay () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-check-test-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let opts =
    { Harness.default_opts with
      Harness.benches = [ "gcc" ];
      gen_per_profile = 0;
      warmup = 2_000;
      measure = 800;
      only = Some [ "cost-nonneg"; "idle-class-zero" ];
      artifact_dir = Some dir }
  in
  Fault.configure_exn "check.perturb_graph;seed=1";
  let summary =
    Fun.protect ~finally:Fault.disable (fun () -> Harness.run opts)
  in
  Alcotest.(check bool) "perturbation caught" true (summary.Harness.failed > 0);
  Alcotest.(check int) "no crashes" 0 summary.Harness.crashed;
  (match summary.Harness.artifacts with
   | [] -> Alcotest.fail "no counterexample artifact written"
   | (a : Harness.artifact) :: _ ->
     let case = a.Harness.repro.Repro.case in
     Alcotest.(check bool) "shrunk below 2000 measured instructions" true
       (case.Case.measure <= 2000);
     Alcotest.(check bool) "shrinking made it smaller" true
       (Shrink.size case
        < Shrink.size
            { Case.target = Case.Bench "gcc"; variant = "base";
              warmup = 2_000; measure = 800; sample_seed = 42 }
        || case.Case.measure < 800);
     (match a.Harness.file with
      | None -> Alcotest.fail "artifact not written despite artifact_dir"
      | Some file ->
        (* replay must reproduce the violation bit-for-bit, re-arming the
           recorded fault itself (none armed here) *)
        (match Harness.replay file with
         | Ok _ -> ()
         | Error e -> Alcotest.fail ("replay failed: " ^ e));
        Sys.remove file));
  (* and with the fault disarmed, the same opts come back clean *)
  let clean = Harness.run { opts with Harness.artifact_dir = None } in
  Alcotest.(check int) "healthy run has no failures" 0 clean.Harness.failed;
  Alcotest.(check bool) "healthy run passes laws" true (Harness.ok clean)

let suite =
  ( "check",
    [
      Alcotest.test_case "gen: deterministic per (profile, seed)" `Quick
        test_gen_deterministic;
      Alcotest.test_case "gen: profiles skew the mix" `Quick
        test_gen_profiles_differ;
      Alcotest.test_case "gen: profile names round-trip" `Quick
        test_gen_profile_names;
      Alcotest.test_case "laws: table is well-formed" `Quick test_law_table_sane;
      Alcotest.test_case "laws: all hold on a healthy case" `Slow
        test_laws_hold_on_small_case;
      Alcotest.test_case "case: JSON round-trip" `Quick test_case_json_roundtrip;
      Alcotest.test_case "shrink: greedy minimization" `Quick
        test_shrink_minimizes;
      Alcotest.test_case "repro: artifact round-trip" `Quick test_repro_roundtrip;
      Alcotest.test_case "repro: malformed artifacts rejected" `Quick
        test_repro_rejects;
      Alcotest.test_case "harness: fault, shrink, replay" `Slow
        test_fault_shrink_replay;
    ] )
