(* Tests for the telemetry sink and its exporters: span nesting, counter
   atomicity under the domain pool, the allocation-free disabled path on
   the hottest instrumented call site (Graph.eval_into), and the JSON
   artifacts round-tripping through an independent parser with the run
   manifest present. *)

module Telemetry = Icost_util.Telemetry
module Pool = Icost_util.Pool
module Texport = Icost_report.Telemetry_export
module Interp = Icost_isa.Interp
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph

(* Every test leaves the global sink exactly as it found it: disabled,
   empty, with the real clock. *)
let with_clean_sink f =
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ();
      Telemetry.set_clock Unix.gettimeofday)
    f

(* ---------- spans ---------- *)

(* Deterministic clock: each read advances by 1 ms. *)
let ticking_clock () =
  let t = ref 0. in
  fun () ->
    let v = !t in
    t := v +. 0.001;
    v

let test_span_nesting () =
  with_clean_sink @@ fun () ->
  Telemetry.set_clock (ticking_clock ());
  Telemetry.enable ();
  let outer = Telemetry.start_span "outer" in
  let inner = Telemetry.start_span "inner" in
  Telemetry.end_span inner ~attrs:[ ("k", "v") ];
  Telemetry.end_span outer;
  let sibling = Telemetry.start_span "sibling" in
  Telemetry.end_span sibling;
  match Telemetry.spans () with
  | [ o; i; s ] ->
    Alcotest.(check string) "outer first (sorted by start)" "outer" o.name;
    Alcotest.(check string) "inner second" "inner" i.name;
    Alcotest.(check string) "sibling last" "sibling" s.name;
    Alcotest.(check int) "outer is a root" 0 o.Telemetry.parent;
    Alcotest.(check int) "inner nested under outer" o.id i.Telemetry.parent;
    Alcotest.(check int) "sibling is a root again" 0 s.Telemetry.parent;
    Alcotest.(check (list (pair string string)))
      "attrs recorded"
      [ ("k", "v") ]
      i.Telemetry.attrs;
    Alcotest.(check bool) "inner dur = 1 tick" true (abs_float (i.dur -. 0.001) < 1e-9);
    Alcotest.(check bool) "outer dur = 3 ticks" true (abs_float (o.dur -. 0.003) < 1e-9);
    Alcotest.(check bool) "spans ordered by start" true
      (o.start <= i.start && i.start <= s.start)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

let test_with_span_exception () =
  with_clean_sink @@ fun () ->
  Telemetry.enable ();
  (try Telemetry.with_span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  match Telemetry.spans () with
  | [ s ] -> Alcotest.(check string) "span closed on exception" "boom" s.name
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_disabled_spans_invisible () =
  with_clean_sink @@ fun () ->
  let sp = Telemetry.start_span "ghost" in
  Telemetry.end_span sp;
  Telemetry.with_span "ghost2" (fun () -> ());
  Alcotest.(check int) "no spans recorded while disabled" 0
    (List.length (Telemetry.spans ()))

(* ---------- counters under the pool ---------- *)

let test_counter_atomic_under_pool () =
  with_clean_sink @@ fun () ->
  Telemetry.enable ();
  let c = Telemetry.counter "test.pool_increments" in
  let n = 20_000 in
  let prev = Pool.jobs () in
  Pool.set_jobs 4;
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs prev)
    (fun () ->
      Pool.parallel_iter (fun _ -> Telemetry.incr c) (Array.init n Fun.id));
  Alcotest.(check int) "no lost increments across domains" n (Telemetry.value c);
  Alcotest.(check bool) "counter visible in export" true
    (List.mem_assoc "test.pool_increments" (Telemetry.counters ()))

(* ---------- allocation-free disabled path ---------- *)

let small_graph () =
  let w = Icost_workloads.Workload.find_exn "gzip" in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 1500 } (w.build ())
  in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let r = Ooo.run cfg trace evts in
  Build.of_sim cfg trace evts r

let test_disabled_eval_into_alloc_free () =
  with_clean_sink @@ fun () ->
  let g = small_graph () in
  let buf = Array.make (Graph.num_nodes g) 0 in
  (* warm up: first call may trigger lazy initialization *)
  Graph.eval_into g buf;
  let iters = 100 in
  let before = Gc.minor_words () in
  for _ = 1 to iters do
    Graph.eval_into g buf
  done;
  let per_call = (Gc.minor_words () -. before) /. float_of_int iters in
  (* eval_into itself allocates ~2 minor words per call (one boxed ref);
     the disabled telemetry branch must not add to that. *)
  Alcotest.(check bool)
    (Printf.sprintf "eval_into stays allocation-free with sink off (%.2f w/call)"
       per_call)
    true (per_call <= 4.0)

(* ---------- JSON round-trip ---------- *)

(* Minimal recursive-descent JSON parser, independent of the emitter, so
   the round-trip test actually validates the artifact syntax. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else '\000' in
  let advance () = incr pos in
  let fail msg = Alcotest.failf "JSON parse error at %d: %s" !pos msg in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\n' | '\r' | '\t' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then (pos := !pos + String.length lit; v)
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          let hex = String.sub s (!pos + 1) 4 in
          pos := !pos + 4;
          let code = int_of_string ("0x" ^ hex) in
          if code < 128 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | c -> fail (Printf.sprintf "bad escape %c" c));
        advance ();
        loop ()
      | '\000' -> fail "unterminated string"
      | c -> Buffer.add_char buf c; advance (); loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      advance ()
    done;
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then (advance (); Obj [])
      else
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or } in object"
        in
        members []
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then (advance (); Arr [])
      else
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); elems (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ] in array"
        in
        elems []
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | '-' | '0' .. '9' -> parse_number ()
    | c -> fail (Printf.sprintf "unexpected %c" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field obj k =
  match obj with
  | Obj fields -> (
    match List.assoc_opt k fields with
    | Some v -> v
    | None -> Alcotest.failf "missing field %s" k)
  | _ -> Alcotest.failf "not an object looking up %s" k

let str_field obj k =
  match field obj k with Str s -> s | _ -> Alcotest.failf "%s not a string" k

let check_manifest m =
  Alcotest.(check string) "manifest.tool" "icost" (str_field m "tool");
  Alcotest.(check string) "manifest.ocaml" Sys.ocaml_version (str_field m "ocaml");
  Alcotest.(check string) "manifest.config digest" "cfg-digest"
    (str_field m "config");
  (match field m "workloads" with
  | Arr [ Str "gzip"; Str "mcf" ] -> ()
  | _ -> Alcotest.fail "manifest.workloads wrong");
  (match field m "seed" with
  | Num f -> Alcotest.(check int) "manifest.seed" 7 (int_of_float f)
  | _ -> Alcotest.fail "manifest.seed not a number");
  (match field m "jobs" with
  | Num f -> Alcotest.(check bool) "manifest.jobs >= 1" true (f >= 1.)
  | _ -> Alcotest.fail "manifest.jobs not a number");
  (* faults are off in this test, so the manifest marks a clean run *)
  Alcotest.(check string) "manifest.faults" "none" (str_field m "faults");
  (match field m "retries" with
  | Num f -> Alcotest.(check bool) "manifest.retries >= 0" true (f >= 0.)
  | _ -> Alcotest.fail "manifest.retries not a number");
  (* supervision tallies: present in every manifest (0 when the process
     runs no shard fleet), so chaos artifacts are self-describing *)
  List.iter
    (fun k ->
      match field m k with
      | Num f ->
        Alcotest.(check bool) (Printf.sprintf "manifest.%s >= 0" k) true
          (f >= 0.)
      | _ -> Alcotest.failf "manifest.%s not a number" k)
    [ "respawns"; "failovers" ]

let test_artifacts_roundtrip () =
  with_clean_sink @@ fun () ->
  Telemetry.set_clock (ticking_clock ());
  Telemetry.enable ();
  let c = Telemetry.counter "test.export_counter" in
  Telemetry.add c 42;
  let g = Telemetry.gauge "test.export_gauge" in
  Telemetry.set g 2.5;
  Telemetry.with_span "root" (fun () ->
      Telemetry.with_span "child" ~attrs:[ ("quote", "a\"b") ] (fun () -> ()));
  let m =
    Texport.manifest ~config_digest:"cfg-digest" ~seed:7
      ~workloads:[ "gzip"; "mcf" ] ()
  in
  (* trace artifact *)
  let trace = parse_json (Texport.trace_json m) in
  check_manifest (field trace "otherData");
  (match field trace "traceEvents" with
  | Arr evs ->
    Alcotest.(check int) "two trace events" 2 (List.length evs);
    let names = List.map (fun e -> str_field e "name") evs in
    Alcotest.(check bool) "root and child present" true
      (List.mem "root" names && List.mem "child" names);
    List.iter
      (fun e ->
        match (field e "ts", field e "dur") with
        | Num ts, Num dur ->
          Alcotest.(check bool) "ts/dur are non-negative us" true
            (ts >= 0. && dur > 0.)
        | _ -> Alcotest.fail "ts/dur not numbers")
      evs
  | _ -> Alcotest.fail "traceEvents not an array");
  (* metrics artifact *)
  let metrics = parse_json (Texport.metrics_json m) in
  Alcotest.(check string) "metrics schema" "icost.metrics.v1"
    (str_field metrics "schema");
  check_manifest (field metrics "manifest");
  (match field (field metrics "counters") "test.export_counter" with
  | Num f -> Alcotest.(check int) "counter exported" 42 (int_of_float f)
  | _ -> Alcotest.fail "counter missing from metrics");
  (match field (field metrics "gauges") "test.export_gauge" with
  | Num f -> Alcotest.(check (float 1e-9)) "gauge exported" 2.5 f
  | _ -> Alcotest.fail "gauge missing from metrics");
  match field (field metrics "spans") "count" with
  | Num f -> Alcotest.(check int) "span count" 2 (int_of_float f)
  | _ -> Alcotest.fail "span count missing"

let test_reset () =
  with_clean_sink @@ fun () ->
  Telemetry.enable ();
  let c = Telemetry.counter "test.reset_counter" in
  Telemetry.incr c;
  Telemetry.with_span "gone" (fun () -> ());
  Telemetry.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.value c);
  Alcotest.(check int) "spans dropped" 0 (List.length (Telemetry.spans ()))

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "with_span closes on exception" `Quick
        test_with_span_exception;
      Alcotest.test_case "disabled sink records nothing" `Quick
        test_disabled_spans_invisible;
      Alcotest.test_case "counters atomic under the pool" `Quick
        test_counter_atomic_under_pool;
      Alcotest.test_case "eval_into alloc-free with sink off" `Quick
        test_disabled_eval_into_alloc_free;
      Alcotest.test_case "trace/metrics JSON round-trip + manifest" `Quick
        test_artifacts_roundtrip;
      Alcotest.test_case "reset zeroes the sink" `Quick test_reset;
    ] )
