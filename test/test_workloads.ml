(* Tests for the workload kernels: they assemble, validate, run without
   getting stuck, and exhibit their intended microarchitectural character. *)

module Workload = Icost_workloads.Workload
module Interp = Icost_isa.Interp
module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Program = Icost_isa.Program
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events

let run ?(n = 20_000) name =
  let w = Workload.find_exn name in
  let program = w.build () in
  (match Program.validate program with
   | Ok () -> ()
   | Error e -> Alcotest.failf "%s: %s" name e);
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = n } program in
  (program, trace)

let test_all_run () =
  List.iter
    (fun name ->
      let _, trace = run name in
      Alcotest.(check int)
        (Printf.sprintf "%s runs to the budget" name)
        20_000 (Trace.length trace))
    Workload.names

let test_registry () =
  Alcotest.(check int) "twelve workloads" 12 (List.length Workload.all);
  Alcotest.(check bool) "find works" true (Workload.find "mcf" <> None);
  Alcotest.(check bool) "find unknown" true (Workload.find "nope" = None);
  Alcotest.check_raises "find_exn unknown"
    (Invalid_argument
       "Workload.find_exn: unknown workload \"nope\" (known: bzip2, crafty, eon, \
        gap, gcc, gzip, mcf, parser, perlbmk, twolf, vortex, vpr)") (fun () ->
      ignore (Workload.find_exn "nope"))

let class_fraction trace pred =
  let n = Trace.length trace in
  float_of_int (Trace.count_if trace pred) /. float_of_int n

let test_mcf_memory_bound () =
  let _, trace = run "mcf" in
  let loads = class_fraction trace (fun d -> Isa.is_load d.instr) in
  Alcotest.(check bool) (Printf.sprintf "mcf load-heavy (%.2f)" loads) true (loads > 0.15);
  (* nearly every node access misses: check via annotation *)
  let evts, s = Events.annotate Config.default trace in
  ignore evts;
  Alcotest.(check bool) "mcf misses a lot" true (s.dl1_misses > 1000)

let test_eon_fp_heavy () =
  let _, trace = run "eon" in
  let fp =
    class_fraction trace (fun d ->
        match Isa.class_of d.instr with
        | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div -> true
        | _ -> false)
  in
  Alcotest.(check bool) (Printf.sprintf "eon FP fraction %.2f" fp) true (fp > 0.1)

let test_perlbmk_indirect () =
  let _, trace = run "perlbmk" in
  let ind = Trace.count_if trace (fun d -> Isa.is_indirect d.instr) in
  Alcotest.(check bool) (Printf.sprintf "perlbmk indirect jumps (%d)" ind) true (ind > 500)

let test_parser_recursion () =
  let _, trace = run "parser" in
  let calls = Trace.count_if trace (fun d -> match d.instr with Isa.Call _ -> true | _ -> false) in
  let rets = Trace.count_if trace (fun d -> d.instr = Isa.Ret) in
  Alcotest.(check bool) "parser calls" true (calls > 300);
  Alcotest.(check bool) "calls ~ rets" true (abs (calls - rets) < 20)

let test_bzip2_mispredicts () =
  let _, trace = run "bzip2" in
  let _, s = Events.annotate Config.default trace in
  let rate = float_of_int s.mispredicts /. float_of_int (max 1 s.cond_branches) in
  Alcotest.(check bool)
    (Printf.sprintf "bzip2 mispredict rate %.2f" rate)
    true (rate > 0.08)

let test_vortex_predictable () =
  let _, trace = run "vortex" in
  let _, s = Events.annotate Config.default trace in
  let rate = float_of_int s.mispredicts /. float_of_int (max 1 s.cond_branches) in
  Alcotest.(check bool)
    (Printf.sprintf "vortex mispredict rate %.3f" rate)
    true (rate < 0.02)

let test_gap_serial_chains () =
  let _, trace = run ~n:2000 "gap" in
  (* most instructions in gap's inner loop form a dependent chain *)
  let chained =
    Trace.count_if trace (fun d ->
        List.exists (fun (_, p) -> d.seq - p <= 2) d.reg_deps)
  in
  Alcotest.(check bool) "gap has tight chains" true (chained > 1000)

let test_deterministic_builds () =
  List.iter
    (fun name ->
      let w = Workload.find_exn name in
      let p1 = w.build () and p2 = w.build () in
      Alcotest.(check bool)
        (Printf.sprintf "%s builds identically" name)
        true
        (p1.code = p2.code && p1.mem_image = p2.mem_image))
    [ "mcf"; "gcc"; "gzip"; "perlbmk" ]

let test_mem_images_disjoint_from_code () =
  (* data segments start at 1 MiB; PCs are tiny, so no overlap *)
  List.iter
    (fun (w : Workload.t) ->
      let p = w.build () in
      List.iter
        (fun (addr, _) ->
          if addr < Icost_workloads.Kernel_util.data_base then
            Alcotest.failf "%s writes below the data base: %x" w.name addr)
        p.mem_image)
    Workload.all


(* --- the I-cache stress kernel (imiss coverage) --- *)

let test_istress_imiss () =
  let program = Icost_workloads.Istress.program ~blocks:4096 () in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 30_000 } program
  in
  let _, s = Events.annotate Config.default trace in
  (* 4096 blocks x 16 instrs x 4 B = 256 KiB of code: every block fetch
     misses the 32 KiB L1 I-cache in steady state *)
  Alcotest.(check bool)
    (Printf.sprintf "istress misses the I-cache (%d misses)" s.il1_misses)
    true
    (s.il1_misses > 1000)

let test_istress_imiss_cost () =
  let program = Icost_workloads.Istress.program ~blocks:4096 () in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 20_000 } program
  in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Icost_sim.Ooo.run cfg trace evts in
  let g = Icost_depgraph.Build.of_sim cfg trace evts result in
  let oracle = Icost_core.Cost.memoize (Icost_depgraph.Build.oracle g) in
  let module Cat = Icost_core.Category in
  let base = Icost_core.Cost.query oracle Cat.Set.empty in
  let imiss_cost =
    100. *. Icost_core.Cost.cost oracle (Cat.Set.singleton Cat.Imiss) /. base
  in
  Alcotest.(check bool)
    (Printf.sprintf "imiss cost dominates istress (%.1f%%)" imiss_cost)
    true (imiss_cost > 30.)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "all run to budget" `Slow test_all_run;
      Alcotest.test_case "registry" `Quick test_registry;
      Alcotest.test_case "mcf memory-bound" `Quick test_mcf_memory_bound;
      Alcotest.test_case "eon FP-heavy" `Quick test_eon_fp_heavy;
      Alcotest.test_case "perlbmk indirect" `Quick test_perlbmk_indirect;
      Alcotest.test_case "parser recursion" `Quick test_parser_recursion;
      Alcotest.test_case "bzip2 mispredicts" `Quick test_bzip2_mispredicts;
      Alcotest.test_case "vortex predictable" `Quick test_vortex_predictable;
      Alcotest.test_case "gap serial chains" `Quick test_gap_serial_chains;
      Alcotest.test_case "deterministic builds" `Quick test_deterministic_builds;
      Alcotest.test_case "memory layout" `Quick test_mem_images_disjoint_from_code;
      Alcotest.test_case "istress exercises the I-cache" `Quick test_istress_imiss;
      Alcotest.test_case "istress imiss cost" `Quick test_istress_imiss_cost;
    ] )
