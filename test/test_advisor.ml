(* Tests for the optimization advisor and the static-instruction cost
   analysis. *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Advisor = Icost_core.Advisor
module Config = Icost_uarch.Config
module Interp = Icost_isa.Interp
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Static_costs = Icost_depgraph.Static_costs

(* --- advisor on synthetic oracles with known structure --- *)

(* Monotone completion of a partial oracle: the time under [s] is the best
   (smallest) time of any listed subset of [s] — unlisted categories have no
   effect of their own. *)
let oracle_of_table rows : Cost.oracle =
  Cost.of_fn (fun s ->
      List.fold_left
        (fun acc (v, t) -> if Category.Set.subset v s then min acc t else acc)
        (List.assoc Category.Set.empty rows)
        rows)

let test_advisor_bottleneck_and_shrink () =
  let dmiss = Category.Set.singleton Category.Dmiss in
  let oracle =
    oracle_of_table [ (Category.Set.empty, 1000.); (dmiss, 600.) ]
  in
  let r = Advisor.analyze oracle in
  let attacks =
    List.filter_map
      (function Advisor.Attack { cat; _ } -> Some cat | _ -> None)
      r.recommendations
  in
  Alcotest.(check bool) "dmiss attacked" true (List.mem Category.Dmiss attacks);
  let shrinkable =
    List.filter_map
      (function Advisor.Deoptimize { cat; _ } -> Some cat | _ -> None)
      r.recommendations
  in
  Alcotest.(check bool) "everything else shrinkable" true
    (List.mem Category.Bmisp shrinkable && List.mem Category.Lgalu shrinkable)

let test_advisor_serial_lever () =
  (* dl1 and win each cost 300 alone; together still 300: strongly serial *)
  let dl1 = Category.Set.singleton Category.Dl1 in
  let win = Category.Set.singleton Category.Win in
  let both = Category.Set.union dl1 win in
  let oracle =
    oracle_of_table
      [ (Category.Set.empty, 1000.); (dl1, 700.); (win, 700.); (both, 700.) ]
  in
  let r = Advisor.analyze oracle in
  let levers =
    List.filter_map
      (function
        | Advisor.Indirect_lever { cat; partner; _ } -> Some (cat, partner)
        | _ -> None)
      r.recommendations
  in
  Alcotest.(check bool) "serial pair produces an indirect lever" true
    (List.mem (Category.Dl1, Category.Win) levers
     || List.mem (Category.Win, Category.Dl1) levers)

let test_advisor_parallel_joint_attack () =
  (* classic two-parallel-misses: neither helps alone, both together do *)
  let dl1 = Category.Set.singleton Category.Dl1 in
  let dmiss = Category.Set.singleton Category.Dmiss in
  let both = Category.Set.union dl1 dmiss in
  let oracle =
    oracle_of_table
      [ (Category.Set.empty, 1000.); (dl1, 880.); (dmiss, 880.); (both, 500.) ]
  in
  let r =
    Advisor.analyze
      ~thresholds:{ Advisor.default_thresholds with bottleneck = 10. }
      oracle
  in
  let joint =
    List.exists
      (function Advisor.Attack_with _ -> true | _ -> false)
      r.recommendations
  in
  Alcotest.(check bool) "parallel pair produces a joint attack" true joint

let test_report_renders () =
  let oracle = oracle_of_table [ (Category.Set.empty, 100.) ] in
  let r = Advisor.analyze oracle in
  let s = Advisor.report_to_string r in
  Alcotest.(check bool) "report nonempty" true (String.length s > 50)

(* --- static costs on a real workload --- *)

let static_setup name =
  let w = Icost_workloads.Workload.find_exn name in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 10_000 } (w.build ())
  in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  let graph = Build.of_sim cfg trace evts result in
  (cfg, trace, evts, Static_costs.create cfg trace evts graph)

let test_static_missing_loads () =
  let _, _, evts, sc = static_setup "mcf" in
  let loads = Static_costs.missing_loads sc in
  Alcotest.(check bool) "mcf has missing static loads" true (List.length loads >= 2);
  (* counts sum to total dl1 load misses *)
  let total = List.fold_left (fun a (_, n) -> a + n) 0 loads in
  let from_evts =
    Array.fold_left (fun a (e : Events.evt) -> if e.dl1_miss && e.share_src = None && e.line >= 0 then a else a) 0 evts
  in
  ignore from_evts;
  Alcotest.(check bool) "plausible miss total" true (total > 500)

let test_static_miss_cost_bounds () =
  let _, _, _, sc = static_setup "mcf" in
  let loads = List.map fst (Static_costs.missing_loads sc) in
  let all_cost = Static_costs.miss_cost sc loads in
  List.iter
    (fun ix ->
      let c = Static_costs.miss_cost sc [ ix ] in
      if c < 0 then Alcotest.failf "negative miss cost for @%d" ix;
      if c > all_cost + 1 then
        Alcotest.failf "single load @%d costs more than all loads together" ix)
    loads;
  Alcotest.(check bool) "prefetching everything helps a lot" true
    (all_cost > sc.base / 4)

let test_static_advice () =
  let _, _, _, sc = static_setup "mcf" in
  let advice = Static_costs.pairwise_advice sc in
  List.iter
    (fun (a, b, ic, adv) ->
      (* classification is consistent with the icost sign *)
      let expected = Static_costs.advice_of_icost ~threshold:(sc.base / 200) ic in
      if adv <> expected then Alcotest.failf "inconsistent advice for @%d,@%d" a b)
    advice

let test_static_exec_cost () =
  let _, trace, _, sc = static_setup "gap" in
  (* the most executed static instruction should have a non-negative cost *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun (d : Icost_isa.Trace.dyn) ->
      Hashtbl.replace counts d.static_ix
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts d.static_ix)))
    trace.instrs;
  let hot, _ =
    Hashtbl.fold (fun ix n (bix, bn) -> if n > bn then (ix, n) else (bix, bn)) counts (0, 0)
  in
  let c = Static_costs.static_exec_cost sc hot in
  Alcotest.(check bool) (Printf.sprintf "hot instr cost %d bounded" c) true
    (c >= 0 && c <= sc.base)

let suite =
  ( "advisor",
    [
      Alcotest.test_case "bottleneck + shrink" `Quick test_advisor_bottleneck_and_shrink;
      Alcotest.test_case "serial lever" `Quick test_advisor_serial_lever;
      Alcotest.test_case "parallel joint attack" `Quick test_advisor_parallel_joint_attack;
      Alcotest.test_case "report renders" `Quick test_report_renders;
      Alcotest.test_case "static missing loads" `Quick test_static_missing_loads;
      Alcotest.test_case "static miss cost bounds" `Quick test_static_miss_cost_bounds;
      Alcotest.test_case "static advice consistent" `Quick test_static_advice;
      Alcotest.test_case "static exec cost" `Quick test_static_exec_cost;
    ] )
