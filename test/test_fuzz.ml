(* Cross-stack fuzzing: random generated programs pushed through the
   interpreter, simulator, graph and profiler, checking global invariants
   that must hold for ANY program. *)

(* the workload generator moved into the conformance library; the default
   profile generates the same programs the old in-tree copy did *)
module Gen_program = Icost_check.Gen
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category
module Cost = Icost_core.Cost

let pipeline seed ~n =
  let program = Gen_program.generate seed in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = n } program in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  (cfg, program, trace, evts, result)

let seed_gen = QCheck.make ~print:string_of_int QCheck.Gen.(int_range 1 1_000_000)

let prop_runs_and_deterministic =
  QCheck.Test.make ~name:"fuzz: generated programs run deterministically" ~count:25
    seed_gen
    (fun seed ->
      let p1 = Gen_program.generate seed in
      let p2 = Gen_program.generate seed in
      let cfgi = { Interp.default_config with max_instrs = 1500 } in
      let t1 = Interp.run ~config:cfgi p1 in
      let t2 = Interp.run ~config:cfgi p2 in
      Trace.length t1 = 1500
      && Array.for_all2
           (fun (a : Trace.dyn) (b : Trace.dyn) -> a.pc = b.pc && a.mem_addr = b.mem_addr)
           t1.instrs t2.instrs)

let prop_sim_invariants =
  QCheck.Test.make ~name:"fuzz: stage times monotone, dispatch/commit in order"
    ~count:20 seed_gen
    (fun seed ->
      let _, _, _, _, r = pipeline seed ~n:1500 in
      let ok = ref true in
      Array.iteri
        (fun i (s : Ooo.slot) ->
          if
            not
              (s.fetch <= s.dispatch && s.dispatch < s.ready
               && s.ready <= s.exec_start && s.exec_start <= s.complete
               && s.complete < s.commit)
          then ok := false;
          if i > 0 && s.dispatch < r.slots.(i - 1).dispatch then ok := false;
          if i > 0 && s.commit < r.slots.(i - 1).commit then ok := false)
        r.slots;
      !ok)

let prop_graph_tracks_sim =
  QCheck.Test.make ~name:"fuzz: graph critical path within 15% of the simulator"
    ~count:20 seed_gen
    (fun seed ->
      let cfg, _, trace, evts, r = pipeline seed ~n:1500 in
      let g = Build.of_sim cfg trace evts r in
      let cp = Graph.critical_length g in
      Float.abs (float_of_int (cp - r.cycles)) <= 0.15 *. float_of_int r.cycles)

let prop_multisim_costs_nonnegative =
  QCheck.Test.make
    ~name:"fuzz: idealizing a class never slows the simulator (>= -1% tolerance)"
    ~count:10 seed_gen
    (fun seed ->
      let cfg, _, trace, evts, r = pipeline seed ~n:1200 in
      List.for_all
        (fun c ->
          let ideal = Multisim.ideal_of_set (Category.Set.singleton c) in
          let cyc = Ooo.cycles { cfg with ideal } trace evts in
          float_of_int cyc <= 1.01 *. float_of_int r.cycles)
        Category.all)

let prop_icost_accounting =
  QCheck.Test.make
    ~name:"fuzz: icosts over the power set telescope to cost(full) on real graphs"
    ~count:8 seed_gen
    (fun seed ->
      let cfg, _, trace, evts, r = pipeline seed ~n:800 in
      let g = Build.of_sim cfg trace evts r in
      let oracle = Cost.memoize (Build.oracle g) in
      Float.abs
        (Cost.sum_icosts_powerset oracle Category.Set.full
        -. Cost.cost oracle Category.Set.full)
      < 1e-6)

let prop_profiler_never_crashes =
  QCheck.Test.make ~name:"fuzz: profiler builds or cleanly aborts fragments"
    ~count:8 seed_gen
    (fun seed ->
      let cfg, program, trace, evts, r = pipeline seed ~n:4000 in
      let opts =
        { Icost_profiler.Sampler.default_opts with sig_len = 300; sig_period = 500 }
      in
      let prof = Icost_profiler.Profile.profile ~opts cfg program trace evts r in
      let s = prof.stats in
      s.fragments_built + s.fragments_aborted = s.num_signatures
      &&
      let oracle = Icost_profiler.Profile.oracle prof in
      Cost.query oracle Category.Set.empty >= 0.)

let prop_slice_consistency =
  QCheck.Test.make ~name:"fuzz: sliced trace dependences stay in range" ~count:15
    seed_gen
    (fun seed ->
      let program = Gen_program.generate seed in
      let trace =
        Interp.run ~config:{ Interp.default_config with max_instrs = 2000 } program
      in
      let s = Trace.slice trace ~start:700 ~len:800 in
      Array.for_all
        (fun (d : Trace.dyn) ->
          List.for_all (fun (_, p) -> p >= 0 && p < d.seq) d.reg_deps
          && (match d.mem_dep with Some p -> p >= 0 && p < d.seq | None -> true))
        s.instrs)

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest prop_runs_and_deterministic;
      QCheck_alcotest.to_alcotest prop_sim_invariants;
      QCheck_alcotest.to_alcotest prop_graph_tracks_sim;
      QCheck_alcotest.to_alcotest prop_multisim_costs_nonnegative;
      QCheck_alcotest.to_alcotest prop_icost_accounting;
      QCheck_alcotest.to_alcotest prop_profiler_never_crashes;
      QCheck_alcotest.to_alcotest prop_slice_consistency;
    ] )
