(* Tests for the parametric-sensitivity subsystem: the parameter
   registry and grid-spec parser, config-digest distinctness across
   every swept field (the no-aliasing property the server's sweep-point
   cache leans on), and the sweep engine itself — baseline identity,
   monotone window curve, knee detection, cross-axis deduplication,
   point-cache interposition, parallel determinism and per-point
   supervision. *)

module Config = Icost_uarch.Config
module Runner = Icost_experiments.Runner
module Workload = Icost_workloads.Workload
module Graph = Icost_depgraph.Graph
module Texport = Icost_report.Telemetry_export
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault
module Advisor = Icost_core.Advisor
module Param = Icost_sensitivity.Param
module Sweep = Icost_sensitivity.Sweep

let bits = Int64.bits_of_float
let check_feq what a b = Alcotest.(check int64) what (bits a) (bits b)

let values axis = axis.Param.ax_values

(* ---------- parameter registry ---------- *)

let test_registry () =
  Alcotest.(check bool) "a dozen parameters" true (List.length Param.all >= 12);
  let uniq = List.sort_uniq compare Param.names in
  Alcotest.(check int) "names unique" (List.length Param.names)
    (List.length uniq);
  List.iter
    (fun (p : Param.t) ->
      let cfg = Config.default in
      let v = p.Param.p_get cfg in
      Alcotest.(check bool)
        (p.Param.p_name ^ " default above its minimum")
        true (v >= p.Param.p_min);
      (* writing the current value back must be physically lazy: every
         axis' baseline point then shares one config and one digest *)
      Alcotest.(check bool)
        (p.Param.p_name ^ " identical write is physically lazy")
        true
        (p.Param.p_apply cfg v == cfg);
      let cfg' = p.Param.p_apply cfg (v + 1) in
      Alcotest.(check int)
        (p.Param.p_name ^ " apply/get round-trip")
        (v + 1)
        (p.Param.p_get cfg'))
    Param.all;
  (match Param.find "window" with
  | Some p -> Alcotest.(check string) "find window" "window" p.Param.p_name
  | None -> Alcotest.fail "window not registered");
  Alcotest.(check bool) "find unknown" true (Param.find "nope" = None);
  match Param.find_exn "nope" with
  | _ -> Alcotest.fail "find_exn should reject unknown names"
  | exception Invalid_argument msg ->
    Alcotest.(check bool) "message lists known names" true
      (let rec contains i =
         i + 6 <= String.length msg
         && (String.sub msg i 6 = "window" || contains (i + 1))
       in
       contains 0)

(* Each parameter writes a distinct config field, and the marshalled
   digest sees every one of them: perturbing any single parameter moves
   the digest, and no two perturbations collide.  This is what keys the
   server's sweep-point cache, so it is the aliasing test for the whole
   grid. *)
let test_digest_distinct_per_param () =
  let cfg = Config.default in
  let base = Texport.digest cfg in
  let digests =
    List.map
      (fun (p : Param.t) ->
        let d =
          Texport.digest (p.Param.p_apply cfg (p.Param.p_get cfg + 1))
        in
        Alcotest.(check bool)
          (p.Param.p_name ^ " perturbation moves the digest")
          true (d <> base);
        d)
      Param.all
  in
  let uniq = List.sort_uniq compare digests in
  Alcotest.(check int) "perturbed digests pairwise distinct"
    (List.length digests) (List.length uniq)

(* ---------- grid-spec parsing ---------- *)

let parse_ok spec =
  match Param.parse_axis spec with
  | Ok a -> a
  | Error msg -> Alcotest.fail (spec ^ ": " ^ msg)

let test_parse_axis () =
  let a = parse_ok "window=16..256" in
  Alcotest.(check (list int)) "geometric doubling, hi included"
    [ 16; 32; 64; 128; 256 ] (values a);
  Alcotest.(check (list int)) "geometric with off-grid hi"
    [ 16; 32; 64; 100 ]
    (values (parse_ok "window=16..100"));
  Alcotest.(check (list int)) "arithmetic step"
    [ 25; 50; 75; 100 ]
    (values (parse_ok "mem_lat=25..100:25"));
  Alcotest.(check (list int)) "arithmetic off-grid hi included"
    [ 10; 40; 70; 90 ]
    (values (parse_ok "mem_lat=10..90:30"));
  Alcotest.(check (list int)) "single point"
    [ 64 ]
    (values (parse_ok "window=64..64"));
  List.iter
    (fun spec ->
      match Param.parse_axis spec with
      | Ok _ -> Alcotest.fail ("accepted bad spec " ^ spec)
      | Error msg ->
        Alcotest.(check bool) (spec ^ " rejected with a message") true
          (String.length msg > 0))
    [
      "nope=1..4";          (* unknown parameter *)
      "window";             (* no grid *)
      "window=8..4";        (* empty range *)
      "window=16..256:0";   (* zero step *)
      "window=16..256:-4";  (* negative step *)
      "window=0..64";       (* below p_min *)
      "window=1..100000:1"; (* over max_points_per_axis *)
      "window=a..b";        (* not numbers *)
    ]

let test_parse_axes () =
  (match Param.parse_axes [ "window=16..64"; "mem_lat=25..100:25" ] with
  | Ok axes -> Alcotest.(check int) "two axes" 2 (List.length axes)
  | Error msg -> Alcotest.fail msg);
  (match Param.parse_axes [] with
  | Ok _ -> Alcotest.fail "empty axis list accepted"
  | Error _ -> ());
  (match Param.parse_axes [ "window=16..64"; "window=16..32" ] with
  | Ok _ -> Alcotest.fail "duplicate parameter accepted"
  | Error msg ->
    Alcotest.(check bool) "duplicate named" true
      (let rec contains i =
         i + 6 <= String.length msg
         && (String.sub msg i 6 = "window" || contains (i + 1))
       in
       contains 0));
  match Param.parse_axes [ "window=16..64"; "mem_lat=25..0:25" ] with
  | Ok _ -> Alcotest.fail "all-or-nothing violated"
  | Error _ -> ()

(* ---------- the sweep engine ---------- *)

let prepared_gcc =
  lazy
    (Runner.prepare
       { Runner.warmup = 2000; measure = 800; benches = [ "gcc" ] }
       (Workload.find_exn "gcc"))

let run_sweep ?knee_frac ?point_cache ~engine specs =
  let prepared = Lazy.force prepared_gcc in
  let axes =
    match Param.parse_axes specs with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  Sweep.run ?knee_frac ?point_cache ~engine ~cfg:Config.default ~prepared
    ~axes ()

let curve_cycles (c : Sweep.curve) =
  List.map
    (fun (pt : Sweep.point) ->
      match pt.Sweep.pt_outcome with
      | Ok cy -> (pt.pt_value, cy)
      | Error e -> Alcotest.fail (Printexc.to_string e))
    c.Sweep.cv_points

let test_sweep_window_curve () =
  let r = run_sweep ~engine:Sweep.Sim [ "window=16..256" ] in
  let prepared = Lazy.force prepared_gcc in
  let base =
    float_of_int (Runner.baseline_run Config.default prepared).Icost_sim.Ooo.cycles
  in
  check_feq "baseline bit-identical to Runner.baseline_run" base
    r.Sweep.sw_baseline;
  let c = List.hd r.Sweep.sw_curves in
  Alcotest.(check int) "base value recorded"
    ((Param.find_exn "window").Param.p_get Config.default)
    c.Sweep.cv_base_value;
  let pts = curve_cycles c in
  Alcotest.(check (list int)) "points ascending, baseline inserted"
    [ 16; 32; 64; 128; 256 ] (List.map fst pts);
  check_feq "baseline point equals sweep baseline" r.Sweep.sw_baseline
    (List.assoc c.cv_base_value pts);
  (* more window is never slower on this kernel *)
  let rec mono = function
    | (_, c1) :: ((_, c2) :: _ as tl) ->
      Alcotest.(check bool) "monotone non-increasing" true (c1 >= c2);
      mono tl
    | _ -> ()
  in
  mono pts;
  Alcotest.(check int) "one delta per step" 4
    (List.length c.Sweep.cv_deltas);
  List.iter
    (fun (_, d) ->
      Alcotest.(check bool) "deltas non-positive" true (d <= 0.))
    c.Sweep.cv_deltas;
  match c.Sweep.cv_knee with
  | None -> Alcotest.fail "no knee on a 5-point curve"
  | Some k ->
    Alcotest.(check bool) "knee within the grid" true
      (List.mem_assoc k.Sweep.kn_value pts)

let test_sweep_graph_engine_identity () =
  let r = run_sweep ~engine:Sweep.Graph_cp [ "window=64..64" ] in
  let prepared = Lazy.force prepared_gcc in
  let baseline = Runner.baseline_run Config.default prepared in
  let g = Runner.graph_of ~baseline Config.default prepared in
  check_feq "graph engine baseline is the critical path"
    (float_of_int (Graph.critical_length g))
    r.Sweep.sw_baseline

(* Two axes both contain the session config's own point; a third value
   repeats across axes only via its digest.  Distinct configs are priced
   once. *)
let test_sweep_dedup_and_cache () =
  let built = ref 0 and served = ref 0 in
  let point_cache _cfg build =
    (* a trivial interposed cache: build everything, count calls *)
    incr built;
    (build (), !served > 0)
  in
  let r =
    run_sweep ~engine:Sweep.Sim ~point_cache
      [ "window=16..64"; "mem_lat=25..100:25" ]
  in
  (* window axis: 16 32 64(base); mem_lat axis: 25 50 75 100(base=100).
     mem_lat's baseline value 100 is on its own grid, so the distinct
     configs are 16,32,64-base,25,50,75 = 6; the base config is shared
     by both axes. *)
  Alcotest.(check int) "distinct points priced once" 6 r.Sweep.sw_points;
  Alcotest.(check int) "every distinct point hit the cache" 6 !built;
  Alcotest.(check int) "no hits reported by this cache" 0
    r.Sweep.sw_cache_hits;
  Alcotest.(check int) "two curves" 2 (List.length r.Sweep.sw_curves);
  let mem = List.nth r.Sweep.sw_curves 1 in
  Alcotest.(check (list int)) "mem_lat grid with baseline shared"
    [ 25; 50; 75; 100 ]
    (List.map fst (curve_cycles mem));
  (* the same sweep again, with the cache claiming every entry existed *)
  served := 1;
  let r2 =
    run_sweep ~engine:Sweep.Sim ~point_cache
      [ "window=16..64"; "mem_lat=25..100:25" ]
  in
  Alcotest.(check int) "all points reported cached" 6 r2.Sweep.sw_cache_hits

let test_sweep_parallel_deterministic () =
  let jobs0 = Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs jobs0)
    (fun () ->
      Pool.set_jobs 1;
      let r1 = run_sweep ~engine:Sweep.Sim [ "window=16..256" ] in
      Pool.set_jobs 4;
      let r2 = run_sweep ~engine:Sweep.Sim [ "window=16..256" ] in
      check_feq "baseline identical across job counts" r1.Sweep.sw_baseline
        r2.Sweep.sw_baseline;
      List.iter2
        (fun (v1, c1) (v2, c2) ->
          Alcotest.(check int) "same grid" v1 v2;
          check_feq "same cycles" c1 c2)
        (curve_cycles (List.hd r1.Sweep.sw_curves))
        (curve_cycles (List.hd r2.Sweep.sw_curves)))

(* A poisoned point is confined to its own grid entry; the baseline
   raising is fatal.  Job order is deterministic at jobs=1 (values
   ascending), so the @2 trigger always lands on window=32. *)
let test_sweep_point_supervision () =
  let jobs0 = Pool.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Pool.set_jobs jobs0)
    (fun () ->
      Pool.set_jobs 1;
      Fault.configure_exn "sweep_point:@2";
      let r = run_sweep ~engine:Sweep.Sim [ "window=16..64" ] in
      let c = List.hd r.Sweep.sw_curves in
      List.iter
        (fun (pt : Sweep.point) ->
          match (pt.Sweep.pt_value, pt.Sweep.pt_outcome) with
          | 32, Error (Fault.Injected "sweep_point") -> ()
          | 32, Error e ->
            Alcotest.fail ("unexpected poison: " ^ Printexc.to_string e)
          | 32, Ok _ -> Alcotest.fail "poisoned point evaluated"
          | _, Ok _ -> ()
          | v, Error e ->
            Alcotest.fail
              (Printf.sprintf "healthy point %d failed: %s" v
                 (Printexc.to_string e)))
        c.Sweep.cv_points;
      (* the delta chain skips the hole: one step 16->64 *)
      Alcotest.(check (list int)) "deltas bridge the failed point" [ 64 ]
        (List.map fst c.Sweep.cv_deltas);
      (* baseline poisoned: fatal *)
      Fault.configure_exn "sweep_point:@3";
      match run_sweep ~engine:Sweep.Sim [ "window=16..64" ] with
      | _ -> Alcotest.fail "baseline failure should re-raise"
      | exception Fault.Injected "sweep_point" -> ())

let test_sweep_recommendations () =
  let r =
    run_sweep ~engine:Sweep.Sim [ "window=16..256"; "mem_lat=25..100:25" ]
  in
  let recs = Sweep.recommendations r in
  Alcotest.(check bool) "at least one resize recommendation" true
    (recs <> []);
  let rois =
    List.map
      (function
        | Advisor.Resize { cycles_per_unit; _ } -> cycles_per_unit
        | _ -> Alcotest.fail "sweep recommends only resizes")
      recs
  in
  let rec sorted = function
    | a :: (b :: _ as tl) -> a >= b && sorted tl
    | _ -> true
  in
  Alcotest.(check bool) "ranked by descending cycles-per-unit" true
    (sorted rois);
  List.iter
    (function
      | Advisor.Resize { resource; from_units; to_units; cycles_saved; _ } ->
        Alcotest.(check bool) (resource ^ " moves the resource") true
          (from_units <> to_units);
        Alcotest.(check bool) (resource ^ " saves cycles") true
          (cycles_saved >= 0.)
      | _ -> ())
    recs;
  (* rendering mentions the knee semantics *)
  let rendered = List.map Advisor.recommendation_to_string recs in
  List.iter
    (fun s ->
      Alcotest.(check bool) "rendered as RESIZE" true
        (String.length s >= 6 && String.sub s 0 6 = "RESIZE"))
    rendered

let suite =
  ( "sensitivity",
    [
      Alcotest.test_case "param: registry invariants" `Quick test_registry;
      Alcotest.test_case "param: digests distinct across every field" `Quick
        test_digest_distinct_per_param;
      Alcotest.test_case "param: axis spec grammar" `Quick test_parse_axis;
      Alcotest.test_case "param: multi-axis parsing" `Quick test_parse_axes;
      Alcotest.test_case "sweep: window curve, baseline identity, knee" `Slow
        test_sweep_window_curve;
      Alcotest.test_case "sweep: graph engine prices the critical path" `Slow
        test_sweep_graph_engine_identity;
      Alcotest.test_case "sweep: cross-axis dedup and point cache" `Slow
        test_sweep_dedup_and_cache;
      Alcotest.test_case "sweep: parallel evaluation is deterministic" `Slow
        test_sweep_parallel_deterministic;
      Alcotest.test_case "sweep: poisoned point stays confined" `Slow
        test_sweep_point_supervision;
      Alcotest.test_case "sweep: resize recommendations ranked by ROI" `Slow
        test_sweep_recommendations;
    ] )
