(* Aggregated test entry point for the icost library. *)

let () =
  Alcotest.run "icostlib"
    [
      (* first: the router and supervisor suites fork processes, and
         Unix.fork is forbidden once any other suite has spawned a
         domain (Pool) *)
      Test_router.suite;
      Test_supervise.suite;
      Test_prng.suite;
      Test_stats.suite;
      Test_pool.suite;
      Test_telemetry.suite;
      Test_fault.suite;
      Test_isa.suite;
      Test_asm.suite;
      Test_interp.suite;
      Test_cache.suite;
      Test_bpred.suite;
      Test_events.suite;
      Test_sim.suite;
      Test_graph.suite;
      Test_cost.suite;
      Test_workloads.suite;
      Test_profiler.suite;
      Test_report.suite;
      Test_advisor.suite;
      Test_prefetch.suite;
      Test_fuzz.suite;
      Test_check.suite;
      Test_integration.suite;
      Test_parallel.suite;
      Test_sensitivity.suite;
      Test_stream.suite;
      Test_snapshot.suite;
      Test_service.suite;
    ]
