(* Tests for the shard router: deterministic key hashing (golden values
   that must never drift — a shard reshuffle would orphan every snapshot
   directory), routing-key construction, and a forked two-shard daemon
   exercised end to end: per-shard preparation, aggregate status, batch
   scatter-gather ordering, bit-identical passthrough and shutdown
   fan-out. *)

module P = Icost_service.Protocol
module Server = Icost_service.Server
module Router = Icost_service.Router
module Client = Icost_service.Client

let sigpipe_off () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let tmp_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "icost-router-%s-%d" tag (Unix.getpid ()))

(* ---------- hashing and routing keys ---------- *)

(* Golden FNV-1a placements, cross-checked against an independent
   implementation.  These values are load-bearing: the shard of a key
   decides which shard's prep cache and snapshot directory own a
   workload, so the mapping must be stable across restarts, processes
   and releases. *)
let test_shard_hash_golden () =
  let cases =
    [
      ("gcc|w2000|m800", 2, 0);
      ("gzip|w2000|m800", 2, 1);
      ("go|w2000|m800", 2, 1);
      ("vortex|w2000|m800", 2, 1);
      ("gcc|w2000|m900", 2, 1);
      ("gcc|w2000|m800", 4, 0);
      ("gzip|w2000|m800", 4, 3);
      ("go|w2000|m800", 4, 1);
      ("gcc|w2000|m800", 3, 0);
      ("vortex|w2000|m800", 3, 2);
    ]
  in
  List.iter
    (fun (key, shards, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "%s mod %d" key shards)
        expect
        (Router.shard_of_key ~shards key))
    cases;
  (* stability: the same key re-hashed in the same process agrees *)
  List.iter
    (fun (key, shards, _) ->
      Alcotest.(check int) "re-hash is deterministic"
        (Router.shard_of_key ~shards key)
        (Router.shard_of_key ~shards key))
    cases;
  (* degenerate shard counts collapse to shard 0 *)
  Alcotest.(check int) "single shard" 0 (Router.shard_of_key ~shards:1 "x")

let test_route_key () =
  let tg =
    { P.workload = "gcc"; variant = "dl1"; engine = "multisim"; warmup = 2000;
      measure = 800; seed = 789 }
  in
  Alcotest.(check string) "prep key shape" "gcc|w2000|m800" (Router.route_key tg);
  (* variant / engine / seed are intentionally not part of the routing
     key: every session of one prepared workload shares a shard (and so
     its prep cache) *)
  List.iter
    (fun tg' ->
      Alcotest.(check string) "variant-independent" (Router.route_key tg)
        (Router.route_key tg'))
    [
      { tg with P.variant = "bmisp" };
      { tg with P.engine = "graph" };
      { tg with P.seed = 1 };
    ];
  (* ...while the prep parameters are *)
  Alcotest.(check bool) "measure routes" true
    (Router.route_key tg <> Router.route_key { tg with P.measure = 900 })

let test_shard_socket () =
  Alcotest.(check string) "shard socket naming" "/tmp/d.sock.shard1"
    (Router.shard_socket "/tmp/d.sock" 1)

(* ---------- forked two-shard daemon ---------- *)

let req ?(id = 1) ?deadline_ms op = { P.req_id = id; deadline_ms; op }

let norm_body body = P.encode_reply { P.rep_id = 0; body }

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* These two targets hash to different shards under shards = 2 (see the
   golden table above), so their preparations must happen in different
   processes with disjoint caches. *)
let target_a =
  { P.default_target with P.workload = "gcc"; warmup = 2000; measure = 800 }

let target_b =
  { P.default_target with P.workload = "gzip"; warmup = 2000; measure = 800 }

let test_router_end_to_end () =
  sigpipe_off ();
  Alcotest.(check bool) "targets land on different shards" true
    (Router.shard_of_key ~shards:2 (Router.route_key target_a)
     <> Router.shard_of_key ~shards:2 (Router.route_key target_b));
  let socket = tmp_path "e2e.sock" in
  let cache_dir = tmp_path "e2e.cache" in
  rm_rf cache_dir;
  if Sys.file_exists socket then Sys.remove socket;
  (* The router forks its shard fleet, so it must run in a process of its
     own rather than a thread of the (multi-threaded) test binary. *)
  let child =
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Router.run
              {
                Router.socket;
                tcp = None;
                shards = 2;
                shard =
                  { Server.default_opts with
                    workers = 2;
                    cache_dir = Some cache_dir };
                handle_signals = true;
                on_ready = None;
                on_tcp_port = None;
              });
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] child with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      rm_rf cache_dir)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let op_b = P.Breakdown { target = target_b; focus = "dl1" } in

  (* status before any analysis: the aggregate must name both shards *)
  let status () =
    match (Client.call_with_retry s (req ~id:2 P.Status)).P.body with
    | Ok (P.R_status st) -> st
    | _ -> Alcotest.fail "status not answered"
  in
  let st0 = status () in
  Alcotest.(check int) "aggregate reports the shard count" 2 st0.P.shards;
  Alcotest.(check int) "no sessions yet" 0 st0.P.sessions;

  (* cold prep on shard A, then measure its cache misses so the check on
     shard B is self-calibrating rather than tied to cache layering *)
  let single_a =
    match (Client.call_with_retry s (req ~id:3 op_a)).P.body with
    | Ok b -> b
    | Error (c, m) ->
      Alcotest.fail
        (Printf.sprintf "shard A query failed: %s %s" (P.error_code_name c) m)
  in
  let st1 = status () in
  let misses_one = st1.P.cache_misses - st0.P.cache_misses in
  Alcotest.(check bool) "cold prep misses" true (misses_one > 0);

  (* concurrent clients on the two shards: each prepares independently *)
  let results = Array.make 2 None in
  let threads =
    List.mapi
      (fun i op ->
        Thread.create
          (fun () ->
            Client.with_client ~retry_for:10.0 ~socket (fun c ->
                results.(i) <- Some (Client.call c (req ~id:(10 + i) op))))
          ())
      [ op_a; op_b ]
  in
  List.iter Thread.join threads;
  (match results.(0) with
   | Some { P.body = Ok b; _ } ->
     Alcotest.(check string) "shard A warm answer bit-identical"
       (norm_body (Ok single_a)) (norm_body (Ok b))
   | _ -> Alcotest.fail "concurrent shard A query failed");
  let single_b =
    match results.(1) with
    | Some { P.body = Ok b; _ } -> b
    | _ -> Alcotest.fail "concurrent shard B query failed"
  in
  let st2 = status () in
  Alcotest.(check int) "shard B prepared on its own (same cold cost)"
    (st1.P.cache_misses + misses_one) st2.P.cache_misses;
  Alcotest.(check int) "one session per shard" 2 st2.P.sessions;

  (* batch scatter-gather: items split across both shards plus a router-
     answered status and a per-item failure, stitched back in order *)
  let bad =
    P.Breakdown { target = { target_a with P.workload = "nope" }; focus = "dl1" }
  in
  let reply =
    Client.call_with_retry s
      (req ~id:20 (P.Batch { ops = [ op_b; bad; op_a; P.Status ] }))
  in
  (match reply.P.body with
   | Ok (P.R_batch { results }) ->
     Alcotest.(check int) "one result per batch item" 4 (List.length results);
     (match List.nth results 0 with
      | Ok b ->
        Alcotest.(check string) "batch item 0 = shard B single"
          (norm_body (Ok single_b)) (norm_body (Ok b))
      | Error _ -> Alcotest.fail "batch item 0 failed");
     (match List.nth results 1 with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail "bad batch item must fail alone");
     (match List.nth results 2 with
      | Ok b ->
        Alcotest.(check string) "batch item 2 = shard A single"
          (norm_body (Ok single_a)) (norm_body (Ok b))
      | Error _ -> Alcotest.fail "batch item 2 failed");
     (match List.nth results 3 with
      | Ok (P.R_status st) ->
        Alcotest.(check int) "batched status is the aggregate" 2 st.P.shards
      | _ -> Alcotest.fail "batched status not answered")
   | Ok _ -> Alcotest.fail "expected a batch reply"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "batch failed: %s %s" (P.error_code_name c) m));

  (* shutdown fans out: router exits cleanly, children are reaped, and
     every socket (public and per-shard) is removed *)
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  let _, exit_status = Unix.waitpid [] child in
  (match exit_status with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED n ->
     Alcotest.fail (Printf.sprintf "router exited with %d" n)
   | _ -> Alcotest.fail "router killed by signal");
  Alcotest.(check bool) "public socket removed" false (Sys.file_exists socket);
  Alcotest.(check bool) "shard sockets removed" false
    (Sys.file_exists (Router.shard_socket socket 0)
     || Sys.file_exists (Router.shard_socket socket 1))

(* Sweeps route like any other analysis op — by preparation key — so the
   two targets land on different shards, each pricing its grid in its
   own process, and the router's answers stay bit-identical to what the
   sensitivity library computes directly.  The aggregate status sums the
   per-shard sweep tallies; a batch mixing both shards' sweeps comes
   back in request order. *)
let test_router_sweep () =
  sigpipe_off ();
  let module Sweep = Icost_sensitivity.Sweep in
  let module Sparam = Icost_sensitivity.Param in
  let module Runner = Icost_experiments.Runner in
  let module Workload = Icost_workloads.Workload in
  let module Config = Icost_uarch.Config in
  let socket = tmp_path "sweep.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let child =
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Router.run
              {
                Router.socket;
                tcp = None;
                shards = 2;
                shard = { Server.default_opts with workers = 2 };
                handle_signals = true;
                on_ready = None;
                on_tcp_port = None;
              });
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [] child
         with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
  @@ fun () ->
  let specs = [ "window=16..64" ] in
  let sweep_of tg = P.Sweep { target = tg; params = specs } in
  (* the expected reply body, computed in this process *)
  let expected tg =
    let prepared =
      Runner.prepare
        { Runner.warmup = tg.P.warmup; measure = tg.P.measure;
          benches = [ tg.P.workload ] }
        (Workload.find_exn tg.P.workload)
    in
    let axes =
      match Sparam.parse_axes specs with
      | Ok a -> a
      | Error msg -> Alcotest.fail msg
    in
    let r =
      Sweep.run ~engine:Sweep.Sim ~cfg:Config.default ~prepared ~axes ()
    in
    P.R_sweep
      {
        baseline = r.Sweep.sw_baseline;
        curves =
          List.map
            (fun (c : Sweep.curve) ->
              {
                P.curve_param = c.Sweep.cv_param.Sparam.p_name;
                curve_base = c.cv_base_value;
                curve_knee =
                  Option.map
                    (fun (k : Sweep.knee) ->
                      { P.kn_value = k.Sweep.kn_value;
                        kn_marginal = k.kn_marginal;
                        kn_saturated = k.kn_saturated })
                    c.cv_knee;
                curve_points =
                  List.map
                    (fun (pt : Sweep.point) ->
                      match pt.Sweep.pt_outcome with
                      | Ok cycles ->
                        { P.sp_value = pt.pt_value;
                          sp_outcome =
                            Ok
                              (cycles,
                               Option.value ~default:0.
                                 (List.assoc_opt pt.pt_value c.cv_deltas)) }
                      | Error e -> Alcotest.fail (Printexc.to_string e))
                    c.cv_points;
              })
            r.Sweep.sw_curves;
      }
  in
  let tg_a = { target_a with P.engine = "multisim" } in
  let tg_b = { target_b with P.engine = "multisim" } in
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let ask op =
    match (Client.call_with_retry s (req ~id:5 op)).P.body with
    | Ok b -> b
    | Error (c, m) ->
      Alcotest.fail
        (Printf.sprintf "sweep failed: %s %s" (P.error_code_name c) m)
  in
  let got_a = ask (sweep_of tg_a) in
  let got_b = ask (sweep_of tg_b) in
  Alcotest.(check string) "shard A sweep bit-identical to the library"
    (norm_body (Ok (expected tg_a)))
    (norm_body (Ok got_a));
  Alcotest.(check string) "shard B sweep bit-identical to the library"
    (norm_body (Ok (expected tg_b)))
    (norm_body (Ok got_b));
  (* the aggregate status sums both shards' tallies: 3 grid points each *)
  (match (Client.call_with_retry s (req ~id:6 P.Status)).P.body with
  | Ok (P.R_status st) ->
    Alcotest.(check int) "aggregate sweep points" 6 st.P.sweep_points
  | _ -> Alcotest.fail "status not answered");
  (* a batch mixing both shards' sweeps preserves request order *)
  (match
     (Client.call_with_retry s
        (req ~id:7 (P.Batch { ops = [ sweep_of tg_b; sweep_of tg_a ] })))
       .P.body
   with
  | Ok (P.R_batch { results = [ Ok b; Ok a ] }) ->
    Alcotest.(check string) "batch item 0 is shard B's sweep"
      (norm_body (Ok got_b)) (norm_body (Ok b));
    Alcotest.(check string) "batch item 1 is shard A's sweep"
      (norm_body (Ok got_a)) (norm_body (Ok a))
  | Ok _ -> Alcotest.fail "expected a two-item batch reply"
  | Error (c, m) ->
    Alcotest.fail
      (Printf.sprintf "batch failed: %s %s" (P.error_code_name c) m));
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
  | Ok P.R_shutdown -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
    Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal"

let suite =
  ( "router",
    [
      Alcotest.test_case "hash: golden shard placements" `Quick
        test_shard_hash_golden;
      Alcotest.test_case "hash: routing key shape" `Quick test_route_key;
      Alcotest.test_case "hash: shard socket naming" `Quick test_shard_socket;
      Alcotest.test_case "router: two-shard end-to-end" `Slow
        test_router_end_to_end;
      Alcotest.test_case "router: sweeps route, aggregate and batch" `Slow
        test_router_sweep;
    ] )
