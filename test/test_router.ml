(* Tests for the shard router: deterministic key hashing (golden values
   that must never drift — a shard reshuffle would orphan every snapshot
   directory), routing-key construction, and a forked two-shard daemon
   exercised end to end: per-shard preparation, aggregate status, batch
   scatter-gather ordering, bit-identical passthrough and shutdown
   fan-out. *)

module P = Icost_service.Protocol
module Server = Icost_service.Server
module Router = Icost_service.Router
module Client = Icost_service.Client
module Supervise = Icost_service.Supervise
module Endpoint = Icost_service.Endpoint
module Fault = Icost_util.Fault

let sigpipe_off () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let tmp_path tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "icost-router-%s-%d" tag (Unix.getpid ()))

(* ---------- hashing and routing keys ---------- *)

(* Golden FNV-1a placements, cross-checked against an independent
   implementation.  These values are load-bearing: the shard of a key
   decides which shard's prep cache and snapshot directory own a
   workload, so the mapping must be stable across restarts, processes
   and releases. *)
let test_shard_hash_golden () =
  let cases =
    [
      ("gcc|w2000|m800", 2, 0);
      ("gzip|w2000|m800", 2, 1);
      ("go|w2000|m800", 2, 1);
      ("vortex|w2000|m800", 2, 1);
      ("gcc|w2000|m900", 2, 1);
      ("gcc|w2000|m800", 4, 0);
      ("gzip|w2000|m800", 4, 3);
      ("go|w2000|m800", 4, 1);
      ("gcc|w2000|m800", 3, 0);
      ("vortex|w2000|m800", 3, 2);
    ]
  in
  List.iter
    (fun (key, shards, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "%s mod %d" key shards)
        expect
        (Router.shard_of_key ~shards key))
    cases;
  (* stability: the same key re-hashed in the same process agrees *)
  List.iter
    (fun (key, shards, _) ->
      Alcotest.(check int) "re-hash is deterministic"
        (Router.shard_of_key ~shards key)
        (Router.shard_of_key ~shards key))
    cases;
  (* degenerate shard counts collapse to shard 0 *)
  Alcotest.(check int) "single shard" 0 (Router.shard_of_key ~shards:1 "x")

let test_route_key () =
  let tg =
    { P.workload = "gcc"; variant = "dl1"; engine = "multisim"; warmup = 2000;
      measure = 800; seed = 789 }
  in
  Alcotest.(check string) "prep key shape" "gcc|w2000|m800" (Router.route_key tg);
  (* variant / engine / seed are intentionally not part of the routing
     key: every session of one prepared workload shares a shard (and so
     its prep cache) *)
  List.iter
    (fun tg' ->
      Alcotest.(check string) "variant-independent" (Router.route_key tg)
        (Router.route_key tg'))
    [
      { tg with P.variant = "bmisp" };
      { tg with P.engine = "graph" };
      { tg with P.seed = 1 };
    ];
  (* ...while the prep parameters are *)
  Alcotest.(check bool) "measure routes" true
    (Router.route_key tg <> Router.route_key { tg with P.measure = 900 })

let test_shard_socket () =
  Alcotest.(check string) "shard socket naming" "/tmp/d.sock.shard1"
    (Router.shard_socket "/tmp/d.sock" 1)

(* ---------- forked two-shard daemon ---------- *)

let req ?(id = 1) ?deadline_ms op = { P.req_id = id; deadline_ms; op }

let norm_body body = P.encode_reply { P.rep_id = 0; body }

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* These two targets hash to different shards under shards = 2 (see the
   golden table above), so their preparations must happen in different
   processes with disjoint caches. *)
let target_a =
  { P.default_target with P.workload = "gcc"; warmup = 2000; measure = 800 }

let target_b =
  { P.default_target with P.workload = "gzip"; warmup = 2000; measure = 800 }

let test_router_end_to_end () =
  sigpipe_off ();
  Alcotest.(check bool) "targets land on different shards" true
    (Router.shard_of_key ~shards:2 (Router.route_key target_a)
     <> Router.shard_of_key ~shards:2 (Router.route_key target_b));
  let socket = tmp_path "e2e.sock" in
  let cache_dir = tmp_path "e2e.cache" in
  rm_rf cache_dir;
  if Sys.file_exists socket then Sys.remove socket;
  (* The router forks its shard fleet, so it must run in a process of its
     own rather than a thread of the (multi-threaded) test binary. *)
  let child =
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Router.run
              {
                Router.socket;
                tcp = None;
                shards = 2;
                shard =
                  { Server.default_opts with
                    workers = 2;
                    cache_dir = Some cache_dir };
                supervise = Router.default_opts.supervise;
                failover_budget_s = Router.default_opts.failover_budget_s;
                handle_signals = true;
                on_ready = None;
                on_tcp_port = None;
              });
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] child with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
      rm_rf cache_dir)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let op_b = P.Breakdown { target = target_b; focus = "dl1" } in

  (* status before any analysis: the aggregate must name both shards *)
  let status () =
    match (Client.call_with_retry s (req ~id:2 P.Status)).P.body with
    | Ok (P.R_status st) -> st
    | _ -> Alcotest.fail "status not answered"
  in
  let st0 = status () in
  Alcotest.(check int) "aggregate reports the shard count" 2 st0.P.shards;
  Alcotest.(check int) "no sessions yet" 0 st0.P.sessions;

  (* cold prep on shard A, then measure its cache misses so the check on
     shard B is self-calibrating rather than tied to cache layering *)
  let single_a =
    match (Client.call_with_retry s (req ~id:3 op_a)).P.body with
    | Ok b -> b
    | Error (c, m) ->
      Alcotest.fail
        (Printf.sprintf "shard A query failed: %s %s" (P.error_code_name c) m)
  in
  let st1 = status () in
  let misses_one = st1.P.cache_misses - st0.P.cache_misses in
  Alcotest.(check bool) "cold prep misses" true (misses_one > 0);

  (* concurrent clients on the two shards: each prepares independently *)
  let results = Array.make 2 None in
  let threads =
    List.mapi
      (fun i op ->
        Thread.create
          (fun () ->
            Client.with_client ~retry_for:10.0 ~socket (fun c ->
                results.(i) <- Some (Client.call c (req ~id:(10 + i) op))))
          ())
      [ op_a; op_b ]
  in
  List.iter Thread.join threads;
  (match results.(0) with
   | Some { P.body = Ok b; _ } ->
     Alcotest.(check string) "shard A warm answer bit-identical"
       (norm_body (Ok single_a)) (norm_body (Ok b))
   | _ -> Alcotest.fail "concurrent shard A query failed");
  let single_b =
    match results.(1) with
    | Some { P.body = Ok b; _ } -> b
    | _ -> Alcotest.fail "concurrent shard B query failed"
  in
  let st2 = status () in
  Alcotest.(check int) "shard B prepared on its own (same cold cost)"
    (st1.P.cache_misses + misses_one) st2.P.cache_misses;
  Alcotest.(check int) "one session per shard" 2 st2.P.sessions;

  (* batch scatter-gather: items split across both shards plus a router-
     answered status and a per-item failure, stitched back in order *)
  let bad =
    P.Breakdown { target = { target_a with P.workload = "nope" }; focus = "dl1" }
  in
  let reply =
    Client.call_with_retry s
      (req ~id:20 (P.Batch { ops = [ op_b; bad; op_a; P.Status ] }))
  in
  (match reply.P.body with
   | Ok (P.R_batch { results }) ->
     Alcotest.(check int) "one result per batch item" 4 (List.length results);
     (match List.nth results 0 with
      | Ok b ->
        Alcotest.(check string) "batch item 0 = shard B single"
          (norm_body (Ok single_b)) (norm_body (Ok b))
      | Error _ -> Alcotest.fail "batch item 0 failed");
     (match List.nth results 1 with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail "bad batch item must fail alone");
     (match List.nth results 2 with
      | Ok b ->
        Alcotest.(check string) "batch item 2 = shard A single"
          (norm_body (Ok single_a)) (norm_body (Ok b))
      | Error _ -> Alcotest.fail "batch item 2 failed");
     (match List.nth results 3 with
      | Ok (P.R_status st) ->
        Alcotest.(check int) "batched status is the aggregate" 2 st.P.shards
      | _ -> Alcotest.fail "batched status not answered")
   | Ok _ -> Alcotest.fail "expected a batch reply"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "batch failed: %s %s" (P.error_code_name c) m));

  (* shutdown fans out: router exits cleanly, children are reaped, and
     every socket (public and per-shard) is removed *)
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  let _, exit_status = Unix.waitpid [] child in
  (match exit_status with
   | Unix.WEXITED 0 -> ()
   | Unix.WEXITED n ->
     Alcotest.fail (Printf.sprintf "router exited with %d" n)
   | _ -> Alcotest.fail "router killed by signal");
  Alcotest.(check bool) "public socket removed" false (Sys.file_exists socket);
  Alcotest.(check bool) "shard sockets removed" false
    (Sys.file_exists (Router.shard_socket socket 0)
     || Sys.file_exists (Router.shard_socket socket 1))

(* Sweeps route like any other analysis op — by preparation key — so the
   two targets land on different shards, each pricing its grid in its
   own process, and the router's answers stay bit-identical to what the
   sensitivity library computes directly.  The aggregate status sums the
   per-shard sweep tallies; a batch mixing both shards' sweeps comes
   back in request order. *)
let test_router_sweep () =
  sigpipe_off ();
  let module Sweep = Icost_sensitivity.Sweep in
  let module Sparam = Icost_sensitivity.Param in
  let module Runner = Icost_experiments.Runner in
  let module Workload = Icost_workloads.Workload in
  let module Config = Icost_uarch.Config in
  let socket = tmp_path "sweep.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let child =
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Router.run
              {
                Router.socket;
                tcp = None;
                shards = 2;
                shard = { Server.default_opts with workers = 2 };
                supervise = Router.default_opts.supervise;
                failover_budget_s = Router.default_opts.failover_budget_s;
                handle_signals = true;
                on_ready = None;
                on_tcp_port = None;
              });
         Unix._exit 0
       with _ -> Unix._exit 1)
    | pid -> pid
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [] child
         with Unix.Unix_error _ -> (0, Unix.WEXITED 0)))
  @@ fun () ->
  let specs = [ "window=16..64" ] in
  let sweep_of tg = P.Sweep { target = tg; params = specs } in
  (* the expected reply body, computed in this process *)
  let expected tg =
    let prepared =
      Runner.prepare
        { Runner.warmup = tg.P.warmup; measure = tg.P.measure;
          benches = [ tg.P.workload ] }
        (Workload.find_exn tg.P.workload)
    in
    let axes =
      match Sparam.parse_axes specs with
      | Ok a -> a
      | Error msg -> Alcotest.fail msg
    in
    let r =
      Sweep.run ~engine:Sweep.Sim ~cfg:Config.default ~prepared ~axes ()
    in
    P.R_sweep
      {
        baseline = r.Sweep.sw_baseline;
        curves =
          List.map
            (fun (c : Sweep.curve) ->
              {
                P.curve_param = c.Sweep.cv_param.Sparam.p_name;
                curve_base = c.cv_base_value;
                curve_knee =
                  Option.map
                    (fun (k : Sweep.knee) ->
                      { P.kn_value = k.Sweep.kn_value;
                        kn_marginal = k.kn_marginal;
                        kn_saturated = k.kn_saturated })
                    c.cv_knee;
                curve_points =
                  List.map
                    (fun (pt : Sweep.point) ->
                      match pt.Sweep.pt_outcome with
                      | Ok cycles ->
                        { P.sp_value = pt.pt_value;
                          sp_outcome =
                            Ok
                              (cycles,
                               Option.value ~default:0.
                                 (List.assoc_opt pt.pt_value c.cv_deltas)) }
                      | Error e -> Alcotest.fail (Printexc.to_string e))
                    c.cv_points;
              })
            r.Sweep.sw_curves;
      }
  in
  let tg_a = { target_a with P.engine = "multisim" } in
  let tg_b = { target_b with P.engine = "multisim" } in
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let ask op =
    match (Client.call_with_retry s (req ~id:5 op)).P.body with
    | Ok b -> b
    | Error (c, m) ->
      Alcotest.fail
        (Printf.sprintf "sweep failed: %s %s" (P.error_code_name c) m)
  in
  let got_a = ask (sweep_of tg_a) in
  let got_b = ask (sweep_of tg_b) in
  Alcotest.(check string) "shard A sweep bit-identical to the library"
    (norm_body (Ok (expected tg_a)))
    (norm_body (Ok got_a));
  Alcotest.(check string) "shard B sweep bit-identical to the library"
    (norm_body (Ok (expected tg_b)))
    (norm_body (Ok got_b));
  (* the aggregate status sums both shards' tallies: 3 grid points each *)
  (match (Client.call_with_retry s (req ~id:6 P.Status)).P.body with
  | Ok (P.R_status st) ->
    Alcotest.(check int) "aggregate sweep points" 6 st.P.sweep_points
  | _ -> Alcotest.fail "status not answered");
  (* a batch mixing both shards' sweeps preserves request order *)
  (match
     (Client.call_with_retry s
        (req ~id:7 (P.Batch { ops = [ sweep_of tg_b; sweep_of tg_a ] })))
       .P.body
   with
  | Ok (P.R_batch { results = [ Ok b; Ok a ] }) ->
    Alcotest.(check string) "batch item 0 is shard B's sweep"
      (norm_body (Ok got_b)) (norm_body (Ok b));
    Alcotest.(check string) "batch item 1 is shard A's sweep"
      (norm_body (Ok got_a)) (norm_body (Ok a))
  | Ok _ -> Alcotest.fail "expected a two-item batch reply"
  | Error (c, m) ->
    Alcotest.fail
      (Printf.sprintf "batch failed: %s %s" (P.error_code_name c) m));
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
  | Ok P.R_shutdown -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
    Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal"

(* ---------- self-healing: supervision, failover, rolling restart ---------- *)

(* Fork a router daemon with the given options; returns its pid. *)
let fork_router opts =
  match Unix.fork () with
  | 0 ->
    (try
       ignore (Router.run opts);
       Unix._exit 0
     with _ -> Unix._exit 1)
  | pid -> pid

let router_opts ?cache_dir ?(supervise = Router.default_opts.supervise) socket =
  {
    Router.socket;
    tcp = None;
    shards = 2;
    shard = { Server.default_opts with workers = 2; cache_dir };
    supervise;
    failover_budget_s = Router.default_opts.failover_budget_s;
    handle_signals = true;
    on_ready = None;
    on_tcp_port = None;
  }

let stop_router child =
  (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
  ignore
    (try Unix.waitpid [] child with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

(* The shard pids live two forks down: router -> supervisor -> shards.
   Linux exposes the chain in /proc. *)
let children_of pid =
  let path = Printf.sprintf "/proc/%d/task/%d/children" pid pid in
  match In_channel.with_open_text path In_channel.input_all with
  | s ->
    String.split_on_char ' ' (String.trim s) |> List.filter_map int_of_string_opt
  | exception Sys_error _ -> []

let rec shard_pids_of ~router ~attempts =
  let pids =
    match children_of router with
    | [ supervisor ] -> children_of supervisor
    | _ -> []
  in
  if List.length pids >= 2 || attempts <= 0 then pids
  else begin
    ignore (Unix.select [] [] [] 0.05);
    shard_pids_of ~router ~attempts:(attempts - 1)
  end

let ask ?id s op =
  match (Client.call_with_retry s (req ?id op)).P.body with
  | Ok b -> b
  | Error (c, m) ->
    Alcotest.fail
      (Printf.sprintf "query failed: %s %s" (P.error_code_name c) m)

let status_of s =
  match (Client.call_with_retry s (req ~id:2 P.Status)).P.body with
  | Ok (P.R_status st) -> st
  | _ -> Alcotest.fail "status not answered"

(* The respawn path's stale-socket cleanup reuses the endpoint probe;
   pin its classification of the three states a crashed shard's socket
   path can be in. *)
let test_probe_unix_socket () =
  let path = tmp_path "probe.sock" in
  if Sys.file_exists path then Sys.remove path;
  let check name expect =
    Alcotest.(check bool) name true (Endpoint.probe_unix_socket path = expect)
  in
  check "no file is absent" `Absent;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 1;
  check "bound and listening is live" `Live;
  Unix.close fd;
  (* the file survives the process; nothing listens behind it *)
  check "file without a listener is stale" `Stale;
  Sys.remove path

(* kill -9 both shards under a warm fleet: the supervisor respawns them
   (clearing the stale socket files the SIGKILL left behind), the
   replacements warm-start from their snapshot directories, parked
   requests are delivered to them, and the answers stay bit-identical —
   a crash costs latency, never an error or a changed result. *)
let test_kill9_respawn () =
  sigpipe_off ();
  let socket = tmp_path "kill9.sock" in
  let cache_dir = tmp_path "kill9.cache" in
  rm_rf cache_dir;
  if Sys.file_exists socket then Sys.remove socket;
  let child = fork_router (router_opts ~cache_dir socket) in
  Fun.protect
    ~finally:(fun () ->
      stop_router child;
      rm_rf cache_dir)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let op_b = P.Breakdown { target = target_b; focus = "dl1" } in
  let warm_a = ask ~id:3 s op_a in
  let warm_b = ask ~id:4 s op_b in
  let st0 = status_of s in
  Alcotest.(check int) "no respawns yet" 0 st0.P.respawns;
  let pids = shard_pids_of ~router:child ~attempts:40 in
  Alcotest.(check int) "found both shard pids" 2 (List.length pids);
  List.iter (fun pid -> Unix.kill pid Sys.sigkill) pids;
  (* both shards are dead; the very next queries must still succeed *)
  let again_a = ask ~id:3 s op_a in
  let again_b = ask ~id:4 s op_b in
  Alcotest.(check string) "shard A answer survives the kill bit-identically"
    (norm_body (Ok warm_a)) (norm_body (Ok again_a));
  Alcotest.(check string) "shard B answer survives the kill bit-identically"
    (norm_body (Ok warm_b)) (norm_body (Ok again_b));
  let st1 = status_of s in
  Alcotest.(check bool) "both respawns counted" true (st1.P.respawns >= 2);
  Alcotest.(check string) "fleet is healthy again" "ok" st1.P.health;
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  (match Unix.waitpid [] child with
   | _, Unix.WEXITED 0 -> ()
   | _, Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "router exited with %d" n)
   | _ -> Alcotest.fail "router killed by signal");
  Alcotest.(check bool) "respawned shard sockets removed at shutdown" false
    (Sys.file_exists (Router.shard_socket socket 0)
     || Sys.file_exists (Router.shard_socket socket 1))

(* One shard dies mid-scatter-gather (the shard_exit fault point: the
   process _exits on its 4th analysis frame, as if SIGKILLed while
   holding the sub-batch).  The frame must survive: the dead shard's
   items come back as per-item typed [unavailable] errors in their
   original positions, the other shard's items succeed, and retrying the
   failed work against the respawned shard gives bit-identical answers. *)
let test_mid_batch_crash () =
  sigpipe_off ();
  let socket = tmp_path "midbatch.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  (* configured before the fork so every process in the tree inherits
     the schedule; only analysis frames advance the count, so shard A
     dies exactly on its 4th (its scatter sub-batch below) *)
  Fault.configure_exn "shard_exit:@4";
  let child = fork_router (router_opts socket) in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      stop_router child)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let op_b = P.Breakdown { target = target_b; focus = "dl1" } in
  (* shard A: analysis frames 1-3; shard B: frame 1 *)
  let warm_a = ask ~id:3 s op_a in
  let _ = ask ~id:3 s op_a in
  let _ = ask ~id:3 s op_a in
  let warm_b = ask ~id:4 s op_b in
  (* the mixed batch scatters one sub-batch per shard: A's 4th frame
     kills it mid-batch, B answers normally *)
  let reply =
    Client.call_with_retry s (req ~id:20 (P.Batch { ops = [ op_a; op_b ] }))
  in
  (match reply.P.body with
   | Ok (P.R_batch { results = [ item_a; item_b ] }) ->
     (match item_a with
      | Error (P.Unavailable, msg) ->
        Alcotest.(check bool) "error names the dead shard" true
          (String.length msg > 0)
      | Error (c, m) ->
        Alcotest.fail
          (Printf.sprintf "dead shard's item: expected unavailable, got %s %s"
             (P.error_code_name c) m)
      | Ok _ -> Alcotest.fail "dead shard's item cannot have succeeded");
     (match item_b with
      | Ok b ->
        Alcotest.(check string) "surviving shard's item is unaffected"
          (norm_body (Ok warm_b)) (norm_body (Ok b))
      | Error _ -> Alcotest.fail "surviving shard's item failed")
   | Ok (P.R_batch { results }) ->
     Alcotest.fail
       (Printf.sprintf "expected 2 batch items, got %d" (List.length results))
   | Ok _ -> Alcotest.fail "expected a batch reply"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "mid-batch crash tore the whole frame: %s %s"
          (P.error_code_name c) m));
  (* the retry lands on shard A's respawned replacement (its fault
     counter restarts, so frame 1 survives) and matches the original *)
  let retry_a = ask ~id:3 s op_a in
  Alcotest.(check string) "retried item bit-identical after respawn"
    (norm_body (Ok warm_a)) (norm_body (Ok retry_a));
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal"

(* Rolling restart under load: a drain op cycles both shards while a
   client hammers analysis queries.  Zero failed requests — parked and
   re-delivered around each shard's drain window — and the fleet reports
   the two respawns. *)
let test_rolling_drain_under_load () =
  sigpipe_off ();
  let socket = tmp_path "drain.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let child = fork_router (router_opts socket) in
  Fun.protect
    ~finally:(fun () -> stop_router child)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let op_b = P.Breakdown { target = target_b; focus = "dl1" } in
  let warm_a = ask ~id:3 s op_a in
  let warm_b = ask ~id:4 s op_b in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let successes = Atomic.make 0 in
  let hammer =
    Thread.create
      (fun () ->
        let hs = Client.connect_session ~retry_for:10.0 ~socket () in
        let rec loop flip =
          if not (Atomic.get stop) then begin
            (match
               (Client.call_with_retry hs
                  (req ~id:7 (if flip then op_a else op_b)))
                 .P.body
             with
             | Ok _ -> Atomic.incr successes
             | Error _ -> Atomic.incr failures
             | exception _ -> Atomic.incr failures);
            loop (not flip)
          end
        in
        loop true;
        Client.close_session hs)
      ()
  in
  (* let the hammer get going, then cycle the fleet *)
  ignore (Unix.select [] [] [] 0.2);
  (match (Client.call_with_retry s (req ~id:50 P.Drain)).P.body with
   | Ok (P.R_drain { restarted }) ->
     Alcotest.(check int) "both shards cycled" 2 restarted
   | Ok _ -> Alcotest.fail "expected a drain reply"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "drain failed: %s %s" (P.error_code_name c) m));
  ignore (Unix.select [] [] [] 0.2);
  Atomic.set stop true;
  Thread.join hammer;
  Alcotest.(check int) "zero failed requests through the rolling restart" 0
    (Atomic.get failures);
  Alcotest.(check bool) "the hammer actually ran" true
    (Atomic.get successes > 0);
  (* the replacements answer identically (rebuilt, not corrupted) *)
  Alcotest.(check string) "shard A identical after the cycle"
    (norm_body (Ok warm_a)) (norm_body (Ok (ask ~id:3 s op_a)));
  Alcotest.(check string) "shard B identical after the cycle"
    (norm_body (Ok warm_b)) (norm_body (Ok (ask ~id:4 s op_b)));
  let st = status_of s in
  Alcotest.(check bool) "drain respawns counted" true (st.P.respawns >= 2);
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session s;
  match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal"

(* A shard that crashes on every request blows its storm budget: the
   supervisor stops respawning it, and its requests fail fast with a
   typed [unavailable] carrying a machine-readable retry_after_ms hint
   instead of burning the whole failover budget per call.  The other
   shard keeps serving. *)
let test_storm_breaker_fails_fast () =
  sigpipe_off ();
  let socket = tmp_path "storm.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  Fault.configure_exn "shard_exit:@1+";
  let supervise =
    { Router.default_opts.supervise with
      Supervise.storm_budget = 2;
      breaker_cooldown_s = 5.;
    }
  in
  let child = fork_router (router_opts ~supervise socket) in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      stop_router child)
  @@ fun () ->
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  Client.with_client ~retry_for:30.0 ~socket (fun c ->
      (* every delivery kills the shard; after the 2nd crash the breaker
         trips and this call must come back as a typed refusal *)
      match (Client.call c (req ~id:5 op_a)).P.body with
      | Error (P.Unavailable, msg) -> (
        match P.retry_after_of_msg msg with
        | Some ms ->
          Alcotest.(check bool)
            (Printf.sprintf "retry hint within the cooldown (%d ms)" ms)
            true
            (ms > 0 && ms <= 5100)
        | None ->
          Alcotest.fail ("breaker refusal carries no retry_after_ms: " ^ msg))
      | Error (c', m) ->
        Alcotest.fail
          (Printf.sprintf "expected unavailable, got %s %s"
             (P.error_code_name c') m)
      | Ok _ -> Alcotest.fail "a crashing shard cannot have answered");
  (* the healthy shard is untouched by its sibling's breaker; status
     (aggregated over reachable shards only) keeps flowing *)
  Client.with_client ~retry_for:5.0 ~socket (fun c ->
      match (Client.call c (req ~id:6 P.Status)).P.body with
      | Ok (P.R_status st) ->
        Alcotest.(check bool) "crashes counted as respawns" true
          (st.P.respawns >= 1)
      | _ -> Alcotest.fail "status not answered");
  Client.with_client ~retry_for:5.0 ~socket (fun c ->
      match (Client.call c (req ~id:99 P.Shutdown)).P.body with
      | Ok P.R_shutdown -> ()
      | _ -> Alcotest.fail "shutdown not acknowledged");
  match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal"

(* SIGKILL the supervisor itself — the reliability anchor.  The fleet
   must keep answering (the shards are untouched), but health degrades
   (nothing can respawn anymore), a rolling restart is refused with a
   typed error rather than draining a shard nobody will bring back, and
   router shutdown sweeps the orphaned shards over their sockets so no
   processes leak past exit (they were re-parented to init when the
   supervisor died: signals and waitpid can't reach them). *)
let test_supervisor_killed () =
  sigpipe_off ();
  let socket = tmp_path "supkill.sock" in
  if Sys.file_exists socket then Sys.remove socket;
  let child = fork_router (router_opts socket) in
  Fun.protect ~finally:(fun () -> stop_router child)
  @@ fun () ->
  let s = Client.connect_session ~retry_for:30.0 ~socket () in
  let op_a = P.Breakdown { target = target_a; focus = "dl1" } in
  let warm_a = ask ~id:3 s op_a in
  (* capture the chain before the kill: it is unreadable afterwards *)
  let shard_pids = shard_pids_of ~router:child ~attempts:40 in
  Alcotest.(check int) "found both shard pids" 2 (List.length shard_pids);
  let supervisor =
    match children_of child with
    | [ sup ] -> sup
    | l ->
      Alcotest.fail
        (Printf.sprintf "expected one supervisor child, found %d"
           (List.length l))
  in
  Unix.kill supervisor Sys.sigkill;
  (* pipe EOF marks the supervisor gone; poll status until it shows *)
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_degraded () =
    let st = status_of s in
    if st.P.health = "degraded" then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.fail
        (Printf.sprintf "health never degraded (still %S)" st.P.health)
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait_degraded ()
    end
  in
  wait_degraded ();
  (* the shards themselves are untouched and keep answering *)
  let fresh = ask ~id:5 s op_a in
  Alcotest.(check string) "fleet keeps serving bit-identically"
    (norm_body (Ok warm_a)) (norm_body (Ok fresh));
  let contains msg needle =
    let n = String.length msg and m = String.length needle in
    let rec go i = i + m <= n && (String.sub msg i m = needle || go (i + 1)) in
    go 0
  in
  (match (Client.call_with_retry s (req ~id:6 P.Drain)).P.body with
  | Error (P.Unavailable, msg) ->
    Alcotest.(check bool) "drain refusal names the supervisor" true
      (contains msg "supervisor")
  | Ok _ -> Alcotest.fail "drain must be refused without a supervisor"
  | Error (c, m) ->
    Alcotest.fail
      (Printf.sprintf "expected unavailable, got %s %s" (P.error_code_name c)
         m));
  (match (Client.call_with_retry s (req ~id:99 P.Shutdown)).P.body with
  | Ok P.R_shutdown -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  (match Unix.waitpid [] child with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n ->
    Alcotest.fail (Printf.sprintf "router exited with %d" n)
  | _ -> Alcotest.fail "router killed by signal");
  (* the orphans must be gone shortly after the router's sweep *)
  let gone pid =
    match Unix.kill pid 0 with
    | () -> false
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
    | exception Unix.Unix_error _ -> true
  in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_gone () =
    if List.for_all gone shard_pids then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.fail "orphaned shards leaked past router shutdown"
    else begin
      ignore (Unix.select [] [] [] 0.05);
      wait_gone ()
    end
  in
  wait_gone ()

let suite =
  ( "router",
    [
      Alcotest.test_case "hash: golden shard placements" `Quick
        test_shard_hash_golden;
      Alcotest.test_case "hash: routing key shape" `Quick test_route_key;
      Alcotest.test_case "hash: shard socket naming" `Quick test_shard_socket;
      Alcotest.test_case "router: two-shard end-to-end" `Slow
        test_router_end_to_end;
      Alcotest.test_case "router: sweeps route, aggregate and batch" `Slow
        test_router_sweep;
      Alcotest.test_case "heal: socket probe classification" `Quick
        test_probe_unix_socket;
      Alcotest.test_case "heal: kill -9 both shards, respawn bit-identical"
        `Slow test_kill9_respawn;
      Alcotest.test_case "heal: mid-batch crash gives per-item errors" `Slow
        test_mid_batch_crash;
      Alcotest.test_case "heal: rolling drain under load, zero failures" `Slow
        test_rolling_drain_under_load;
      Alcotest.test_case "heal: storm breaker fails fast with retry hint"
        `Slow test_storm_breaker_fails_fast;
      Alcotest.test_case "heal: supervisor killed, orphans swept at exit"
        `Slow test_supervisor_killed;
    ] )
