(* Tests for the shard supervisor's pure pieces — backoff jitter bounds
   and determinism, the storm breaker's sliding window, the router <->
   supervisor line codecs — and for the escalating reap, exercised
   against real children including one that ignores SIGTERM.  The
   supervisor's full monitor loop is covered end to end (kill -9,
   rolling drain, storm breaker) through the router in test_router. *)

module Supervise = Icost_service.Supervise
module Prng = Icost_util.Prng

let o = Supervise.default_opts

(* ---------- backoff ---------- *)

let test_backoff_bounds () =
  let prng = Prng.create 42 in
  (* first delay (prev = 0): the span collapses and the delay is exactly
     the base — a single crash respawns as fast as allowed *)
  Alcotest.(check (float 1e-9)) "first delay is the base"
    o.Supervise.backoff_base_ms
    (Supervise.backoff_ms o ~prng ~prev_ms:0.);
  (* decorrelated jitter stays within [base, min cap (3*prev)] *)
  let prev = ref o.Supervise.backoff_base_ms in
  for _ = 1 to 200 do
    let ms = Supervise.backoff_ms o ~prng ~prev_ms:!prev in
    Alcotest.(check bool) "above base" true (ms >= o.Supervise.backoff_base_ms);
    Alcotest.(check bool) "below cap" true (ms <= o.Supervise.backoff_cap_ms);
    Alcotest.(check bool) "within 3x previous" true
      (ms <= Float.max o.Supervise.backoff_base_ms (3. *. !prev) +. 1e-9);
    prev := ms
  done

let test_backoff_deterministic () =
  let sequence seed =
    let prng = Prng.create seed in
    let prev = ref 0. in
    List.init 50 (fun _ ->
        let ms = Supervise.backoff_ms o ~prng ~prev_ms:!prev in
        prev := ms;
        ms)
  in
  Alcotest.(check (list (float 1e-9))) "same seed, same schedule"
    (sequence 7) (sequence 7);
  Alcotest.(check bool) "different seeds decorrelate" true
    (sequence 7 <> sequence 8)

(* ---------- storm breaker ---------- *)

let test_storm_trips_at_budget () =
  let s = Supervise.storm_make () in
  let t0 = 1000. in
  (* budget - 1 crashes inside the window: still respawning *)
  for k = 0 to o.Supervise.storm_budget - 2 do
    match Supervise.storm_record o s ~now:(t0 +. float_of_int k) with
    | `Ok -> ()
    | `Tripped _ -> Alcotest.fail "tripped before the budget"
  done;
  (* the budget-th crash trips, with the cooldown measured from now *)
  let now = t0 +. float_of_int o.Supervise.storm_budget in
  (match Supervise.storm_record o s ~now with
   | `Tripped until ->
     Alcotest.(check (float 1e-9)) "cooldown from the tripping crash"
       (now +. o.Supervise.breaker_cooldown_s) until
   | `Ok -> Alcotest.fail "did not trip at the budget");
  (* another quick death re-trips immediately: the window still holds
     the storm *)
  match Supervise.storm_record o s ~now:(now +. 0.5) with
  | `Tripped _ -> ()
  | `Ok -> Alcotest.fail "half-open crash must re-trip"

let test_storm_window_slides () =
  let s = Supervise.storm_make () in
  (* crashes spaced wider than the window never accumulate *)
  for k = 0 to (3 * o.Supervise.storm_budget) - 1 do
    let now = float_of_int k *. (o.Supervise.storm_window_s +. 1.) in
    match Supervise.storm_record o s ~now with
    | `Ok -> ()
    | `Tripped _ -> Alcotest.fail "spread-out crashes must not trip"
  done;
  (* a quiet period after a near-trip drains the window *)
  let s = Supervise.storm_make () in
  for k = 0 to o.Supervise.storm_budget - 2 do
    ignore (Supervise.storm_record o s ~now:(float_of_int k))
  done;
  let later = (2. *. o.Supervise.storm_window_s) +. 100. in
  match Supervise.storm_record o s ~now:later with
  | `Ok -> ()
  | `Tripped _ -> Alcotest.fail "window must slide off old crashes"

(* ---------- wire codecs ---------- *)

let test_event_codec () =
  let cases =
    [
      Supervise.Up { shard = 3; pid = 4242; latency_ms = 87 };
      Supervise.Down { shard = 0; reason = "exit 70" };
      Supervise.Down { shard = 1; reason = "signal 9" };
      Supervise.Down { shard = 2; reason = "" };
      Supervise.Breaker_open { shard = 1; retry_after_ms = 2750 };
      Supervise.Stopped;
    ]
  in
  List.iter
    (fun ev ->
      let line = Supervise.event_to_line ev in
      Alcotest.(check bool) "one event per line" false (String.contains line '\n');
      match Supervise.event_of_line line with
      | Some ev' -> Alcotest.(check bool) ("round-trip: " ^ line) true (ev = ev')
      | None -> Alcotest.fail ("event did not parse: " ^ line))
    cases;
  (* a reason with embedded newlines must not forge a second event *)
  (match
     Supervise.event_of_line
       (Supervise.event_to_line
          (Supervise.Down { shard = 0; reason = "a\nstopped" }))
   with
   | Some (Supervise.Down { reason; _ }) ->
     Alcotest.(check string) "newlines flattened" "a stopped" reason
   | _ -> Alcotest.fail "hostile reason did not parse");
  List.iter
    (fun junk ->
      Alcotest.(check bool) ("rejected: " ^ junk) true
        (Supervise.event_of_line junk = None))
    [ ""; "up"; "up x 1 2"; "breaker 1"; "nonsense 1 2 3" ]

let test_command_codec () =
  List.iter
    (fun cmd ->
      match Supervise.command_of_line (Supervise.command_to_line cmd) with
      | Some cmd' -> Alcotest.(check bool) "round-trip" true (cmd = cmd')
      | None -> Alcotest.fail "command did not parse")
    [ Supervise.Drain 0; Supervise.Drain 7; Supervise.Stop ];
  List.iter
    (fun junk ->
      Alcotest.(check bool) ("rejected: " ^ junk) true
        (Supervise.command_of_line junk = None))
    [ ""; "drain"; "drain x"; "halt" ]

(* ---------- escalating reap ---------- *)

(* Three children: one exits on its own, one dies on SIGTERM, one
   ignores SIGTERM and must be SIGKILLed.  The reap must collect all
   three, never block forever, and not take the full SIGKILL escalation
   time for the cooperative ones. *)
let test_reap_escalates () =
  let fork_child ~ignore_term ~linger_s =
    match Unix.fork () with
    | 0 ->
      if ignore_term then Sys.set_signal Sys.sigterm Sys.Signal_ignore;
      let stop = Unix.gettimeofday () +. linger_s in
      while Unix.gettimeofday () < stop do
        ignore (Unix.select [] [] [] 0.05)
      done;
      Unix._exit 0
    | pid -> pid
  in
  let prompt = fork_child ~ignore_term:false ~linger_s:0.1 in
  let termable = fork_child ~ignore_term:false ~linger_s:60. in
  let stubborn = fork_child ~ignore_term:true ~linger_s:60. in
  let t0 = Unix.gettimeofday () in
  Supervise.reap ~grace_s:0.3 [ prompt; termable; stubborn ];
  let elapsed = Unix.gettimeofday () -. t0 in
  (* all three are really gone: waitpid says "no such child" *)
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d reaped" pid)
        true
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
         | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
         | _ -> false))
    [ prompt; termable; stubborn ];
  (* poll+SIGTERM+SIGKILL at 0.3s grace steps: well under the 60s the
     lingering children wanted, and under the abandon deadline *)
  Alcotest.(check bool)
    (Printf.sprintf "escalation bounded (%.2fs)" elapsed)
    true (elapsed < 5.)

let test_reap_empty_and_gone () =
  (* no pids: a no-op *)
  Supervise.reap ~grace_s:0.1 [];
  (* an already-reaped pid (not our child anymore) must not hang *)
  let pid =
    match Unix.fork () with 0 -> Unix._exit 0 | pid -> pid
  in
  ignore (Unix.waitpid [] pid);
  let t0 = Unix.gettimeofday () in
  Supervise.reap ~grace_s:0.1 [ pid ];
  Alcotest.(check bool) "gone pid returns immediately" true
    (Unix.gettimeofday () -. t0 < 1.)

let suite =
  ( "supervise",
    [
      Alcotest.test_case "backoff: jitter bounds" `Quick test_backoff_bounds;
      Alcotest.test_case "backoff: deterministic per seed" `Quick
        test_backoff_deterministic;
      Alcotest.test_case "storm: trips at the budget" `Quick
        test_storm_trips_at_budget;
      Alcotest.test_case "storm: window slides" `Quick test_storm_window_slides;
      Alcotest.test_case "wire: event codec" `Quick test_event_codec;
      Alcotest.test_case "wire: command codec" `Quick test_command_codec;
      Alcotest.test_case "reap: escalates TERM to KILL" `Slow
        test_reap_escalates;
      Alcotest.test_case "reap: empty and already-gone pids" `Quick
        test_reap_empty_and_gone;
    ] )
