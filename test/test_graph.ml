(* Tests for the dependence-graph model: structure, evaluation,
   idealization, critical path, slack, agreement with the simulator. *)

module Asm = Icost_isa.Asm
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category

let graph_of ?(max_instrs = 3000) ?(cfg = Config.default) name =
  let w = Icost_workloads.Workload.find_exn name in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs } (w.build ()) in
  let evts, _ = Events.annotate cfg trace in
  let r = Ooo.run cfg trace evts in
  (trace, evts, r, Build.of_sim cfg trace evts r)

let test_node_codec () =
  List.iter
    (fun k ->
      let v = Graph.node ~seq:17 ~kind:k in
      Alcotest.(check int) "seq round trip" 17 (Graph.seq_of_node v);
      Alcotest.(check bool) "kind round trip" true (Graph.kind_of_node v = k))
    [ Graph.D; Graph.R; Graph.E; Graph.P; Graph.C ]

let test_edge_counts () =
  let cfg = Config.default in
  let _, _, _, g = graph_of "gcc" in
  let n = g.Graph.num_instrs in
  let h = Graph.edge_histogram g in
  let count k = Option.value ~default:0 (Hashtbl.find_opt h k) in
  Alcotest.(check int) "DD edges" (n - 1) (count Graph.DD);
  Alcotest.(check int) "DR edges" n (count Graph.DR);
  Alcotest.(check int) "RE edges" n (count Graph.RE);
  Alcotest.(check int) "EP edges" n (count Graph.EP);
  Alcotest.(check int) "PC edges" n (count Graph.PC);
  Alcotest.(check int) "CC edges" (n - 1) (count Graph.CC);
  Alcotest.(check int) "CD edges" (n - cfg.window_size) (count Graph.CD);
  (* FBW: one per instruction beyond the fetch width, plus one per taken
     branch beyond the per-cycle taken limit *)
  Alcotest.(check bool) "FBW edges at least n - fbw" true
    (count Graph.FBW >= n - cfg.fetch_bw);
  Alcotest.(check int) "CBW edges" (n - cfg.commit_bw) (count Graph.CBW)

let test_edges_point_forward () =
  let _, _, _, g = graph_of "parser" in
  Array.iter
    (fun (e : Graph.edge) ->
      if e.src >= e.dst then Alcotest.failf "edge not forward: %d -> %d" e.src e.dst)
    g.Graph.edges

let test_eval_monotone_nodes () =
  let _, _, _, g = graph_of "gzip" in
  let time = Graph.eval g in
  for i = 0 to g.Graph.num_instrs - 1 do
    let t k = time.(Graph.node ~seq:i ~kind:k) in
    if
      not
        (t Graph.D <= t Graph.R && t Graph.R <= t Graph.E && t Graph.E <= t Graph.P
         && t Graph.P <= t Graph.C)
    then Alcotest.failf "node times not monotone at %d" i
  done

let test_graph_tracks_simulator () =
  List.iter
    (fun name ->
      let _, _, r, g = graph_of name in
      let cp = Graph.critical_length g in
      let err =
        Float.abs (float_of_int (cp - r.Ooo.cycles)) /. float_of_int r.Ooo.cycles
      in
      if err > 0.08 then
        Alcotest.failf "%s: graph CP %d vs sim %d (err %.1f%%)" name cp r.Ooo.cycles
          (100. *. err))
    [ "gcc"; "mcf"; "gap"; "vortex"; "bzip2"; "eon" ]

let test_idealization_monotone_on_graph () =
  let _, _, _, g = graph_of "twolf" in
  let base = Graph.critical_length g in
  (* more idealization can only shorten the critical path *)
  List.iter
    (fun s ->
      let cp = Graph.critical_length ~ideal:s g in
      if cp > base then Alcotest.failf "idealized CP grew under %s" (Category.Set.name s))
    (Category.Set.subsets Category.Set.full)

let test_subset_monotonicity () =
  let _, _, _, g = graph_of "gcc" in
  let cp s = Graph.critical_length ~ideal:s g in
  let full = Category.Set.full in
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          if not (Category.Set.mem c s) then begin
            let bigger = Category.Set.add c s in
            if cp bigger > cp s then
              Alcotest.failf "CP grew when adding %s to %s" (Category.name c)
                (Category.Set.name s)
          end)
        Category.all)
    (Category.Set.subsets full)

let test_critical_path_valid () =
  let _, _, _, g = graph_of ~max_instrs:500 "crafty" in
  let time = Graph.eval g in
  let cp = Graph.critical_path g in
  Alcotest.(check bool) "path non-empty" true (List.length cp > 1);
  (* path ends at the last C node *)
  let last_node = fst (List.nth cp (List.length cp - 1)) in
  Alcotest.(check int) "ends at final commit"
    (Graph.node ~seq:(g.Graph.num_instrs - 1) ~kind:Graph.C)
    last_node;
  (* times along the path never decrease *)
  let rec check = function
    | (v, _) :: ((w, _) :: _ as rest) ->
      if time.(v) > time.(w) then Alcotest.failf "time decreased along path";
      check rest
    | _ -> ()
  in
  check cp

let test_slack_zero_on_critical_path () =
  let _, _, _, g = graph_of ~max_instrs:500 "gap" in
  let slacks = Graph.slacks g in
  let cp = Graph.critical_path g in
  List.iter
    (fun (v, _) ->
      if slacks.(v) <> 0 then
        Alcotest.failf "critical node %s has slack %d" (Graph.node_name v) slacks.(v))
    cp

let test_slacks_nonnegative () =
  let _, _, _, g = graph_of ~max_instrs:500 "vpr" in
  Array.iteri
    (fun v s ->
      if s <> max_int && s < 0 then
        Alcotest.failf "negative slack at %s" (Graph.node_name v))
    (Graph.slacks g)

let test_instr_cost () =
  let _, _, _, g = graph_of ~max_instrs:400 "mcf" in
  let base = Graph.critical_length g in
  (* zeroing one instruction's EP can only help, and not more than base *)
  for seq = 0 to 50 do
    let c = Graph.instr_cost g ~seq in
    if c < 0 || c > base then Alcotest.failf "instr_cost out of range at %d: %d" seq c
  done

let test_cost_of_edges_total () =
  let _, _, _, g = graph_of ~max_instrs:400 "gcc" in
  (* zeroing every edge collapses the critical path to ~0 *)
  let c = Graph.cost_of_edges g (fun _ -> true) in
  let base = Graph.critical_length g in
  Alcotest.(check bool) "all-edge cost ~ base (modulo the startup floor)" true
    (base - c <= 150)

let test_table2_ablations () =
  let cfg = Config.default in
  let w = Icost_workloads.Workload.find_exn "gzip" in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 2000 } (w.build ()) in
  let evts, _ = Events.annotate cfg trace in
  let r = Ooo.run cfg trace evts in
  let p = Build.params_of_config cfg in
  let infos =
    Array.init (Trace.length trace) (fun i ->
        Build.info_of_sim cfg (Trace.get trace i) evts.(i) r.Ooo.slots.(i))
  in
  let g_new = Build.of_infos p infos in
  let g_old = Build.of_infos { p with explicit_bw = false; pp_edges = false } infos in
  let h_old = Graph.edge_histogram g_old in
  Alcotest.(check (option int)) "old model has no FBW edges" None
    (Hashtbl.find_opt h_old Graph.FBW);
  Alcotest.(check (option int)) "old model has no PP edges" None
    (Hashtbl.find_opt h_old Graph.PP);
  (* both models should still be within a reasonable band of the simulator *)
  let cp_new = Graph.critical_length g_new in
  let cp_old = Graph.critical_length g_old in
  let err cp = Float.abs (float_of_int (cp - r.Ooo.cycles)) /. float_of_int r.Ooo.cycles in
  Alcotest.(check bool) "new model accurate" true (err cp_new < 0.08);
  Alcotest.(check bool)
    (Printf.sprintf "old model less constrained (%d vs %d)" cp_old cp_new)
    true (cp_old <= cp_new)

let test_dot_output () =
  let _, _, _, g = graph_of ~max_instrs:12 "gcc" in
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  Alcotest.(check bool) "contains edges" true
    (String.split_on_char '\n' dot
     |> List.exists (fun l -> String.length l > 4 && String.sub l 2 1 = "n"))

let all_subsets = Array.of_list (Category.Set.subsets Category.Set.full)

let test_sliced_matches_scalar () =
  let _, _, _, g = graph_of ~cfg:Config.loop_dl1 "gcc" in
  let reference = Graph.eval_subsets_scalar g all_subsets in
  Alcotest.(check bool) "default lanes bit-identical (256 sets, >1 chunk)"
    true
    (Graph.eval_subsets g all_subsets = reference);
  List.iter
    (fun lanes ->
      Alcotest.(check bool)
        (Printf.sprintf "lanes=%d bit-identical" lanes)
        true
        (Graph.eval_slices ~lanes g all_subsets = reference))
    [ 1; 2; 3; 5; 17; 63; 64; 1000 ];
  Alcotest.(check bool) "empty set array" true
    (Graph.eval_subsets g [||] = [||])

let test_sliced_unpacked_fallback () =
  (* a 500k-cycle L1 latency pushes the compiled graph's latency bound
     far past the 20-bit packed-lane capacity, forcing the unpacked
     evaluation path; it must stay bit-identical to the scalar one *)
  let cfg = { Config.default with Config.dl1_lat = 500_000 } in
  let _, _, _, g = graph_of ~max_instrs:800 ~cfg "gcc" in
  let reference = Graph.eval_subsets_scalar g all_subsets in
  Alcotest.(check bool) "huge-latency graph exceeds packed range" true
    (Graph.critical_length g > 1 lsl 20);
  Alcotest.(check bool) "unpacked fallback bit-identical" true
    (Graph.eval_subsets g all_subsets = reference);
  Alcotest.(check bool) "unpacked fallback, lanes=5" true
    (Graph.eval_slices ~lanes:5 g all_subsets = reference)

let prop_eval_deterministic =
  QCheck.Test.make ~name:"evaluation is deterministic" ~count:5
    (QCheck.make (QCheck.Gen.oneofl [ "gap"; "eon" ]))
    (fun name ->
      let _, _, _, g = graph_of ~max_instrs:1000 name in
      Graph.eval g = Graph.eval g)

let suite =
  ( "graph",
    [
      Alcotest.test_case "node codec" `Quick test_node_codec;
      Alcotest.test_case "edge counts" `Quick test_edge_counts;
      Alcotest.test_case "edges forward" `Quick test_edges_point_forward;
      Alcotest.test_case "node times monotone" `Quick test_eval_monotone_nodes;
      Alcotest.test_case "graph tracks simulator" `Quick test_graph_tracks_simulator;
      Alcotest.test_case "idealization shortens CP" `Quick test_idealization_monotone_on_graph;
      Alcotest.test_case "subset monotonicity" `Quick test_subset_monotonicity;
      Alcotest.test_case "critical path valid" `Quick test_critical_path_valid;
      Alcotest.test_case "zero slack on CP" `Quick test_slack_zero_on_critical_path;
      Alcotest.test_case "slacks non-negative" `Quick test_slacks_nonnegative;
      Alcotest.test_case "instr cost bounded" `Quick test_instr_cost;
      Alcotest.test_case "cost of all edges" `Quick test_cost_of_edges_total;
      Alcotest.test_case "Table 2 ablations" `Quick test_table2_ablations;
      Alcotest.test_case "DOT output" `Quick test_dot_output;
      Alcotest.test_case "sliced eval = scalar" `Quick test_sliced_matches_scalar;
      Alcotest.test_case "sliced eval unpacked fallback" `Quick
        test_sliced_unpacked_fallback;
      QCheck_alcotest.to_alcotest prop_eval_deterministic;
    ] )
