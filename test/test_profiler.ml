(* Tests for the shotgun profiler: signature bits, sampling, fragment
   reconstruction fidelity, consistency checking, end-to-end accuracy. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Signature = Icost_profiler.Signature
module Sampler = Icost_profiler.Sampler
module Construct = Icost_profiler.Construct
module Profile = Icost_profiler.Profile
module Category = Icost_core.Category

let prepare ?(max_instrs = 20_000) name =
  let w = Icost_workloads.Workload.find_exn name in
  let program = w.build () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs } program in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  (cfg, program, trace, evts, result)

(* --- signature bits (Table 5) --- *)

let dyn_stub instr taken =
  { Trace.seq = 0; static_ix = 0; pc = 0; instr; reg_deps = []; mem_addr = None;
    mem_dep = None; taken; next_pc = 4 }

let test_signature_bits () =
  let load = Isa.Load { rd = 1; base = 2; offset = 0 } in
  let add = Isa.Alu { op = Isa.Add; rd = 1; rs1 = 1; src2 = Imm 1 } in
  let br = Isa.Branch { cond = Isa.Eq; rs1 = 1; rs2 = 2; target = 0 } in
  let e = Events.no_evt in
  (* bit 1: taken branch or load/store *)
  Alcotest.(check int) "load sets bit1" 1 (Signature.bits (dyn_stub load false) e);
  Alcotest.(check int) "plain alu clear" 0 (Signature.bits (dyn_stub add false) e);
  Alcotest.(check int) "taken branch sets bit1" 1 (Signature.bits (dyn_stub br true) e);
  Alcotest.(check int) "not-taken branch clear" 0 (Signature.bits (dyn_stub br false) e);
  (* reset bit1 on an L2 D-miss; bit2 set by any miss *)
  let l2miss = { Events.no_evt with dl1_miss = true; dl2_miss = true } in
  Alcotest.(check int) "L2 miss resets bit1, sets bit2" 2
    (Signature.bits (dyn_stub load false) l2miss);
  let l1miss = { Events.no_evt with dl1_miss = true } in
  Alcotest.(check int) "L1 miss keeps bit1, sets bit2" 3
    (Signature.bits (dyn_stub load false) l1miss);
  let imiss = { Events.no_evt with il1_miss = true } in
  Alcotest.(check int) "icache miss sets bit2" 2 (Signature.bits (dyn_stub add false) imiss)

let test_similarity () =
  let a = [| 0; 1; 2; 3 |] and b = [| 0; 1; 2; 3 |] in
  Alcotest.(check int) "identical = 2 bits per slot" 8 (Signature.similarity a b);
  let c = [| 3; 2; 1; 0 |] in
  (* each position differs in both bits vs [|0;1;2;3|]? 0^3=3 (2 bits), 1^2=3,
     2^1=3, 3^0=3 -> 0 matching bits *)
  Alcotest.(check int) "opposite = 0" 0 (Signature.similarity a c)

(* --- sampler --- *)

let test_sampler_counts () =
  let cfg, _, trace, evts, result = prepare "gcc" in
  let opts = { Sampler.default_opts with sig_period = 2000; det_period = 10 } in
  let db = Sampler.collect ~opts cfg trace evts result in
  Alcotest.(check bool) "several signature samples" true
    (Array.length db.signatures >= 5);
  Alcotest.(check bool) "detailed samples about n/det_period" true
    (abs (db.num_detailed - 2000) < 300);
  Array.iter
    (fun (ss : Sampler.signature_sample) ->
      Alcotest.(check int) "signature length" opts.sig_len (Array.length ss.sig_bits))
    db.signatures

let test_detailed_sample_content () =
  let cfg, _, trace, evts, result = prepare "mcf" in
  let db = Sampler.collect cfg trace evts result in
  (* every recorded load latency matches some plausible memory level *)
  Hashtbl.iter
    (fun _pc samples ->
      List.iter
        (fun (s : Sampler.detailed_sample) ->
          if s.exec_lat < 0 then Alcotest.fail "negative latency in sample";
          Alcotest.(check int) "context width" 21 (Array.length s.context_bits))
        samples)
    db.detailed

(* --- fragment reconstruction --- *)

(* A deterministic loop whose control flow the profiler must reconstruct
   exactly from the signature alone. *)
let loop_program () =
  let a = Asm.create ~name:"loop" () in
  Asm.init_word a ~addr:0x2000 ~value:5;
  Asm.li a ~rd:1 0x2000;
  Asm.li a ~rd:2 64;
  Asm.label a "top";
  Asm.load a ~rd:3 ~base:1 ~offset:0;
  Asm.add a ~rd:4 ~rs1:4 ~rs2:3;
  Asm.addi a ~rd:2 ~rs1:2 (-1);
  Asm.bne a ~rs1:2 ~rs2:0 "top";
  Asm.label a "spin";
  Asm.addi a ~rd:5 ~rs1:5 1;
  Asm.jmp a "spin";
  Asm.assemble a

let test_reconstruction_exact () =
  let program = loop_program () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 2000 } program in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  let opts = { Sampler.default_opts with sig_len = 200; sig_period = 300; det_period = 3 } in
  let db = Sampler.collect ~opts cfg trace evts result in
  Alcotest.(check bool) "have signatures" true (Array.length db.signatures > 0);
  (* find the true dynamic window each signature describes and compare the
     reconstructed static path against the truth *)
  Array.iteri
    (fun _ (ss : Sampler.signature_sample) ->
      match Construct.fragment_of_signature cfg program db ~context:opts.context ss with
      | Construct.Aborted (r, k) ->
        Alcotest.failf "fragment aborted: %s at %d" (Construct.abort_reason_name r) k
      | Construct.Built frag ->
        (* locate the matching position in the true trace by start PC +
           following bits; for this deterministic loop, matching the start
           PC against all occurrences and checking one is identical is
           enough *)
        let ok = ref false in
        Array.iter
          (fun (d : Trace.dyn) ->
            if (not !ok) && d.pc = ss.start_pc then begin
              let matches = ref true in
              Array.iteri
                (fun k six ->
                  let true_ix = d.seq + k in
                  if true_ix < Trace.length trace then begin
                    let td = Trace.get trace true_ix in
                    if td.static_ix <> six then matches := false
                  end)
                frag.static_ixs;
              if !matches then ok := true
            end)
          trace.instrs;
        Alcotest.(check bool) "reconstructed path matches an occurrence" true !ok)
    db.signatures

let test_consistency_check_fires () =
  let program = loop_program () in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs = 1000 } program in
  let cfg = Config.default in
  let evts, _ = Events.annotate cfg trace in
  let result = Ooo.run cfg trace evts in
  let opts = { Sampler.default_opts with sig_len = 100; sig_period = 200 } in
  let db = Sampler.collect ~opts cfg trace evts result in
  let ss = db.signatures.(0) in
  (* corrupt the signature: claim a load/store/taken-branch where the code
     has a plain ALU op.  The walk must detect the impossible setting. *)
  let corrupted =
    { ss with
      sig_bits =
        Array.mapi (fun i b -> if i >= 2 && i <= 40 then 1 else b) ss.sig_bits }
  in
  match Construct.fragment_of_signature cfg program db ~context:opts.context corrupted with
  | Construct.Aborted (Construct.Inconsistent_bits, _) -> ()
  | Construct.Aborted (r, _) ->
    Alcotest.failf "wrong abort reason: %s" (Construct.abort_reason_name r)
  | Construct.Built _ -> Alcotest.fail "corrupted signature not detected"

(* --- end-to-end --- *)

let test_profile_end_to_end () =
  let cfg, program, trace, evts, result = prepare "gzip" in
  let prof = Profile.profile cfg program trace evts result in
  Alcotest.(check bool) "fragments built" true (prof.stats.fragments_built > 3);
  Alcotest.(check bool) "match rate high" true (prof.stats.match_rate > 0.9);
  let oracle = Profile.oracle prof in
  let base = Icost_core.Cost.query oracle Category.Set.empty in
  Alcotest.(check bool) "non-trivial baseline" true (base > 1000.);
  (* idealization monotone on the profiler oracle too *)
  List.iter
    (fun c ->
      let v = Icost_core.Cost.query oracle (Category.Set.singleton c) in
      if v > base then Alcotest.failf "profiler oracle grew under %s" (Category.name c))
    Category.all

(* Fragment construction fans out across the domain pool; the stitched
   profile must not depend on how many jobs did the work. *)
let test_profile_parallel_deterministic () =
  let cfg, program, trace, evts, result = prepare "gcc" in
  let restore = Icost_util.Pool.jobs () in
  let profile_with jobs =
    Icost_util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Icost_util.Pool.set_jobs restore)
      (fun () -> Profile.profile cfg program trace evts result)
  in
  let p1 = profile_with 1 in
  let p4 = profile_with 4 in
  Alcotest.(check bool) "stats identical across job counts" true
    (p1.Profile.stats = p4.Profile.stats);
  Alcotest.(check int) "same number of fragment graphs"
    (Array.length p1.Profile.graphs)
    (Array.length p4.Profile.graphs);
  (* same fragments in the same order: identical critical paths, with and
     without idealization *)
  let lengths (p : Profile.t) ideal =
    Array.map
      (fun g -> Icost_depgraph.Graph.critical_length ~ideal g)
      p.Profile.graphs
  in
  List.iter
    (fun s ->
      Alcotest.(check (array int)) "per-fragment critical paths identical"
        (lengths p1 s) (lengths p4 s))
    [
      Category.Set.empty;
      Category.Set.singleton Category.Dl1;
      Category.Set.of_list Category.all;
    ]

let test_profiler_tracks_graph () =
  let cfg, program, trace, evts, result = prepare ~max_instrs:25_000 "twolf" in
  let prof = Profile.profile cfg program trace evts result in
  let graph = Icost_depgraph.Build.of_sim cfg trace evts result in
  let po = Icost_core.Cost.memoize (Profile.oracle prof) in
  let go = Icost_core.Cost.memoize (Icost_depgraph.Build.oracle graph) in
  (* compare cost *shares* for the biggest categories *)
  let share oracle c =
    Icost_core.Cost.cost oracle (Category.Set.singleton c)
    /. Icost_core.Cost.query oracle Category.Set.empty
  in
  List.iter
    (fun c ->
      let pg = 100. *. share go c and pp = 100. *. share po c in
      if Float.abs pg > 8. && Float.abs (pp -. pg) > 12. then
        Alcotest.failf "profiler far from graph for %s: %.1f vs %.1f" (Category.name c)
          pp pg)
    Category.all

let suite =
  ( "profiler",
    [
      Alcotest.test_case "signature bits (Table 5)" `Quick test_signature_bits;
      Alcotest.test_case "similarity" `Quick test_similarity;
      Alcotest.test_case "sampler counts" `Quick test_sampler_counts;
      Alcotest.test_case "detailed sample content" `Quick test_detailed_sample_content;
      Alcotest.test_case "exact path reconstruction" `Quick test_reconstruction_exact;
      Alcotest.test_case "consistency check" `Quick test_consistency_check_fires;
      Alcotest.test_case "end-to-end profile" `Quick test_profile_end_to_end;
      Alcotest.test_case "parallel construction is deterministic" `Quick
        test_profile_parallel_deterministic;
      Alcotest.test_case "profiler tracks graph" `Slow test_profiler_tracks_graph;
    ] )
