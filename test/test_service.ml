(* Tests for the service layer: the icost.rpc.v1 wire protocol (round
   trips, malformed and over-long requests), the single-flight LRU cache,
   scheduler backpressure, the bounded cost memo table, and two
   end-to-end daemon sessions over real Unix sockets — checking that
   served answers are bit-identical to direct Runner computations, that
   concurrent clients on one key trigger a single preparation, and that
   shutdown mid-request still answers the in-flight query. *)

module Telemetry = Icost_util.Telemetry
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Graph = Icost_depgraph.Graph
module Build = Icost_depgraph.Build
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Runner = Icost_experiments.Runner
module Json = Icost_service.Json
module P = Icost_service.Protocol
module Cache = Icost_service.Cache
module Scheduler = Icost_service.Scheduler
module Server = Icost_service.Server
module Client = Icost_service.Client
module Breaker = Icost_service.Breaker
module Fault = Icost_util.Fault

let bits = Int64.bits_of_float

let check_feq what a b = Alcotest.(check int64) what (bits a) (bits b)

(* Raw writes against a daemon that may close mid-write raise EPIPE
   instead of killing the test binary. *)
let sigpipe_off () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let tmp_socket tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "icost-test-%s-%d.sock" tag (Unix.getpid ()))

let rec wait_for ?(tries = 2500) what pred =
  if pred () then ()
  else if tries = 0 then Alcotest.fail ("timeout waiting for " ^ what)
  else begin
    Thread.delay 0.002;
    wait_for ~tries:(tries - 1) what pred
  end

(* ---------- protocol round trips ---------- *)

let sample_target =
  {
    P.workload = "gcc";
    variant = "dl1";
    engine = "multisim";
    warmup = 123;
    measure = 456;
    seed = 789;
  }

let test_request_roundtrip () =
  let ops =
    [
      P.Breakdown { target = sample_target; focus = "bmisp" };
      P.Icost { target = P.{ default_target with workload = "gzip" };
                sets = [ "dl1"; "dl1,win"; "bw" ] };
      P.Graph_stats { target = sample_target };
      P.Sweep
        {
          target = sample_target;
          params = [ "window=16..256"; "mem_lat=25..100:25" ];
        };
      P.Status;
      P.Health;
      P.Drain;
      P.Shutdown;
      P.Batch
        {
          ops =
            [
              P.Breakdown { target = sample_target; focus = "dl1" };
              P.Status;
              P.Icost { target = sample_target; sets = [ "bw" ] };
            ];
        };
    ]
  in
  List.iteri
    (fun i op ->
      List.iter
        (fun deadline_ms ->
          let r = { P.req_id = i; deadline_ms; op } in
          match P.decode_request (P.encode_request r) with
          | Ok r' ->
            Alcotest.(check bool)
              (Printf.sprintf "request %d round-trips" i)
              true (r = r')
          | Error msg -> Alcotest.fail ("round trip rejected: " ^ msg))
        [ None; Some 1500 ])
    ops

let test_reply_roundtrip () =
  let awkward = [ 0.1; 1. /. 3.; 4. *. atan 1.; 1e-300; 9885.; -17.25 ] in
  let bodies =
    [
      Ok
        (P.R_breakdown
           {
             baseline = List.nth awkward 4;
             rows =
               List.mapi
                 (fun i f ->
                   { P.row_label = Printf.sprintf "row%d" i;
                     row_percent = f;
                     row_cycles = f *. 7. })
                 awkward;
           });
      Ok
        (P.R_icost
           {
             baseline = 0.1 +. 0.2;
             rows =
               [
                 { P.set_name = "dl1+win"; set_cost = 1. /. 7.;
                   set_icost = -1. /. 7.; set_class = "serial" };
               ];
           });
      Ok (P.R_graph_stats
            { instrs = 5000; nodes = 20001; edges = 63; critical_path = 9885 });
      Ok
        (P.R_status
           {
             P.uptime_s = 12.75;
             requests_total = 42;
             inflight = 2;
             queue_depth = 3;
             sessions = 4;
             cache_hits = 10;
             cache_misses = 5;
             cache_evictions = 1;
             snapshot_hits = 2;
             snapshot_misses = 1;
             snapshot_rejects = 1;
             sweep_points = 7;
             sweep_cache_hits = 3;
             segments = 11;
             stream_peak_mb = 24.5;
             pool_jobs = 8;
             shards = 2;
             respawns = 1;
             failovers = 2;
             health = "degraded";
             draining = false;
           });
      Ok (P.R_health { P.h_health = "ok"; h_breakers_open = 2; h_shed = 5 });
      Ok P.R_shutdown;
      Ok (P.R_drain { restarted = 3 });
      Ok
        (P.R_batch
           {
             results =
               [
                 Ok (P.R_graph_stats
                       { instrs = 1; nodes = 2; edges = 3; critical_path = 4 });
                 Error (P.Bad_request, "unknown workload \"nope\"");
                 Ok P.R_shutdown;
               ];
           });
      Ok
        (P.R_sweep
           {
             baseline = 9885.;
             curves =
               [
                 {
                   P.curve_param = "window";
                   curve_base = 64;
                   curve_knee =
                     Some
                       { P.kn_value = 128; kn_marginal = 1. /. 3.;
                         kn_saturated = true };
                   curve_points =
                     [
                       { P.sp_value = 16; sp_outcome = Ok (12000.25, 0.) };
                       { P.sp_value = 32;
                         sp_outcome = Error (P.Internal, "injected fault") };
                       { P.sp_value = 64;
                         sp_outcome = Ok (9885., -.(1. /. 7.)) };
                     ];
                 };
                 (* a flat single-point curve: no knee field on the wire *)
                 {
                   P.curve_param = "mem_ports";
                   curve_base = 2;
                   curve_knee = None;
                   curve_points =
                     [ { P.sp_value = 2; sp_outcome = Ok (9885., 0.) } ];
                 };
               ];
           });
      Error (P.Bad_request, "unknown workload \"nope\"");
      Error (P.Overloaded, "queue full");
      Error (P.Unavailable, "circuit breaker open");
      Error (P.Deadline_exceeded, "deadline elapsed");
      Error (P.Shutting_down, "draining");
      Error (P.Internal, "boom");
    ]
  in
  List.iteri
    (fun i body ->
      let r = { P.rep_id = i; body } in
      match P.decode_reply (P.encode_reply r) with
      | Ok r' ->
        Alcotest.(check bool)
          (Printf.sprintf "reply %d round-trips" i)
          true (r = r')
      | Error msg -> Alcotest.fail ("reply round trip rejected: " ^ msg))
    bodies

let test_decode_rejects () =
  let cases =
    [
      ("not json", "this is not json");
      ("wrong version", {|{"v":"icost.rpc.v0","id":1,"op":"status"}|});
      ("missing workload", {|{"v":"icost.rpc.v1","id":1,"op":"breakdown"}|});
      ("unknown op", {|{"v":"icost.rpc.v1","id":1,"op":"frobnicate"}|});
      ( "bad measure",
        {|{"v":"icost.rpc.v1","id":1,"op":"breakdown","workload":"gcc","measure":0}|}
      );
      ( "over-long line",
        P.encode_request
          { P.req_id = 1; deadline_ms = None;
            op = P.Breakdown
                { target =
                    { sample_target with
                      P.workload = String.make (P.max_request_bytes + 1) 'x' };
                  focus = "dl1" } } );
      ("batch without reqs", {|{"v":"icost.rpc.v1","id":1,"op":"batch"}|});
      ( "batch reqs not an array",
        {|{"v":"icost.rpc.v1","id":1,"op":"batch","reqs":"status"}|} );
      ("empty batch", {|{"v":"icost.rpc.v1","id":1,"op":"batch","reqs":[]}|});
      ( "batch item malformed",
        {|{"v":"icost.rpc.v1","id":1,"op":"batch","reqs":[{"op":"nope"}]}|} );
      ( "oversized batch",
        P.encode_request
          { P.req_id = 1; deadline_ms = None;
            op = P.Batch
                { ops =
                    List.init (P.max_batch_items + 1) (fun _ -> P.Status) } }
      );
      ( "sweep without params",
        {|{"v":"icost.rpc.v1","id":1,"op":"sweep","workload":"gcc"}|} );
      ( "sweep params not an array",
        {|{"v":"icost.rpc.v1","id":1,"op":"sweep","workload":"gcc","params":"window=16..64"}|}
      );
      ( "sweep with empty params",
        {|{"v":"icost.rpc.v1","id":1,"op":"sweep","workload":"gcc","params":[]}|}
      );
      ( "sweep with too many axes",
        P.encode_request
          { P.req_id = 1; deadline_ms = None;
            op = P.Sweep
                { target = sample_target;
                  params =
                    List.init (P.max_sweep_axes + 1)
                      (fun i -> Printf.sprintf "p%d=1..2" i) } } );
    ]
  in
  List.iter
    (fun (what, line) ->
      match P.decode_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (what ^ " should have been rejected"))
    cases

let test_error_code_names () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        ("code " ^ P.error_code_name c ^ " round-trips")
        true
        (P.error_code_of_name (P.error_code_name c) = Some c))
    [ P.Bad_request; P.Overloaded; P.Unavailable; P.Deadline_exceeded;
      P.Shutting_down; P.Internal ];
  Alcotest.(check bool)
    "unknown code name" true
    (P.error_code_of_name "no_such_code" = None)

let test_retry_classification () =
  List.iter
    (fun (op, expect) ->
      Alcotest.(check bool) "idempotency" expect (P.idempotent op))
    [
      (P.Breakdown { target = sample_target; focus = "dl1" }, true);
      (P.Icost { target = sample_target; sets = [ "dl1" ] }, true);
      (P.Graph_stats { target = sample_target }, true);
      (P.Status, true);
      (P.Health, true);
      (P.Shutdown, false);
      (* drain restarts the fleet: blindly re-sending one on a dropped
         connection could cycle the shards twice *)
      (P.Drain, false);
      (P.Batch { ops = [ P.Status; P.Health ] }, true);
      (P.Batch { ops = [ P.Status; P.Shutdown ] }, false);
    ];
  List.iter
    (fun (code, expect) ->
      Alcotest.(check bool)
        ("retryable " ^ P.error_code_name code)
        expect (P.retryable code))
    [
      (P.Overloaded, true);
      (P.Unavailable, true);
      (P.Internal, true);
      (P.Bad_request, false);
      (P.Deadline_exceeded, false);
      (P.Shutting_down, false);
    ]

(* The retry hint travels two ways: a structured [retry_after_ms] field
   on the error object (ignored by pre-supervision decoders) and a
   [retry_after_ms=N] clause inside the message text, which survives any
   relay that only preserves the message.  Status replies from
   pre-supervision servers lack the respawn tallies and must decode with
   zeros. *)
let test_retry_hints_and_compat () =
  let line =
    P.encode_error_reply ~rep_id:7 P.Unavailable
      (Printf.sprintf "shard 1 breaker open after restart storm; %s"
         (P.retry_after_clause 1234))
      ~retry_after_ms:1234
  in
  (match P.decode_reply line with
   | Ok { P.rep_id = 7; body = Error (P.Unavailable, msg) } ->
     Alcotest.(check (option int)) "hint recoverable from message"
       (Some 1234) (P.retry_after_of_msg msg)
   | _ -> Alcotest.fail "typed error reply did not decode");
  Alcotest.(check (option int)) "no hint" None
    (P.retry_after_of_msg "shard 1 unreachable: connection refused");
  Alcotest.(check (option int)) "clause round-trips alone" (Some 250)
    (P.retry_after_of_msg (P.retry_after_clause 250));
  (* a pre-supervision status frame: no respawns/failovers fields *)
  let legacy =
    "{\"v\":\"icost.rpc.v1\",\"id\":3,\"ok\":true,\"result\":{\"kind\":\
     \"status\",\"uptime_s\":1.5,\"requests_total\":2,\"inflight\":0,\
     \"queue_depth\":0,\"sessions\":0,\"cache_hits\":0,\"cache_misses\":0,\
     \"cache_evictions\":0,\"snapshot_hits\":0,\"snapshot_misses\":0,\
     \"snapshot_rejects\":0,\"sweep_points\":0,\"sweep_cache_hits\":0,\
     \"pool_jobs\":1,\"shards\":2,\"health\":\"ok\",\"draining\":false}}"
  in
  match P.decode_reply legacy with
  | Ok { P.body = Ok (P.R_status st); _ } ->
    Alcotest.(check int) "legacy respawns default" 0 st.P.respawns;
    Alcotest.(check int) "legacy failovers default" 0 st.P.failovers
  | _ -> Alcotest.fail "legacy status frame did not decode"

(* ---------- json ---------- *)

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      match Json.parse (Json.encode (Json.Float f)) with
      | Json.Float f' -> check_feq (Printf.sprintf "%h round-trips" f) f f'
      | _ -> Alcotest.fail "float parsed as non-float")
    [ 0.1; 1. /. 3.; 4. *. atan 1.; 1e-300; 1.7976931348623157e308; 2.5e-17 ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "1 2"; "nul"; "{'a':1}" ]

(* Numbers that overflow to ±inf must be rejected at parse time: admitting
   them would hand the service a value [Json.encode] refuses to print. *)
let test_json_nonfinite_numbers () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s))
    [
      "1e309";
      "-1e309";
      "1e99999";
      "{\"x\":1e309}";
      "[1,2,1e400]";
      (* integer syntax, but wide enough to overflow the double fallback *)
      "1" ^ String.make 400 '0';
    ];
  (* integer syntax beyond native int range but finite as a double still
     parses, and the result survives an encode round trip *)
  (match Json.parse "12345678901234567890123" with
   | Json.Float f ->
     Alcotest.(check bool) "finite" true (Float.is_finite f);
     ignore (Json.encode (Json.Float f))
   | _ -> Alcotest.fail "wide integer should parse as Float");
  (* the encoder's own guard stays: a non-finite Float cannot be printed *)
  List.iter
    (fun f ->
      match Json.encode (Json.Float f) with
      | _ -> Alcotest.fail "encode of non-finite float should raise"
      | exception Invalid_argument _ -> ())
    [ Float.infinity; Float.neg_infinity; Float.nan ]

(* ---------- decoder robustness ---------- *)

(* A status request padded with an ignored field to an exact byte length.
   Unknown fields are skipped by the decoder, so only the length varies. *)
let status_line_of_length n =
  let skeleton = {|{"v":"icost.rpc.v1","id":7,"op":"status","pad":""}|} in
  let base = String.length skeleton in
  if n < base then invalid_arg "status_line_of_length";
  {|{"v":"icost.rpc.v1","id":7,"op":"status","pad":"|}
  ^ String.make (n - base) 'x' ^ {|"}|}

let test_decode_size_boundaries () =
  let at_cap = status_line_of_length P.max_request_bytes in
  Alcotest.(check int) "pad math" P.max_request_bytes (String.length at_cap);
  (match P.decode_request at_cap with
   | Ok { P.op = P.Status; _ } -> ()
   | Ok _ -> Alcotest.fail "at-cap line decoded to the wrong op"
   | Error m -> Alcotest.fail ("line of exactly the cap must decode: " ^ m));
  let over = status_line_of_length (P.max_request_bytes + 1) in
  (match P.decode_request over with
   | Error m ->
     Alcotest.(check bool) "size error names the cap" true
       (contains m (string_of_int P.max_request_bytes))
   | Ok _ -> Alcotest.fail "cap+1 line must be rejected");
  (* the decoder charges every byte it is handed — a trailing newline on
     an at-cap line tips it over the cap, so framing must be stripped by
     the caller (the server's reader does) before decoding *)
  match P.decode_request (at_cap ^ "\n") with
  | Error m ->
    Alcotest.(check bool) "unstripped framing counts against the cap" true
      (contains m (string_of_int P.max_request_bytes))
  | Ok _ -> Alcotest.fail "cap plus newline should not decode"

(* Hostile input must come back as [Error _], never as an exception: the
   server turns [Error] into a typed bad_request and keeps the connection
   alive, but an escaped exception would kill the connection thread. *)
let test_decode_fuzz_never_raises () =
  let prng = Icost_util.Prng.create 0x5eed in
  let feed what line =
    match P.decode_request line with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.fail
        (Printf.sprintf "decoder raised %s on %s" (Printexc.to_string e) what)
  in
  for i = 1 to 200 do
    let n = Icost_util.Prng.int prng 256 in
    let line =
      String.init n (fun _ -> Char.chr (Icost_util.Prng.int prng 256))
    in
    feed (Printf.sprintf "random case %d (%d bytes)" i n) line
  done;
  (* every proper prefix of a valid frame: truncation mid-token, mid-string,
     mid-escape, mid-number all included *)
  let valid =
    P.encode_request
      { P.req_id = 3;
        deadline_ms = Some 250;
        op = P.Icost { target = sample_target; sets = [ "dl1"; "dl1,win" ] } }
  in
  (match P.decode_request valid with
   | Ok _ -> ()
   | Error m -> Alcotest.fail ("frame should be valid before truncation: " ^ m));
  for k = 0 to String.length valid - 1 do
    feed (Printf.sprintf "prefix of %d bytes" k) (String.sub valid 0 k)
  done

(* ---------- cache ---------- *)

let test_cache_single_flight () =
  let cache : int Cache.t = Cache.create ~name:"test_sf" ~cap:4 in
  let builds = Atomic.make 0 in
  let results = Array.make 8 (-1) in
  let threads =
    List.init 8 (fun i ->
        Thread.create
          (fun i ->
            results.(i) <-
              Cache.find_or_add cache "k" (fun () ->
                  Atomic.incr builds;
                  Thread.delay 0.05;
                  42))
          i)
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "builder ran exactly once" 1 (Atomic.get builds);
  Array.iter (fun v -> Alcotest.(check int) "shared value" 42 v) results;
  let st = Cache.stats cache in
  Alcotest.(check int) "one miss" 1 st.Cache.misses;
  Alcotest.(check int) "seven hits" 7 st.Cache.hits

let test_cache_eviction_and_retry () =
  let cache : string Cache.t = Cache.create ~name:"test_ev" ~cap:2 in
  let builds = ref 0 in
  let get k =
    Cache.find_or_add cache k (fun () ->
        incr builds;
        k)
  in
  ignore (get "a");
  ignore (get "b");
  ignore (get "a") (* refresh a: b becomes the LRU entry *);
  ignore (get "c") (* over cap: evicts b *);
  Alcotest.(check int) "bounded" 2 (Cache.length cache);
  Alcotest.(check int) "one eviction" 1 (Cache.stats cache).Cache.evictions;
  Alcotest.(check string) "evicted key rebuilds" "b" (get "b");
  Alcotest.(check int) "a,b,c then b again" 4 !builds;
  (* supervision's eviction path: only resolved entries can be removed *)
  Alcotest.(check bool) "remove drops a ready entry" true
    (Cache.remove cache "b");
  Alcotest.(check bool) "remove on an absent key is a no-op" false
    (Cache.remove cache "nope");
  Alcotest.(check string) "removed key rebuilds" "b" (get "b");
  Alcotest.(check int) "b built again after remove" 5 !builds;
  (* shedding: trim to a smaller footprint, coldest entries first *)
  let shed = Cache.trim cache ~keep:1 in
  Alcotest.(check int) "trim sheds down to keep" 1 shed;
  Alcotest.(check int) "one ready entry left" 1 (Cache.length cache);
  Alcotest.(check int) "trim to zero clears the cache" 1
    (Cache.trim cache ~keep:0);
  Alcotest.(check int) "empty after full trim" 0 (Cache.length cache);
  (* a failing builder raises to its caller and leaves no poisoned entry *)
  let boom : int Cache.t = Cache.create ~name:"test_fail" ~cap:2 in
  (match Cache.find_or_add boom "k" (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "builder exception should propagate"
   | exception Failure msg -> Alcotest.(check string) "builder error" "boom" msg);
  Alcotest.(check int) "retry after failed build" 7
    (Cache.find_or_add boom "k" (fun () -> 7))

(* ---------- scheduler ---------- *)

let test_scheduler_backpressure () =
  let s = Scheduler.create ~workers:1 ~queue_limit:1 in
  let gate = Mutex.create () in
  Mutex.lock gate;
  let ran = Atomic.make 0 in
  let job () =
    Mutex.lock gate;
    Mutex.unlock gate;
    Atomic.incr ran
  in
  (match Scheduler.submit s job with
   | `Accepted -> ()
   | _ -> Alcotest.fail "first job should be accepted");
  (* the single worker is now blocked on the gate *)
  wait_for "worker pickup" (fun () -> Scheduler.inflight s = 1);
  (match Scheduler.submit s job with
   | `Accepted -> ()
   | _ -> Alcotest.fail "second job fits the queue");
  Alcotest.(check int) "queued" 1 (Scheduler.queue_depth s);
  (match Scheduler.submit s job with
   | `Overloaded -> ()
   | _ -> Alcotest.fail "third job should be refused (queue full)");
  Mutex.unlock gate;
  Scheduler.drain s;
  Alcotest.(check int) "accepted jobs all ran" 2 (Atomic.get ran);
  Alcotest.(check int) "queue empty after drain" 0 (Scheduler.queue_depth s);
  match Scheduler.submit s job with
  | `Draining -> ()
  | _ -> Alcotest.fail "post-drain submissions refused"

(* ---------- bounded cost memo table ---------- *)

let test_memoize_cap () =
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  Telemetry.reset ();
  Telemetry.enable ();
  let calls = ref 0 in
  let oracle =
    Cost.of_fn (fun s ->
        incr calls;
        float_of_int (10 * Category.Set.cardinal s) +. 1.)
  in
  let m = Cost.memoize ~cap:2 oracle in
  let q s = Cost.query m s in
  let s_empty = Category.Set.empty in
  let s_dl1 = Category.Set.singleton Category.Dl1 in
  let s_win = Category.Set.singleton Category.Win in
  check_feq "miss empty" 1. (q s_empty);
  check_feq "miss dl1" 11. (q s_dl1);
  Alcotest.(check int) "two underlying calls" 2 !calls;
  check_feq "hit empty" 1. (q s_empty) (* refresh: dl1 becomes the LRU *);
  Alcotest.(check int) "hit is free" 2 !calls;
  check_feq "miss win evicts dl1" 11. (q s_win);
  check_feq "evicted dl1 recomputes (evicts empty)" 11. (q s_dl1);
  Alcotest.(check int) "two recomputations" 4 !calls;
  check_feq "win still cached" 11. (q s_win);
  Alcotest.(check int) "still four" 4 !calls;
  match List.assoc_opt "cost.memo_evictions" (Telemetry.counters ()) with
  | Some n -> Alcotest.(check bool) "evictions counted" true (n >= 2)
  | None -> Alcotest.fail "cost.memo_evictions counter missing"

(* ---------- circuit breaker ---------- *)

let test_breaker () =
  let b = Breaker.create ~threshold:2 ~cooldown:0.05 () in
  Alcotest.(check bool) "fresh key closed" true (Breaker.check b "k" = `Ok);
  Breaker.failure b "k";
  Alcotest.(check bool) "below threshold stays closed" true
    (Breaker.check b "k" = `Ok);
  Breaker.failure b "k";
  Alcotest.(check bool) "threshold trips open" true (Breaker.check b "k" = `Open);
  Alcotest.(check int) "one key open" 1 (Breaker.open_count b);
  Alcotest.(check bool) "other keys unaffected" true
    (Breaker.check b "other" = `Ok);
  Thread.delay 0.06;
  Alcotest.(check bool) "cooldown elapses into half-open trial" true
    (Breaker.check b "k" = `Ok);
  (* the failure count survives the trip: one half-open failure re-opens *)
  Breaker.failure b "k";
  Alcotest.(check bool) "half-open failure re-opens" true
    (Breaker.check b "k" = `Open);
  Thread.delay 0.06;
  Breaker.success b "k";
  Alcotest.(check bool) "success closes the breaker" true
    (Breaker.check b "k" = `Ok);
  Alcotest.(check int) "no keys open" 0 (Breaker.open_count b);
  Alcotest.(check bool) "trips were counted" true (Breaker.trips_total b >= 2)

(* ---------- client connect errors ---------- *)

let test_connect_error_messages () =
  let missing = tmp_socket "absent" in
  if Sys.file_exists missing then Sys.remove missing;
  (match Client.connect ~socket:missing () with
   | _ -> Alcotest.fail "connect to a missing socket should fail"
   | exception Failure msg ->
     Alcotest.(check bool)
       ("missing socket names the cause: " ^ msg)
       true
       (contains msg "does not exist"));
  (* a bound-but-unlistened socket file: connection refused, the stale-file
     hint — distinct from the missing-file case *)
  let stale = tmp_socket "stale" in
  if Sys.file_exists stale then Sys.remove stale;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX stale);
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Sys.file_exists stale then Sys.remove stale)
  @@ fun () ->
  match Client.connect ~socket:stale () with
  | _ -> Alcotest.fail "connect to an unlistened socket should fail"
  | exception Failure msg ->
    Alcotest.(check bool)
      ("stale socket names the cause: " ^ msg)
      true
      (contains msg "refused")

(* ---------- end-to-end daemon sessions ---------- *)

type server_handle = {
  thread : Thread.t;
  outcome : (Server.stats, exn) result option ref;
}

let start_server opts =
  let outcome = ref None in
  let thread =
    Thread.create
      (fun () ->
        outcome :=
          Some (match Server.run opts with s -> Ok s | exception e -> Error e))
      ()
  in
  { thread; outcome }

let finish_server srv =
  Thread.join srv.thread;
  match !(srv.outcome) with
  | Some (Ok s) -> s
  | Some (Error e) -> raise e
  | None -> Alcotest.fail "server exited without reporting"

let raw_connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let raw_send fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* Read up to [n] newline-terminated lines (fewer on EOF). *)
let raw_read_lines fd n =
  let pending = Buffer.create 4096 in
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
      Buffer.clear pending;
      Buffer.add_string pending (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
  in
  let rec collect acc =
    if List.length acc >= n then List.rev acc
    else
      match take_line () with
      | Some line -> collect (line :: acc)
      | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> List.rev acc
        | k ->
          Buffer.add_string pending (Bytes.sub_string chunk 0 k);
          collect acc
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          List.rev acc)
  in
  collect []

let decode_reply_exn line =
  match P.decode_reply line with
  | Ok r -> r
  | Error msg -> Alcotest.fail ("undecodable reply: " ^ msg)

let req ?(id = 1) ?deadline_ms op = { P.req_id = id; deadline_ms; op }

(* Reply comparison that ignores the request id (everything else,
   including every float bit, is covered by the %.17g encoding). *)
let norm (r : P.reply) = P.encode_reply { r with P.rep_id = 0 }

let set_of_spec spec =
  String.split_on_char ',' spec
  |> List.map (fun n ->
         match Category.of_name (String.trim n) with
         | Some c -> c
         | None -> Alcotest.fail ("bad category in test: " ^ n))
  |> Category.Set.of_list

let test_serve_end_to_end () =
  sigpipe_off ();
  let socket = tmp_socket "e2e" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket;
      workers = 2;
      queue_limit = 8;
      handle_signals = false }
  in
  let srv = start_server opts in
  let tg =
    { P.default_target with P.workload = "gcc"; warmup = 2000; measure = 800 }
  in
  let breakdown_op = P.Breakdown { target = tg; focus = "dl1" } in

  (* Concurrent identical cold queries: the server must prepare once and
     answer everyone.  These are the first requests the server sees, so
     the cache tallies below are exact. *)
  let n = 4 in
  let replies = Array.make n None in
  let clients =
    List.init n (fun i ->
        Thread.create
          (fun i ->
            Client.with_client ~retry_for:10.0 ~socket (fun c ->
                replies.(i) <- Some (Client.call c (req ~id:i breakdown_op))))
          i)
  in
  List.iter Thread.join clients;
  let first =
    match replies.(0) with
    | Some r -> r
    | None -> Alcotest.fail "missing reply"
  in
  Array.iteri
    (fun i r ->
      match r with
      | Some r ->
        Alcotest.(check string)
          (Printf.sprintf "client %d got the same answer" i)
          (norm first) (norm r)
      | None -> Alcotest.fail "missing reply")
    replies;

  (* The same computation, directly against the library. *)
  let settings =
    { Runner.warmup = tg.P.warmup; measure = tg.P.measure;
      benches = [ tg.P.workload ] }
  in
  let w =
    match Workload.find tg.P.workload with
    | Some w -> w
    | None -> Alcotest.fail "test workload missing"
  in
  let prepared = Runner.prepare settings w in
  let cfg = Config.default in
  let baseline = Runner.baseline_run cfg prepared in
  let g = Runner.graph_of ~baseline cfg prepared in
  let goracle = Cost.memoize (Build.oracle g) in
  let bd = Breakdown.focus ~oracle:goracle ~focus_cat:Category.Dl1 in
  let expected_breakdown =
    P.R_breakdown
      {
        baseline = bd.Breakdown.baseline_cycles;
        rows =
          List.map
            (fun (r : Breakdown.row) ->
              { P.row_label = Breakdown.row_label r;
                row_percent = r.Breakdown.percent;
                row_cycles = r.Breakdown.cycles })
            bd.Breakdown.rows;
      }
  in
  Alcotest.(check string) "served breakdown bit-identical to direct Runner"
    (P.encode_reply { P.rep_id = 0; body = Ok expected_breakdown })
    (norm first);

  Client.with_client ~retry_for:10.0 ~socket (fun c ->
      let status () =
        match (Client.call c (req P.Status)).P.body with
        | Ok (P.R_status s) -> s
        | _ -> Alcotest.fail "status reply malformed"
      in
      (* 4 concurrent requests on one key: the reply cache misses once
         and its builder misses prep, baseline and session once each —
         exactly one build chain, so exactly 4 misses.  The 3 other
         clients either wait on the reply build (counted as hits) or, if
         they arrive after it finished, are answered by the frame cache
         without touching the analysis caches at all — so the hit tally
         is at most 3, depending on arrival timing. *)
      let s = status () in
      Alcotest.(check int) "single preparation: 4 misses" 4 s.P.cache_misses;
      Alcotest.(check bool) "waiters counted as hits" true
        (s.P.cache_hits <= 3);
      Alcotest.(check int) "one session" 1 s.P.sessions;
      Alcotest.(check bool) "not draining" false s.P.draining;

      (* warm repeat: answered from the reply cache, no new misses *)
      let warm = Client.call c (req ~id:50 breakdown_op) in
      Alcotest.(check string) "warm repeat identical" (norm first) (norm warm);
      Alcotest.(check int) "still 4 misses" 4 (status ()).P.cache_misses;

      (* icost over the multisim engine, checked against direct Cost calls *)
      let sets = [ "dl1"; "win"; "dl1,win" ] in
      let mtg = { tg with P.engine = "multisim" } in
      let icost_reply =
        Client.call c (req ~id:51 (P.Icost { target = mtg; sets }))
      in
      let mo = Runner.multisim_oracle cfg prepared in
      let expected_icost =
        P.R_icost
          {
            baseline = Cost.query mo Category.Set.empty;
            rows =
              List.map
                (fun spec ->
                  let set = set_of_spec spec in
                  let ic = Cost.icost_ie mo set in
                  { P.set_name = Category.Set.name set;
                    set_cost = Cost.cost mo set;
                    set_icost = ic;
                    set_class = Cost.interaction_name (Cost.classify ic) })
                sets;
          }
      in
      Alcotest.(check string) "served icost bit-identical to direct Cost"
        (P.encode_reply { P.rep_id = 0; body = Ok expected_icost })
        (norm icost_reply);

      (* graph stats against the directly compiled graph *)
      (match (Client.call c (req ~id:52 (P.Graph_stats { target = tg }))).P.body
       with
       | Ok (P.R_graph_stats { instrs; nodes; edges; critical_path }) ->
         Alcotest.(check int) "instrs" (Trace.length prepared.Runner.trace)
           instrs;
         Alcotest.(check int) "nodes" (Graph.num_nodes g) nodes;
         Alcotest.(check int) "edges" (Graph.num_edges g) edges;
         Alcotest.(check int) "critical path" (Graph.critical_length g)
           critical_path
       | _ -> Alcotest.fail "graph-stats reply malformed");

      (* profiler engine: the seed makes replies reproducible *)
      let ptg = { tg with P.engine = "profiler"; seed = 123 } in
      let p1 = Client.call c (req ~id:53 (P.Icost { target = ptg; sets = [ "dl1" ] })) in
      let p2 = Client.call c (req ~id:54 (P.Icost { target = ptg; sets = [ "dl1" ] })) in
      Alcotest.(check string) "profiler replies reproducible for one seed"
        (norm p1) (norm p2);
      let po =
        Runner.profiler_oracle
          ~opts:{ Sampler.default_opts with Sampler.seed = 123 }
          ~baseline cfg prepared
      in
      (match p1.P.body with
       | Ok (P.R_icost { baseline = pbase; _ }) ->
         check_feq "profiler baseline bit-identical to direct oracle"
           (Cost.query po Category.Set.empty) pbase
       | _ -> Alcotest.fail "profiler reply malformed");

      (* stream engine: the segmented session answers bit-identically to
         a direct streaming oracle over the same prepared window, and the
         status body tallies its segments and peak heap *)
      let stg = { tg with P.engine = "stream" } in
      let streply =
        Client.call c (req ~id:57 (P.Icost { target = stg; sets }))
      in
      let so = Runner.stream_oracle cfg prepared in
      let expected_stream =
        P.R_icost
          {
            baseline = Cost.query so Category.Set.empty;
            rows =
              List.map
                (fun spec ->
                  let set = set_of_spec spec in
                  let ic = Cost.icost_ie so set in
                  { P.set_name = Category.Set.name set;
                    set_cost = Cost.cost so set;
                    set_icost = ic;
                    set_class = Cost.interaction_name (Cost.classify ic) })
                sets;
          }
      in
      Alcotest.(check string) "served stream icost bit-identical to direct"
        (P.encode_reply { P.rep_id = 0; body = Ok expected_stream })
        (norm streply);
      let s = status () in
      Alcotest.(check bool) "status tallies stream segments" true
        (s.P.segments > 0);
      Alcotest.(check bool) "status tallies stream peak heap" true
        (s.P.stream_peak_mb > 0.);

      (* an already-expired deadline is refused with the typed error *)
      (match (Client.call c (req ~id:55 ~deadline_ms:0 breakdown_op)).P.body with
       | Error (P.Deadline_exceeded, _) -> ()
       | _ -> Alcotest.fail "deadline_ms=0 should yield deadline_exceeded");

      (* malformed line: typed bad_request, connection stays usable *)
      let fd = raw_connect socket in
      raw_send fd "this is not json\n";
      (match raw_read_lines fd 1 with
       | [ line ] -> (
         match (decode_reply_exn line).P.body with
         | Error (P.Bad_request, _) -> ()
         | _ -> Alcotest.fail "garbage should yield bad_request")
       | _ -> Alcotest.fail "no reply to garbage line");
      Unix.close fd;

      (* slightly over the cap: the line is still fully read (bounded-read
         slack), the decoder rejects it by size, and the stream stays in
         sync — the same connection answers the next request *)
      let fd = raw_connect socket in
      (try raw_send fd (String.make (P.max_request_bytes + 10) 'x' ^ "\n")
       with Unix.Unix_error _ -> ());
      (match raw_read_lines fd 1 with
       | [ line ] -> (
         match (decode_reply_exn line).P.body with
         | Error (P.Bad_request, _) -> ()
         | _ -> Alcotest.fail "over-long line should yield bad_request")
       | _ -> Alcotest.fail "no reply to over-long line");
      raw_send fd (P.encode_request (req ~id:56 P.Status) ^ "\n");
      (match raw_read_lines fd 1 with
       | [ line ] -> (
         match (decode_reply_exn line).P.body with
         | Ok (P.R_status _) -> ()
         | _ -> Alcotest.fail "connection unusable after over-long line")
       | _ -> Alcotest.fail "no reply after over-long line");
      Unix.close fd;

      (* grossly over the cap (no newline in sight): the reader gives up,
         answers with the typed error and closes — the stream cannot be
         re-synchronized *)
      let fd = raw_connect socket in
      (try raw_send fd (String.make (P.max_request_bytes + 16384) 'x' ^ "\n")
       with Unix.Unix_error _ -> ());
      (match raw_read_lines fd 2 with
       | [ line ] -> (
         match (decode_reply_exn line).P.body with
         | Error (P.Bad_request, _) -> ()
         | _ -> Alcotest.fail "oversized stream should yield bad_request")
       | other ->
         Alcotest.fail
           (Printf.sprintf "expected bad_request then EOF, got %d line(s)"
              (List.length other)));
      Unix.close fd;

      (* a second daemon on the same live socket must refuse to start *)
      (match Server.run { opts with Server.on_ready = None } with
       | _ -> Alcotest.fail "second server on a live socket should fail"
       | exception Failure _ -> ());

      (* graceful shutdown *)
      match (Client.call c (req ~id:60 P.Shutdown)).P.body with
      | Ok P.R_shutdown -> ()
      | _ -> Alcotest.fail "shutdown not acknowledged");
  let stats = finish_server srv in
  Alcotest.(check bool) "server counted its requests" true
    (stats.Server.requests_total >= 12);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* Backpressure over the wire and shutdown with a request in flight, on a
   deliberately tiny server (one worker, queue of one). *)
let test_serve_backpressure_and_drain () =
  sigpipe_off ();
  let socket = tmp_socket "bp" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket;
      workers = 1;
      queue_limit = 1;
      handle_signals = false }
  in
  let srv = start_server opts in
  let tg =
    { P.default_target with P.workload = "gcc"; warmup = 2000; measure = 800 }
  in
  (* wait for the daemon, then drop the probe connection *)
  Client.close (Client.connect ~retry_for:10.0 ~socket ());

  (* Pipeline 7 cold analysis requests at once: the first occupies the
     worker (cold preparation), at most one more fits the queue, the rest
     must be refused with the typed overloaded error — and every accepted
     request must still be answered.  Each request names a distinct
     target (so none can be answered from a cache): whenever the worker
     frees up, the next accepted request is itself a cold build, and the
     burst behind it still overflows the one-slot queue regardless of
     how thread scheduling interleaves builds with the reader. *)
  let total = 7 in
  let fd = raw_connect socket in
  let buf = Buffer.create 1024 in
  for i = 1 to total do
    let tg = { tg with P.measure = 800 + i } in
    Buffer.add_string buf
      (P.encode_request (req ~id:i (P.Breakdown { target = tg; focus = "dl1" })));
    Buffer.add_char buf '\n'
  done;
  raw_send fd (Buffer.contents buf);
  let replies = List.map decode_reply_exn (raw_read_lines fd total) in
  Unix.close fd;
  Alcotest.(check int) "every request answered" total (List.length replies);
  let ok, overloaded, other =
    List.fold_left
      (fun (ok, ov, other) (r : P.reply) ->
        match r.P.body with
        | Ok (P.R_breakdown _) -> (ok + 1, ov, other)
        | Error (P.Overloaded, _) -> (ok, ov + 1, other)
        | _ -> (ok, ov, other + 1))
      (0, 0, 0) replies
  in
  Alcotest.(check int) "only breakdown/overloaded replies" 0 other;
  Alcotest.(check bool) "accepted requests answered" true (ok >= 1);
  Alcotest.(check bool) "queue overflow refused" true (overloaded >= 4);

  (* Shutdown with a request in flight: pipeline a cold analysis (fresh
     cache key) and a shutdown on one connection.  The reader accepts the
     analysis before it sees the shutdown, so the drain must still answer
     it. *)
  let cold = { tg with P.measure = 900 } in
  let fd = raw_connect socket in
  raw_send fd
    (P.encode_request (req ~id:10 (P.Breakdown { target = cold; focus = "dl1" }))
     ^ "\n"
     ^ P.encode_request (req ~id:11 P.Shutdown)
     ^ "\n");
  let replies = List.map decode_reply_exn (raw_read_lines fd 2) in
  Unix.close fd;
  let find id =
    match List.find_opt (fun (r : P.reply) -> r.P.rep_id = id) replies with
    | Some r -> r
    | None -> Alcotest.fail (Printf.sprintf "no reply for request %d" id)
  in
  (match (find 10).P.body with
   | Ok (P.R_breakdown _) -> ()
   | _ -> Alcotest.fail "in-flight request must be answered during drain");
  (match (find 11).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  ignore (finish_server srv);
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket)

(* ---------- fault injection, supervision, resilience ---------- *)

let shutdown_server session srv =
  (match (Client.call_with_retry session (req ~id:99 P.Shutdown)).P.body with
   | Ok P.R_shutdown -> ()
   | _ -> Alcotest.fail "shutdown not acknowledged");
  Client.close_session session;
  ignore (finish_server srv)

let small_target =
  { P.default_target with P.workload = "gcc"; warmup = 2000; measure = 800 }

(* ---------- pipelining, batch, TCP ---------- *)

(* Two pipelined requests on one connection must be answered in request
   order: a cold analysis occupies the worker while the status reply is
   computed inline, so only the sequence-ordered writer keeps the wire
   ordered. *)
let test_serve_pipelining_order () =
  sigpipe_off ();
  let socket = tmp_socket "pipeline" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with socket; workers = 2; handle_signals = false }
  in
  let srv = start_server opts in
  Client.close (Client.connect ~retry_for:10.0 ~socket ());
  let fd = raw_connect socket in
  raw_send fd
    (P.encode_request
       (req ~id:1 (P.Breakdown { target = small_target; focus = "dl1" }))
     ^ "\n"
     ^ P.encode_request (req ~id:2 P.Status)
     ^ "\n");
  let replies = List.map decode_reply_exn (raw_read_lines fd 2) in
  Unix.close fd;
  (match replies with
   | [ first; second ] ->
     Alcotest.(check int) "slow reply first" 1 first.P.rep_id;
     Alcotest.(check int) "fast reply parked until its turn" 2 second.P.rep_id;
     (match (first.P.body, second.P.body) with
      | Ok (P.R_breakdown _), Ok (P.R_status _) -> ()
      | _ -> Alcotest.fail "unexpected reply kinds")
   | other ->
     Alcotest.fail
       (Printf.sprintf "expected 2 replies, got %d" (List.length other)));
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  shutdown_server s srv

(* A batch frame mixing valid and invalid items: per-item results come
   back in request order, failures are typed per item, and successful
   items are bit-identical to the same ops sent individually. *)
let test_serve_batch () =
  sigpipe_off ();
  let socket = tmp_socket "batch" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with socket; workers = 2; handle_signals = false }
  in
  let srv = start_server opts in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  let good = P.Breakdown { target = small_target; focus = "dl1" } in
  let bad =
    P.Breakdown { target = { small_target with P.workload = "nope" };
                  focus = "dl1" }
  in
  (* reference replies from the single-op path *)
  let single = Client.call_with_retry s (req ~id:7 good) in
  let single_body =
    match single.P.body with
    | Ok b -> b
    | Error _ -> Alcotest.fail "single op failed"
  in
  let batch =
    P.Batch
      { ops = [ good; bad; P.Status; P.Batch { ops = [ P.Status ] };
                P.Shutdown; good ] }
  in
  let reply = Client.call_with_retry s (req ~id:8 batch) in
  (match reply.P.body with
   | Ok (P.R_batch { results }) ->
     Alcotest.(check int) "one result per item" 6 (List.length results);
     let item i = List.nth results i in
     let check_same_as_single i =
       match item i with
       | Ok b ->
         Alcotest.(check string)
           (Printf.sprintf "item %d bit-identical to single op" i)
           (norm { P.rep_id = 0; body = Ok single_body })
           (norm { P.rep_id = 0; body = Ok b })
       | Error (c, m) ->
         Alcotest.fail
           (Printf.sprintf "item %d failed: %s %s" i (P.error_code_name c) m)
     in
     check_same_as_single 0;
     (match item 1 with
      | Error (P.Bad_request, msg) ->
        Alcotest.(check bool) "unknown workload named" true
          (contains msg "nope")
      | _ -> Alcotest.fail "invalid item must fail with bad_request");
     (match item 2 with
      | Ok (P.R_status st) ->
        Alcotest.(check int) "standalone server reports no shards" 0 st.P.shards
      | _ -> Alcotest.fail "status item must be answered");
     (match item 3 with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail "nested batch must be refused per-item");
     (match item 4 with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail "shutdown inside a batch must be refused");
     check_same_as_single 5
   | Ok _ -> Alcotest.fail "expected a batch reply"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "batch failed: %s %s" (P.error_code_name c) m));
  shutdown_server s srv

(* The TCP listener speaks the same protocol as the Unix socket and
   serves bit-identical replies (one process, shared caches). *)
let test_serve_tcp () =
  sigpipe_off ();
  let socket = tmp_socket "tcp" in
  if Sys.file_exists socket then Sys.remove socket;
  let port = ref 0 in
  let port_m = Mutex.create () and port_c = Condition.create () in
  let opts =
    { Server.default_opts with
      socket;
      tcp = Some ("127.0.0.1", 0);
      workers = 2;
      handle_signals = false;
      on_tcp_port =
        Some
          (fun p ->
            Mutex.lock port_m;
            port := p;
            Condition.signal port_c;
            Mutex.unlock port_m);
    }
  in
  let srv = start_server opts in
  Mutex.lock port_m;
  while !port = 0 do
    Condition.wait port_c port_m
  done;
  let bound = !port in
  Mutex.unlock port_m;
  Alcotest.(check bool) "ephemeral port bound" true (bound > 0);
  let op = req (P.Breakdown { target = small_target; focus = "dl1" }) in
  let over_unix =
    Client.with_client ~retry_for:10.0 ~socket (fun c -> Client.call c op)
  in
  let over_tcp =
    Client.with_addr ~retry_for:10.0 (Icost_service.Endpoint.Tcp ("127.0.0.1", bound))
      (fun c -> Client.call c op)
  in
  Alcotest.(check string) "TCP reply bit-identical to Unix" (norm over_unix)
    (norm over_tcp);
  (* pipelining works over TCP too *)
  let replies =
    Client.with_addr ~retry_for:10.0
      (Icost_service.Endpoint.Tcp ("127.0.0.1", bound))
      (fun c -> Client.pipeline c [ op; req ~id:2 P.Status ])
  in
  (match replies with
   | [ r1; r2 ] ->
     Alcotest.(check string) "pipelined analysis identical" (norm over_unix)
       (norm r1);
     (match r2.P.body with
      | Ok (P.R_status _) -> ()
      | _ -> Alcotest.fail "pipelined status not answered")
   | _ -> Alcotest.fail "expected 2 pipelined replies");
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  shutdown_server s srv

(* The baseline build raises (injected) on its first run: supervision must
   answer a typed internal error, leave no poisoned cache entry, and let
   the automatic retry rebuild and succeed. *)
let test_serve_crash_during_build () =
  sigpipe_off ();
  Fun.protect ~finally:(fun () -> Fault.disable ()) @@ fun () ->
  Fault.configure_exn "cache_build.baseline:@1";
  let socket = tmp_socket "crash" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with socket; workers = 2; handle_signals = false }
  in
  let srv = start_server opts in
  let s =
    Client.connect_session
      ~opts:{ Client.default_retry_opts with retries = 3 }
      ~retry_for:10.0 ~socket ()
  in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  let reply = Client.call_with_retry s (req op) in
  (match reply.P.body with
   | Ok (P.R_breakdown _) -> ()
   | Ok _ -> Alcotest.fail "unexpected reply kind"
   | Error (c, m) ->
     Alcotest.fail
       (Printf.sprintf "retry did not recover: %s %s" (P.error_code_name c) m));
  Alcotest.(check int) "exactly one retry consumed" 1 (Client.session_retries s);
  (* the rebuilt session serves warm queries without further incident *)
  (match (Client.call_with_retry s (req ~id:2 op)).P.body with
   | Ok (P.R_breakdown _) -> ()
   | _ -> Alcotest.fail "warm query after recovery failed");
  Alcotest.(check int) "no extra retries" 1 (Client.session_retries s);
  Alcotest.(check bool) "injection recorded" true (Fault.injected_total () > 0);
  shutdown_server s srv

(* Every worker invocation raises: two internal errors trip the target's
   breaker, the third fails fast with unavailable, and after the faults
   stop the cooldown's half-open trial closes it again. *)
let test_serve_supervision_and_breaker () =
  sigpipe_off ();
  Fun.protect ~finally:(fun () -> Fault.disable ()) @@ fun () ->
  Fault.configure_exn "worker_raise:@1+";
  let socket = tmp_socket "breaker" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket;
      workers = 2;
      breaker_threshold = 2;
      breaker_cooldown = 0.1;
      handle_signals = false }
  in
  let srv = start_server opts in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  (* bare calls: each server-side failure must be observed, not retried *)
  let bare id =
    Client.with_client ~retry_for:10.0 ~socket (fun c ->
        (Client.call c (req ~id op)).P.body)
  in
  (match bare 1 with
   | Error (P.Internal, msg) ->
     Alcotest.(check bool) ("injected message surfaced: " ^ msg) true
       (contains msg "worker_raise")
   | _ -> Alcotest.fail "first failure should be internal");
  (match bare 2 with
   | Error (P.Internal, _) -> ()
   | _ -> Alcotest.fail "second failure should be internal");
  (match bare 3 with
   | Error (P.Unavailable, _) -> ()
   | _ -> Alcotest.fail "tripped breaker should fail fast with unavailable");
  (* health is answered inline, bypassing the broken worker path *)
  (match (Client.call_with_retry s (req ~id:4 P.Health)).P.body with
   | Ok (P.R_health h) ->
     Alcotest.(check int) "one breaker open" 1 h.P.h_breakers_open
   | _ -> Alcotest.fail "health reply malformed");
  Fault.disable ();
  Thread.delay 0.12;
  (match bare 5 with
   | Ok (P.R_breakdown _) -> ()
   | _ -> Alcotest.fail "half-open trial after cooldown should succeed");
  (match (Client.call_with_retry s (req ~id:6 P.Health)).P.body with
   | Ok (P.R_health h) ->
     Alcotest.(check int) "breaker closed after success" 0 h.P.h_breakers_open
   | _ -> Alcotest.fail "health reply malformed");
  shutdown_server s srv

(* The server resets the first connection (injected): the session layer
   must reconnect and re-send transparently. *)
let test_serve_retry_reconnect () =
  sigpipe_off ();
  Fun.protect ~finally:(fun () -> Fault.disable ()) @@ fun () ->
  Fault.configure_exn "conn_reset:@1";
  let socket = tmp_socket "reconnect" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with socket; workers = 2; handle_signals = false }
  in
  let srv = start_server opts in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  (match (Client.call_with_retry s (req op)).P.body with
   | Ok (P.R_breakdown _) -> ()
   | _ -> Alcotest.fail "reconnect retry should recover the dropped reply");
  Alcotest.(check bool) "at least one retry consumed" true
    (Client.session_retries s >= 1);
  Alcotest.(check bool) "process-wide tally grows" true
    (Client.retries_total () >= Client.session_retries s);
  shutdown_server s srv

(* Memory high-water mark of zero: every request trips the pressure check,
   sheds the warm session/baseline entries and reports degraded health —
   while answers stay bit-identical. *)
let test_serve_degradation () =
  sigpipe_off ();
  let socket = tmp_socket "degrade" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket;
      workers = 2;
      cache_cap = 1;
      mem_high_mb = 0;
      handle_signals = false }
  in
  let srv = start_server opts in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  (* same analysis, different frame: the graph engine never reads the
     sampling seed, so the answer is bit-identical, but the distinct
     frame text bypasses the frame cache and reaches the pressure check
     while the first request's entries are still warm *)
  let op' =
    P.Breakdown { target = { small_target with P.seed = 43 }; focus = "dl1" }
  in
  let r1 = Client.call_with_retry s (req ~id:1 op) in
  let r2 = Client.call_with_retry s (req ~id:2 op') in
  (match (r1.P.body, r2.P.body) with
   | Ok (P.R_breakdown _), Ok (P.R_breakdown _) ->
     Alcotest.(check string) "degraded answers bit-identical" (norm r1) (norm r2)
   | _ -> Alcotest.fail "degraded server must still answer");
  (match (Client.call_with_retry s (req ~id:3 P.Health)).P.body with
   | Ok (P.R_health h) ->
     Alcotest.(check string) "health reports degraded" "degraded" h.P.h_health;
     Alcotest.(check bool) "warm entries were shed" true (h.P.h_shed >= 2)
   | _ -> Alcotest.fail "health reply malformed");
  (match (Client.call_with_retry s (req ~id:4 P.Status)).P.body with
   | Ok (P.R_status st) ->
     Alcotest.(check string) "status carries health" "degraded" st.P.health
   | _ -> Alcotest.fail "status reply malformed");
  shutdown_server s srv

(* Restarting a daemon on the same --cache-dir warm-starts its sessions
   from the snapshot store: the reborn server answers bit-identically and
   its status reports a snapshot hit instead of a fresh build. *)
let test_serve_snapshot_warm_restart () =
  sigpipe_off ();
  let socket = tmp_socket "warm" in
  if Sys.file_exists socket then Sys.remove socket;
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-test-snapdir-%d" (Unix.getpid ()))
  in
  let opts =
    { Server.default_opts with socket; workers = 2;
      cache_dir = Some cache_dir; handle_signals = false }
  in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  let life () =
    let srv = start_server opts in
    let result =
      Client.with_client ~retry_for:10.0 ~socket (fun c ->
          let r = Client.call c (req op) in
          let s =
            match (Client.call c (req ~id:2 P.Status)).P.body with
            | Ok (P.R_status s) -> s
            | _ -> Alcotest.fail "status reply malformed"
          in
          (match (Client.call c (req ~id:3 P.Shutdown)).P.body with
           | Ok P.R_shutdown -> ()
           | _ -> Alcotest.fail "shutdown not acknowledged");
          (r, s))
    in
    ignore (finish_server srv);
    result
  in
  let first, s1 = life () in
  Alcotest.(check int) "first life builds cold" 0 s1.P.snapshot_hits;
  Alcotest.(check bool) "first life misses the store" true
    (s1.P.snapshot_misses > 0);
  let second, s2 = life () in
  Alcotest.(check string) "rebirth answers bit-identically" (norm first)
    (norm second);
  Alcotest.(check int) "rebirth warm-starts from the snapshot" 1
    s2.P.snapshot_hits;
  Alcotest.(check int) "no snapshot rejects" 0 s2.P.snapshot_rejects

(* Chaos: several fault points armed at once under a deterministic seed.
   Every query must still come back correct through the retry layer. *)
(* ---------- sweep op ---------- *)

module Pool = Icost_util.Pool
module Sweep = Icost_sensitivity.Sweep
module Sparam = Icost_sensitivity.Param

(* The server's R_sweep, recomputed directly against the sensitivity
   library: same prepared execution, same engine, same grid. *)
let expected_sweep_body tg specs =
  let settings =
    { Runner.warmup = tg.P.warmup; measure = tg.P.measure;
      benches = [ tg.P.workload ] }
  in
  let prepared = Runner.prepare settings (Workload.find_exn tg.P.workload) in
  let engine =
    match Sweep.engine_of_string tg.P.engine with
    | Ok e -> e
    | Error msg -> Alcotest.fail msg
  in
  let axes =
    match Sparam.parse_axes specs with
    | Ok a -> a
    | Error msg -> Alcotest.fail msg
  in
  let r = Sweep.run ~engine ~cfg:Config.default ~prepared ~axes () in
  let curve (c : Sweep.curve) =
    {
      P.curve_param = c.Sweep.cv_param.Sparam.p_name;
      curve_base = c.cv_base_value;
      curve_knee =
        Option.map
          (fun (k : Sweep.knee) ->
            { P.kn_value = k.Sweep.kn_value; kn_marginal = k.kn_marginal;
              kn_saturated = k.kn_saturated })
          c.cv_knee;
      curve_points =
        List.map
          (fun (pt : Sweep.point) ->
            match pt.Sweep.pt_outcome with
            | Ok cycles ->
              { P.sp_value = pt.pt_value;
                sp_outcome =
                  Ok
                    (cycles,
                     Option.value ~default:0.
                       (List.assoc_opt pt.pt_value c.cv_deltas)) }
            | Error e -> Alcotest.fail (Printexc.to_string e))
          c.cv_points;
    }
  in
  P.R_sweep
    { baseline = r.Sweep.sw_baseline;
      curves = List.map curve r.Sweep.sw_curves }

(* No sweep point may alias a prep cache entry, and any two points
   differing in any swept field get distinct keys. *)
let test_sweep_point_keys () =
  let tg = { small_target with P.engine = "multisim" } in
  let cfg = Config.default in
  let keys =
    Server.sweep_point_key tg cfg ~engine:"multisim"
    :: List.map
         (fun (p : Sparam.t) ->
           Server.sweep_point_key tg
             (p.Sparam.p_apply cfg (p.Sparam.p_get cfg + 1))
             ~engine:"multisim")
         Sparam.all
  in
  let uniq = List.sort_uniq compare keys in
  Alcotest.(check int) "point keys pairwise distinct" (List.length keys)
    (List.length uniq);
  (* the prep key is the target's workload|warmup|measure prefix with no
     digest or engine segment: every point key must extend, never equal,
     it *)
  let prep_prefix =
    Printf.sprintf "%s|w%d|m%d" tg.P.workload tg.P.warmup tg.P.measure
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) "point key extends the prep key" true
        (String.length k > String.length prep_prefix
        && String.sub k 0 (String.length prep_prefix) = prep_prefix))
    keys

let test_serve_sweep () =
  sigpipe_off ();
  let socket = tmp_socket "sweep" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket; workers = 2; handle_signals = false }
  in
  let srv = start_server opts in
  let tg = { small_target with P.engine = "multisim" } in
  let specs = [ "window=16..64"; "mem_lat=25..100:25" ] in
  let sweep_op = P.Sweep { target = tg; params = specs } in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  let status () =
    match (Client.call_with_retry s (req ~id:9 P.Status)).P.body with
    | Ok (P.R_status st) -> st
    | _ -> Alcotest.fail "status reply malformed"
  in
  let first = Client.call_with_retry s (req ~id:1 sweep_op) in
  (* bit-identical to the direct library computation *)
  Alcotest.(check string) "served sweep bit-identical to library"
    (P.encode_reply
       { P.rep_id = 0; body = Ok (expected_sweep_body tg specs) })
    (norm first);
  (* window 16,32,64(base) + mem_lat 25,50,75 (100 is the base config,
     shared): 6 distinct points, all cold *)
  let st = status () in
  Alcotest.(check int) "6 points evaluated" 6 st.P.sweep_points;
  Alcotest.(check int) "no point cached yet" 0 st.P.sweep_cache_hits;
  (* exact repeat: the reply cache answers, point tallies unchanged *)
  let again = Client.call_with_retry s (req ~id:2 sweep_op) in
  Alcotest.(check string) "repeat identical" (norm first) (norm again);
  Alcotest.(check int) "repeat served without re-evaluating" 6
    (status ()).P.sweep_points;
  (* a sub-grid sweep: every point already sits in the sweep-point
     cache *)
  let sub = P.Sweep { target = tg; params = [ "window=16..64" ] } in
  (match (Client.call_with_retry s (req ~id:3 sub)).P.body with
  | Ok (P.R_sweep { baseline; curves }) ->
    (match first.P.body with
    | Ok (P.R_sweep { baseline = b0; _ }) ->
      check_feq "baselines agree across sweeps" b0 baseline
    | _ -> Alcotest.fail "first sweep reply malformed");
    (match curves with
    | [ c ] ->
      Alcotest.(check int) "three points" 3 (List.length c.P.curve_points)
    | _ -> Alcotest.fail "one curve expected")
  | _ -> Alcotest.fail "sub-grid sweep failed");
  let st = status () in
  Alcotest.(check int) "3 more points" 9 st.P.sweep_points;
  Alcotest.(check int) "all served from the point cache" 3
    st.P.sweep_cache_hits;
  (* typed rejections: profiler engine, unknown parameter *)
  List.iter
    (fun (what, op) ->
      match (Client.call_with_retry s (req ~id:4 op)).P.body with
      | Error (P.Bad_request, _) -> ()
      | _ -> Alcotest.fail (what ^ " should be a bad request"))
    [
      ("profiler sweep",
       P.Sweep
         { target = { tg with P.engine = "profiler" };
           params = [ "window=16..64" ] });
      ("unknown param",
       P.Sweep { target = tg; params = [ "frobnicate=1..2" ] });
    ];
  shutdown_server s srv

(* A fault-poisoned grid point must surface as a typed per-point error
   without failing the sweep — and the degraded reply must not be
   memoized: once the fault clears, the same request heals. *)
let test_serve_sweep_poisoned () =
  sigpipe_off ();
  let socket = tmp_socket "sweep-poison" in
  if Sys.file_exists socket then Sys.remove socket;
  let jobs0 = Pool.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Fault.disable ();
      Pool.set_jobs jobs0)
  @@ fun () ->
  (* jobs=1 makes the grid evaluation order deterministic (values
     ascending), pinning the @2 trigger to window=32 *)
  Pool.set_jobs 1;
  let opts =
    { Server.default_opts with
      socket; workers = 1; handle_signals = false }
  in
  let srv = start_server opts in
  let tg = { small_target with P.engine = "multisim" } in
  let sweep_op = P.Sweep { target = tg; params = [ "window=16..64" ] } in
  let s = Client.connect_session ~retry_for:10.0 ~socket () in
  Fault.configure_exn "sweep_point:@2";
  (match (Client.call_with_retry s (req ~id:1 sweep_op)).P.body with
  | Ok (P.R_sweep { curves = [ c ]; _ }) ->
    List.iter
      (fun (pt : P.sweep_point) ->
        match (pt.P.sp_value, pt.sp_outcome) with
        | 32, Error (P.Internal, msg) ->
          Alcotest.(check bool) "error names the fault" true
            (contains msg "injected")
        | 32, _ -> Alcotest.fail "window=32 should carry the injected fault"
        | _, Ok _ -> ()
        | v, Error (_, msg) ->
          Alcotest.fail (Printf.sprintf "healthy point %d failed: %s" v msg))
      c.P.curve_points
  | Ok _ -> Alcotest.fail "unexpected reply kind"
  | Error (code, msg) ->
    Alcotest.fail
      (Printf.sprintf "poisoned sweep should still succeed: %s %s"
         (P.error_code_name code) msg));
  (* fault cleared: the identical request is re-evaluated (the partial
     reply was never cached) and comes back fully clean, with the two
     healthy points served from the point cache *)
  Fault.disable ();
  (match (Client.call_with_retry s (req ~id:2 sweep_op)).P.body with
  | Ok (P.R_sweep { curves = [ c ]; _ }) ->
    List.iter
      (fun (pt : P.sweep_point) ->
        match pt.P.sp_outcome with
        | Ok _ -> ()
        | Error (_, msg) ->
          Alcotest.fail
            (Printf.sprintf "point %d still poisoned after heal: %s"
               pt.P.sp_value msg))
      c.P.curve_points
  | _ -> Alcotest.fail "healed sweep failed");
  let st =
    match (Client.call_with_retry s (req ~id:3 P.Status)).P.body with
    | Ok (P.R_status st) -> st
    | _ -> Alcotest.fail "status reply malformed"
  in
  Alcotest.(check int) "3 + 3 points attempted" 6 st.P.sweep_points;
  Alcotest.(check int) "healthy points re-served from the cache" 2
    st.P.sweep_cache_hits;
  shutdown_server s srv

let test_serve_chaos () =
  sigpipe_off ();
  Fun.protect ~finally:(fun () -> Fault.disable ()) @@ fun () ->
  Fault.configure_exn
    "write_short:0.5,worker_raise:0.2,conn_reset:0.1,sched_delay:0.3;seed=11";
  let socket = tmp_socket "chaos" in
  if Sys.file_exists socket then Sys.remove socket;
  let opts =
    { Server.default_opts with
      socket;
      workers = 2;
      breaker_cooldown = 0.05;
      handle_signals = false }
  in
  let srv = start_server opts in
  let s =
    Client.connect_session
      ~opts:{ Client.default_retry_opts with retries = 8; budget_ms = 30_000 }
      ~retry_for:10.0 ~socket ()
  in
  let op = P.Breakdown { target = small_target; focus = "dl1" } in
  let first = ref None in
  for i = 1 to 20 do
    let reply = Client.call_with_retry s (req ~id:i op) in
    match reply.P.body with
    | Ok (P.R_breakdown _) -> (
      match !first with
      | None -> first := Some (norm reply)
      | Some f ->
        Alcotest.(check string)
          (Printf.sprintf "chaos query %d bit-identical" i)
          f (norm reply))
    | Ok _ -> Alcotest.fail "unexpected reply kind under chaos"
    | Error (c, m) ->
      Alcotest.fail
        (Printf.sprintf "chaos query %d failed after retries: %s %s" i
           (P.error_code_name c) m)
  done;
  Alcotest.(check bool) "faults actually fired" true
    (Fault.injected_total () > 0);
  Fault.disable ();
  shutdown_server s srv

let suite =
  ( "service",
    [
      Alcotest.test_case "protocol: request round-trip" `Quick
        test_request_roundtrip;
      Alcotest.test_case "protocol: reply round-trip" `Quick
        test_reply_roundtrip;
      Alcotest.test_case "protocol: malformed requests rejected" `Quick
        test_decode_rejects;
      Alcotest.test_case "protocol: error code names" `Quick
        test_error_code_names;
      Alcotest.test_case "protocol: retry hints and status compat" `Quick
        test_retry_hints_and_compat;
      Alcotest.test_case "protocol: idempotency and retryability" `Quick
        test_retry_classification;
      Alcotest.test_case "json: float bit round-trip" `Quick
        test_json_float_roundtrip;
      Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
      Alcotest.test_case "json: non-finite numbers rejected" `Quick
        test_json_nonfinite_numbers;
      Alcotest.test_case "protocol: request cap boundaries" `Quick
        test_decode_size_boundaries;
      Alcotest.test_case "protocol: decoder never raises on hostile input"
        `Quick test_decode_fuzz_never_raises;
      Alcotest.test_case "cache: single flight" `Quick test_cache_single_flight;
      Alcotest.test_case "cache: eviction and failed-build retry" `Quick
        test_cache_eviction_and_retry;
      Alcotest.test_case "scheduler: backpressure and drain" `Quick
        test_scheduler_backpressure;
      Alcotest.test_case "cost: memoize cap and eviction counter" `Quick
        test_memoize_cap;
      Alcotest.test_case "breaker: trip, half-open, close" `Quick test_breaker;
      Alcotest.test_case "client: connect error diagnostics" `Quick
        test_connect_error_messages;
      Alcotest.test_case "serve: end-to-end session" `Slow
        test_serve_end_to_end;
      Alcotest.test_case "serve: backpressure and drain mid-request" `Slow
        test_serve_backpressure_and_drain;
      Alcotest.test_case "serve: pipelined replies stay in request order"
        `Slow test_serve_pipelining_order;
      Alcotest.test_case "serve: batch mixes per-item success and failure"
        `Slow test_serve_batch;
      Alcotest.test_case "sweep: point keys never alias the prep cache"
        `Quick test_sweep_point_keys;
      Alcotest.test_case "serve: sweep bit-identical to the library" `Slow
        test_serve_sweep;
      Alcotest.test_case "serve: poisoned sweep point stays typed and \
                          uncached" `Slow test_serve_sweep_poisoned;
      Alcotest.test_case "serve: TCP endpoint bit-identical to Unix" `Slow
        test_serve_tcp;
      Alcotest.test_case "serve: crash during cache build recovers" `Slow
        test_serve_crash_during_build;
      Alcotest.test_case "serve: supervision trips the circuit breaker" `Slow
        test_serve_supervision_and_breaker;
      Alcotest.test_case "serve: session reconnects after reset" `Slow
        test_serve_retry_reconnect;
      Alcotest.test_case "serve: graceful degradation under pressure" `Slow
        test_serve_degradation;
      Alcotest.test_case "serve: chaos run stays correct" `Slow
        test_serve_chaos;
      Alcotest.test_case "serve: snapshot warm restart" `Slow
        test_serve_snapshot_warm_restart;
    ] )
