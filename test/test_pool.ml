(* Tests for the domain pool: deterministic ordering, exception
   propagation, nested-map safety, and the ICOST_JOBS=1 degenerate case. *)

module Pool = Icost_util.Pool

exception Boom of int

(* Run [f] under [n] pool jobs, then restore the sequential default so the
   rest of the suite is unaffected. *)
let with_jobs n f =
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let test_map_ordering () =
  with_jobs 4 (fun () ->
      let input = Array.init 1000 (fun i -> i) in
      let expected = Array.map (fun i -> i * i) input in
      let got = Pool.parallel_map (fun i -> i * i) input in
      Alcotest.(check (array int)) "parallel_map = Array.map" expected got;
      let goti = Pool.parallel_mapi (fun idx v -> idx + (v * 2)) input in
      Alcotest.(check (array int))
        "parallel_mapi = Array.mapi" (Array.mapi (fun idx v -> idx + (v * 2)) input)
        goti)

let test_map_list_ordering () =
  with_jobs 3 (fun () ->
      let input = List.init 257 (fun i -> i) in
      Alcotest.(check (list string))
        "parallel_map_list preserves order"
        (List.map string_of_int input)
        (Pool.parallel_map_list string_of_int input))

let test_exception_propagation () =
  with_jobs 4 (fun () ->
      let input = Array.init 100 (fun i -> i) in
      let raises () =
        Pool.parallel_map (fun i -> if i mod 30 = 10 then raise (Boom i) else i) input
      in
      (* indexes 10, 40, 70 all raise: the smallest index wins, so a
         parallel run fails exactly like the sequential one *)
      Alcotest.check_raises "smallest-index exception" (Boom 10) (fun () ->
          ignore (raises ())))

let test_exception_sequential_matches () =
  let input = Array.init 100 (fun i -> i) in
  let f i = if i >= 97 then raise (Boom i) else i in
  let outcome jobs =
    with_jobs jobs (fun () ->
        match Pool.parallel_map f input with
        | _ -> None
        | exception e -> Some e)
  in
  Alcotest.(check bool)
    "parallel raises the same exception as sequential" true
    (outcome 1 = outcome 4)

let test_nested_map () =
  with_jobs 4 (fun () ->
      let outer = Array.init 8 (fun i -> i) in
      let got =
        Pool.parallel_map
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.parallel_map (fun j -> (i * 10) + j) (Array.init 8 Fun.id)))
          outer
      in
      let expected =
        Array.map
          (fun i ->
            Array.fold_left ( + ) 0 (Array.map (fun j -> (i * 10) + j) (Array.init 8 Fun.id)))
          outer
      in
      Alcotest.(check (array int)) "nested parallel_map" expected got)

let test_jobs_one_degenerates () =
  with_jobs 1 (fun () ->
      Alcotest.(check int) "jobs clamps to 1" 1 (Pool.jobs ());
      let input = Array.init 64 (fun i -> i) in
      Alcotest.(check (array int))
        "sequential fallback" (Array.map succ input)
        (Pool.parallel_map succ input));
  Pool.set_jobs 0;
  Alcotest.(check int) "set_jobs 0 clamps to 1" 1 (Pool.jobs ());
  Pool.set_jobs 1

let test_iter_visits_all () =
  with_jobs 4 (fun () ->
      let hits = Array.make 500 0 in
      (* disjoint writes: each element owns its slot *)
      Pool.parallel_iter (fun i -> hits.(i) <- hits.(i) + 1) (Array.init 500 Fun.id);
      Alcotest.(check bool) "every element visited exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_chunks_partition () =
  with_jobs 4 (fun () ->
      let n = 1003 in
      let hits = Array.make n 0 in
      Pool.parallel_chunks n (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "chunks cover [0,n) exactly once" true
        (Array.for_all (fun h -> h = 1) hits));
  (* empty range is a no-op *)
  Pool.parallel_chunks 0 (fun ~lo:_ ~hi:_ -> Alcotest.fail "called on empty range")

let suite =
  ( "pool",
    [
      Alcotest.test_case "map ordering" `Quick test_map_ordering;
      Alcotest.test_case "list map ordering" `Quick test_map_list_ordering;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "exception parity with sequential" `Quick
        test_exception_sequential_matches;
      Alcotest.test_case "nested maps" `Quick test_nested_map;
      Alcotest.test_case "ICOST_JOBS=1 degeneracy" `Quick test_jobs_one_degenerates;
      Alcotest.test_case "iter visits all" `Quick test_iter_visits_all;
      Alcotest.test_case "chunk partition" `Quick test_chunks_partition;
    ] )
