(* Determinism of the parallel analysis paths: fanning out across the
   domain pool must produce bit-identical results to the sequential path —
   costs are exact cycle counts, so equality is exact, not approximate. *)

module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category
module Config = Icost_uarch.Config
module Pool = Icost_util.Pool

(* reduced scale, two workloads, as the suite must stay fast *)
let settings = { Runner.warmup = 30_000; measure = 4_000; benches = [ "gzip"; "mcf" ] }

let with_jobs n f =
  Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Pool.set_jobs 1) f

let test_prepare_all_deterministic () =
  let seq = with_jobs 1 (fun () -> Runner.prepare_all settings) in
  let par = with_jobs 4 (fun () -> Runner.prepare_all settings) in
  List.iter2
    (fun (a : Runner.prepared) (b : Runner.prepared) ->
      Alcotest.(check string) "workload order" a.name b.name;
      Alcotest.(check int)
        (a.name ^ " baseline cycles")
        (Icost_sim.Ooo.cycles Config.default a.trace a.evts)
        (Icost_sim.Ooo.cycles Config.default b.trace b.evts))
    seq par

let test_multisim_batch_bit_identical () =
  let p = with_jobs 1 (fun () -> List.hd (Runner.prepare_all settings)) in
  let cfg = Config.loop_dl1 in
  let sets =
    Array.of_list
      (Category.Set.empty :: Category.Set.full
      :: List.map Category.Set.singleton Category.all)
  in
  let seq =
    let oracle = Multisim.oracle cfg p.trace p.evts in
    Array.map (Icost_core.Cost.query oracle) sets
  in
  let par = with_jobs 4 (fun () -> Multisim.oracle_batch cfg p.trace p.evts sets) in
  Alcotest.(check bool) "parallel multisim batch = sequential" true (seq = par)

let test_eval_subsets_bit_identical () =
  let p = with_jobs 1 (fun () -> List.hd (Runner.prepare_all settings)) in
  let cfg = Config.loop_dl1 in
  let graph = Build.of_sim cfg p.trace p.evts (Runner.baseline_run cfg p) in
  let sets = Array.of_list (Category.Set.subsets Category.Set.full) in
  let seq = Array.map (fun s -> Graph.critical_length ~ideal:s graph) sets in
  let par = with_jobs 4 (fun () -> Graph.eval_subsets graph sets) in
  Alcotest.(check bool)
    "parallel subset sweep = sequential critical lengths (all 256)" true
    (seq = par);
  (* an odd lane count splits the work unevenly across domains; the
     slicing must still be invariant to the job count *)
  let one = with_jobs 1 (fun () -> Graph.eval_slices ~lanes:7 graph sets) in
  let four = with_jobs 4 (fun () -> Graph.eval_slices ~lanes:7 graph sets) in
  Alcotest.(check bool) "lanes=7 invariant under jobs" true (one = four)

let test_drive_report_deterministic () =
  let report jobs =
    with_jobs jobs (fun () ->
        let prepared = Runner.prepare_all settings in
        Drive.table4a prepared)
  in
  let seq = report 1 and par = report 4 in
  Alcotest.(check string) "table4a body identical" seq.Drive.body par.Drive.body;
  Alcotest.(check bool) "table4a checks identical" true (seq.checks = par.checks)

let suite =
  ( "parallel-determinism",
    [
      Alcotest.test_case "prepare_all" `Quick test_prepare_all_deterministic;
      Alcotest.test_case "multisim batch" `Quick test_multisim_batch_bit_identical;
      Alcotest.test_case "graph subset sweep" `Quick test_eval_subsets_bit_identical;
      Alcotest.test_case "drive report" `Quick test_drive_report_deterministic;
    ] )
