(* Tests for the core icost definitions: identities that must hold for ANY
   cost oracle, classification, memoization, breakdown accounting. *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown

(* A random oracle: a table from category set to execution time, with the
   baseline largest (idealization can only speed up).  The icost identities
   are purely algebraic, so they must hold for any such table. *)
let random_oracle seed : Cost.oracle =
  let prng = Icost_util.Prng.create seed in
  let base = 10_000 + Icost_util.Prng.int prng 10_000 in
  let tbl = Hashtbl.create 256 in
  Hashtbl.replace tbl Category.Set.empty (float_of_int base);
  Cost.of_fn (fun s ->
      match Hashtbl.find_opt tbl s with
      | Some v -> v
      | None ->
        let v = float_of_int (Icost_util.Prng.int prng base) in
        Hashtbl.replace tbl s v;
        v)

let gen_set = QCheck.map (fun n -> n land Category.Set.full) QCheck.small_int

let prop_icost_recursive_equals_inclusion_exclusion =
  QCheck.Test.make ~name:"recursive icost = inclusion-exclusion form" ~count:100
    QCheck.(pair small_int gen_set)
    (fun (seed, s) ->
      let oracle = Cost.memoize (random_oracle seed) in
      Float.abs (Cost.icost oracle s -. Cost.icost_ie oracle s) < 1e-6)

let prop_powerset_sums_to_cost =
  QCheck.Test.make ~name:"sum of icosts over P(U) telescopes to cost(U)" ~count:100
    QCheck.(pair small_int gen_set)
    (fun (seed, s) ->
      let oracle = Cost.memoize (random_oracle seed) in
      Float.abs (Cost.sum_icosts_powerset oracle s -. Cost.cost oracle s) < 1e-6)

let prop_pair_formula =
  QCheck.Test.make ~name:"icost pair = cost(ab) - cost(a) - cost(b)" ~count:100
    QCheck.small_int
    (fun seed ->
      let oracle = Cost.memoize (random_oracle seed) in
      List.for_all
        (fun (a, b) ->
          Float.abs
            (Cost.icost_pair oracle a b
            -. Cost.icost_ie oracle (Category.Set.pair a b))
          < 1e-6)
        [ (Category.Dl1, Category.Win); (Category.Dmiss, Category.Bmisp);
          (Category.Shalu, Category.Lgalu) ])

let prop_icost_singleton_is_cost =
  QCheck.Test.make ~name:"icost of a singleton equals its cost" ~count:100
    QCheck.small_int
    (fun seed ->
      let oracle = Cost.memoize (random_oracle seed) in
      List.for_all
        (fun c ->
          let s = Category.Set.singleton c in
          Float.abs (Cost.icost_ie oracle s -. Cost.cost oracle s) < 1e-6)
        Category.all)

let prop_icost_empty_zero =
  QCheck.Test.make ~name:"icost of empty set is 0" ~count:20 QCheck.small_int
    (fun seed ->
      let oracle = Cost.memoize (random_oracle seed) in
      Cost.icost oracle Category.Set.empty = 0.
      && Cost.icost_ie oracle Category.Set.empty = 0.)

let test_classify () =
  Alcotest.(check bool) "positive is parallel" true (Cost.classify 10. = Cost.Parallel);
  Alcotest.(check bool) "negative is serial" true (Cost.classify (-10.) = Cost.Serial);
  Alcotest.(check bool) "small is independent" true (Cost.classify 0.2 = Cost.Independent);
  Alcotest.(check bool) "tolerance respected" true
    (Cost.classify ~tolerance:20. 10. = Cost.Independent)

let test_memoize_counts () =
  let calls = ref 0 in
  let oracle =
    Cost.of_fn (fun s ->
        incr calls;
        float_of_int (1000 - Category.Set.cardinal s))
  in
  let m = Cost.memoize oracle in
  let s = Category.Set.pair Category.Dl1 Category.Win in
  ignore (Cost.query m s);
  ignore (Cost.query m s);
  ignore (Cost.query m s);
  Alcotest.(check int) "underlying called once" 1 !calls

let test_cost_example () =
  (* the paper's worked example: two fully parallel cache misses.
     t_base = 100; idealizing either alone doesn't help; both together
     saves 90. cost(a)=cost(b)=0, icost(a,b)=+90: parallel interaction. *)
  let oracle =
    Cost.of_fn (fun s ->
        let a = Category.Set.mem Category.Dmiss s in
        let b = Category.Set.mem Category.Dl1 s in
        if a && b then 10. else 100.)
  in
  let oracle = Cost.memoize oracle in
  Alcotest.(check (float 1e-9)) "cost(a)=0" 0.
    (Cost.cost oracle (Category.Set.singleton Category.Dmiss));
  Alcotest.(check (float 1e-9)) "cost(b)=0" 0.
    (Cost.cost oracle (Category.Set.singleton Category.Dl1));
  let ic = Cost.icost_pair oracle Category.Dmiss Category.Dl1 in
  Alcotest.(check (float 1e-9)) "icost=+90" 90. ic;
  Alcotest.(check bool) "parallel" true (Cost.classify ic = Cost.Parallel)

let test_serial_example () =
  (* two dependent 100-cycle misses in parallel with 100 cycles of ALU:
     idealizing either miss alone saves 100; both also saves 100.
     icost = 100 - 100 - 100 = -100: serial interaction. *)
  let oracle =
    Cost.of_fn (fun s ->
        let a = Category.Set.mem Category.Dmiss s in
        let b = Category.Set.mem Category.Dl1 s in
        if a || b then 100. else 200.)
  in
  let oracle = Cost.memoize oracle in
  let ic = Cost.icost_pair oracle Category.Dmiss Category.Dl1 in
  Alcotest.(check (float 1e-9)) "icost=-100" (-100.) ic;
  Alcotest.(check bool) "serial" true (Cost.classify ic = Cost.Serial)

let test_breakdown_accounts_100 () =
  let oracle = Cost.memoize (random_oracle 77) in
  let bd = Breakdown.focus ~oracle ~focus_cat:Category.Dl1 in
  Alcotest.(check (float 1e-6)) "total is 100" 100. (Breakdown.total bd);
  (* rows: 8 base + 7 pairs + Other *)
  Alcotest.(check int) "row count" 16 (List.length bd.rows)

let test_breakdown_rows () =
  let oracle = Cost.memoize (random_oracle 78) in
  let bd = Breakdown.focus ~oracle ~focus_cat:Category.Bmisp in
  (* focus row first *)
  (match bd.rows with
   | { kind = Breakdown.Base c; _ } :: _ ->
     Alcotest.(check bool) "focus first" true (c = Category.Bmisp)
   | _ -> Alcotest.fail "expected base row first");
  (* every non-focus category appears as a pair with the focus *)
  List.iter
    (fun c ->
      if c <> Category.Bmisp then
        match Breakdown.percent_of bd (Breakdown.Pair (Category.Bmisp, c)) with
        | Some _ -> ()
        | None -> Alcotest.failf "missing pair row for %s" (Category.name c))
    Category.all

let test_pairwise_matrix () =
  let oracle = Cost.memoize (random_oracle 79) in
  let m = Breakdown.pairwise ~oracle in
  (* 8 choose 2 = 28 pairs *)
  Alcotest.(check int) "28 pairs" 28 (List.length m)

let test_higher_order () =
  let oracle = Cost.memoize (random_oracle 80) in
  let hos = Breakdown.higher_order ~oracle ~max_order:3 Category.all in
  let orders = List.map (fun (s, _) -> Category.Set.cardinal s) hos in
  Alcotest.(check bool) "orders 2..3 only" true
    (List.for_all (fun k -> k = 2 || k = 3) orders);
  (* 28 pairs + 56 triples *)
  Alcotest.(check int) "count" 84 (List.length hos)

let test_icost_full_powerset_fast () =
  (* the recursive definition used to be super-exponential in |U|; with the
     per-call subset table the whole 8-category power set is a few thousand
     additions and must agree with inclusion-exclusion everywhere *)
  let oracle = Cost.memoize (random_oracle 4242) in
  let t0 = Sys.time () in
  List.iter
    (fun u ->
      let r = Cost.icost oracle u and ie = Cost.icost_ie oracle u in
      if Float.abs (r -. ie) > 1e-6 then
        Alcotest.failf "icost disagrees with icost_ie on %s: %g vs %g"
          (Category.Set.name u) r ie)
    (Category.Set.subsets Category.Set.full);
  let elapsed = Sys.time () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "all 256 subsets in %.3fs (< 1s)" elapsed)
    true (elapsed < 1.)

let test_category_set_ops () =
  let s = Category.Set.of_list [ Category.Dl1; Category.Win ] in
  Alcotest.(check int) "cardinal" 2 (Category.Set.cardinal s);
  Alcotest.(check bool) "mem" true (Category.Set.mem Category.Dl1 s);
  Alcotest.(check bool) "not mem" false (Category.Set.mem Category.Bw s);
  Alcotest.(check int) "subsets of a pair" 4 (List.length (Category.Set.subsets s));
  Alcotest.(check int) "proper subsets" 3 (List.length (Category.Set.proper_subsets s));
  Alcotest.(check string) "name" "dl1+win" (Category.Set.name s);
  Alcotest.(check int) "full has 256 subsets" 256
    (List.length (Category.Set.subsets Category.Set.full))

let prop_of_int_roundtrip =
  QCheck.Test.make ~name:"category int codec" ~count:50 (QCheck.int_bound 7) (fun i ->
      Category.to_int (Category.of_int i) = i)

let test_of_name () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "of_name %s" (Category.name c))
        true
        (Category.of_name (Category.name c) = Some c))
    Category.all;
  Alcotest.(check bool) "unknown name" true (Category.of_name "bogus" = None)

let suite =
  ( "icost-core",
    [
      QCheck_alcotest.to_alcotest prop_icost_recursive_equals_inclusion_exclusion;
      QCheck_alcotest.to_alcotest prop_powerset_sums_to_cost;
      QCheck_alcotest.to_alcotest prop_pair_formula;
      QCheck_alcotest.to_alcotest prop_icost_singleton_is_cost;
      QCheck_alcotest.to_alcotest prop_icost_empty_zero;
      Alcotest.test_case "classification" `Quick test_classify;
      Alcotest.test_case "memoization" `Quick test_memoize_counts;
      Alcotest.test_case "parallel-miss example" `Quick test_cost_example;
      Alcotest.test_case "serial-miss example" `Quick test_serial_example;
      Alcotest.test_case "breakdown sums to 100" `Quick test_breakdown_accounts_100;
      Alcotest.test_case "breakdown rows" `Quick test_breakdown_rows;
      Alcotest.test_case "pairwise matrix" `Quick test_pairwise_matrix;
      Alcotest.test_case "higher-order interactions" `Quick test_higher_order;
      Alcotest.test_case "icost over the full power set, fast" `Quick
        test_icost_full_powerset_fast;
      Alcotest.test_case "category sets" `Quick test_category_set_ops;
      QCheck_alcotest.to_alcotest prop_of_int_roundtrip;
      Alcotest.test_case "category names" `Quick test_of_name;
    ] )
