(* Tests for the persistent snapshot store (icost.graphcache.v1):
   round-trips, corruption and version handling — a damaged file must
   always be reported as [`Reject] (never raise, never partially load) —
   and warm-start establishment semantics. *)

module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Config = Icost_uarch.Config
module Runner = Icost_experiments.Runner
module Workload = Icost_workloads.Workload
module Snapshot = Icost_service.Snapshot

let tmpdir =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-snap-test-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let settings = { Runner.warmup = 2_000; measure = 600; benches = [ "gcc" ] }

let prepared =
  lazy (Runner.prepare settings (Workload.find_exn "gcc"))

let payload_of ~key memo =
  let p = Lazy.force prepared in
  { Snapshot.engine = "multisim"; key; prepared = p; graph = None; memo }

let read_file f =
  let ic = open_in_bin f in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file f s =
  let oc = open_out_bin f in
  output_string oc s;
  close_out oc

let reject_reason = function
  | `Reject r -> r
  | `Hit _ -> Alcotest.fail "expected Reject, got Hit"
  | `Miss -> Alcotest.fail "expected Reject, got Miss"

let test_round_trip () =
  let key = "rt|w2000|m600|digest|multisim|s0" in
  let memo = [| (Category.Set.empty, 812.); (Category.Set.full, 355.) |] in
  Snapshot.save ~dir:tmpdir ~key (payload_of ~key memo);
  match Snapshot.load ~dir:tmpdir ~key with
  | `Hit p ->
    Alcotest.(check string) "engine" "multisim" p.Snapshot.engine;
    Alcotest.(check string) "key" key p.Snapshot.key;
    Alcotest.(check bool) "memo" true (p.Snapshot.memo = memo);
    Alcotest.(check int) "trace preserved"
      (Icost_isa.Trace.length (Lazy.force prepared).Runner.trace)
      (Icost_isa.Trace.length p.Snapshot.prepared.Runner.trace)
  | `Miss | `Reject _ -> Alcotest.fail "round trip did not hit"

let test_missing_is_miss () =
  Alcotest.(check bool) "absent file" true
    (Snapshot.load ~dir:tmpdir ~key:"never-saved" = `Miss)

let test_truncated () =
  let key = "trunc" in
  Snapshot.save ~dir:tmpdir ~key (payload_of ~key [||]);
  let file = Snapshot.file_of ~dir:tmpdir ~key in
  let s = read_file file in
  (* cut at several depths: inside the magic, inside a section header,
     inside the payload bytes *)
  List.iter
    (fun keep ->
      write_file file (String.sub s 0 keep);
      match Snapshot.load ~dir:tmpdir ~key with
      | `Reject _ -> ()
      | `Hit _ | `Miss ->
        Alcotest.failf "truncation to %d bytes not rejected" keep)
    [ 4; 23; String.length s / 2; String.length s - 1 ]

let test_flipped_byte () =
  let key = "flip" in
  Snapshot.save ~dir:tmpdir ~key
    (payload_of ~key [| (Category.Set.empty, 1.) |]);
  let file = Snapshot.file_of ~dir:tmpdir ~key in
  let s = read_file file in
  (* flip one byte deep inside the payload section *)
  let b = Bytes.of_string s in
  let pos = String.length s - 10 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  write_file file (Bytes.to_string b);
  Alcotest.(check string) "digest rejects the flip" "section digest mismatch"
    (reject_reason (Snapshot.load ~dir:tmpdir ~key))

let test_wrong_magic () =
  let key = "magic" in
  Snapshot.save ~dir:tmpdir ~key (payload_of ~key [||]);
  let file = Snapshot.file_of ~dir:tmpdir ~key in
  let s = read_file file in
  (* a future format version must be rejected, not misparsed *)
  let v2 =
    "icost.graphcache.v2\n"
    ^ String.sub s 20 (String.length s - 20)
  in
  write_file file v2;
  Alcotest.(check string) "version bump rejected" "bad magic or version"
    (reject_reason (Snapshot.load ~dir:tmpdir ~key));
  write_file file "not a snapshot at all";
  Alcotest.(check string) "garbage rejected" "bad magic or version"
    (reject_reason (Snapshot.load ~dir:tmpdir ~key))

let test_key_mismatch () =
  (* same file addressed under the right name but recording another key:
     hash collisions or copied files must not leak the wrong session *)
  let key = "key-a" and other = "key-b" in
  Snapshot.save ~dir:tmpdir ~key (payload_of ~key [||]);
  let a = Snapshot.file_of ~dir:tmpdir ~key in
  let b = Snapshot.file_of ~dir:tmpdir ~key:other in
  write_file b (read_file a);
  Alcotest.(check string) "foreign key rejected" "session key mismatch"
    (reject_reason (Snapshot.load ~dir:tmpdir ~key:other))

let test_concurrent_readers () =
  let key = "concurrent" in
  let memo =
    Array.of_list
      (List.map
         (fun c -> (Category.Set.singleton c, float_of_int (Category.to_int c)))
         Category.all)
  in
  Snapshot.save ~dir:tmpdir ~key (payload_of ~key memo);
  let results = Array.make 8 None in
  let readers =
    List.init 8 (fun i ->
        Thread.create
          (fun i -> results.(i) <- Some (Snapshot.load ~dir:tmpdir ~key))
          i)
  in
  List.iter Thread.join readers;
  Array.iter
    (function
      | Some (`Hit p) ->
        Alcotest.(check bool) "reader sees the full memo" true
          (p.Snapshot.memo = memo)
      | _ -> Alcotest.fail "concurrent reader did not hit")
    results

let test_establish_warm_start () =
  let key = "estab|multisim" in
  let cfg = Config.default in
  let prepares = ref 0 in
  let prepare () =
    incr prepares;
    Lazy.force prepared
  in
  let baseline p = Runner.baseline_run cfg p in
  let establish () =
    Snapshot.establish ~cache_dir:tmpdir ~key ~kind:Runner.Multisim ~cfg
      ~seed:0 ~prepare ~baseline ()
  in
  (* cold: built fresh, initial snapshot written *)
  let cold = establish () in
  Alcotest.(check bool) "cold = miss" true (cold.Snapshot.est_disk = `Miss);
  Alcotest.(check int) "cold prepared once" 1 !prepares;
  let q = Cost.query cold.Snapshot.est_oracle Category.Set.empty in
  Snapshot.persist ~dir:tmpdir ~key cold;
  (* warm: prepared comes from disk, the query replays from the memo *)
  let warm = establish () in
  Alcotest.(check bool) "warm = hit" true (warm.Snapshot.est_disk = `Hit);
  Alcotest.(check int) "warm start does not re-prepare" 1 !prepares;
  Alcotest.(check bool) "warm query bit-identical" true
    (Cost.query warm.Snapshot.est_oracle Category.Set.empty = q);
  (* an engine switch under the same key must rebuild, not limp *)
  let cross =
    Snapshot.establish ~cache_dir:tmpdir ~key ~kind:Runner.Fullgraph ~cfg
      ~seed:0 ~prepare ~baseline ()
  in
  Alcotest.(check bool) "engine mismatch rejected" true
    (cross.Snapshot.est_disk = `Reject);
  Alcotest.(check bool) "rebuild carries the graph" true
    (cross.Snapshot.est_graph () <> None)

let test_persist_only_on_growth () =
  let key = "growth" in
  let cfg = Config.default in
  let establish () =
    Snapshot.establish ~cache_dir:tmpdir ~key ~kind:Runner.Multisim ~cfg
      ~seed:0
      ~prepare:(fun () -> Lazy.force prepared)
      ~baseline:(fun p -> Runner.baseline_run cfg p)
      ()
  in
  let est = establish () in
  ignore (Cost.query est.Snapshot.est_oracle Category.Set.empty);
  Snapshot.persist ~dir:tmpdir ~key est;
  let file = Snapshot.file_of ~dir:tmpdir ~key in
  let stamp () = (Unix.stat file).Unix.st_mtime in
  let before = read_file file in
  (* no new queries: persist must not rewrite the file *)
  let t0 = stamp () in
  Snapshot.persist ~dir:tmpdir ~key est;
  Alcotest.(check bool) "no growth, no rewrite" true
    (stamp () = t0 && read_file file = before);
  (* one more query grows the memo, so persist rewrites *)
  ignore (Cost.query est.Snapshot.est_oracle Category.Set.full);
  Snapshot.persist ~dir:tmpdir ~key est;
  Alcotest.(check bool) "growth rewrites the snapshot" true
    (read_file file <> before);
  match Snapshot.load ~dir:tmpdir ~key with
  | `Hit p -> Alcotest.(check int) "grown memo persisted" 2
                (Array.length p.Snapshot.memo)
  | `Miss | `Reject _ -> Alcotest.fail "grown snapshot unreadable"

let suite =
  ( "snapshot",
    [
      Alcotest.test_case "round trip" `Quick test_round_trip;
      Alcotest.test_case "missing file is a miss" `Quick test_missing_is_miss;
      Alcotest.test_case "truncation rejected" `Quick test_truncated;
      Alcotest.test_case "flipped byte rejected" `Quick test_flipped_byte;
      Alcotest.test_case "wrong magic/version rejected" `Quick test_wrong_magic;
      Alcotest.test_case "key mismatch rejected" `Quick test_key_mismatch;
      Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
      Alcotest.test_case "establish warm start" `Quick test_establish_warm_start;
      Alcotest.test_case "persist only on growth" `Quick
        test_persist_only_on_growth;
    ] )
