(* Tests for the out-of-order timing model: stage ordering, structural
   constraints, idealization behaviour. *)

module Asm = Icost_isa.Asm
module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Category = Icost_core.Category
module Multisim = Icost_sim.Multisim

let prepare ?(max_instrs = 5000) name =
  let w = Icost_workloads.Workload.find_exn name in
  let trace = Interp.run ~config:{ Interp.default_config with max_instrs } (w.build ()) in
  let evts, _ = Events.annotate Config.default trace in
  (trace, evts)

let no_imiss cfg =
  { cfg with Config.ideal = { Config.no_ideal with perfect_icache = true } }

let run_small build cfg =
  let cfg = no_imiss cfg in
  let a = Asm.create ~name:"t" () in
  build a;
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 2000 } (Asm.assemble a)
  in
  let evts, _ = Events.annotate cfg trace in
  (trace, evts, Ooo.run cfg trace evts)

let stage_invariants (r : Ooo.result) =
  Array.iteri
    (fun i (s : Ooo.slot) ->
      if not (s.fetch <= s.dispatch) then Alcotest.failf "i%d fetch > dispatch" i;
      if not (s.dispatch < s.ready) then Alcotest.failf "i%d dispatch >= ready" i;
      if not (s.ready <= s.exec_start) then Alcotest.failf "i%d ready > exec" i;
      if not (s.exec_start <= s.complete) then Alcotest.failf "i%d exec > complete" i;
      if not (s.complete < s.commit) then Alcotest.failf "i%d complete >= commit" i)
    r.slots;
  for i = 1 to Array.length r.slots - 1 do
    if r.slots.(i).dispatch < r.slots.(i - 1).dispatch then
      Alcotest.failf "dispatch out of order at %d" i;
    if r.slots.(i).commit < r.slots.(i - 1).commit then
      Alcotest.failf "commit out of order at %d" i
  done

let test_stage_invariants () =
  List.iter
    (fun name ->
      let trace, evts = prepare name in
      stage_invariants (Ooo.run Config.default trace evts))
    [ "gcc"; "mcf"; "vortex"; "eon" ]

let test_window_constraint () =
  let trace, evts = prepare "gap" in
  let cfg = Config.default in
  let r = Ooo.run cfg trace evts in
  let w = cfg.window_size in
  Array.iteri
    (fun i (s : Ooo.slot) ->
      if i >= w && s.dispatch < r.slots.(i - w).commit then
        Alcotest.failf "window violated at %d" i)
    r.slots

let test_commit_bandwidth () =
  let trace, evts = prepare "gcc" in
  let cfg = Config.default in
  let r = Ooo.run cfg trace evts in
  let per_cycle = Hashtbl.create 1024 in
  Array.iter
    (fun (s : Ooo.slot) ->
      Hashtbl.replace per_cycle s.commit
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_cycle s.commit)))
    r.slots;
  Hashtbl.iter
    (fun cyc n ->
      if n > cfg.commit_bw then Alcotest.failf "commit BW exceeded at cycle %d (%d)" cyc n)
    per_cycle

let test_data_dependence_ordering () =
  let trace, evts = prepare "gap" in
  let r = Ooo.run Config.default trace evts in
  Array.iteri
    (fun i (d : Trace.dyn) ->
      List.iter
        (fun (_, p) ->
          if r.slots.(i).exec_start < r.slots.(p).complete then
            Alcotest.failf "instr %d executed before producer %d completed" i p)
        d.reg_deps)
    trace.instrs

let test_dependent_chain_latency () =
  (* a strictly serial chain of N adds takes ~N cycles *)
  let n = 100 in
  let _, _, r =
    run_small
      (fun a ->
        for _ = 1 to n do
          Asm.addi a ~rd:1 ~rs1:1 1
        done;
        Asm.halt a)
      Config.default
  in
  Alcotest.(check bool)
    (Printf.sprintf "serial chain ~%d cycles (%d)" n r.cycles)
    true
    (r.cycles >= n && r.cycles < n + 40)

let test_independent_ops_parallel () =
  (* independent adds are bounded by issue width, not latency *)
  let n = 120 in
  let _, _, r =
    run_small
      (fun a ->
        for i = 1 to n do
          Asm.addi a ~rd:(1 + (i mod 20)) ~rs1:0 i
        done;
        Asm.halt a)
      Config.default
  in
  Alcotest.(check bool)
    (Printf.sprintf "parallel ops fast (%d cycles)" r.cycles)
    true
    (r.cycles < (n / 4) + 40)

let test_wakeup_latency_slows_chains () =
  let build a =
    for _ = 1 to 200 do
      Asm.addi a ~rd:1 ~rs1:1 1
    done;
    Asm.halt a
  in
  let _, _, r1 = run_small build Config.default in
  let _, _, r2 = run_small build { Config.default with wakeup_latency = 2 } in
  Alcotest.(check bool)
    (Printf.sprintf "wakeup=2 slower on chains (%d vs %d)" r2.cycles r1.cycles)
    true
    (r2.cycles > r1.cycles + 150)

let test_divider_not_pipelined () =
  let build a =
    (* independent divides: should serialize on the 2 dividers *)
    for i = 1 to 16 do
      Asm.li a ~rd:(1 + (i mod 8)) (100 + i);
      Asm.div a ~rd:(9 + (i mod 8)) ~rs1:(1 + (i mod 8)) ~rs2:(1 + (i mod 8))
    done;
    Asm.halt a
  in
  let _, _, r = run_small build Config.default in
  (* 16 divides at 12 cycles on 2 non-pipelined units >= 96 cycles *)
  Alcotest.(check bool)
    (Printf.sprintf "divides serialized (%d cycles)" r.cycles)
    true (r.cycles >= 96)

let test_idealizations_never_slow () =
  let trace, evts = prepare ~max_instrs:3000 "twolf" in
  let base = Ooo.cycles Config.default trace evts in
  List.iter
    (fun c ->
      let ideal = Multisim.ideal_of_set (Category.Set.singleton c) in
      let cyc = Ooo.cycles { Config.default with ideal } trace evts in
      if cyc > base then
        Alcotest.failf "idealizing %s slowed execution (%d > %d)" (Category.name c)
          cyc base)
    Category.all

let test_full_idealization_near_floor () =
  let trace, evts = prepare ~max_instrs:3000 "gcc" in
  let ideal = Multisim.ideal_of_set Category.Set.full in
  let cyc = Ooo.cycles { Config.default with ideal } trace evts in
  (* with everything idealized, only pipeline depth and the huge-BW floor
     remain: a handful of cycles, far below 1 per instruction *)
  Alcotest.(check bool)
    (Printf.sprintf "idealized floor small (%d cycles for 3000 instrs)" cyc)
    true
    (cyc < 500)

let test_mispredict_redirect () =
  (* one guaranteed mispredict: a first-seen taken branch *)
  let cfg = Config.default in
  let _, evts, r =
    run_small
      (fun a ->
        for i = 1 to 10 do
          Asm.addi a ~rd:(i mod 8) ~rs1:0 i
        done;
        Asm.li a ~rd:9 1;
        Asm.bne a ~rs1:9 ~rs2:0 "far";
        Asm.halt a;
        Asm.label a "far";
        Asm.addi a ~rd:10 ~rs1:0 1;
        Asm.halt a)
      cfg
  in
  let branch_i = 11 in
  Alcotest.(check bool) "branch mispredicted" true evts.(branch_i).mispredict;
  let after = r.slots.(branch_i + 1) in
  let branch = r.slots.(branch_i) in
  Alcotest.(check bool) "redirect delay applied" true
    (after.dispatch >= branch.complete + cfg.branch_recovery)

let test_multisim_oracle_baseline () =
  let trace, evts = prepare ~max_instrs:2000 "crafty" in
  let oracle = Multisim.oracle Config.default trace evts in
  let base = Icost_core.Cost.query oracle Category.Set.empty in
  Alcotest.(check bool) "baseline equals direct run" true
    (int_of_float base = Ooo.cycles Config.default trace evts)

let prop_stage_monotone_all_benches =
  QCheck.Test.make ~name:"stage invariants hold on random workload prefixes" ~count:8
    QCheck.(pair (make (Gen.oneofl Icost_workloads.Workload.names)) (int_range 500 3000))
    (fun (name, n) ->
      let trace, evts = prepare ~max_instrs:n name in
      let r = Ooo.run Config.default trace evts in
      Array.for_all
        (fun (s : Ooo.slot) ->
          s.fetch <= s.dispatch && s.dispatch < s.ready && s.ready <= s.exec_start
          && s.exec_start <= s.complete && s.complete < s.commit)
        r.slots)

let suite =
  ( "sim",
    [
      Alcotest.test_case "stage invariants" `Quick test_stage_invariants;
      Alcotest.test_case "window constraint" `Quick test_window_constraint;
      Alcotest.test_case "commit bandwidth" `Quick test_commit_bandwidth;
      Alcotest.test_case "data dependences ordered" `Quick test_data_dependence_ordering;
      Alcotest.test_case "serial chain latency" `Quick test_dependent_chain_latency;
      Alcotest.test_case "independent ops overlap" `Quick test_independent_ops_parallel;
      Alcotest.test_case "wakeup latency" `Quick test_wakeup_latency_slows_chains;
      Alcotest.test_case "divider not pipelined" `Quick test_divider_not_pipelined;
      Alcotest.test_case "idealization monotone" `Quick test_idealizations_never_slow;
      Alcotest.test_case "full idealization floor" `Quick test_full_idealization_near_floor;
      Alcotest.test_case "mispredict redirect" `Quick test_mispredict_redirect;
      Alcotest.test_case "multisim baseline" `Quick test_multisim_oracle_baseline;
      QCheck_alcotest.to_alcotest prop_stage_monotone_all_benches;
    ] )
