(* Tests for the streaming analysis core: front-end stepper equivalence,
   bounded-state simulator bit-identity, segmented-vs-monolithic exactness
   across segment seams, job-count determinism, bounded memory, and the
   stream_segment fault seam. *)

module Isa = Icost_isa.Isa
module Interp = Icost_isa.Interp
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Graph = Icost_depgraph.Graph
module Build = Icost_depgraph.Build
module Category = Icost_core.Category
module Workload = Icost_workloads.Workload
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault
module Source = Icost_stream.Source
module Score = Icost_stream.Core

let prepare ?(warmup = 2000) ?(measure = 4000) ?(cfg = Config.default) name =
  let w = Workload.find_exn name in
  let trace =
    Interp.run
      ~config:{ Interp.default_config with max_instrs = warmup + measure }
      (w.build ())
  in
  let evts, _ = Events.annotate cfg trace in
  let len = min measure (Trace.length trace - warmup) in
  let strace = Trace.slice trace ~start:warmup ~len in
  let sevts = Events.slice evts ~start:warmup ~len in
  (strace, sevts)

let all_sets = Array.init (1 lsl Category.count) (fun s -> s)

let monolithic_times cfg (trace : Trace.t) evts =
  let r = Ooo.run cfg trace evts in
  let g = Build.of_sim cfg trace evts r in
  (Graph.eval_subsets g all_sets, r.Ooo.cycles)

(* the source every law/test feeds: the already-sliced window *)
let window_source (trace : Trace.t) evts = Source.of_arrays trace.Trace.instrs evts

(* ---- front end: of_program matches interpret-then-slice ---- *)

let test_source_of_program () =
  List.iter
    (fun name ->
      let warmup = 1500 and measure = 2500 in
      let cfg = Config.default in
      let strace, sevts = prepare ~warmup ~measure ~cfg name in
      let src =
        Source.of_program cfg
          ((Workload.find_exn name).Workload.build ())
          ~warmup ~max_insns:measure
      in
      Array.iteri
        (fun i d ->
          match src () with
          | None -> Alcotest.failf "%s: source ended early at %d" name i
          | Some (d', e') ->
            if d' <> d then Alcotest.failf "%s: dyn %d differs" name i;
            if e' <> sevts.(i) then Alcotest.failf "%s: evt %d differs" name i)
        strace.Trace.instrs;
      (match src () with
       | Some _ -> Alcotest.failf "%s: source yielded past the window" name
       | None -> ()))
    [ "gcc"; "mcf" ]

(* ---- bounded-state simulator: bit-identical slots vs Ooo.run ---- *)

let test_stream_sim_bit_identity () =
  List.iter
    (fun (name, cfg) ->
      let strace, sevts = prepare ~cfg name in
      let r = Ooo.run cfg strace sevts in
      let sim = Ooo.Stream.create cfg in
      Array.iteri
        (fun i d ->
          let s = Ooo.Stream.step sim d sevts.(i) in
          if s <> r.Ooo.slots.(i) then
            Alcotest.failf "%s: slot %d differs (stream vs monolithic)" name i)
        strace.Trace.instrs;
      Alcotest.(check int)
        (name ^ " cycles") r.Ooo.cycles
        (Ooo.Stream.cycles sim))
    [
      ("gcc", Config.default);
      ("vortex", Config.default);
      ("mcf", Config.loop_dl1);
      ("crafty", Config.loop_bmisp);
      ("twolf", Config.loop_wakeup);
    ]

(* ---- segmented aggregate = monolithic 256-subset table, exactly ---- *)

let check_times name (expected : int array) (r : Score.result) =
  Array.iteri
    (fun s t ->
      if r.Score.times.(s) <> t then
        Alcotest.failf "%s: subset %s: stream %d vs monolithic %d" name
          (Category.Set.name s) r.Score.times.(s) t)
    expected

let test_stream_matches_monolithic () =
  List.iter
    (fun (name, cfg, seg) ->
      let strace, sevts = prepare ~cfg name in
      let expected, sim_cycles = monolithic_times cfg strace sevts in
      let r = Score.analyze ~segment_insns:seg cfg (window_source strace sevts) in
      check_times name expected r;
      Alcotest.(check int) (name ^ " instrs") (Trace.length strace) r.Score.instrs;
      Alcotest.(check int) (name ^ " sim cycles") sim_cycles r.Score.sim_cycles)
    [
      (* segment far below the window size stresses every seam kind *)
      ("gcc", Config.default, 32);
      ("gcc", Config.default, 511);
      ("mcf", Config.loop_dl1, 256);
      ("crafty", Config.loop_bmisp, 777);
      ("twolf", Config.loop_wakeup, 1024);
      ("vortex", Config.default, 100_000) (* single segment *);
    ]

let test_segment_invariance () =
  let strace, sevts = prepare "parser" in
  let run seg = Score.analyze ~segment_insns:seg Config.default (window_source strace sevts) in
  let r0 = run 4096 in
  List.iter
    (fun seg ->
      let r = run seg in
      if r.Score.times <> r0.Score.times then
        Alcotest.failf "segment_insns %d changed the aggregate" seg)
    [ 64; 2048; 8192 ]

let test_jobs_determinism () =
  let strace, sevts = prepare "eon" in
  let saved = Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs saved)
    (fun () ->
      Pool.set_jobs 1;
      let r1 = Score.analyze ~segment_insns:512 Config.default (window_source strace sevts) in
      Pool.set_jobs 4;
      let r4 = Score.analyze ~segment_insns:512 Config.default (window_source strace sevts) in
      if r1.Score.times <> r4.Score.times then
        Alcotest.fail "ICOST_JOBS 1 vs 4 changed the streamed aggregate")

(* ---- boundary bookkeeping: totals conserved across seams ---- *)

let test_seam_bookkeeping () =
  let strace, sevts = prepare "gap" in
  let n = Trace.length strace in
  let r = Score.analyze ~segment_insns:97 Config.default (window_source strace sevts) in
  (* every instruction lands in exactly one segment, segments are contiguous
     and monotone — no dropped or double-counted work at seams *)
  Alcotest.(check int) "covered" n r.Score.instrs;
  let expect_segments = (n + 96) / 97 in
  Alcotest.(check int) "segments" expect_segments r.Score.segments;
  ignore
    (List.fold_left
       (fun (next_id, next_start) (st : Score.seg_stat) ->
         Alcotest.(check int) "seg id" next_id st.Score.seg_id;
         Alcotest.(check int) "seg start" next_start st.Score.seg_start;
         if st.Score.seg_len <= 0 || st.Score.seg_len > 97 then
           Alcotest.failf "segment %d has bad length %d" st.Score.seg_id st.Score.seg_len;
         (next_id + 1, next_start + st.Score.seg_len))
       (0, 0) r.Score.seg_stats);
  (* the cycle frontier is monotone across segments *)
  ignore
    (List.fold_left
       (fun prev (st : Score.seg_stat) ->
         if st.Score.cum_cycles < prev then
           Alcotest.failf "cycle frontier shrank at segment %d" st.Score.seg_id;
         st.Score.cum_cycles)
       0 r.Score.seg_stats);
  (* and ends at the streaming simulator's own final cycle count *)
  (match List.rev r.Score.seg_stats with
   | last :: _ ->
     Alcotest.(check int) "frontier" r.Score.sim_cycles last.Score.cum_cycles
   | [] -> Alcotest.fail "no segments")

(* ---- bounded memory: peak live words do not grow with trace length ---- *)

let test_bounded_memory () =
  let w = Workload.find_exn "gcc" in
  let run n =
    Gc.compact ();
    let src = Source.of_program Config.default (w.Workload.build ()) ~warmup:500 ~max_insns:n in
    let r = Score.analyze ~segment_insns:2048 Config.default src in
    Alcotest.(check int) "instrs" n r.Score.instrs;
    r.Score.peak_heap_words
  in
  (* warm the major heap to its steady state so the measured peaks
     reflect the analysis, not GC growth heuristics *)
  ignore (run 30_000);
  (* three sizes, each doubling: live data is O(segment + window), so
     peak heap must grow sublinearly — a doubling input may move the
     heap-size high-water mark by GC pacing noise, but nowhere near 2x
     (and 4x the input must stay well under 2.5x the heap) *)
  let p1 = run 60_000 in
  let p2 = run 120_000 in
  let p3 = run 240_000 in
  let ratio a b = float_of_int a /. float_of_int b in
  if ratio p2 p1 > 1.5 || ratio p3 p2 > 1.5 || ratio p3 p1 > 2.5 then
    Alcotest.failf "peak heap grows with trace length: %d -> %d -> %d words" p1 p2 p3

(* ---- fault seam: poisoned segment -> typed error, aggregate intact ---- *)

let test_fault_seam () =
  let strace, sevts = prepare "bzip2" in
  let clean =
    Score.analyze ~segment_insns:512 Config.default (window_source strace sevts)
  in
  Fault.configure_exn "stream_segment:@3";
  let seg =
    Fun.protect
      ~finally:(fun () -> Fault.disable ())
      (fun () ->
        match
          Score.analyze ~segment_insns:512 Config.default (window_source strace sevts)
        with
        | _ -> Alcotest.fail "poisoned stream did not raise"
        | exception Score.Segment_fault seg -> seg)
  in
  Alcotest.(check int) "faulted segment" 2 seg;
  (* the poisoned run published nothing; a clean rerun is unperturbed *)
  let again =
    Score.analyze ~segment_insns:512 Config.default (window_source strace sevts)
  in
  if again.Score.times <> clean.Score.times then
    Alcotest.fail "aggregate corrupted by an aborted streaming run"

let test_empty_stream () =
  let r = Score.analyze Config.default (Source.of_arrays [||] [||]) in
  Alcotest.(check int) "instrs" 0 r.Score.instrs;
  Alcotest.(check int) "cycles" 0 r.Score.cycles;
  Alcotest.(check int) "segments" 0 r.Score.segments

(* ---- end to end: the program source equals the sliced-array source ---- *)

let test_program_source_equals_window () =
  let name = "vpr" in
  let warmup = 1200 and measure = 3000 in
  let strace, sevts = prepare ~warmup ~measure name in
  let via_arrays =
    Score.analyze ~segment_insns:700 Config.default (window_source strace sevts)
  in
  let via_program =
    Score.analyze ~segment_insns:700 Config.default
      (Source.of_program Config.default
         ((Workload.find_exn name).Workload.build ()) ~warmup ~max_insns:measure)
  in
  if via_arrays.Score.times <> via_program.Score.times then
    Alcotest.fail "of_program and of_arrays sources disagree"

(* ---- seeded: seams that split in-flight miss windows ----

   An alias-heavy generated workload keeps cache-line sharing and store
   forwarding in flight almost continuously, so a segment size well below
   the ROB window guarantees seams cut through open miss windows.  Both
   the streaming aggregate and the shotgun profiler's stitched result
   must be invariant to that: the stream stays bit-identical to the
   monolithic table, and [Profile.profile] keeps its canonical
   [aborted_by] order and fragment order regardless of job count. *)

module Gen = Icost_check.Gen
module Profile = Icost_profiler.Profile
module Cost = Icost_core.Cost

let test_seeded_miss_window_seams () =
  let cfg = Config.default in
  let program = Gen.generate ~profile:Gen.Alias_heavy 31415 in
  let trace =
    Interp.run ~config:{ Interp.default_config with max_instrs = 6000 } program
  in
  let evts, _ = Events.annotate cfg trace in
  let seg = 48 (* below the 64-entry window: seams always split it *) in
  (* sanity: some line-sharing source really does sit across a seam *)
  let crossing = ref 0 in
  Array.iteri
    (fun i (e : Events.evt) ->
      match e.Events.share_src with
      | Some j when j / seg < i / seg -> incr crossing
      | _ -> ())
    evts;
  Alcotest.(check bool) "seams split live miss windows" true (!crossing > 0);
  let expected, sim_cycles = monolithic_times cfg trace evts in
  let r =
    Score.analyze ~segment_insns:seg cfg
      (Source.of_arrays trace.Trace.instrs evts)
  in
  check_times "alias-heavy seed" expected r;
  Alcotest.(check int) "sim cycles" sim_cycles r.Score.sim_cycles;
  (* the profiler on the same seeded run: stitched stats and oracle are
     job-count invariant *)
  let result = Ooo.run cfg trace evts in
  let saved = Pool.jobs () in
  let p1, p4 =
    Fun.protect
      ~finally:(fun () -> Pool.set_jobs saved)
      (fun () ->
        Pool.set_jobs 1;
        let p1 = Profile.profile cfg program trace evts result in
        Pool.set_jobs 4;
        (p1, Profile.profile cfg program trace evts result))
  in
  Alcotest.(check bool) "stats (incl. canonical aborted_by) identical" true
    (p1.Profile.stats = p4.Profile.stats);
  let o1 = Profile.oracle p1 and o4 = Profile.oracle p4 in
  Array.iter
    (fun s ->
      let v1 = Cost.query o1 s and v4 = Cost.query o4 s in
      if v1 <> v4 then
        Alcotest.failf "profiler oracle differs on %s: %g vs %g"
          (Category.Set.name s) v1 v4)
    all_sets

let suite =
  ( "stream",
    [
      Alcotest.test_case "source of_program = slice" `Quick test_source_of_program;
      Alcotest.test_case "stream sim bit-identity" `Quick test_stream_sim_bit_identity;
      Alcotest.test_case "stream = monolithic (256 subsets)" `Quick
        test_stream_matches_monolithic;
      Alcotest.test_case "segment-size invariance" `Quick test_segment_invariance;
      Alcotest.test_case "jobs 1 vs 4 determinism" `Quick test_jobs_determinism;
      Alcotest.test_case "seam bookkeeping" `Quick test_seam_bookkeeping;
      Alcotest.test_case "bounded memory" `Slow test_bounded_memory;
      Alcotest.test_case "fault seam" `Quick test_fault_seam;
      Alcotest.test_case "empty stream" `Quick test_empty_stream;
      Alcotest.test_case "program source = window source" `Quick
        test_program_source_equals_window;
      Alcotest.test_case "seeded miss-window seams" `Quick
        test_seeded_miss_window_seams;
    ] )
