(* Integration tests across the whole stack: the three cost oracles agree
   on the big picture, experiments produce well-formed results, and the
   paper's headline interactions reproduce on a reduced scale. *)

module Runner = Icost_experiments.Runner
module E4 = Icost_experiments.Exp_table4
module E3 = Icost_experiments.Exp_fig3
module E7 = Icost_experiments.Exp_table7
module E1 = Icost_experiments.Exp_fig1
module Drive = Icost_experiments.Drive
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Config = Icost_uarch.Config

(* reduced scale so the suite stays fast *)
let settings benches = { Runner.warmup = 60_000; measure = 8_000; benches }

let prepared_cache : (string, Runner.prepared) Hashtbl.t = Hashtbl.create 8

let prepared name =
  match Hashtbl.find_opt prepared_cache name with
  | Some p -> p
  | None ->
    let p =
      Runner.prepare (settings [ name ]) (Icost_workloads.Workload.find_exn name)
    in
    Hashtbl.add prepared_cache name p;
    p

let test_oracles_agree_on_baseline () =
  let p = prepared "gcc" in
  let cfg = Config.loop_dl1 in
  let g = Cost.query (Runner.graph_oracle cfg p) Category.Set.empty in
  let m = Cost.query (Runner.multisim_oracle cfg p) Category.Set.empty in
  let err = Float.abs (g -. m) /. m in
  Alcotest.(check bool)
    (Printf.sprintf "graph vs multisim baseline err %.2f%%" (100. *. err))
    true (err < 0.05)

let test_graph_vs_multisim_costs () =
  let p = prepared "twolf" in
  let cfg = Config.loop_dl1 in
  let go = Runner.graph_oracle cfg p in
  let mo = Runner.multisim_oracle cfg p in
  let base = Cost.query mo Category.Set.empty in
  List.iter
    (fun c ->
      let s = Category.Set.singleton c in
      let cg = 100. *. Cost.cost go s /. base in
      let cm = 100. *. Cost.cost mo s /. base in
      (* graph analysis should track simulation within a few points on the
         major categories *)
      if Float.abs cm > 8. && Float.abs (cg -. cm) > 10. then
        Alcotest.failf "%s: graph %.1f%% vs multisim %.1f%%" (Category.name c) cg cm)
    Category.all

let test_serial_dl1_win_on_vortex () =
  let p = prepared "vortex" in
  let oracle = Runner.graph_oracle Config.loop_dl1 p in
  let ic = Cost.icost_pair oracle Category.Dl1 Category.Win in
  Alcotest.(check bool)
    (Printf.sprintf "vortex dl1+win serial (%.0f)" ic)
    true (ic < 0.)

let test_parallel_bmisp_win_on_bzip2 () =
  let p = prepared "bzip2" in
  let oracle = Runner.graph_oracle Config.loop_bmisp p in
  let ic = Cost.icost_pair oracle Category.Bmisp Category.Win in
  Alcotest.(check bool)
    (Printf.sprintf "bzip2 bmisp+win parallel (%.0f)" ic)
    true (ic > 0.)

let test_serial_bmisp_dmiss_on_mcf () =
  let p = prepared "mcf" in
  let oracle = Runner.graph_oracle Config.loop_bmisp p in
  let ic = Cost.icost_pair oracle Category.Bmisp Category.Dmiss in
  Alcotest.(check bool)
    (Printf.sprintf "mcf bmisp+dmiss serial (%.0f)" ic)
    true (ic < 0.)

let test_table4_totals () =
  let ps = [ prepared "gap"; prepared "gzip" ] in
  List.iter
    (fun v ->
      let r = E4.compute v ps in
      List.iter
        (fun (bench, bd) ->
          Alcotest.(check (float 0.01))
            (Printf.sprintf "%s/%s sums to 100" v.E4.label bench)
            100. (Breakdown.total bd))
        r.breakdowns)
    [ E4.table4a; E4.table4b; E4.table4c ]

let test_fig3_window_monotone () =
  let p = prepared "gap" in
  let r = E3.compute ~windows:[ 32; 64; 128 ] ~dl1_lats:[ 1; 4 ] [ p ] in
  let s = List.hd r.sweeps in
  (* cycles should not increase with a larger window *)
  List.iter
    (fun lat ->
      let c32 = E3.cycles_at s ~window:32 ~dl1_lat:lat in
      let c64 = E3.cycles_at s ~window:64 ~dl1_lat:lat in
      let c128 = E3.cycles_at s ~window:128 ~dl1_lat:lat in
      Alcotest.(check bool)
        (Printf.sprintf "monotone at dl1=%d (%d/%d/%d)" lat c32 c64 c128)
        true
        (c64 <= c32 && c128 <= c64))
    [ 1; 4 ]

let test_fig3_corollary_on_gap () =
  let p = prepared "gap" in
  let r = E3.compute ~windows:[ 64; 128 ] ~dl1_lats:[ 1; 4 ] [ p ] in
  let s = List.hd r.sweeps in
  let sp1 = E3.window_speedup s ~w0:64 ~w1:128 ~dl1_lat:1 in
  let sp4 = E3.window_speedup s ~w0:64 ~w1:128 ~dl1_lat:4 in
  Alcotest.(check bool)
    (Printf.sprintf "window helps more at dl1=4 (%.1f%% vs %.1f%%)" sp4 sp1)
    true (sp4 > sp1)

let test_wakeup_corollary_on_gap () =
  let p = prepared "gap" in
  match E3.wakeup_corollary [ p ] with
  | [ { E3.sp_wakeup1; sp_wakeup2; _ } ] ->
    Alcotest.(check bool)
      (Printf.sprintf "window helps more at wakeup=2 (%.1f%% vs %.1f%%)" sp_wakeup2
         sp_wakeup1)
      true
      (sp_wakeup2 > sp_wakeup1)
  | _ -> Alcotest.fail "expected one row"

let test_fig1_accounts () =
  let p = prepared "gcc" in
  let r = E1.compute p in
  let total =
    List.fold_left (fun a (_, v) -> a +. v) r.other (r.base_pcts @ r.interaction_pcts)
  in
  Alcotest.(check (float 0.01)) "accounts for 100%" 100. total

let test_table7_errors_bounded () =
  let ps = [ prepared "gcc" ] in
  let r = E7.compute ps in
  List.iter
    (fun (bench, e) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s profiler-vs-graph error %.0f%% bounded" bench e)
        true (e < 40.))
    r.err_vs_graph

let test_conclusion_study () =
  let module EP = Icost_experiments.Exp_prefetch in
  let rows =
    EP.conclusion_compute
      ~settings:{ Runner.warmup = 60_000; measure = 6_000; benches = [] }
      ~benches:[ "mcf" ] ()
  in
  match rows with
  | [ r ] ->
    Alcotest.(check bool)
      (Printf.sprintf "mcf's hottest load is bmisp-serial (%.1f)" r.bmisp_icost_pct)
      true (r.bmisp_icost_pct < 0.);
    Alcotest.(check bool)
      (Printf.sprintf "prefetching it cuts bmisp cycles (%.0f -> %.0f)"
         r.bmisp_cost_before r.bmisp_cost_after)
      true
      (r.bmisp_cost_after < r.bmisp_cost_before)
  | _ -> Alcotest.fail "expected one conclusion row for mcf"

let test_graph_floor_carries_startup_imiss () =
  (* a fresh (unwarmed) run: the first instruction's cold I-cache miss must
     appear in the graph via the node floor *)
  let w = Icost_workloads.Workload.find_exn "crafty" in
  let trace =
    Icost_isa.Interp.run
      ~config:{ Icost_isa.Interp.default_config with max_instrs = 200 }
      (w.build ())
  in
  let cfg = Config.default in
  let evts, _ = Icost_uarch.Events.annotate cfg trace in
  let r = Icost_sim.Ooo.run cfg trace evts in
  let g = Icost_depgraph.Build.of_sim cfg trace evts r in
  Alcotest.(check bool) "first instruction missed" true evts.(0).il1_miss;
  let time = Icost_depgraph.Graph.eval g in
  Alcotest.(check bool) "D0 floored by the cold miss" true
    (time.(Icost_depgraph.Graph.node ~seq:0 ~kind:Icost_depgraph.Graph.D) > 100);
  (* and the floor is owned by Imiss: idealizing it releases D0 *)
  let time_i =
    Icost_depgraph.Graph.eval
      ~ideal:(Category.Set.singleton Category.Imiss) g
  in
  Alcotest.(check int) "floor removed under imiss idealization" 0
    time_i.(Icost_depgraph.Graph.node ~seq:0 ~kind:Icost_depgraph.Graph.D)

let test_drive_reports () =
  let r = Drive.table4a [ prepared "gap" ] in
  Alcotest.(check string) "id" "table4a" r.id;
  Alcotest.(check bool) "body nonempty" true (String.length r.body > 100)

let suite =
  ( "integration",
    [
      Alcotest.test_case "oracle baselines agree" `Quick test_oracles_agree_on_baseline;
      Alcotest.test_case "graph vs multisim costs" `Quick test_graph_vs_multisim_costs;
      Alcotest.test_case "vortex dl1+win serial" `Quick test_serial_dl1_win_on_vortex;
      Alcotest.test_case "bzip2 bmisp+win parallel" `Quick test_parallel_bmisp_win_on_bzip2;
      Alcotest.test_case "mcf bmisp+dmiss serial" `Quick test_serial_bmisp_dmiss_on_mcf;
      Alcotest.test_case "table 4 totals" `Quick test_table4_totals;
      Alcotest.test_case "fig3 window monotone" `Quick test_fig3_window_monotone;
      Alcotest.test_case "fig3 corollary (gap)" `Quick test_fig3_corollary_on_gap;
      Alcotest.test_case "wakeup corollary (gap)" `Quick test_wakeup_corollary_on_gap;
      Alcotest.test_case "fig1 accounts 100%" `Quick test_fig1_accounts;
      Alcotest.test_case "table7 errors bounded" `Quick test_table7_errors_bounded;
      Alcotest.test_case "drive reports" `Quick test_drive_reports;
      Alcotest.test_case "conclusion study (mcf)" `Quick test_conclusion_study;
      Alcotest.test_case "graph startup floor" `Quick test_graph_floor_carries_startup_imiss;
    ] )
