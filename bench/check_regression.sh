#!/bin/sh
# Engine performance gate: re-measure the micro-benchmarks and fail (exit 1)
# if any engine regressed more than 25% against the committed baseline in
# BENCH_engines.json.  On failure the harness prints a per-engine delta
# table of the offending benchmarks before exiting nonzero.
#
# Timing is pinned to one domain by default (ICOST_JOBS=1) so the gate
# measures engine speed, not scheduler luck on a shared runner; export
# ICOST_JOBS yourself to override.  Set BENCH_JSON to also dump the fresh
# measurements (e.g. for a CI artifact upload).
#
# Refresh the baseline after an intentional change with:
#   dune exec bench/main.exe -- micro --json BENCH_engines.json
set -e
cd "$(dirname "$0")/.."
ICOST_JOBS="${ICOST_JOBS:-1}"
export ICOST_JOBS
if [ -n "${BENCH_JSON:-}" ]; then
  exec dune exec bench/main.exe -- micro --baseline BENCH_engines.json --json "$BENCH_JSON"
else
  exec dune exec bench/main.exe -- micro --baseline BENCH_engines.json
fi
