#!/bin/sh
# Engine performance gate: re-measure the micro-benchmarks and fail (exit 1)
# if any engine regressed more than 25% against the committed baseline in
# BENCH_engines.json.  Refresh the baseline after an intentional change with:
#   dune exec bench/main.exe -- micro --json BENCH_engines.json
set -e
cd "$(dirname "$0")/.."
exec dune exec bench/main.exe -- micro --baseline BENCH_engines.json
