#!/bin/sh
# Engine performance gate: re-measure the micro-benchmarks, the service
# benchmarks (daemon warm queries + snapshot cold starts) and the closed-loop
# load benchmark (1-shard sequential vs 2-shard pipelined batches, then the
# kill -9 chaos soak — its soak/ rows are informational here, gated
# absolutely inside the load run itself) and fail
# (exit 1) if any row regressed more than 25% against its committed baseline —
# BENCH_engines.json for micro, BENCH_service.json for service,
# BENCH_load.json for load, BENCH_sweep.json for the sensitivity sweep,
# BENCH_stream.json for the bounded-memory streaming analysis —
# or if a baseline row was not measured at all.
# The gate is direction-aware: "-qps" rows regress by dropping, latency rows
# by rising.  On failure the harness prints a per-row delta table of the
# offending benchmarks before exiting nonzero.
#
# Timing is pinned to one domain by default (ICOST_JOBS=1) so the gate
# measures engine speed, not scheduler luck on a shared runner; export
# ICOST_JOBS yourself to override.  (The sweep phase manages its own job
# counts — it times 1 pool job against 4 inside one process.)  Set
# BENCH_JSON / BENCH_SERVICE_JSON / BENCH_LOAD_JSON / BENCH_SWEEP_JSON to
# also dump the fresh measurements (e.g. for a CI artifact upload).  The
# load phase additionally enforces its own absolute gate (2-shard batched
# >= 2x 1-shard qps at equal-or-better p99 with bit-identical replies),
# and the sweep phase enforces parallel grid evaluation >= 2x sequential
# on machines with at least 4 cores; export ICOST_LOAD_GATE=0 /
# ICOST_SWEEP_GATE=0 to keep only the relative-to-baseline checks on
# noisy runners.
#
# The stream phase's row values are normalized per million instructions,
# so ICOST_STREAM_INSNS (default 10M) can scale the run down on slow
# runners while still comparing against the committed baseline; its
# absolute gates (bit-identity, bounded peak heap) are skipped with
# ICOST_STREAM_GATE=0.
#
# Refresh the baselines after an intentional change with:
#   dune exec bench/main.exe -- micro --json BENCH_engines.json
#   dune exec bench/main.exe -- service --json BENCH_service.json
#   dune exec bench/main.exe -- load --json BENCH_load.json
#   dune exec bench/main.exe -- sweep --json BENCH_sweep.json
#   dune exec bench/main.exe -- stream --json BENCH_stream.json
set -e
cd "$(dirname "$0")/.."
ICOST_JOBS="${ICOST_JOBS:-1}"
export ICOST_JOBS
if [ -n "${BENCH_JSON:-}" ]; then
  dune exec bench/main.exe -- micro --baseline BENCH_engines.json --json "$BENCH_JSON"
else
  dune exec bench/main.exe -- micro --baseline BENCH_engines.json
fi
if [ -n "${BENCH_SERVICE_JSON:-}" ]; then
  dune exec bench/main.exe -- service --baseline BENCH_service.json --json "$BENCH_SERVICE_JSON"
else
  dune exec bench/main.exe -- service --baseline BENCH_service.json
fi
if [ -n "${BENCH_LOAD_JSON:-}" ]; then
  dune exec bench/main.exe -- load --baseline BENCH_load.json --json "$BENCH_LOAD_JSON"
else
  dune exec bench/main.exe -- load --baseline BENCH_load.json
fi
if [ -n "${BENCH_SWEEP_JSON:-}" ]; then
  dune exec bench/main.exe -- sweep --baseline BENCH_sweep.json --json "$BENCH_SWEEP_JSON"
else
  dune exec bench/main.exe -- sweep --baseline BENCH_sweep.json
fi
if [ -n "${BENCH_STREAM_JSON:-}" ]; then
  dune exec bench/main.exe -- stream --baseline BENCH_stream.json --json "$BENCH_STREAM_JSON"
else
  dune exec bench/main.exe -- stream --baseline BENCH_stream.json
fi
