(* Bench harness.

   Running with no arguments regenerates every table and figure of the
   paper (Figure 1, Tables 4a/4b/4c, Figure 3 + the Section 4.3 sensitivity
   comparison, Table 7, the Section 5 profiler statistics and the sampling
   ablation), printing PASS/FAIL shape checks against the paper's
   qualitative findings, and then runs Bechamel micro-benchmarks of the
   analysis engines.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- <id> ...     -- selected experiments
                                                 (fig1 table4a table4b table4c
                                                  fig3 table7 profstats ablation)
     dune exec bench/main.exe -- micro        -- only the micro-benchmarks
     dune exec bench/main.exe -- service      -- daemon warm-query vs cold
                                                 one-shot, per engine
                                                 (BENCH_service.json is the
                                                 committed record)
     dune exec bench/main.exe -- check        -- time one full conformance
                                                 law-table sweep per case
                                                 class (kernel + generated)
     dune exec bench/main.exe -- load         -- closed-loop load: 2-shard
                                                 pipelined batches vs 1-shard
                                                 one-at-a-time, then a chaos
                                                 soak (kill -9 a random shard
                                                 every ~250 ms under load;
                                                 zero client-visible failures,
                                                 bit-identical replies,
                                                 bounded worst-case latency)
                                                 (BENCH_load.json is the
                                                 committed record; knobs via
                                                 ICOST_LOAD_* / ICOST_SOAK_*
                                                 env vars; cannot combine with
                                                 other modes — it forks
                                                 daemons)
     dune exec bench/main.exe -- sweep        -- parametric sensitivity grid,
                                                 sequential vs 4 pool jobs
                                                 (BENCH_sweep.json is the
                                                 committed record; >= 2x
                                                 speedup gate when >= 4 cores,
                                                 ICOST_SWEEP_GATE=0 to skip;
                                                 cannot combine with other
                                                 modes — it re-pins the pool)
     dune exec bench/main.exe -- stream       -- bounded-memory streaming
                                                 analysis of a 10M-instruction
                                                 run plus a 10x-smaller one
                                                 (BENCH_stream.json is the
                                                 committed record; gates:
                                                 bit-identical to monolithic
                                                 on one window, big run's
                                                 peak heap <= 2x small run's;
                                                 ICOST_STREAM_INSNS scales it
                                                 down for CI smokes,
                                                 ICOST_STREAM_GATE=0 skips
                                                 the absolute gates)

   Micro-benchmark flags (see also bench/check_regression.sh):
     --json FILE        dump the measured times as JSON (BENCH_engines.json
                        is the committed perf-trajectory record)
     --baseline FILE    compare against a previously dumped JSON and exit
                        nonzero if any engine regresses by more than 25% *)

module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Workload = Icost_workloads.Workload
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Profile = Icost_profiler.Profile
module Pool = Icost_util.Pool

(* ------------------------------------------------------------------ *)
(* paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let settings = Runner.default_settings in
  let reports =
    match ids with
    | [] -> Drive.all_reports ~settings ()
    | ids ->
      let prepared = Runner.prepare_all settings in
      let t7 =
        List.filter
          (fun (p : Runner.prepared) ->
            List.mem p.name Icost_experiments.Exp_table7.default_benches)
          prepared
      in
      List.map
        (function
          | "fig1" -> Drive.fig1 prepared
          | "table4a" -> Drive.table4a prepared
          | "table4b" -> Drive.table4b prepared
          | "table4c" -> Drive.table4c prepared
          | "fig3" -> Drive.fig3 prepared
          | "table7" -> Drive.table7 t7
          | "profstats" -> Drive.profstats t7
          | "ablation" -> Drive.ablation t7
          | "prefetch" -> Drive.prefetch ~settings ()
          | "conclusion" -> Drive.conclusion ~settings ()
          | "advisor" -> Drive.advisor prepared
          | other -> failwith (Printf.sprintf "unknown experiment %S" other))
        ids
  in
  List.iter Drive.print_report reports;
  let checks = List.concat_map (fun (r : Drive.report) -> r.checks) reports in
  let failed = List.filter (fun (_, ok) -> not ok) checks in
  Printf.printf "shape checks: %d/%d passed\n"
    (List.length checks - List.length failed)
    (List.length checks);
  List.iter (fun (d, _) -> Printf.printf "  FAILED: %s\n" d) failed

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the analysis machinery                          *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  (* one mid-size prepared workload shared by all engine benchmarks *)
  let settings =
    { Runner.default_settings with benches = [ "gcc" ]; measure = 10_000 }
  in
  let p = List.hd (Runner.prepare_all settings) in
  let cfg = Config.loop_dl1 in
  let result = Runner.baseline_run cfg p in
  let graph = Build.of_sim cfg p.trace p.evts result in
  let dl1_win = Category.Set.pair Category.Dl1 Category.Win in
  let all_subsets = Array.of_list (Category.Set.subsets Category.Set.full) in
  (* empty + the eight singletons: the fan-out of one Table 4 column *)
  let singleton_sets =
    Array.of_list
      (Category.Set.empty :: List.map Category.Set.singleton Category.all)
  in
  let seq_batch sets =
    let oracle = Multisim.oracle cfg p.trace p.evts in
    Array.map (Cost.query oracle) sets
  in
  [
    ("engines/sim-10k-instrs", fun () -> ignore (Ooo.cycles cfg p.trace p.evts));
    ("engines/graph-build-10k", fun () -> ignore (Build.of_sim cfg p.trace p.evts result));
    ("engines/graph-eval-baseline", fun () -> ignore (Graph.critical_length graph));
    ( "engines/graph-eval-idealized",
      fun () -> ignore (Graph.critical_length ~ideal:dl1_win graph) );
    ( "engines/eval-subsets-256",
      fun () -> ignore (Graph.eval_subsets graph all_subsets) );
    ("engines/multisim-batch-seq", fun () -> ignore (seq_batch singleton_sets));
    ( "engines/multisim-batch-par",
      fun () -> ignore (Multisim.oracle_batch cfg p.trace p.evts singleton_sets) );
    ( "engines/icost-pair-graph-oracle",
      fun () ->
        let oracle = Build.oracle graph in
        ignore (Cost.icost_pair oracle Category.Dl1 Category.Win) );
    ( "engines/profiler-end-to-end",
      fun () -> ignore (Profile.profile cfg p.program p.trace p.evts result) );
  ]

(* Best-of-batches timing: per test, size one batch to ~[batch_target]
   wall-clock, run [batches] of them and keep the fastest per-call time.
   The minimum is what the code can do when the machine leaves it alone,
   which is the statistic a regression gate can compare across runs —
   means and OLS fits on a shared box swing far more than the 25%
   tolerance (observed: same binary, +67% on consecutive runs). *)
let time_min ?(batches = 7) ?(batch_target = 0.15) (f : unit -> unit) : float =
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let iters = max 1 (int_of_float (batch_target /. Float.max 1e-9 once)) in
  let best = ref infinity in
  for _ = 1 to batches do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let per_call = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    if per_call < !best then best := per_call
  done;
  !best *. 1e3

let run_micro () : (string * float) list =
  let rows = List.map (fun (name, f) -> (name, time_min f)) (micro_tests ()) in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "\nmicro-benchmarks (best time per call):\n";
  List.iter (fun (name, ms) -> Printf.printf "  %-36s %10.3f ms/run\n" name ms) rows;
  rows

(* ------------------------------------------------------------------ *)
(* Service mode: resident daemon vs one-shot CLI                       *)
(* ------------------------------------------------------------------ *)

module Server = Icost_service.Server
module Client = Icost_service.Client
module Protocol = Icost_service.Protocol
module Snapshot = Icost_service.Snapshot
module Breakdown = Icost_core.Breakdown

(* Time a warm [icost query breakdown] against an in-process daemon and
   the equivalent cold one-shot computation (prepare + baseline + oracle +
   breakdown, i.e. what [icost breakdown] does past process startup), per
   engine, and verify the served reply is bit-identical to the direct
   computation.  The committed record is BENCH_service.json. *)
let run_service () : (string * float) list =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-bench-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let srv =
    Thread.create
      (fun () ->
        ignore
          (Server.run
             { Server.default_opts with socket; workers = 2;
               handle_signals = false }))
      ()
  in
  let bench = "gcc" and warmup = 20_000 and measure = 5_000 in
  let target engine =
    {
      Protocol.workload = bench;
      variant = "base";
      engine;
      warmup;
      measure;
      seed = Icost_profiler.Sampler.default_opts.seed;
    }
  in
  let breakdown_req engine =
    { Protocol.req_id = 1; deadline_ms = None;
      op = Protocol.Breakdown { target = target engine; focus = "dl1" } }
  in
  let kind_of = function
    | "multisim" -> Runner.Multisim
    | "profiler" -> Runner.Profiler
    | _ -> Runner.Fullgraph
  in
  let settings = { Runner.warmup; measure; benches = [ bench ] } in
  let w =
    match Workload.find bench with
    | Some w -> w
    | None -> failwith "bench workload missing"
  in
  (* the full one-shot pipeline, rebuilt from scratch every call *)
  let direct engine () =
    let p = Runner.prepare settings w in
    let oracle = Runner.oracle_of_kind (kind_of engine) Config.default p in
    Breakdown.focus ~oracle ~focus_cat:Category.Dl1
  in
  (* the same one-shot, but established through a snapshot store
     (--cache-dir): after priming, every call warm-starts from disk *)
  let cached_of engine =
    let cache_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "icost-bench-cache-%d-%s" (Unix.getpid ()) engine)
    in
    let cfg = Config.default in
    let kind = kind_of engine in
    let key = Server.session_key (target engine) cfg kind in
    let establish () =
      Snapshot.establish ~cache_dir ~key ~kind ~cfg
        ~seed:Icost_profiler.Sampler.default_opts.seed
        ~prepare:(fun () -> Runner.prepare settings w)
        ~baseline:(fun p -> Runner.baseline_run cfg p)
        ()
    in
    let run () =
      let est = establish () in
      (est, Breakdown.focus ~oracle:est.Snapshot.est_oracle ~focus_cat:Category.Dl1)
    in
    (* prime: the first establishment builds and the persist saves the
       grown memo, so measured calls replay entirely from disk *)
    let est0, bd0 = run () in
    Snapshot.persist ~dir:cache_dir ~key est0;
    (bd0, fun () -> snd (run ()))
  in
  Printf.printf "\nservice mode: warm daemon query vs cold one-shot (%s, %d+%d):\n"
    bench warmup measure;
  let ok = ref true in
  let rows =
    Client.with_client ~retry_for:10.0 ~socket (fun c ->
        List.concat_map
          (fun engine ->
            (* prime the daemon's caches, keeping the reply for the
               bit-identity check *)
            let reply = Client.call c (breakdown_req engine) in
            (match reply.Protocol.body with
             | Ok _ -> ()
             | Error (_, msg) -> failwith ("service bench: " ^ msg));
            let body_of bd =
              Protocol.R_breakdown
                {
                  baseline = bd.Breakdown.baseline_cycles;
                  rows =
                    List.map
                      (fun (r : Breakdown.row) ->
                        { Protocol.row_label = Breakdown.row_label r;
                          row_percent = r.Breakdown.percent;
                          row_cycles = r.Breakdown.cycles })
                      bd.Breakdown.rows;
                }
            in
            let encode body =
              Protocol.encode_reply { Protocol.rep_id = 0; body = Ok body }
            in
            let bd = direct engine () in
            let expected = encode (body_of bd) in
            let identical =
              expected = Protocol.encode_reply { reply with Protocol.rep_id = 0 }
            in
            (* cold: min of single runs (each rebuilds everything) *)
            let cold_ms =
              time_min ~batches:3 ~batch_target:0.
                (fun () -> ignore (direct engine ()))
            in
            let warm_ms =
              time_min (fun () -> ignore (Client.call c (breakdown_req engine)))
            in
            (* cold with a primed snapshot store: each call still starts
               from nothing in memory, but replays prepare/build/memo
               from disk *)
            let bd_cached, cached = cached_of engine in
            let cached_identical = encode (body_of bd_cached) = expected in
            let cached_ms =
              time_min ~batches:3 ~batch_target:0. (fun () -> ignore (cached ()))
            in
            let speedup = cold_ms /. warm_ms in
            let cached_speedup = cold_ms /. cached_ms in
            let pass =
              speedup >= 10. && identical
              && cached_speedup >= 5. && cached_identical
            in
            if not pass then ok := false;
            Printf.printf
              "  %-10s cold %8.2f ms  warm %7.3f ms (%6.1fx)  snapshot \
               %7.2f ms (%5.1fx)  bit-identical %-5s %s\n"
              engine cold_ms warm_ms speedup cached_ms cached_speedup
              (if identical && cached_identical then "yes" else "NO")
              (if pass then "PASS" else "FAIL");
            [
              (Printf.sprintf "service/cold-breakdown-%s" engine, cold_ms);
              (Printf.sprintf "service/warm-query-%s" engine, warm_ms);
              (Printf.sprintf "service/cold-breakdown-%s-cached" engine,
               cached_ms);
            ])
          [ "multisim"; "graph"; "profiler" ])
  in
  Client.with_client ~retry_for:5.0 ~socket (fun c ->
      ignore
        (Client.call c
           { Protocol.req_id = 0; deadline_ms = None; op = Protocol.Shutdown }));
  Thread.join srv;
  Printf.printf
    "service gate (>= 10x warm speedup, >= 5x snapshot cold start, \
     bit-identical replies): %s\n"
    (if !ok then "PASS" else "FAIL");
  if not !ok then exit 1;
  rows

(* ------------------------------------------------------------------ *)
(* Closed-loop load: sharded pipelined batches vs one-at-a-time        *)
(* ------------------------------------------------------------------ *)

module Router = Icost_service.Router
module Supervise = Icost_service.Supervise

(* Environment knobs so CI can run a seconds-long smoke with the same
   code path that produces the committed BENCH_load.json. *)
let env_int name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

let env_float name default =
  match Option.bind (Sys.getenv_opt name) float_of_string_opt with
  | Some v when v > 0. -> v
  | _ -> default

(* Weighted percentile over (latency, weight) samples: a batch frame is
   one timing observation that completes [weight] requests at once. *)
let percentile samples q =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) samples in
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 sorted in
  if total = 0 then 0.
  else begin
    let want = Float.max 1. (Float.of_int total *. q) in
    let rec walk acc = function
      | [] -> 0.
      | [ (lat, _) ] -> lat
      | (lat, w) :: rest ->
        let acc = acc + w in
        if Float.of_int acc >= want then lat else walk acc rest
    in
    walk 0 sorted
  end

(* Fork a daemon into its own process: the load numbers must measure
   cross-process parallelism, not thread interleaving inside the bench
   binary.  Must run before anything spawns a domain (Unix.fork is
   forbidden after that), which is why [-- load] dispatches first. *)
let fork_daemon (serve : unit -> unit) =
  match Unix.fork () with
  | 0 -> (try serve (); Unix._exit 0 with _ -> Unix._exit 1)
  | pid -> pid

let shutdown_daemon ~socket pid =
  Client.with_client ~retry_for:5.0 ~socket (fun c ->
      ignore
        (Client.call c
           { Protocol.req_id = 0; deadline_ms = None; op = Protocol.Shutdown }));
  ignore (Unix.waitpid [] pid)

(* Closed-loop worker fleet: each connection keeps [depth] trips in
   flight for [duration_s], then drains.  [trip] sends one frame and
   its matching [reap] blocks for that frame's reply, returning how
   many requests it completed.  Returns (requests, (latency_ms, weight)
   samples, elapsed seconds). *)
let closed_loop ~conns ~depth ~duration_s ~connect ~send ~reap =
  let results = Array.make conns (0, [], 0.) in
  let threads =
    List.init conns (fun i ->
        Thread.create
          (fun () ->
            let c = connect () in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            let t0 = Unix.gettimeofday () in
            let t_end = t0 +. duration_s in
            let samples = ref [] and done_ = ref 0 in
            (* outstanding send timestamps, oldest first: replies come
               back in request order, so the head times the next reply *)
            let q = Queue.create () in
            let pump () =
              Queue.add (Unix.gettimeofday ()) q;
              send i c
            in
            let drain1 () =
              let sent_at = Queue.take q in
              let n = reap i c in
              let lat = (Unix.gettimeofday () -. sent_at) *. 1e3 in
              samples := (lat, n) :: !samples;
              done_ := !done_ + n
            in
            for _ = 1 to depth do pump () done;
            while Unix.gettimeofday () < t_end do
              drain1 ();
              pump ()
            done;
            while not (Queue.is_empty q) do drain1 () done;
            results.(i) <- (!done_, !samples, Unix.gettimeofday () -. t0))
          ())
  in
  List.iter Thread.join threads;
  Array.fold_left
    (fun (n, s, el) (n', s', el') -> (n + n', s' @ s, Float.max el el'))
    (0, [], 0.) results

(* The shard pids live two forks down (router -> supervisor -> shards);
   Linux exposes the chain in /proc, which is how the chaos soak finds
   its victims without any cooperation from the fleet. *)
let children_of pid =
  let path = Printf.sprintf "/proc/%d/task/%d/children" pid pid in
  match In_channel.with_open_text path In_channel.input_all with
  | s ->
    String.split_on_char ' ' (String.trim s) |> List.filter_map int_of_string_opt
  | exception Sys_error _ -> []

let shard_pids_of router =
  match children_of router with
  | [ supervisor ] -> children_of supervisor
  | _ -> []

let run_load () : (string * float) list =
  let conns = env_int "ICOST_LOAD_CONNS" 16 in
  (* Batch shape: deep pipelines and big frames buy qps but stack frames
     behind each other on the shared core, inflating per-frame latency;
     8-item frames at depth 1 keep both in-flight bytes and queueing
     small enough that the batched p99 beats the sequential one while
     still clearing the 2x throughput bar with margin. *)
  let batch = min Protocol.max_batch_items (env_int "ICOST_LOAD_BATCH" 8) in
  let batch_conns = env_int "ICOST_LOAD_BATCH_CONNS" 2 in
  let depth = env_int "ICOST_LOAD_DEPTH" 1 in
  let duration_s = env_float "ICOST_LOAD_DURATION_S" 3. in
  let gate = Sys.getenv_opt "ICOST_LOAD_GATE" <> Some "0" in
  let tmp tag =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-load-%s-%d" tag (Unix.getpid ()))
  in
  let soak_duration_s = env_float "ICOST_SOAK_DURATION_S" 3. in
  let soak_kill_every_s = env_float "ICOST_SOAK_KILL_EVERY_S" 0.25 in
  let soak_conns = env_int "ICOST_SOAK_CONNS" 4 in
  let soak_max_lat_ms = env_float "ICOST_SOAK_MAX_LAT_MS" 5000. in
  let soak_gate = Sys.getenv_opt "ICOST_SOAK_GATE" <> Some "0" in
  let socket1 = tmp "one.sock" and socket2 = tmp "two.sock" in
  let socket3 = tmp "soak.sock" in
  List.iter
    (fun s -> if Sys.file_exists s then Sys.remove s)
    [ socket1; socket2; socket3 ];
  (* two workloads that hash to different shards under shards = 2, so
     the sharded run actually exercises both processes *)
  let target w =
    { Protocol.default_target with Protocol.workload = w; warmup = 2000;
      measure = 800 }
  in
  let targets = [| target "gcc"; target "gzip" |] in
  assert (
    Router.shard_of_key ~shards:2 (Router.route_key targets.(0))
    <> Router.shard_of_key ~shards:2 (Router.route_key targets.(1)));
  (* The timed phases use the compact [icost] query (~200 B replies):
     the gate isolates the per-request overhead that pipelined batching
     amortizes — syscalls, scheduling, framing — rather than raw reply
     byte-pumping, which no protocol shape can amortize.  Correctness on
     the heavyweight queries is covered by the bit-identity prime below,
     which runs full breakdowns on every engine. *)
  let op_of i =
    Protocol.Icost { target = targets.(i mod 2); sets = [ "dl1"; "dl1,win" ] }
  in
  let req ?(id = 1) op = { Protocol.req_id = id; deadline_ms = None; op } in
  let pid1 =
    fork_daemon (fun () ->
        ignore
          (Server.run
             { Server.default_opts with socket = socket1; workers = 2;
               handle_signals = true }))
  in
  let pid2 =
    fork_daemon (fun () ->
        ignore
          (Router.run
             { Router.default_opts with socket = socket2; shards = 2;
               shard = { Server.default_opts with workers = 2 } }))
  in
  (* the soak fleet gets an unlimited storm budget: a kill every 250 ms
     is exactly the restart storm the breaker exists to refuse, and the
     point here is to measure respawn, not to trip it *)
  let pid3 =
    fork_daemon (fun () ->
        ignore
          (Router.run
             { Router.default_opts with socket = socket3; shards = 2;
               shard = { Server.default_opts with workers = 2 };
               supervise =
                 { Router.default_opts.supervise with
                   Supervise.storm_budget = max_int } }))
  in
  Printf.printf
    "\nclosed-loop load (%g s per phase): 1-shard one-at-a-time (%d conns) \
     vs 2-shard pipelined batches (%d conns x depth %d x %d items):\n%!"
    duration_s conns batch_conns depth batch;
  (* prime both servers and check every engine answers bit-identically
     through the router before trusting its throughput *)
  let identical = ref true in
  Client.with_client ~retry_for:30.0 ~socket:socket1 @@ fun c1 ->
  Client.with_client ~retry_for:30.0 ~socket:socket2 @@ fun c2 ->
  List.iter
    (fun engine ->
      Array.iter
        (fun tg ->
          let op =
            Protocol.Breakdown
              { target = { tg with Protocol.engine }; focus = "dl1" }
          in
          let norm (r : Protocol.reply) =
            Protocol.encode_reply { r with Protocol.rep_id = 0 }
          in
          let r1 = Client.call c1 (req op) and r2 = Client.call c2 (req op) in
          (match r1.Protocol.body with
           | Ok _ -> ()
           | Error (_, m) -> failwith ("load prime: " ^ m));
          if norm r1 <> norm r2 then begin
            identical := false;
            Printf.printf "  MISMATCH: %s/%s differs between 1- and 2-shard\n"
              tg.Protocol.workload engine
          end)
        targets)
    [ "graph"; "multisim"; "profiler" ];
  Printf.printf "  replies bit-identical across topologies: %s\n%!"
    (if !identical then "yes" else "NO");
  (* The load phases run at the wire level — pre-encoded request lines,
     opaque reply lines with a cheap error sniff — so the (single-domain)
     generator measures the servers, not its own JSON codec.  Replies
     were already proven bit-identical on the primed path above. *)
  let has_sub hay needle =
    (* allocation-free scan: the sniff runs inside the timed loop on
       every reply frame, so a String.sub per position would bill the
       servers for the generator's garbage *)
    let nh = String.length hay and nn = String.length needle in
    let rec eq i j = j = nn || (hay.[i + j] = needle.[j] && eq i (j + 1)) in
    let rec go i = i + nn <= nh && (eq i 0 || go (i + 1)) in
    nn > 0 && go 0
  in
  (* Each connection is pinned to one request line (fixed id included),
     and the analyses are deterministic, so every reply on a connection
     must be byte-for-byte the same.  The first reply is sniffed for an
     "error" object (one scan suffices: envelope errors and per-item
     batch failures both carry one) and then becomes the expectation;
     later replies are checked with [String.equal] — a memcmp, far
     cheaper than scanning, and a stronger check: any divergence fails
     the run, not just divergence that looks like an error. *)
  let reap_verified ~items ~what expected i c =
    let line = Client.recv_line c in
    let slot : string option Atomic.t = expected.(i mod Array.length expected) in
    match Atomic.get slot with
    | Some exp ->
      if String.equal line exp then items
      else failwith (Printf.sprintf "load (%s): reply diverged: %s" what line)
    | None ->
      if has_sub line "\"error\"" then
        failwith (Printf.sprintf "load (%s): error reply: %s" what line)
      else begin
        (* a benign race: all writers of one slot store the same bytes *)
        Atomic.set slot (Some line);
        items
      end
  in
  (* phase 1: single shard, one request per round trip; connections
     alternate the two workloads *)
  let n1, samples1, elapsed1 =
    let line_of i = Protocol.encode_request (req (op_of i)) in
    let lines = [| line_of 0; line_of 1 |] in
    let expected = [| Atomic.make None; Atomic.make None |] in
    closed_loop ~conns ~depth:1 ~duration_s
      ~connect:(fun () -> Client.connect ~retry_for:10.0 ~socket:socket1 ())
      ~send:(fun i c -> Client.send_line c lines.(i mod 2))
      ~reap:(reap_verified ~items:1 ~what:"single" expected)
  in
  (* phase 2: two shards, pipelined batch frames.  Each connection is
     pinned to one workload — the affinity pattern the router's verbatim
     batch relay rewards, and the natural one, since every session of a
     workload lives on the same shard *)
  let n2, samples2, elapsed2 =
    let line_of i =
      Protocol.encode_request
        (req (Protocol.Batch { ops = List.init batch (fun _ -> op_of i) }))
    in
    let lines = [| line_of 0; line_of 1 |] in
    let expected = [| Atomic.make None; Atomic.make None |] in
    closed_loop ~conns:batch_conns ~depth ~duration_s
      ~connect:(fun () -> Client.connect ~retry_for:10.0 ~socket:socket2 ())
      ~send:(fun i c -> Client.send_line c lines.(i mod 2))
      ~reap:(reap_verified ~items:batch ~what:"batch" expected)
  in
  shutdown_daemon ~socket:socket1 pid1;
  shutdown_daemon ~socket:socket2 pid2;
  (* phase 3: chaos soak.  A killer thread SIGKILLs a random live shard
     of the third fleet every ~[soak_kill_every_s] while closed-loop
     sessions (client retries on) hammer both shards with the compact
     query.  The supervision layer must absorb every kill: parked
     requests re-deliver to the respawned shard, so the clients see zero
     failures, every reply byte-identical to the pre-kill expectation,
     and the worst-case latency stays bounded by detect+backoff+respawn
     rather than a timeout. *)
  Printf.printf
    "  chaos soak (%g s, kill -9 a random shard every %g s, %d conns):\n%!"
    soak_duration_s soak_kill_every_s soak_conns;
  let soak_expected = [| Atomic.make None; Atomic.make None |] in
  Client.with_client ~retry_for:30.0 ~socket:socket3 (fun c ->
      Array.iteri
        (fun idx slot ->
          let r = Client.call c (req ~id:(100 + idx) (op_of idx)) in
          match r.Protocol.body with
          | Ok _ ->
            Atomic.set slot
              (Some
                 (Protocol.encode_reply { r with Protocol.rep_id = 0 }))
          | Error (_, m) -> failwith ("soak prime: " ^ m))
        soak_expected);
  let kills = Atomic.make 0 in
  let stop_killer = Atomic.make false in
  let killer =
    Thread.create
      (fun () ->
        (* deterministic victim choice; Unix.kill on a pid that just
           died between the /proc walk and the signal is a no-op race,
           not an error *)
        let lcg = ref 0x2545f491 in
        while not (Atomic.get stop_killer) do
          ignore (Unix.select [] [] [] soak_kill_every_s);
          if not (Atomic.get stop_killer) then begin
            match shard_pids_of pid3 with
            | [] -> ()
            | pids ->
              lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
              let victim = List.nth pids (!lcg mod List.length pids) in
              (try
                 Unix.kill victim Sys.sigkill;
                 Atomic.incr kills
               with Unix.Unix_error _ -> ())
          end
        done)
      ()
  in
  let mismatches = Atomic.make 0 in
  let soak_results = Array.make soak_conns (0, 0, [], 0.) in
  let soak_threads =
    List.init soak_conns (fun i ->
        Thread.create
          (fun () ->
            let opts =
              { Client.retries = 10; budget_ms = 20_000;
                base_backoff_ms = 5.; max_backoff_ms = 100. }
            in
            let s =
              Client.connect_session ~opts ~retry_for:10.0 ~socket:socket3 ()
            in
            Fun.protect ~finally:(fun () -> Client.close_session s)
            @@ fun () ->
            let t0 = Unix.gettimeofday () in
            let t_end = t0 +. soak_duration_s in
            let ok = ref 0 and failed = ref 0 and samples = ref [] in
            let flip = ref (i mod 2) in
            while Unix.gettimeofday () < t_end do
              let idx = !flip in
              flip := 1 - !flip;
              let sent = Unix.gettimeofday () in
              (match Client.call_with_retry s (req ~id:(100 + idx) (op_of idx)) with
               | { Protocol.body = Ok _; _ } as r ->
                 let norm =
                   Protocol.encode_reply { r with Protocol.rep_id = 0 }
                 in
                 (match Atomic.get soak_expected.(idx) with
                  | Some exp when String.equal exp norm -> incr ok
                  | Some _ ->
                    Atomic.incr mismatches;
                    incr ok
                  | None -> incr ok)
               | { Protocol.body = Error _; _ } -> incr failed
               | exception _ -> incr failed);
              samples := ((Unix.gettimeofday () -. sent) *. 1e3, 1) :: !samples
            done;
            soak_results.(i) <- (!ok, !failed, !samples, Unix.gettimeofday () -. t0))
          ())
  in
  List.iter Thread.join soak_threads;
  Atomic.set stop_killer true;
  Thread.join killer;
  let soak_ok, soak_failed, soak_samples, soak_elapsed =
    Array.fold_left
      (fun (n, f, s, el) (n', f', s', el') ->
        (n + n', f + f', s' @ s, Float.max el el'))
      (0, 0, [], 0.) soak_results
  in
  let soak_respawns, soak_failovers =
    Client.with_client ~retry_for:10.0 ~socket:socket3 (fun c ->
        match (Client.call c (req ~id:2 Protocol.Status)).Protocol.body with
        | Ok (Protocol.R_status st) ->
          (st.Protocol.respawns, st.Protocol.failovers)
        | _ -> (0, 0))
  in
  shutdown_daemon ~socket:socket3 pid3;
  let qps1 = Float.of_int n1 /. elapsed1 in
  let qps2 = Float.of_int n2 /. elapsed2 in
  let p50_1 = percentile samples1 0.5 and p99_1 = percentile samples1 0.99 in
  let p50_2 = percentile samples2 0.5 and p99_2 = percentile samples2 0.99 in
  Printf.printf
    "  1shard-seq    %8.0f q/s  p50 %7.3f ms  p99 %7.3f ms  (%d requests)\n"
    qps1 p50_1 p99_1 n1;
  Printf.printf
    "  2shard-batch  %8.0f q/s  p50 %7.3f ms  p99 %7.3f ms  (%d requests, \
     per-frame latency)\n"
    qps2 p50_2 p99_2 n2;
  let soak_qps = Float.of_int (soak_ok + soak_failed) /. soak_elapsed in
  let soak_p50 = percentile soak_samples 0.5 in
  let soak_p99 = percentile soak_samples 0.99 in
  let soak_max =
    List.fold_left (fun m (lat, _) -> Float.max m lat) 0. soak_samples
  in
  Printf.printf
    "  soak          %8.0f q/s  p50 %7.3f ms  p99 %7.3f ms  max %8.1f ms\n"
    soak_qps soak_p50 soak_p99 soak_max;
  Printf.printf
    "  soak          %d kill(s), %d respawn(s), %d failover(s), %d request(s), \
     %d failed, %d diverged\n"
    (Atomic.get kills) soak_respawns soak_failovers (soak_ok + soak_failed)
    soak_failed (Atomic.get mismatches);
  let speedup = qps2 /. qps1 in
  let pass = (not gate) || (speedup >= 2. && p99_2 <= p99_1 && !identical) in
  Printf.printf
    "  load gate (>= 2x qps, p99 no worse, bit-identical): %.2fx  %s\n"
    speedup
    (if not gate then "SKIPPED (ICOST_LOAD_GATE=0)"
     else if pass then "PASS"
     else "FAIL");
  let soak_pass =
    (not soak_gate)
    || (soak_failed = 0
        && Atomic.get mismatches = 0
        && Atomic.get kills >= 1
        && soak_respawns >= 2
        && soak_max <= soak_max_lat_ms)
  in
  Printf.printf
    "  soak gate (zero failures, bit-identical, >= 1 kill, >= 2 respawns, \
     max <= %g ms): %s\n"
    soak_max_lat_ms
    (if not soak_gate then "SKIPPED (ICOST_SOAK_GATE=0)"
     else if soak_pass then "PASS"
     else "FAIL");
  if not (pass && soak_pass) then exit 1;
  [
    ("load/1shard-seq-qps", qps1);
    ("load/1shard-seq-p50-ms", p50_1);
    ("load/1shard-seq-p99-ms", p99_1);
    ("load/2shard-batch-qps", qps2);
    ("load/2shard-batch-p50-ms", p50_2);
    ("load/2shard-batch-p99-ms", p99_2);
    (* soak rows are informational in the relative regression gate (the
       absolute gate above is the contract): kill counts and chaos tail
       latencies are not comparable run to run *)
    ("soak/qps", soak_qps);
    ("soak/p50-ms", soak_p50);
    ("soak/p99-ms", soak_p99);
    ("soak/max-lat-ms", soak_max);
    ("soak/kills", Float.of_int (Atomic.get kills));
    ("soak/respawns", Float.of_int soak_respawns);
    ("soak/failovers", Float.of_int soak_failovers);
    ("soak/failed", Float.of_int soak_failed);
  ]

(* BENCH_load.json: same row format as the other committed baselines,
   plus the load settings and the embedded run manifest so two artifacts
   are comparable across machines and CI runs. *)
let write_load_json file (rows : (string * float) list) =
  let manifest =
    Icost_report.Telemetry_export.manifest
      ~config_digest:(Icost_report.Telemetry_export.digest Config.default)
      ~seed:Icost_profiler.Sampler.default_opts.seed
      ~workloads:Workload.names ()
  in
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"icost.load.v1\",\n";
  output_string oc
    "  \"generated-by\": \"dune exec bench/main.exe -- load --json\",\n";
  output_string oc "  \"unit\": \"qps / ms\",\n";
  Printf.fprintf oc "  \"settings\": {\n";
  Printf.fprintf oc "    \"conns\": %d,\n" (env_int "ICOST_LOAD_CONNS" 16);
  Printf.fprintf oc "    \"batch\": %d,\n" (env_int "ICOST_LOAD_BATCH" 8);
  Printf.fprintf oc "    \"batch-conns\": %d,\n"
    (env_int "ICOST_LOAD_BATCH_CONNS" 2);
  Printf.fprintf oc "    \"depth\": %d,\n" (env_int "ICOST_LOAD_DEPTH" 1);
  Printf.fprintf oc "    \"duration-s\": %g,\n"
    (env_float "ICOST_LOAD_DURATION_S" 3.);
  Printf.fprintf oc "    \"soak-duration-s\": %g,\n"
    (env_float "ICOST_SOAK_DURATION_S" 3.);
  Printf.fprintf oc "    \"soak-kill-every-s\": %g,\n"
    (env_float "ICOST_SOAK_KILL_EVERY_S" 0.25);
  Printf.fprintf oc "    \"soak-conns\": %d\n" (env_int "ICOST_SOAK_CONNS" 4);
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"manifest\": %s,\n"
    (Icost_report.Telemetry_export.manifest_json manifest);
  output_string oc "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    %S: %.4f%s\n" name v
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* --- machine-readable perf trajectory ------------------------------- *)

let write_json file (rows : (string * float) list) =
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc
    "  \"generated-by\": \"dune exec bench/main.exe -- micro --json\",\n";
  output_string oc "  \"unit\": \"ms/run\",\n";
  output_string oc "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ms) ->
      Printf.fprintf oc "    %S: %.4f%s\n" name ms
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* Minimal reader for the JSON written above: lines of the form
   ["name": number], taken only between the "results" opener and its
   closing brace — rows in other sections (seed manifest, settings)
   must not leak into the comparison. *)
let read_json file : (string * float) list =
  let ic = open_in file in
  let rows = ref [] in
  let in_results = ref false in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if not !in_results then begin
         if line = "\"results\": {" then in_results := true
       end
       else if line = "}" || line = "}," then in_results := false
       else
         match String.index_opt line ':' with
         | Some i when String.length line > 1 && line.[0] = '"' ->
           let name = String.sub line 1 (i - 2) in
           let value = String.sub line (i + 1) (String.length line - i - 1) in
           let value =
             String.trim
               (match String.index_opt value ',' with
                | Some j -> String.sub value 0 j
                | None -> value)
           in
           (match float_of_string_opt value with
            | Some v -> rows := (name, v) :: !rows
            | None -> ())
         | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(** Exit nonzero if any benchmark present in both runs got more than
    [tolerance] worse, or if a baseline row was not measured at all —
    a silently vanished benchmark would otherwise pass the gate exactly
    when it breaks.  New names are reported but do not fail.

    The gate is direction-aware: rows named [...-qps] are throughputs
    (bigger is better — a drop regresses), everything else is a time
    (smaller is better).  Load latencies ([load/...-ms]) carry a larger
    absolute slack than engine rows: closed-loop tail latency on a
    shared runner swings by milliseconds, not microseconds. *)
let check_regressions ~baseline_file (rows : (string * float) list) =
  let tolerance = 0.25 in
  (* sub-0.1 ms rows (socket round trips) jitter by tens of microseconds
     with the scheduler; an absolute slack keeps the relative gate from
     firing on noise without loosening it for multi-ms engine rows *)
  let slack_ms = 0.05 in
  let load_slack_ms = 2.0 in
  let is_qps name =
    let suffix = "-qps" in
    let nl = String.length name and sl = String.length suffix in
    nl >= sl && String.sub name (nl - sl) sl = suffix
  in
  let is_load name =
    String.length name >= 5 && String.sub name 0 5 = "load/"
  in
  (* chaos-soak rows record what one run's kill storm happened to cost;
     the soak's own absolute gate (zero failures, bounded max latency)
     is the contract, so run-to-run deltas are reported but never fail *)
  let is_soak name =
    String.length name >= 5 && String.sub name 0 5 = "soak/"
  in
  let baseline = read_json baseline_file in
  let regressions = ref [] in
  Printf.printf "\nregression check vs %s (tolerance +%.0f%% or +%.2f ms; \
                 qps rows gate on drops):\n"
    baseline_file (tolerance *. 100.) slack_ms;
  List.iter
    (fun (name, ms) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "  %-36s (new, no baseline)\n" name
      | Some base ->
        let delta = (ms -. base) /. base *. 100. in
        let regressed, improved =
          if is_soak name then (false, false)
          else if is_qps name then (ms < base *. (1. -. tolerance), delta > 5.)
          else begin
            let slack = if is_load name then load_slack_ms else slack_ms in
            ( ms > base *. (1. +. tolerance) && ms > base +. slack,
              delta < -5. )
          end
        in
        let flag =
          if regressed then begin
            regressions := (name, base, ms) :: !regressions;
            "REGRESSION"
          end
          else if is_soak name then "informational"
          else if improved then "improved"
          else "ok"
        in
        Printf.printf "  %-36s %8.3f -> %8.3f %s  %+6.1f%%  %s\n" name base
          ms
          (if is_qps name then "q/s   " else "ms/run")
          delta flag)
    rows;
  let missing =
    List.filter (fun (name, _) -> not (List.mem_assoc name rows)) baseline
  in
  List.iter
    (fun (name, _) ->
      Printf.printf "  %-36s (in baseline, MISSING from this run)\n" name)
    missing;
  (match missing with
   | [] -> ()
   | m ->
     Printf.printf "\n%d baseline benchmark(s) were not measured:\n"
       (List.length m);
     List.iter (fun (name, _) -> Printf.printf "  %s\n" name) m);
  match (!regressions, missing) with
  | [], [] ->
    Printf.printf "no engine regressed more than %.0f%%\n" (tolerance *. 100.)
  | rs, _ ->
    (* the gate failed: repeat the offending engines as one compact delta
       table so a CI log tail shows the full verdict, not just "exit 1" *)
    if rs <> [] then begin
      Printf.printf "\n%d engine benchmark(s) regressed more than %.0f%%:\n"
        (List.length rs) (tolerance *. 100.);
      Printf.printf "  %-36s %10s %10s %8s\n" "engine" "baseline" "current"
        "delta";
      List.iter
        (fun (name, base, ms) ->
          Printf.printf "  %-36s %10.3f %10.3f %+7.1f%%\n" name base ms
            ((ms -. base) /. base *. 100.))
        (List.rev rs)
    end;
    exit 1

(* ------------------------------------------------------------------ *)
(* Conformance sweep timing                                            *)
(* ------------------------------------------------------------------ *)

(* How long one full law-table sweep takes per case class: the number CI
   budgets [icost check --budget-s] against.  One kernel and one
   generated case, single measurement each (a sweep re-simulates the
   case tens of times already, so best-of-batches would be minutes). *)
let run_check () : (string * float) list =
  let time_case (case : Icost_check.Case.t) =
    let t0 = Unix.gettimeofday () in
    let prepared = Icost_check.Case.prepare case in
    let ctx =
      Icost_check.Laws.make_ctx
        ~prof_opts:(Icost_check.Case.prof_opts case)
        (Icost_check.Case.config case) prepared
    in
    let results = Icost_check.Laws.run_all ctx in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    (ms, List.length (Icost_check.Laws.violations results))
  in
  Printf.printf "\nconformance sweep (full law table per case):\n";
  List.map
    (fun (label, case) ->
      let ms, failed = time_case case in
      Printf.printf "  check/%-28s %10.1f ms/sweep%s\n" label ms
        (if failed = 0 then "" else Printf.sprintf "  (%d VIOLATIONS)" failed);
      (Printf.sprintf "check/%s" label, ms))
    [
      ( "laws-gcc-4k",
        { Icost_check.Case.target = Icost_check.Case.Bench "gcc";
          variant = "base"; warmup = 20_000; measure = 4_000;
          sample_seed = 42 } );
      ( "laws-gen-mixed-4k",
        { Icost_check.Case.target =
            Icost_check.Case.Generated (Icost_check.Gen.Mixed, 42);
          variant = "base"; warmup = 20_000; measure = 4_000;
          sample_seed = 42 } );
    ]

(* ------------------------------------------------------------------ *)
(* parametric sensitivity sweep: sequential vs pool-parallel           *)
(* ------------------------------------------------------------------ *)

(* One prepared gcc execution, a ~21-distinct-point grid over the window
   and memory-latency axes, priced once per point.  The same sweep is
   timed at 1 pool job and at 4; grid evaluation is embarrassingly
   parallel (independent baseline re-simulations), so with enough cores
   the 4-job run must be at least 2x the sequential one — that absolute
   gate is enforced here (skipped with a notice when the machine has
   fewer than 4 cores, or with ICOST_SWEEP_GATE=0), while the committed
   BENCH_sweep.json row times are gated relatively by
   check_regression.sh like every other baseline. *)
let sweep_bench_specs = [ "window=16..512"; "mem_lat=10..160:10" ]

let run_sweep_bench () : (string * float) list =
  let module Sweep = Icost_sensitivity.Sweep in
  let module Sparam = Icost_sensitivity.Param in
  let prepared =
    Runner.prepare
      { Runner.warmup = 20_000; measure = 4_000; benches = [ "gcc" ] }
      (Workload.find_exn "gcc")
  in
  let axes =
    match Sparam.parse_axes sweep_bench_specs with
    | Ok a -> a
    | Error msg -> failwith msg
  in
  let sweep () =
    Sweep.run ~engine:Sweep.Sim ~cfg:Config.default ~prepared ~axes ()
  in
  let time_best () =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      let r = sweep () in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      if ms < !best then best := ms;
      result := Some r
    done;
    match !result with
    | Some r -> (!best, r)
    | None -> assert false
  in
  let jobs0 = Pool.jobs () in
  Fun.protect ~finally:(fun () -> Pool.set_jobs jobs0) @@ fun () ->
  Pool.set_jobs 1;
  let seq_ms, r_seq = time_best () in
  Pool.set_jobs 4;
  let par_ms, r_par = time_best () in
  (* parallel evaluation must not change a single bit of the answer *)
  if
    List.exists2
      (fun (a : Sweep.curve) (b : Sweep.curve) ->
        not
          (List.for_all2
             (fun (pa : Sweep.point) (pb : Sweep.point) ->
               match (pa.Sweep.pt_outcome, pb.Sweep.pt_outcome) with
               | Ok ca, Ok cb ->
                 Int64.equal (Int64.bits_of_float ca) (Int64.bits_of_float cb)
               | _ -> false)
             a.Sweep.cv_points b.Sweep.cv_points))
      r_seq.Sweep.sw_curves r_par.Sweep.sw_curves
  then failwith "sweep: parallel run diverged from sequential";
  let speedup = seq_ms /. par_ms in
  Printf.printf "\nsensitivity sweep (%d distinct points, gcc 4k):\n"
    r_seq.Sweep.sw_points;
  Printf.printf "  sweep/gcc-seq-ms   %10.1f ms\n" seq_ms;
  Printf.printf "  sweep/gcc-par4-ms  %10.1f ms   (%.2fx)\n" par_ms speedup;
  let cores = Stdlib.Domain.recommended_domain_count () in
  let gate = Sys.getenv_opt "ICOST_SWEEP_GATE" <> Some "0" in
  if not gate then
    Printf.printf "  parallel >= 2x gate: SKIPPED (ICOST_SWEEP_GATE=0)\n"
  else if cores < 4 then
    Printf.printf
      "  parallel >= 2x gate: SKIPPED (%d core(s) < 4, nothing to win)\n"
      cores
  else if speedup >= 2.0 then
    Printf.printf "  parallel >= 2x gate: PASS (%.2fx)\n" speedup
  else begin
    Printf.printf "  parallel >= 2x gate: FAIL (%.2fx < 2x)\n" speedup;
    exit 1
  end;
  [ ("sweep/gcc-seq-ms", seq_ms); ("sweep/gcc-par4-ms", par_ms) ]

(* BENCH_sweep.json: the committed sweep-timing baseline, same row
   format as the other records plus the grid and the run manifest. *)
let write_sweep_json file (rows : (string * float) list) =
  let manifest =
    Icost_report.Telemetry_export.manifest
      ~config_digest:(Icost_report.Telemetry_export.digest Config.default)
      ~seed:Icost_profiler.Sampler.default_opts.seed ~workloads:[ "gcc" ] ()
  in
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"icost.sweep-bench.v1\",\n";
  output_string oc
    "  \"generated-by\": \"dune exec bench/main.exe -- sweep --json\",\n";
  output_string oc "  \"unit\": \"ms/sweep\",\n";
  Printf.fprintf oc "  \"settings\": {\n";
  Printf.fprintf oc "    \"params\": [%s],\n"
    (String.concat ", "
       (List.map (Printf.sprintf "%S") sweep_bench_specs));
  Printf.fprintf oc "    \"warmup\": 20000,\n";
  Printf.fprintf oc "    \"measure\": 4000\n";
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"manifest\": %s,\n"
    (Icost_report.Telemetry_export.manifest_json manifest);
  output_string oc "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    %S: %.4f%s\n" name v
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Streaming mode: bounded-memory analysis of a 10M-instruction run    *)
(* ------------------------------------------------------------------ *)

module Stream_core = Icost_stream.Core
module Stream_source = Icost_stream.Source

(* [-- stream]: push ICOST_STREAM_INSNS (default 10M) instructions of
   gcc — three orders of magnitude past the monolithic window — through
   the segmented core, and also a run one tenth the size.  Two absolute
   gates make the phase self-verifying:

   - bounded memory: the big run's peak heap may be at most
     ICOST_STREAM_MEM_FACTOR (default 2.0) times the small run's, even
     though it analyzes 10x the instructions;
   - exactness: the streamed aggregate over one monolithic-size window
     must be bit-identical to [Graph.eval_subsets] on all 256 subsets
     (the in-process twin of the [stream-matches-monolithic] law).

   Row values are normalized per million instructions, so a CI smoke at
   a smaller ICOST_STREAM_INSNS still compares against the committed
   BENCH_stream.json (ICOST_STREAM_GATE=0 keeps only the relative
   check). *)
let stream_bench = "gcc"
let stream_warmup = 20_000

let run_stream () : (string * float) list =
  let insns = env_int "ICOST_STREAM_INSNS" 10_000_000 in
  let small = max 100_000 (insns / 10) in
  let mem_factor = env_float "ICOST_STREAM_MEM_FACTOR" 2.0 in
  let gate = Sys.getenv_opt "ICOST_STREAM_GATE" <> Some "0" in
  let w = Workload.find_exn stream_bench in
  let cfg = Config.default in
  let analyze n =
    let src =
      Stream_source.of_program cfg (w.Workload.build ())
        ~warmup:stream_warmup ~max_insns:n
    in
    let t0 = Unix.gettimeofday () in
    let r = Stream_core.analyze cfg src in
    (r, (Unix.gettimeofday () -. t0) *. 1e3)
  in
  (* bit-identity spot check on one monolithic-size window *)
  let p =
    Runner.prepare
      { Runner.warmup = stream_warmup; measure = 30_000;
        benches = [ stream_bench ] }
      w
  in
  let all_subsets = Array.init 256 (fun s -> s) in
  let mono =
    Graph.eval_subsets
      (Build.of_sim cfg p.trace p.evts (Runner.baseline_run cfg p))
      all_subsets
  in
  let streamed =
    Stream_core.analyze cfg (Stream_source.of_arrays p.trace.Icost_isa.Trace.instrs p.evts)
  in
  let identical = streamed.Stream_core.times = mono in
  (* warm the allocator and the domain pool so the small run's peak heap
     is a fair yardstick rather than the GC's opening ramp *)
  ignore (analyze 100_000);
  let r_small, small_ms = analyze small in
  let r_big, big_ms = analyze insns in
  let peak_small = Stream_core.peak_mb r_small in
  let peak_big = Stream_core.peak_mb r_big in
  let per_m ms n = ms /. (Float.of_int n /. 1e6) in
  Printf.printf
    "\nstreaming analysis (%s, %d-instruction segments):\n" stream_bench
    r_big.Stream_core.segment_insns;
  Printf.printf
    "  %8dk instructions  %8.0f ms  (%7.1f ms/M)  %4d segments  peak %6.1f MB\n"
    (small / 1000) small_ms (per_m small_ms small)
    r_small.Stream_core.segments peak_small;
  Printf.printf
    "  %8dk instructions  %8.0f ms  (%7.1f ms/M)  %4d segments  peak %6.1f MB\n"
    (insns / 1000) big_ms (per_m big_ms insns) r_big.Stream_core.segments
    peak_big;
  Printf.printf "  window aggregate bit-identical to monolithic graph: %s\n"
    (if identical then "yes" else "NO");
  let complete =
    r_big.Stream_core.instrs = insns && r_small.Stream_core.instrs = small
  in
  let bounded = peak_big <= peak_small *. mem_factor in
  let pass = (not gate) || (identical && complete && bounded) in
  Printf.printf
    "  stream gate (bit-identical, all instructions analyzed, 10x run <= \
     %.1fx small-run heap): %s\n"
    mem_factor
    (if not gate then "SKIPPED (ICOST_STREAM_GATE=0)"
     else if pass then "PASS"
     else "FAIL");
  if not pass then exit 1;
  [
    ("stream/analyze-ms-per-minsn", per_m big_ms insns);
    ("stream/analyze-small-ms-per-minsn", per_m small_ms small);
    ("stream/peak-mb", peak_big);
    ("stream/peak-mb-small", peak_small);
  ]

(* BENCH_stream.json: the committed streaming baseline, same row format
   as the other records plus the run settings and manifest. *)
let write_stream_json file (rows : (string * float) list) =
  let manifest =
    Icost_report.Telemetry_export.manifest
      ~config_digest:(Icost_report.Telemetry_export.digest Config.default)
      ~seed:Icost_profiler.Sampler.default_opts.seed
      ~workloads:[ stream_bench ] ()
  in
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc "  \"schema\": \"icost.stream-bench.v1\",\n";
  output_string oc
    "  \"generated-by\": \"dune exec bench/main.exe -- stream --json\",\n";
  output_string oc "  \"unit\": \"ms per million instructions / MB\",\n";
  Printf.fprintf oc "  \"settings\": {\n";
  Printf.fprintf oc "    \"insns\": %d,\n" (env_int "ICOST_STREAM_INSNS" 10_000_000);
  Printf.fprintf oc "    \"segment-insns\": %d,\n" Stream_core.default_segment_insns;
  Printf.fprintf oc "    \"warmup\": %d\n" stream_warmup;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"manifest\": %s,\n"
    (Icost_report.Telemetry_export.manifest_json manifest);
  output_string oc "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "    %S: %.4f%s\n" name v
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* split flags ([--json FILE], [--baseline FILE], [--trace FILE],
     [--metrics FILE]) from experiment ids *)
  let json_file = ref None and baseline_file = ref None in
  let trace_file = ref None and metrics_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse acc rest
    | "--baseline" :: f :: rest ->
      baseline_file := Some f;
      parse acc rest
    | "--trace" :: f :: rest ->
      trace_file := Some f;
      parse acc rest
    | "--metrics" :: f :: rest ->
      metrics_file := Some f;
      parse acc rest
    | ("--json" | "--baseline" | "--trace" | "--metrics") :: [] ->
      failwith "--json/--baseline/--trace/--metrics need a file argument"
    | id :: rest -> parse (id :: acc) rest
  in
  let ids = parse [] args in
  if !trace_file <> None || !metrics_file <> None then
    Icost_util.Telemetry.enable ();
  at_exit (fun () ->
      if !trace_file <> None || !metrics_file <> None then begin
        let m =
          Icost_report.Telemetry_export.manifest
            ~config_digest:(Icost_report.Telemetry_export.digest Config.default)
            ~seed:Icost_profiler.Sampler.default_opts.seed
            ~workloads:Workload.names ()
        in
        Option.iter
          (fun file -> Icost_report.Telemetry_export.write_trace ~file m)
          !trace_file;
        Option.iter
          (fun file -> Icost_report.Telemetry_export.write_metrics ~file m)
          !metrics_file
      end);
  (* fail on a bad baseline path up front, not after minutes of timing *)
  Option.iter
    (fun f ->
      if not (Sys.file_exists f) then (
        Printf.eprintf "error: baseline file %s does not exist\n" f;
        exit 2))
    !baseline_file;
  (* [-- load] owns the whole invocation: it forks daemon processes, and
     Unix.fork is forbidden once any other mode has spawned a domain
     (Pool), so it cannot share a run with the other modes. *)
  if List.mem "load" ids then begin
    if List.exists (fun i -> i <> "load") ids then
      failwith "-- load cannot be combined with other bench modes";
    let rows = run_load () in
    Option.iter (fun f -> write_load_json f rows) !json_file;
    Option.iter (fun f -> check_regressions ~baseline_file:f rows) !baseline_file;
    exit 0
  end;
  (* [-- sweep] also owns its invocation: it overrides the pool job
     count (1 then 4) for the comparison, which would skew any other
     timing sharing the process, and it writes its own JSON record. *)
  if List.mem "sweep" ids then begin
    if List.exists (fun i -> i <> "sweep") ids then
      failwith "-- sweep cannot be combined with other bench modes";
    let rows = run_sweep_bench () in
    Option.iter (fun f -> write_sweep_json f rows) !json_file;
    Option.iter (fun f -> check_regressions ~baseline_file:f rows) !baseline_file;
    exit 0
  end;
  (* [-- stream] owns its invocation too: its wall-clock dwarfs the other
     modes (a 10M-instruction analysis), and it writes its own record. *)
  if List.mem "stream" ids then begin
    if List.exists (fun i -> i <> "stream") ids then
      failwith "-- stream cannot be combined with other bench modes";
    let rows = run_stream () in
    Option.iter (fun f -> write_stream_json f rows) !json_file;
    Option.iter (fun f -> check_regressions ~baseline_file:f rows) !baseline_file;
    exit 0
  end;
  let micro_requested = ids = [] || List.mem "micro" ids in
  let service_requested = List.mem "service" ids in
  let check_requested = List.mem "check" ids in
  let experiment_ids =
    List.filter (fun i -> i <> "micro" && i <> "service" && i <> "check") ids
  in
  if experiment_ids <> [] || ids = [] then run_experiments experiment_ids;
  let rows =
    (if service_requested then run_service () else [])
    @ (if check_requested then run_check () else [])
    @ (if micro_requested then run_micro () else [])
  in
  if rows <> [] then begin
    Option.iter (fun f -> write_json f rows) !json_file;
    Option.iter (fun f -> check_regressions ~baseline_file:f rows) !baseline_file
  end