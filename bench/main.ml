(* Bench harness.

   Running with no arguments regenerates every table and figure of the
   paper (Figure 1, Tables 4a/4b/4c, Figure 3 + the Section 4.3 sensitivity
   comparison, Table 7, the Section 5 profiler statistics and the sampling
   ablation), printing PASS/FAIL shape checks against the paper's
   qualitative findings, and then runs Bechamel micro-benchmarks of the
   analysis engines.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- <id> ...     -- selected experiments
                                                 (fig1 table4a table4b table4c
                                                  fig3 table7 profstats ablation)
     dune exec bench/main.exe -- micro        -- only the micro-benchmarks
     dune exec bench/main.exe -- service      -- daemon warm-query vs cold
                                                 one-shot, per engine
                                                 (BENCH_service.json is the
                                                 committed record)
     dune exec bench/main.exe -- check        -- time one full conformance
                                                 law-table sweep per case
                                                 class (kernel + generated)

   Micro-benchmark flags (see also bench/check_regression.sh):
     --json FILE        dump the measured times as JSON (BENCH_engines.json
                        is the committed perf-trajectory record)
     --baseline FILE    compare against a previously dumped JSON and exit
                        nonzero if any engine regresses by more than 25% *)

module Runner = Icost_experiments.Runner
module Drive = Icost_experiments.Drive
module Workload = Icost_workloads.Workload
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Profile = Icost_profiler.Profile
module Pool = Icost_util.Pool

(* ------------------------------------------------------------------ *)
(* paper artifacts                                                     *)
(* ------------------------------------------------------------------ *)

let run_experiments ids =
  let settings = Runner.default_settings in
  let reports =
    match ids with
    | [] -> Drive.all_reports ~settings ()
    | ids ->
      let prepared = Runner.prepare_all settings in
      let t7 =
        List.filter
          (fun (p : Runner.prepared) ->
            List.mem p.name Icost_experiments.Exp_table7.default_benches)
          prepared
      in
      List.map
        (function
          | "fig1" -> Drive.fig1 prepared
          | "table4a" -> Drive.table4a prepared
          | "table4b" -> Drive.table4b prepared
          | "table4c" -> Drive.table4c prepared
          | "fig3" -> Drive.fig3 prepared
          | "table7" -> Drive.table7 t7
          | "profstats" -> Drive.profstats t7
          | "ablation" -> Drive.ablation t7
          | "prefetch" -> Drive.prefetch ~settings ()
          | "conclusion" -> Drive.conclusion ~settings ()
          | "advisor" -> Drive.advisor prepared
          | other -> failwith (Printf.sprintf "unknown experiment %S" other))
        ids
  in
  List.iter Drive.print_report reports;
  let checks = List.concat_map (fun (r : Drive.report) -> r.checks) reports in
  let failed = List.filter (fun (_, ok) -> not ok) checks in
  Printf.printf "shape checks: %d/%d passed\n"
    (List.length checks - List.length failed)
    (List.length checks);
  List.iter (fun (d, _) -> Printf.printf "  FAILED: %s\n" d) failed

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks of the analysis machinery                          *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  (* one mid-size prepared workload shared by all engine benchmarks *)
  let settings =
    { Runner.default_settings with benches = [ "gcc" ]; measure = 10_000 }
  in
  let p = List.hd (Runner.prepare_all settings) in
  let cfg = Config.loop_dl1 in
  let result = Runner.baseline_run cfg p in
  let graph = Build.of_sim cfg p.trace p.evts result in
  let dl1_win = Category.Set.pair Category.Dl1 Category.Win in
  let all_subsets = Array.of_list (Category.Set.subsets Category.Set.full) in
  (* empty + the eight singletons: the fan-out of one Table 4 column *)
  let singleton_sets =
    Array.of_list
      (Category.Set.empty :: List.map Category.Set.singleton Category.all)
  in
  let seq_batch sets =
    let oracle = Multisim.oracle cfg p.trace p.evts in
    Array.map (Cost.query oracle) sets
  in
  [
    ("engines/sim-10k-instrs", fun () -> ignore (Ooo.cycles cfg p.trace p.evts));
    ("engines/graph-build-10k", fun () -> ignore (Build.of_sim cfg p.trace p.evts result));
    ("engines/graph-eval-baseline", fun () -> ignore (Graph.critical_length graph));
    ( "engines/graph-eval-idealized",
      fun () -> ignore (Graph.critical_length ~ideal:dl1_win graph) );
    ( "engines/eval-subsets-256",
      fun () -> ignore (Graph.eval_subsets graph all_subsets) );
    ("engines/multisim-batch-seq", fun () -> ignore (seq_batch singleton_sets));
    ( "engines/multisim-batch-par",
      fun () -> ignore (Multisim.oracle_batch cfg p.trace p.evts singleton_sets) );
    ( "engines/icost-pair-graph-oracle",
      fun () ->
        let oracle = Build.oracle graph in
        ignore (Cost.icost_pair oracle Category.Dl1 Category.Win) );
    ( "engines/profiler-end-to-end",
      fun () -> ignore (Profile.profile cfg p.program p.trace p.evts result) );
  ]

(* Best-of-batches timing: per test, size one batch to ~[batch_target]
   wall-clock, run [batches] of them and keep the fastest per-call time.
   The minimum is what the code can do when the machine leaves it alone,
   which is the statistic a regression gate can compare across runs —
   means and OLS fits on a shared box swing far more than the 25%
   tolerance (observed: same binary, +67% on consecutive runs). *)
let time_min ?(batches = 7) ?(batch_target = 0.15) (f : unit -> unit) : float =
  let t0 = Unix.gettimeofday () in
  f ();
  let once = Unix.gettimeofday () -. t0 in
  let iters = max 1 (int_of_float (batch_target /. Float.max 1e-9 once)) in
  let best = ref infinity in
  for _ = 1 to batches do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let per_call = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    if per_call < !best then best := per_call
  done;
  !best *. 1e3

let run_micro () : (string * float) list =
  let rows = List.map (fun (name, f) -> (name, time_min f)) (micro_tests ()) in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "\nmicro-benchmarks (best time per call):\n";
  List.iter (fun (name, ms) -> Printf.printf "  %-36s %10.3f ms/run\n" name ms) rows;
  rows

(* ------------------------------------------------------------------ *)
(* Service mode: resident daemon vs one-shot CLI                       *)
(* ------------------------------------------------------------------ *)

module Server = Icost_service.Server
module Client = Icost_service.Client
module Protocol = Icost_service.Protocol
module Snapshot = Icost_service.Snapshot
module Breakdown = Icost_core.Breakdown

(* Time a warm [icost query breakdown] against an in-process daemon and
   the equivalent cold one-shot computation (prepare + baseline + oracle +
   breakdown, i.e. what [icost breakdown] does past process startup), per
   engine, and verify the served reply is bit-identical to the direct
   computation.  The committed record is BENCH_service.json. *)
let run_service () : (string * float) list =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "icost-bench-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let srv =
    Thread.create
      (fun () ->
        ignore
          (Server.run
             { Server.default_opts with socket; workers = 2;
               handle_signals = false }))
      ()
  in
  let bench = "gcc" and warmup = 20_000 and measure = 5_000 in
  let target engine =
    {
      Protocol.workload = bench;
      variant = "base";
      engine;
      warmup;
      measure;
      seed = Icost_profiler.Sampler.default_opts.seed;
    }
  in
  let breakdown_req engine =
    { Protocol.req_id = 1; deadline_ms = None;
      op = Protocol.Breakdown { target = target engine; focus = "dl1" } }
  in
  let kind_of = function
    | "multisim" -> Runner.Multisim
    | "profiler" -> Runner.Profiler
    | _ -> Runner.Fullgraph
  in
  let settings = { Runner.warmup; measure; benches = [ bench ] } in
  let w =
    match Workload.find bench with
    | Some w -> w
    | None -> failwith "bench workload missing"
  in
  (* the full one-shot pipeline, rebuilt from scratch every call *)
  let direct engine () =
    let p = Runner.prepare settings w in
    let oracle = Runner.oracle_of_kind (kind_of engine) Config.default p in
    Breakdown.focus ~oracle ~focus_cat:Category.Dl1
  in
  (* the same one-shot, but established through a snapshot store
     (--cache-dir): after priming, every call warm-starts from disk *)
  let cached_of engine =
    let cache_dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "icost-bench-cache-%d-%s" (Unix.getpid ()) engine)
    in
    let cfg = Config.default in
    let kind = kind_of engine in
    let key = Server.session_key (target engine) cfg kind in
    let establish () =
      Snapshot.establish ~cache_dir ~key ~kind ~cfg
        ~seed:Icost_profiler.Sampler.default_opts.seed
        ~prepare:(fun () -> Runner.prepare settings w)
        ~baseline:(fun p -> Runner.baseline_run cfg p)
        ()
    in
    let run () =
      let est = establish () in
      (est, Breakdown.focus ~oracle:est.Snapshot.est_oracle ~focus_cat:Category.Dl1)
    in
    (* prime: the first establishment builds and the persist saves the
       grown memo, so measured calls replay entirely from disk *)
    let est0, bd0 = run () in
    Snapshot.persist ~dir:cache_dir ~key est0;
    (bd0, fun () -> snd (run ()))
  in
  Printf.printf "\nservice mode: warm daemon query vs cold one-shot (%s, %d+%d):\n"
    bench warmup measure;
  let ok = ref true in
  let rows =
    Client.with_client ~retry_for:10.0 ~socket (fun c ->
        List.concat_map
          (fun engine ->
            (* prime the daemon's caches, keeping the reply for the
               bit-identity check *)
            let reply = Client.call c (breakdown_req engine) in
            (match reply.Protocol.body with
             | Ok _ -> ()
             | Error (_, msg) -> failwith ("service bench: " ^ msg));
            let body_of bd =
              Protocol.R_breakdown
                {
                  baseline = bd.Breakdown.baseline_cycles;
                  rows =
                    List.map
                      (fun (r : Breakdown.row) ->
                        { Protocol.row_label = Breakdown.row_label r;
                          row_percent = r.Breakdown.percent;
                          row_cycles = r.Breakdown.cycles })
                      bd.Breakdown.rows;
                }
            in
            let encode body =
              Protocol.encode_reply { Protocol.rep_id = 0; body = Ok body }
            in
            let bd = direct engine () in
            let expected = encode (body_of bd) in
            let identical =
              expected = Protocol.encode_reply { reply with Protocol.rep_id = 0 }
            in
            (* cold: min of single runs (each rebuilds everything) *)
            let cold_ms =
              time_min ~batches:3 ~batch_target:0.
                (fun () -> ignore (direct engine ()))
            in
            let warm_ms =
              time_min (fun () -> ignore (Client.call c (breakdown_req engine)))
            in
            (* cold with a primed snapshot store: each call still starts
               from nothing in memory, but replays prepare/build/memo
               from disk *)
            let bd_cached, cached = cached_of engine in
            let cached_identical = encode (body_of bd_cached) = expected in
            let cached_ms =
              time_min ~batches:3 ~batch_target:0. (fun () -> ignore (cached ()))
            in
            let speedup = cold_ms /. warm_ms in
            let cached_speedup = cold_ms /. cached_ms in
            let pass =
              speedup >= 10. && identical
              && cached_speedup >= 5. && cached_identical
            in
            if not pass then ok := false;
            Printf.printf
              "  %-10s cold %8.2f ms  warm %7.3f ms (%6.1fx)  snapshot \
               %7.2f ms (%5.1fx)  bit-identical %-5s %s\n"
              engine cold_ms warm_ms speedup cached_ms cached_speedup
              (if identical && cached_identical then "yes" else "NO")
              (if pass then "PASS" else "FAIL");
            [
              (Printf.sprintf "service/cold-breakdown-%s" engine, cold_ms);
              (Printf.sprintf "service/warm-query-%s" engine, warm_ms);
              (Printf.sprintf "service/cold-breakdown-%s-cached" engine,
               cached_ms);
            ])
          [ "multisim"; "graph"; "profiler" ])
  in
  Client.with_client ~retry_for:5.0 ~socket (fun c ->
      ignore
        (Client.call c
           { Protocol.req_id = 0; deadline_ms = None; op = Protocol.Shutdown }));
  Thread.join srv;
  Printf.printf
    "service gate (>= 10x warm speedup, >= 5x snapshot cold start, \
     bit-identical replies): %s\n"
    (if !ok then "PASS" else "FAIL");
  if not !ok then exit 1;
  rows

(* --- machine-readable perf trajectory ------------------------------- *)

let write_json file (rows : (string * float) list) =
  let oc = open_out file in
  output_string oc "{\n";
  output_string oc
    "  \"generated-by\": \"dune exec bench/main.exe -- micro --json\",\n";
  output_string oc "  \"unit\": \"ms/run\",\n";
  output_string oc "  \"results\": {\n";
  let n = List.length rows in
  List.iteri
    (fun i (name, ms) ->
      Printf.fprintf oc "    %S: %.4f%s\n" name ms
        (if i = n - 1 then "" else ","))
    rows;
  output_string oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" file

(* Minimal reader for the JSON written above: lines of the form
   ["name": number], taken only between the "results" opener and its
   closing brace — rows in other sections (seed manifest, settings)
   must not leak into the comparison. *)
let read_json file : (string * float) list =
  let ic = open_in file in
  let rows = ref [] in
  let in_results = ref false in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if not !in_results then begin
         if line = "\"results\": {" then in_results := true
       end
       else if line = "}" || line = "}," then in_results := false
       else
         match String.index_opt line ':' with
         | Some i when String.length line > 1 && line.[0] = '"' ->
           let name = String.sub line 1 (i - 2) in
           let value = String.sub line (i + 1) (String.length line - i - 1) in
           let value =
             String.trim
               (match String.index_opt value ',' with
                | Some j -> String.sub value 0 j
                | None -> value)
           in
           (match float_of_string_opt value with
            | Some v -> rows := (name, v) :: !rows
            | None -> ())
         | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

(** Exit nonzero if any benchmark present in both runs got more than
    [tolerance] slower, or if a baseline row was not measured at all —
    a silently vanished benchmark would otherwise pass the gate exactly
    when it breaks.  New names are reported but do not fail. *)
let check_regressions ~baseline_file (rows : (string * float) list) =
  let tolerance = 0.25 in
  (* sub-0.1 ms rows (socket round trips) jitter by tens of microseconds
     with the scheduler; an absolute slack keeps the relative gate from
     firing on noise without loosening it for multi-ms engine rows *)
  let slack_ms = 0.05 in
  let baseline = read_json baseline_file in
  let regressions = ref [] in
  Printf.printf "\nregression check vs %s (tolerance +%.0f%% or +%.2f ms):\n"
    baseline_file (tolerance *. 100.) slack_ms;
  List.iter
    (fun (name, ms) ->
      match List.assoc_opt name baseline with
      | None -> Printf.printf "  %-36s (new, no baseline)\n" name
      | Some base ->
        let delta = (ms -. base) /. base *. 100. in
        let flag =
          if ms > base *. (1. +. tolerance) && ms > base +. slack_ms then begin
            regressions := (name, base, ms) :: !regressions;
            "REGRESSION"
          end
          else if delta < -5. then "improved"
          else "ok"
        in
        Printf.printf "  %-36s %8.3f -> %8.3f ms/run  %+6.1f%%  %s\n" name base
          ms delta flag)
    rows;
  let missing =
    List.filter (fun (name, _) -> not (List.mem_assoc name rows)) baseline
  in
  List.iter
    (fun (name, _) ->
      Printf.printf "  %-36s (in baseline, MISSING from this run)\n" name)
    missing;
  (match missing with
   | [] -> ()
   | m ->
     Printf.printf "\n%d baseline benchmark(s) were not measured:\n"
       (List.length m);
     List.iter (fun (name, _) -> Printf.printf "  %s\n" name) m);
  match (!regressions, missing) with
  | [], [] ->
    Printf.printf "no engine regressed more than %.0f%%\n" (tolerance *. 100.)
  | rs, _ ->
    (* the gate failed: repeat the offending engines as one compact delta
       table so a CI log tail shows the full verdict, not just "exit 1" *)
    if rs <> [] then begin
      Printf.printf "\n%d engine benchmark(s) regressed more than %.0f%%:\n"
        (List.length rs) (tolerance *. 100.);
      Printf.printf "  %-36s %10s %10s %8s\n" "engine" "baseline" "current"
        "delta";
      List.iter
        (fun (name, base, ms) ->
          Printf.printf "  %-36s %10.3f %10.3f %+7.1f%%\n" name base ms
            ((ms -. base) /. base *. 100.))
        (List.rev rs)
    end;
    exit 1

(* ------------------------------------------------------------------ *)
(* Conformance sweep timing                                            *)
(* ------------------------------------------------------------------ *)

(* How long one full law-table sweep takes per case class: the number CI
   budgets [icost check --budget-s] against.  One kernel and one
   generated case, single measurement each (a sweep re-simulates the
   case tens of times already, so best-of-batches would be minutes). *)
let run_check () : (string * float) list =
  let time_case (case : Icost_check.Case.t) =
    let t0 = Unix.gettimeofday () in
    let prepared = Icost_check.Case.prepare case in
    let ctx =
      Icost_check.Laws.make_ctx
        ~prof_opts:(Icost_check.Case.prof_opts case)
        (Icost_check.Case.config case) prepared
    in
    let results = Icost_check.Laws.run_all ctx in
    let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    (ms, List.length (Icost_check.Laws.violations results))
  in
  Printf.printf "\nconformance sweep (full law table per case):\n";
  List.map
    (fun (label, case) ->
      let ms, failed = time_case case in
      Printf.printf "  check/%-28s %10.1f ms/sweep%s\n" label ms
        (if failed = 0 then "" else Printf.sprintf "  (%d VIOLATIONS)" failed);
      (Printf.sprintf "check/%s" label, ms))
    [
      ( "laws-gcc-4k",
        { Icost_check.Case.target = Icost_check.Case.Bench "gcc";
          variant = "base"; warmup = 20_000; measure = 4_000;
          sample_seed = 42 } );
      ( "laws-gen-mixed-4k",
        { Icost_check.Case.target =
            Icost_check.Case.Generated (Icost_check.Gen.Mixed, 42);
          variant = "base"; warmup = 20_000; measure = 4_000;
          sample_seed = 42 } );
    ]

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* split flags ([--json FILE], [--baseline FILE], [--trace FILE],
     [--metrics FILE]) from experiment ids *)
  let json_file = ref None and baseline_file = ref None in
  let trace_file = ref None and metrics_file = ref None in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse acc rest
    | "--baseline" :: f :: rest ->
      baseline_file := Some f;
      parse acc rest
    | "--trace" :: f :: rest ->
      trace_file := Some f;
      parse acc rest
    | "--metrics" :: f :: rest ->
      metrics_file := Some f;
      parse acc rest
    | ("--json" | "--baseline" | "--trace" | "--metrics") :: [] ->
      failwith "--json/--baseline/--trace/--metrics need a file argument"
    | id :: rest -> parse (id :: acc) rest
  in
  let ids = parse [] args in
  if !trace_file <> None || !metrics_file <> None then
    Icost_util.Telemetry.enable ();
  at_exit (fun () ->
      if !trace_file <> None || !metrics_file <> None then begin
        let m =
          Icost_report.Telemetry_export.manifest
            ~config_digest:(Icost_report.Telemetry_export.digest Config.default)
            ~seed:Icost_profiler.Sampler.default_opts.seed
            ~workloads:Workload.names ()
        in
        Option.iter
          (fun file -> Icost_report.Telemetry_export.write_trace ~file m)
          !trace_file;
        Option.iter
          (fun file -> Icost_report.Telemetry_export.write_metrics ~file m)
          !metrics_file
      end);
  (* fail on a bad baseline path up front, not after minutes of timing *)
  Option.iter
    (fun f ->
      if not (Sys.file_exists f) then (
        Printf.eprintf "error: baseline file %s does not exist\n" f;
        exit 2))
    !baseline_file;
  let micro_requested = ids = [] || List.mem "micro" ids in
  let service_requested = List.mem "service" ids in
  let check_requested = List.mem "check" ids in
  let experiment_ids =
    List.filter (fun i -> i <> "micro" && i <> "service" && i <> "check") ids
  in
  if experiment_ids <> [] || ids = [] then run_experiments experiment_ids;
  let rows =
    (if service_requested then run_service () else [])
    @ (if check_requested then run_check () else [])
    @ (if micro_requested then run_micro () else [])
  in
  if rows <> [] then begin
    Option.iter (fun f -> write_json f rows) !json_file;
    Option.iter (fun f -> check_regressions ~baseline_file:f rows) !baseline_file
  end