(** Dependence-graph construction.

    Two entry points:

    - {!of_sim}: build the full graph of a simulated execution, taking
      dynamic latencies (functional-unit contention, I-cache stalls) from a
      baseline simulation and the static structure (window size, bandwidths,
      pipeline latencies) from the machine description — the static/dynamic
      split of the paper's Figure 5b.
    - {!of_infos}: build a graph fragment from per-instruction records
      assembled by the shotgun profiler, which gathered the same
      information from samples instead of a simulator.

    Both share the same edge-emission logic, so the profiler's fragments
    are analyzed by literally the same code as the simulator's graphs. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Category = Icost_core.Category

(** Everything the graph needs to know about one dynamic instruction.
    Producer indices are sequence numbers within the same graph; out-of-range
    producers (before the fragment start) must be omitted. *)
type instr_info = {
  reg_producers : int list;
  mem_producer : int option;
  share_src : int option;
  exec_base : int;  (** execution latency not owned by any category *)
  exec_components : (Category.t * int) list;
  imiss_delay : int;  (** I-cache/I-TLB stall (owned by Imiss) *)
  fu_wait : int;  (** issue/FU contention (owned by Bw) *)
  store_wait : int;  (** store-bandwidth commit contention (owned by Bw) *)
  mispredict : bool;  (** this instruction is a mispredicted branch *)
  taken_branch : bool;  (** taken control transfer (fetch-group boundary) *)
}

(** Structural parameters of the graph (from the machine description). *)
type params = {
  window : int;
  fetch_bw : int;
  commit_bw : int;
  fetch_taken_limit : int;
      (** taken branches that terminate a fetch cycle (Table 6: 2) *)
  wakeup_latency : int;
  branch_recovery : int;
  (* Table 2 model refinements, exposed for ablation: *)
  explicit_bw : bool;
      (** true: FBW/CBW bandwidth edges (the new model); false: bandwidth
          approximated as latency on DD/CC edges (previous work) *)
  pp_edges : bool;  (** model cache-line sharing with PP edges *)
}

let params_of_config (cfg : Config.t) =
  {
    window = cfg.window_size;
    fetch_bw = cfg.fetch_bw;
    commit_bw = cfg.commit_bw;
    fetch_taken_limit = cfg.fetch_taken_limit;
    wakeup_latency = cfg.wakeup_latency;
    branch_recovery = cfg.branch_recovery;
    explicit_bw = true;
    pp_edges = true;
  }

(** Execution-latency decomposition for an instruction: what the EP edge
    carries, split by owning category. *)
let exec_decomposition (cfg : Config.t) (d : Trace.dyn) (e : Events.evt) :
    int * (Category.t * int) list =
  let cls = Isa.class_of d.instr in
  match cls with
  | Isa.Mem_load ->
    let hit, miss = Ooo.load_latency_parts cfg e in
    (0, [ (Category.Dl1, hit); (Category.Dmiss, miss) ])
  | Isa.Mem_store | Isa.Short_alu | Isa.Ctrl | Isa.Nop_class ->
    (0, [ (Category.Shalu, Config.exec_latency cfg cls) ])
  | Isa.Int_mul | Isa.Int_div | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div ->
    (0, [ (Category.Lgalu, Config.exec_latency cfg cls) ])

let components_of_list l =
  List.filter_map
    (fun (cat, lat) -> if lat > 0 then Some { Graph.cat; lat } else None)
    l

(** Emit all edges for instruction [i] given its [info] and whether the
    previous instruction mispredicted. *)
let emit (p : params) (b : Graph.Builder.b) ~prev_mispredict ~taken_limit_src
    ~seq:(i : int) (info : instr_info) =
  let open Graph in
  Builder.note_instr b;
  let n kind = node ~seq:i ~kind in
  let np seq kind = node ~seq ~kind in
  (* --- edges into D --- *)
  if i > 0 then begin
    (* DD: in-order dispatch; carries the I-cache miss latency of i, and, in
       the previous-work model, an implicit fetch-bandwidth latency *)
    let implicit_bw =
      if (not p.explicit_bw) && i mod p.fetch_bw = 0 then
        [ (Category.Bw, 1) ]
      else []
    in
    let comps =
      components_of_list ((Category.Imiss, info.imiss_delay) :: implicit_bw)
    in
    Builder.add_edge b ~src:(np (i - 1) D) ~dst:(n D) ~kind:DD ~components:comps ();
    if prev_mispredict then
      Builder.add_edge b ~src:(np (i - 1) P) ~dst:(n D) ~kind:PD
        ~base:p.branch_recovery ~removed_by:Category.Bmisp ()
  end;
  if p.explicit_bw && i >= p.fetch_bw then
    Builder.add_edge b ~src:(np (i - p.fetch_bw) D) ~dst:(n D) ~kind:FBW ~base:1
      ~removed_by:Category.Bw ();
  (* fetch stops at the [fetch_taken_limit]-th taken branch per cycle, so the
     m-th taken branch dispatches at least one cycle after the
     (m - limit)-th — an FBW edge between taken branches *)
  (match taken_limit_src with
   | Some j when p.explicit_bw && j < i ->
     Builder.add_edge b ~src:(np j D) ~dst:(n D) ~kind:FBW ~base:1
       ~removed_by:Category.Bw ()
   | _ -> ());
  if i >= p.window then
    Builder.add_edge b ~src:(np (i - p.window) C) ~dst:(n D) ~kind:CD
      ~removed_by:Category.Win ();
  (* the very first instruction has no DD edge to carry its I-cache stall;
     a node floor on its D node preserves the latency *)
  if i = 0 && info.imiss_delay > 0 then
    Builder.add_floor b ~node:(n D) ~base:0
      ~components:(components_of_list [ (Category.Imiss, info.imiss_delay) ]);
  (* --- D -> R --- *)
  Builder.add_edge b ~src:(n D) ~dst:(n R) ~kind:DR ~base:1 ();
  (* --- data dependences into R --- *)
  let wakeup = p.wakeup_latency - 1 in
  let dep j =
    if j >= 0 && j < i then
      Builder.add_edge b ~src:(np j P) ~dst:(n R) ~kind:PR ~base:wakeup ()
  in
  List.iter dep info.reg_producers;
  Option.iter dep info.mem_producer;
  (* --- R -> E: contention --- *)
  Builder.add_edge b ~src:(n R) ~dst:(n E) ~kind:RE
    ~components:(components_of_list [ (Category.Bw, info.fu_wait) ])
    ();
  (* --- E -> P: execution latency --- *)
  Builder.add_edge b ~src:(n E) ~dst:(n P) ~kind:EP ~base:info.exec_base
    ~components:(components_of_list info.exec_components)
    ();
  (* --- PP: cache-line sharing --- *)
  (match info.share_src with
   | Some j when p.pp_edges && j >= 0 && j < i ->
     Builder.add_edge b ~src:(np j P) ~dst:(n P) ~kind:PP
       ~removed_by:Category.Dmiss ()
   | _ -> ());
  (* --- commit --- *)
  Builder.add_edge b ~src:(n P) ~dst:(n C) ~kind:PC ~base:1 ();
  if i > 0 then begin
    let implicit_bw =
      if (not p.explicit_bw) && i mod p.commit_bw = 0 then [ (Category.Bw, 1) ]
      else []
    in
    (* the CC edge also carries store-bandwidth contention (Fig. 5b) *)
    Builder.add_edge b ~src:(np (i - 1) C) ~dst:(n C) ~kind:CC
      ~components:(components_of_list ((Category.Bw, info.store_wait) :: implicit_bw))
      ()
  end;
  if p.explicit_bw && i >= p.commit_bw then
    Builder.add_edge b ~src:(np (i - p.commit_bw) C) ~dst:(n C) ~kind:CBW ~base:1
      ~removed_by:Category.Bw ()

(** Build a graph from an array of per-instruction records. *)
let of_infos (p : params) (infos : instr_info array) : Graph.t =
  let b = Graph.Builder.create () in
  let taken_hist = Queue.create () in
  Array.iteri
    (fun i info ->
      let prev_mispredict = i > 0 && infos.(i - 1).mispredict in
      let taken_limit_src =
        if info.taken_branch && Queue.length taken_hist >= p.fetch_taken_limit then
          Some (Queue.peek taken_hist)
        else None
      in
      emit p b ~prev_mispredict ~taken_limit_src ~seq:i info;
      if info.taken_branch then begin
        Queue.add i taken_hist;
        if Queue.length taken_hist > p.fetch_taken_limit then
          ignore (Queue.pop taken_hist)
      end)
    infos;
  Graph.Builder.finish b

(** Per-instruction record from a simulation. *)
let info_of_sim (cfg : Config.t) (d : Trace.dyn) (e : Events.evt)
    (slot : Ooo.slot) : instr_info =
  let exec_base, exec_components = exec_decomposition cfg d e in
  {
    reg_producers = List.map snd d.reg_deps;
    mem_producer = d.mem_dep;
    share_src = e.share_src;
    exec_base;
    exec_components;
    imiss_delay = Ooo.imiss_delay cfg e;
    fu_wait = slot.fu_wait;
    store_wait = slot.store_wait;
    mispredict = e.mispredict;
    taken_branch = Isa.is_branch d.instr && d.taken;
  }

(** Build the full dependence graph of a simulated execution.  [result] must
    be a *baseline* (un-idealized) run: its dynamic contention latencies
    label the RE edges. *)
let of_sim (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array)
    (result : Ooo.result) : Graph.t =
  Icost_util.Telemetry.with_span "graph.build" (fun () ->
      let p = params_of_config cfg in
      let n = Trace.length trace in
      let infos =
        Array.init n (fun i ->
            info_of_sim cfg (Trace.get trace i) evts.(i) result.slots.(i))
      in
      of_infos p infos)

(** A {!Icost_core.Cost.oracle} backed by graph re-evaluation: execution
    time under idealization [s] is the critical-path length with [s]'s
    edges edited. *)
let oracle (g : Graph.t) : Icost_core.Cost.oracle =
  Icost_core.Cost.with_batch
    ~batch:(fun sets -> Array.map float_of_int (Graph.eval_subsets g sets))
    (fun s -> float_of_int (Graph.critical_length ~ideal:s g))
