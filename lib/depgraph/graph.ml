(** The microexecution dependence-graph model (Tables 2 and 3 of the paper).

    Each dynamic instruction contributes five nodes:

    - [D]: dispatch into the window
    - [R]: all data operands ready, waiting on a functional unit
    - [E]: executing
    - [P]: completed execution
    - [C]: committing

    and up to twelve kinds of latency-labelled dependence edges:

    {v
    DD   in-order dispatch            D(i-1)   -> D(i)   (+ I-cache miss latency)
    FBW  finite fetch bandwidth       D(i-fbw) -> D(i)   latency 1
    CD   finite re-order buffer       C(i-w)   -> D(i)
    PD   control dependence           P(i-1)   -> D(i)   (mispredicted branch; recovery latency)
    DR   execution follows dispatch   D(i)     -> R(i)
    PR   data dependences             P(j)     -> R(i)   (register and memory)
    RE   execute after ready          R(i)     -> E(i)   (+ FU contention)
    EP   complete after execute       E(i)     -> P(i)   (execution latency)
    PP   cache-line sharing           P(j)     -> P(i)   (partial misses)
    PC   commit follows completion    P(i)     -> C(i)
    CC   in-order commit              C(i-1)   -> C(i)
    CBW  commit bandwidth             C(i-cbw) -> C(i)   latency 1
    v}

    Edge latencies are stored *decomposed by category* so that idealizing a
    set of categories is a pure re-evaluation: components owned by an
    idealized category contribute zero, and some edges (PD, CD, FBW, CBW,
    PP) disappear entirely when their owning category is idealized.  This is
    the "alter a bottleneck's edges" methodology of Section 3. *)

module Category = Icost_core.Category
module Telemetry = Icost_util.Telemetry

type node_kind = D | R | E | P | C

let node_kinds = [| D; R; E; P; C |]

let kind_index = function D -> 0 | R -> 1 | E -> 2 | P -> 3 | C -> 4

let kind_name = function D -> "D" | R -> "R" | E -> "E" | P -> "P" | C -> "C"

type edge_kind = DD | FBW | CD | PD | DR | PR | RE | EP | PP | PC | CC | CBW

let edge_kind_name = function
  | DD -> "DD"
  | FBW -> "FBW"
  | CD -> "CD"
  | PD -> "PD"
  | DR -> "DR"
  | PR -> "PR"
  | RE -> "RE"
  | EP -> "EP"
  | PP -> "PP"
  | PC -> "PC"
  | CC -> "CC"
  | CBW -> "CBW"

(** A latency component owned by a category: idealizing the category zeroes
    the component. *)
type component = { cat : Category.t; lat : int }

type edge = {
  src : int;  (** node id *)
  dst : int;
  kind : edge_kind;
  base : int;  (** latency that no idealization removes *)
  components : component list;
  removed_by : Category.t option;
      (** the whole edge (constraint included) disappears when this category
          is idealized *)
}

(** Flat-array ("compiled") form of the edge and floor latency data,
    precomputed at {!Builder.finish} time.  The hot evaluation loop reads
    only unboxed [int array]s: per edge a source node, a base latency, a
    removal bitmask (0 when no category removes the edge) and a slice of
    (category-bitmask, latency-delta) component pairs; floors are the same
    data sorted by node so one forward cursor replaces the per-eval
    [Hashtbl].  Category sets are bitmasks ({!Category.Set.t} = [int]), so
    membership tests in the inner loop are single [land]s. *)
type compiled = {
  e_src : int array;  (** per edge, in CSR order *)
  e_base : int array;
  e_removed : int array;  (** singleton category mask, or 0 *)
  e_comp_off : int array;  (** [num_edges + 1] offsets into [comp_*] *)
  comp_mask : int array;
  comp_lat : int array;
  f_node : int array;  (** floor entries, sorted by node *)
  f_base : int array;
  f_off : int array;  (** [num_floors + 1] offsets into [f_comp_*] *)
  f_comp_mask : int array;
  f_comp_lat : int array;
}

type t = {
  num_instrs : int;
  edges : edge array;  (** sorted by [dst] *)
  first_in : int array;  (** CSR index: incoming edges of node [v] are
                             [edges.(first_in.(v)) .. edges.(first_in.(v+1) - 1)] *)
  floors : (int * int * component list) list;
      (** (node, base, components): minimum arrival times for nodes with no
          incoming edge to carry them (e.g. the first instruction's I-cache
          stall delaying its dispatch) *)
  compiled : compiled;
}

let num_nodes t = 5 * t.num_instrs

let node ~seq ~kind = (5 * seq) + kind_index kind

let seq_of_node v = v / 5

let kind_of_node v = node_kinds.(v mod 5)

let node_name v = Printf.sprintf "%s%d" (kind_name (kind_of_node v)) (seq_of_node v)

(** Effective latency of [e] under the idealization [s]; [None] if the edge
    is removed entirely. *)
let edge_latency (s : Category.Set.t) (e : edge) : int option =
  match e.removed_by with
  | Some c when Category.Set.mem c s -> None
  | _ ->
    let extra =
      List.fold_left
        (fun acc { cat; lat } -> if Category.Set.mem cat s then acc else acc + lat)
        0 e.components
    in
    Some (e.base + extra)

let cat_mask (c : Category.t) : int = Category.Set.singleton c

let compile ~(edges : edge array) ~(floors : (int * int * component list) list)
    : compiled =
  let ne = Array.length edges in
  let e_src = Array.make ne 0 in
  let e_base = Array.make ne 0 in
  let e_removed = Array.make ne 0 in
  let e_comp_off = Array.make (ne + 1) 0 in
  let ncomp =
    Array.fold_left (fun acc e -> acc + List.length e.components) 0 edges
  in
  let comp_mask = Array.make (max 1 ncomp) 0 in
  let comp_lat = Array.make (max 1 ncomp) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i e ->
      e_src.(i) <- e.src;
      e_base.(i) <- e.base;
      e_removed.(i) <- (match e.removed_by with None -> 0 | Some c -> cat_mask c);
      e_comp_off.(i) <- !k;
      List.iter
        (fun { cat; lat } ->
          comp_mask.(!k) <- cat_mask cat;
          comp_lat.(!k) <- lat;
          incr k)
        e.components)
    edges;
  e_comp_off.(ne) <- !k;
  let floors =
    List.stable_sort (fun (a, _, _) (b, _, _) -> compare (a : int) b) floors
  in
  let nf = List.length floors in
  let f_node = Array.make (max 1 nf) max_int in
  let f_base = Array.make (max 1 nf) 0 in
  let f_off = Array.make (nf + 1) 0 in
  let nfcomp =
    List.fold_left (fun acc (_, _, cs) -> acc + List.length cs) 0 floors
  in
  let f_comp_mask = Array.make (max 1 nfcomp) 0 in
  let f_comp_lat = Array.make (max 1 nfcomp) 0 in
  let j = ref 0 in
  List.iteri
    (fun i (node, base, cs) ->
      f_node.(i) <- node;
      f_base.(i) <- base;
      f_off.(i) <- !j;
      List.iter
        (fun { cat; lat } ->
          f_comp_mask.(!j) <- cat_mask cat;
          f_comp_lat.(!j) <- lat;
          incr j)
        cs)
    floors;
  f_off.(nf) <- !j;
  let f_node = if nf = 0 then [||] else f_node in
  let f_base = if nf = 0 then [||] else f_base in
  {
    e_src;
    e_base;
    e_removed;
    e_comp_off;
    comp_mask;
    comp_lat;
    f_node;
    f_base;
    f_off;
    f_comp_mask;
    f_comp_lat;
  }

(* ---------- building ---------- *)

module Builder = struct
  type b = {
    mutable edge_buf : edge list;
    mutable n_edges : int;
    mutable n_instrs : int;
    mutable floors : (int * int * component list) list;
  }

  let create () = { edge_buf = []; n_edges = 0; n_instrs = 0; floors = [] }

  (** Constrain [node] to arrive no earlier than [base] plus the (category
      owned) components. *)
  let add_floor b ~node ~base ~components =
    b.floors <- (node, base, components) :: b.floors

  let add_edge b ~src ~dst ~kind ?(base = 0) ?(components = []) ?removed_by () =
    assert (src < dst);
    b.edge_buf <- { src; dst; kind; base; components; removed_by } :: b.edge_buf;
    b.n_edges <- b.n_edges + 1

  let note_instr b = b.n_instrs <- b.n_instrs + 1

  let c_graphs = Telemetry.counter "graph.finished"
  let c_nodes = Telemetry.counter "graph.nodes"
  let c_edges = Telemetry.counter "graph.edges"
  let c_components = Telemetry.counter "graph.edge_components"

  (** Finalize into CSR form (counting sort of edges by destination). *)
  let finish b : t =
    let sp = Telemetry.start_span "graph.compile" in
    let num_instrs = b.n_instrs in
    let n_nodes = 5 * num_instrs in
    let counts = Array.make (n_nodes + 1) 0 in
    List.iter (fun e -> counts.(e.dst + 1) <- counts.(e.dst + 1) + 1) b.edge_buf;
    for v = 1 to n_nodes do
      counts.(v) <- counts.(v) + counts.(v - 1)
    done;
    let first_in = Array.copy counts in
    let dummy =
      { src = 0; dst = 0; kind = DD; base = 0; components = []; removed_by = None }
    in
    let edges = Array.make b.n_edges dummy in
    let cursor = Array.copy first_in in
    List.iter
      (fun e ->
        edges.(cursor.(e.dst)) <- e;
        cursor.(e.dst) <- cursor.(e.dst) + 1)
      b.edge_buf;
    let compiled = compile ~edges ~floors:b.floors in
    Telemetry.incr c_graphs;
    Telemetry.add c_nodes n_nodes;
    Telemetry.add c_edges b.n_edges;
    Telemetry.add c_components (Array.length compiled.comp_mask);
    if Telemetry.enabled () then
      Telemetry.end_span sp
        ~attrs:
          [
            ("instrs", string_of_int num_instrs);
            ("edges", string_of_int b.n_edges);
          ]
    else Telemetry.end_span sp;
    { num_instrs; edges; first_in; floors = b.floors; compiled }
end

(* ---------- evaluation ---------- *)

(* Generic (boxed) evaluation, only used when an [override] needs to
   inspect full edge records. *)
let eval_generic ~(ideal : Category.Set.t) ~(override : edge -> int option)
    (t : t) : int array =
  let n = num_nodes t in
  let time = Array.make n 0 in
  let floor = Hashtbl.create 4 in
  List.iter
    (fun (node, base, components) ->
      let lat =
        List.fold_left
          (fun acc { cat; lat } ->
            if Category.Set.mem cat ideal then acc else acc + lat)
          base components
      in
      Hashtbl.replace floor node
        (max lat (Option.value ~default:0 (Hashtbl.find_opt floor node))))
    t.floors;
  for v = 0 to n - 1 do
    let lo = t.first_in.(v) and hi = t.first_in.(v + 1) in
    let best = ref 0 in
    for k = lo to hi - 1 do
      let e = t.edges.(k) in
      let lat =
        match override e with Some l -> Some l | None -> edge_latency ideal e
      in
      match lat with
      | None -> ()
      | Some lat ->
        let cand = time.(e.src) + lat in
        if cand > !best then best := cand
    done;
    (match Hashtbl.find_opt floor v with
     | Some f when f > !best -> best := f
     | _ -> ());
    time.(v) <- !best
  done;
  time

(** [eval_into ?ideal t time] fills [time] (length >= [num_nodes t]) with
    the arrival time of every node under the idealization, in one
    topological pass over the compiled arrays, allocating nothing.  The
    inner loop is the hot path of every graph-backed cost query: a subset
    sweep calls it once per category subset on one scratch buffer. *)
let c_evals = Telemetry.counter "graph.evals"

let eval_into ?(ideal = Category.Set.empty) (t : t) (time : int array) : unit =
  let n = num_nodes t in
  if Array.length time < n then invalid_arg "Graph.eval_into: buffer too short";
  (* single branch + atomic add; keeps this path allocation-free *)
  Telemetry.incr c_evals;
  let s : int = ideal in
  let c = t.compiled in
  let nf = Array.length c.f_node in
  let fi = ref 0 in
  for v = 0 to n - 1 do
    let best = ref 0 in
    let hi = t.first_in.(v + 1) in
    for k = t.first_in.(v) to hi - 1 do
      if c.e_removed.(k) land s = 0 then begin
        let lat = ref c.e_base.(k) in
        for j = c.e_comp_off.(k) to c.e_comp_off.(k + 1) - 1 do
          if c.comp_mask.(j) land s = 0 then lat := !lat + c.comp_lat.(j)
        done;
        let cand = time.(c.e_src.(k)) + !lat in
        if cand > !best then best := cand
      end
    done;
    while !fi < nf && c.f_node.(!fi) = v do
      let lat = ref c.f_base.(!fi) in
      for j = c.f_off.(!fi) to c.f_off.(!fi + 1) - 1 do
        if c.f_comp_mask.(j) land s = 0 then lat := !lat + c.f_comp_lat.(j)
      done;
      if !lat > !best then best := !lat;
      incr fi
    done;
    time.(v) <- !best
  done

(** [eval ?ideal ?override t] computes the arrival time of every node under
    the given idealization (default: none), in one topological pass.  All
    edges point forward in node order, so node order is a topological
    order.  [override], when given, may replace an edge's latency
    (returning [None] leaves the idealized latency in force); it enables
    finer-grained what-if queries than category idealization, e.g. zeroing
    a single instruction's execution latency (Tune et al.'s per-instruction
    cost).  Without an override the query runs on the compiled flat-array
    representation. *)
let eval ?(ideal = Category.Set.empty) ?override (t : t) : int array =
  match override with
  | Some override -> eval_generic ~ideal ~override t
  | None ->
    let time = Array.make (num_nodes t) 0 in
    eval_into ~ideal t time;
    time

(** Critical-path length: arrival time of the last C node (plus one cycle to
    retire it), i.e. the modeled execution time. *)
let critical_length ?ideal ?override (t : t) : int =
  if t.num_instrs = 0 then 0
  else
    let time = eval ?ideal ?override t in
    time.(node ~seq:(t.num_instrs - 1) ~kind:C) + 1

(** [eval_subsets t sets] computes {!critical_length} under every
    idealization in [sets], sweeping the compiled graph with one scratch
    buffer per pool job (zero per-query allocation) and fanning the sweep
    out across the domain pool.  Results are index-aligned with [sets]. *)
let eval_subsets (t : t) (sets : Category.Set.t array) : int array =
  let m = Array.length sets in
  let out = Array.make m 0 in
  if t.num_instrs > 0 && m > 0 then begin
    let sp = Telemetry.start_span "graph.eval_subsets" in
    let sink = node ~seq:(t.num_instrs - 1) ~kind:C in
    Icost_util.Pool.parallel_chunks m (fun ~lo ~hi ->
        let buf = Array.make (num_nodes t) 0 in
        for i = lo to hi - 1 do
          eval_into ~ideal:sets.(i) t buf;
          out.(i) <- buf.(sink) + 1
        done);
    if Telemetry.enabled () then
      Telemetry.end_span sp ~attrs:[ ("sets", string_of_int m) ]
    else Telemetry.end_span sp
  end;
  out

(** Cost of a set of edges (Tune et al.): speedup from zeroing the latency
    of every edge matching [pred]. *)
let cost_of_edges ?ideal (t : t) pred : int =
  let base = critical_length ?ideal t in
  let zeroed = critical_length ?ideal ~override:(fun e -> if pred e then Some 0 else None) t in
  base - zeroed

(** Cost of one dynamic instruction's execution latency: zero its EP edge. *)
let instr_cost ?ideal (t : t) ~seq : int =
  cost_of_edges ?ideal t (fun e -> e.kind = EP && seq_of_node e.dst = seq)

(** Slack of a node: how much later it could arrive without growing the
    critical path.  Computed from forward times and backward requirement
    times in two passes. *)
let slacks ?(ideal = Category.Set.empty) (t : t) : int array =
  let n = num_nodes t in
  let time = eval ~ideal t in
  let cp = if n = 0 then 0 else time.(n - 1) in
  (* latest(v): latest arrival of v keeping the last C node at cp *)
  let latest = Array.make n max_int in
  if n > 0 then latest.(n - 1) <- cp;
  for v = n - 1 downto 0 do
    let lo = t.first_in.(v) and hi = t.first_in.(v + 1) in
    for k = lo to hi - 1 do
      let e = t.edges.(k) in
      match edge_latency ideal e with
      | None -> ()
      | Some lat ->
        if latest.(v) <> max_int && latest.(v) - lat < latest.(e.src) then
          latest.(e.src) <- latest.(v) - lat
    done
  done;
  Array.init n (fun v ->
      if latest.(v) = max_int then max_int else latest.(v) - time.(v))

(** [critical_path t] returns the node ids of one critical path, last node
    first, together with the edge kinds taken (paired with the *downstream*
    node).  Ties are broken toward the earliest incoming edge. *)
let critical_path ?(ideal = Category.Set.empty) (t : t) : (int * edge_kind option) list =
  if t.num_instrs = 0 then []
  else begin
    let time = eval ~ideal t in
    let rec walk v acc =
      let hi = t.first_in.(v + 1) in
      let pred = ref None in
      let found = ref false in
      let k = ref t.first_in.(v) in
      (* stop at the first (earliest) incoming edge on the critical path *)
      while (not !found) && !k < hi do
        let e = t.edges.(!k) in
        (match edge_latency ideal e with
         | None -> ()
         | Some lat ->
           if time.(e.src) + lat = time.(v) then begin
             pred := Some e;
             found := true
           end);
        incr k
      done;
      match !pred with
      | Some e when time.(v) > 0 -> walk e.src ((v, Some e.kind) :: acc)
      | _ -> (v, None) :: acc
    in
    walk (node ~seq:(t.num_instrs - 1) ~kind:C) []
  end

(** Count of edges by kind (model statistics and tests). *)
let edge_histogram (t : t) =
  let tbl = Hashtbl.create 12 in
  Array.iter
    (fun e ->
      Hashtbl.replace tbl e.kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.kind)))
    t.edges;
  tbl

let num_edges t = Array.length t.edges

(** Graphviz DOT rendering (for small graphs, e.g. the Figure 2 demo).
    Critical-path edges are drawn bold. *)
let to_dot ?(ideal = Category.Set.empty) (t : t) : string =
  let time = eval ~ideal t in
  let on_cp =
    let cp = critical_path ~ideal t in
    let tbl = Hashtbl.create 64 in
    let rec mark = function
      | (v, _) :: ((w, _) :: _ as rest) ->
        Hashtbl.replace tbl (v, w) ();
        mark rest
      | _ -> ()
    in
    mark cp;
    fun src dst -> Hashtbl.mem tbl (src, dst)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph microexecution {\n  rankdir=LR;\n";
  for i = 0 to t.num_instrs - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d { label=\"i%d\";" i i);
    Array.iter
      (fun k ->
        let v = node ~seq:i ~kind:k in
        Buffer.add_string buf
          (Printf.sprintf " n%d [label=\"%s%d\\nt=%d\"];" v (kind_name k) i time.(v)))
      node_kinds;
    Buffer.add_string buf " }\n"
  done;
  Array.iter
    (fun e ->
      let lat = Option.value ~default:0 (edge_latency ideal e) in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s:%d\"%s];\n" e.src e.dst
           (edge_kind_name e.kind) lat
           (if on_cp e.src e.dst then " penwidth=3" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Compact text rendering of a small graph: one line per instruction with
    node times, then the edge list. *)
let pp_small ppf ?(ideal = Category.Set.empty) (t : t) =
  let time = eval ~ideal t in
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.num_instrs - 1 do
    Format.fprintf ppf "i%-3d" i;
    Array.iter
      (fun k ->
        Format.fprintf ppf "  %s=%-4d" (kind_name k) time.(node ~seq:i ~kind:k))
      node_kinds;
    Format.fprintf ppf "@,"
  done;
  Array.iter
    (fun e ->
      match edge_latency ideal e with
      | None -> ()
      | Some lat ->
        Format.fprintf ppf "%s -> %s  %s lat=%d@," (node_name e.src) (node_name e.dst)
          (edge_kind_name e.kind) lat)
    t.edges;
  Format.fprintf ppf "@]"
