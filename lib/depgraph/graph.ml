(** The microexecution dependence-graph model (Tables 2 and 3 of the paper).

    Each dynamic instruction contributes five nodes:

    - [D]: dispatch into the window
    - [R]: all data operands ready, waiting on a functional unit
    - [E]: executing
    - [P]: completed execution
    - [C]: committing

    and up to twelve kinds of latency-labelled dependence edges:

    {v
    DD   in-order dispatch            D(i-1)   -> D(i)   (+ I-cache miss latency)
    FBW  finite fetch bandwidth       D(i-fbw) -> D(i)   latency 1
    CD   finite re-order buffer       C(i-w)   -> D(i)
    PD   control dependence           P(i-1)   -> D(i)   (mispredicted branch; recovery latency)
    DR   execution follows dispatch   D(i)     -> R(i)
    PR   data dependences             P(j)     -> R(i)   (register and memory)
    RE   execute after ready          R(i)     -> E(i)   (+ FU contention)
    EP   complete after execute       E(i)     -> P(i)   (execution latency)
    PP   cache-line sharing           P(j)     -> P(i)   (partial misses)
    PC   commit follows completion    P(i)     -> C(i)
    CC   in-order commit              C(i-1)   -> C(i)
    CBW  commit bandwidth             C(i-cbw) -> C(i)   latency 1
    v}

    Edge latencies are stored *decomposed by category* so that idealizing a
    set of categories is a pure re-evaluation: components owned by an
    idealized category contribute zero, and some edges (PD, CD, FBW, CBW,
    PP) disappear entirely when their owning category is idealized.  This is
    the "alter a bottleneck's edges" methodology of Section 3. *)

module Category = Icost_core.Category
module Telemetry = Icost_util.Telemetry

type node_kind = D | R | E | P | C

let node_kinds = [| D; R; E; P; C |]

let kind_index = function D -> 0 | R -> 1 | E -> 2 | P -> 3 | C -> 4

let kind_name = function D -> "D" | R -> "R" | E -> "E" | P -> "P" | C -> "C"

type edge_kind = DD | FBW | CD | PD | DR | PR | RE | EP | PP | PC | CC | CBW

let edge_kind_name = function
  | DD -> "DD"
  | FBW -> "FBW"
  | CD -> "CD"
  | PD -> "PD"
  | DR -> "DR"
  | PR -> "PR"
  | RE -> "RE"
  | EP -> "EP"
  | PP -> "PP"
  | PC -> "PC"
  | CC -> "CC"
  | CBW -> "CBW"

(** A latency component owned by a category: idealizing the category zeroes
    the component. *)
type component = { cat : Category.t; lat : int }

type edge = {
  src : int;  (** node id *)
  dst : int;
  kind : edge_kind;
  base : int;  (** latency that no idealization removes *)
  components : component list;
  removed_by : Category.t option;
      (** the whole edge (constraint included) disappears when this category
          is idealized *)
}

(** Flat-array ("compiled") form of the edge and floor latency data,
    precomputed at {!Builder.finish} time.  The hot evaluation loop reads
    only unboxed [int array]s: per edge a source node, a base latency, a
    removal bitmask (0 when no category removes the edge) and a slice of
    (category-bitmask, latency-delta) component pairs; floors are the same
    data sorted by node so one forward cursor replaces the per-eval
    [Hashtbl].  Category sets are bitmasks ({!Category.Set.t} = [int]), so
    membership tests in the inner loop are single [land]s. *)
type compiled = {
  e_src : int array;  (** per edge, in CSR order *)
  e_base : int array;
  e_removed : int array;  (** singleton category mask, or 0 *)
  e_comp_off : int array;  (** [num_edges + 1] offsets into [comp_*] *)
  comp_mask : int array;
  comp_lat : int array;
  f_node : int array;  (** floor entries, sorted by node *)
  f_base : int array;
  f_off : int array;  (** [num_floors + 1] offsets into [f_comp_*] *)
  f_comp_mask : int array;
  f_comp_lat : int array;
  lat_bound : int;
      (** sound upper bound on any node arrival time under any idealization
          (sum over nodes of the max full incoming latency, plus all floor
          latencies), or [-1] when some latency is negative.  Lets the
          sliced evaluator prove that packed lane fields cannot overflow. *)
}

type t = {
  num_instrs : int;
  edges : edge array;  (** sorted by [dst] *)
  first_in : int array;  (** CSR index: incoming edges of node [v] are
                             [edges.(first_in.(v)) .. edges.(first_in.(v+1) - 1)] *)
  floors : (int * int * component list) list;
      (** (node, base, components): minimum arrival times for nodes with no
          incoming edge to carry them (e.g. the first instruction's I-cache
          stall delaying its dispatch) *)
  compiled : compiled;
}

let num_nodes t = 5 * t.num_instrs

let node ~seq ~kind = (5 * seq) + kind_index kind

let seq_of_node v = v / 5

let kind_of_node v = node_kinds.(v mod 5)

let node_name v = Printf.sprintf "%s%d" (kind_name (kind_of_node v)) (seq_of_node v)

(** Effective latency of [e] under the idealization [s]; [None] if the edge
    is removed entirely. *)
let edge_latency (s : Category.Set.t) (e : edge) : int option =
  match e.removed_by with
  | Some c when Category.Set.mem c s -> None
  | _ ->
    let extra =
      List.fold_left
        (fun acc { cat; lat } -> if Category.Set.mem cat s then acc else acc + lat)
        0 e.components
    in
    Some (e.base + extra)

let cat_mask (c : Category.t) : int = Category.Set.singleton c

let compile ~(edges : edge array) ~(floors : (int * int * component list) list)
    : compiled =
  let ne = Array.length edges in
  let e_src = Array.make ne 0 in
  let e_base = Array.make ne 0 in
  let e_removed = Array.make ne 0 in
  let e_comp_off = Array.make (ne + 1) 0 in
  let ncomp =
    Array.fold_left (fun acc e -> acc + List.length e.components) 0 edges
  in
  let comp_mask = Array.make (max 1 ncomp) 0 in
  let comp_lat = Array.make (max 1 ncomp) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i e ->
      e_src.(i) <- e.src;
      e_base.(i) <- e.base;
      e_removed.(i) <- (match e.removed_by with None -> 0 | Some c -> cat_mask c);
      e_comp_off.(i) <- !k;
      List.iter
        (fun { cat; lat } ->
          comp_mask.(!k) <- cat_mask cat;
          comp_lat.(!k) <- lat;
          incr k)
        e.components)
    edges;
  e_comp_off.(ne) <- !k;
  let floors =
    List.stable_sort (fun (a, _, _) (b, _, _) -> compare (a : int) b) floors
  in
  let nf = List.length floors in
  let f_node = Array.make (max 1 nf) max_int in
  let f_base = Array.make (max 1 nf) 0 in
  let f_off = Array.make (nf + 1) 0 in
  let nfcomp =
    List.fold_left (fun acc (_, _, cs) -> acc + List.length cs) 0 floors
  in
  let f_comp_mask = Array.make (max 1 nfcomp) 0 in
  let f_comp_lat = Array.make (max 1 nfcomp) 0 in
  let j = ref 0 in
  List.iteri
    (fun i (node, base, cs) ->
      f_node.(i) <- node;
      f_base.(i) <- base;
      f_off.(i) <- !j;
      List.iter
        (fun { cat; lat } ->
          f_comp_mask.(!j) <- cat_mask cat;
          f_comp_lat.(!j) <- lat;
          incr j)
        cs)
    floors;
  f_off.(nf) <- !j;
  let f_node = if nf = 0 then [||] else f_node in
  let f_base = if nf = 0 then [||] else f_base in
  let lat_bound =
    (* a longest path visits nodes in topological order, so its length is at
       most the sum over nodes of the largest full (no idealization)
       incoming latency; floors only raise a node to a fixed value, so
       adding their totals keeps the bound sound.  Negative latencies break
       both the bound and the packed evaluator's non-negativity invariant,
       so they poison the bound to -1. *)
    let neg = ref false in
    let full e =
      if e.base < 0 then neg := true;
      List.fold_left
        (fun acc { lat; _ } ->
          if lat < 0 then neg := true;
          acc + lat)
        e.base e.components
    in
    let bound = ref 0 in
    let cur_dst = ref (-1) in
    let cur_max = ref 0 in
    Array.iter
      (fun e ->
        let l = full e in
        if e.dst <> !cur_dst then begin
          bound := !bound + !cur_max;
          cur_dst := e.dst;
          cur_max := l
        end
        else if l > !cur_max then cur_max := l)
      edges;
    bound := !bound + !cur_max;
    List.iter
      (fun (_, base, cs) ->
        if base < 0 then neg := true;
        bound :=
          !bound
          + List.fold_left
              (fun acc { lat; _ } ->
                if lat < 0 then neg := true;
                acc + lat)
              base cs)
      floors;
    if !neg then -1 else !bound
  in
  {
    e_src;
    e_base;
    e_removed;
    e_comp_off;
    comp_mask;
    comp_lat;
    f_node;
    f_base;
    f_off;
    f_comp_mask;
    f_comp_lat;
    lat_bound;
  }

(* ---------- compact serialization ---------- *)

let edge_kind_tag = function
  | DD -> 0
  | FBW -> 1
  | CD -> 2
  | PD -> 3
  | DR -> 4
  | PR -> 5
  | RE -> 6
  | EP -> 7
  | PP -> 8
  | PC -> 9
  | CC -> 10
  | CBW -> 11

let edge_kind_of_tag = function
  | 0 -> DD
  | 1 -> FBW
  | 2 -> CD
  | 3 -> PD
  | 4 -> DR
  | 5 -> PR
  | 6 -> RE
  | 7 -> EP
  | 8 -> PP
  | 9 -> PC
  | 10 -> CC
  | 11 -> CBW
  | n -> failwith (Printf.sprintf "Graph.unmarshal: bad edge kind %d" n)

(* The derived [compiled] arrays are dropped ([unmarshal] recompiles them)
   and the edge records are transposed into flat int arrays, so decoding
   allocates a handful of large blocks instead of one block per edge. *)
let marshal (g : t) : string =
  let ne = Array.length g.edges in
  let src = Array.make (max 1 ne) 0
  and dst = Array.make (max 1 ne) 0
  and kindi = Array.make (max 1 ne) 0
  and base = Array.make (max 1 ne) 0
  and removed = Array.make (max 1 ne) 0
  and comp_off = Array.make (ne + 1) 0 in
  let ncomp =
    Array.fold_left (fun acc e -> acc + List.length e.components) 0 g.edges
  in
  let comp_cat = Array.make (max 1 ncomp) 0
  and comp_lat = Array.make (max 1 ncomp) 0 in
  let k = ref 0 in
  Array.iteri
    (fun i e ->
      src.(i) <- e.src;
      dst.(i) <- e.dst;
      kindi.(i) <- edge_kind_tag e.kind;
      base.(i) <- e.base;
      removed.(i) <-
        (match e.removed_by with None -> -1 | Some c -> Category.to_int c);
      comp_off.(i) <- !k;
      List.iter
        (fun { cat; lat } ->
          comp_cat.(!k) <- Category.to_int cat;
          comp_lat.(!k) <- lat;
          incr k)
        e.components)
    g.edges;
  comp_off.(ne) <- !k;
  Marshal.to_string
    ( g.num_instrs,
      ne,
      src,
      dst,
      kindi,
      base,
      removed,
      comp_off,
      comp_cat,
      comp_lat,
      g.first_in,
      g.floors )
    []

let unmarshal (s : string) : t =
  let ( num_instrs,
        ne,
        src,
        dst,
        kindi,
        base,
        removed,
        comp_off,
        comp_cat,
        comp_lat,
        first_in,
        floors ) =
    try
      (Marshal.from_string s 0
        : int
          * int
          * int array
          * int array
          * int array
          * int array
          * int array
          * int array
          * int array
          * int array
          * int array
          * (int * int * component list) list)
    with Failure _ -> failwith "Graph.unmarshal: malformed bytes"
  in
  if
    ne < 0
    || Array.length src < ne
    || Array.length dst < ne
    || Array.length kindi < ne
    || Array.length base < ne
    || Array.length removed < ne
    || Array.length comp_off < ne + 1
    || comp_off.(ne) > Array.length comp_cat
    || comp_off.(ne) > Array.length comp_lat
  then failwith "Graph.unmarshal: malformed bytes";
  let edges =
    try
      Array.init ne (fun i ->
          let comps = ref [] in
          for k = comp_off.(i + 1) - 1 downto comp_off.(i) do
            comps :=
              { cat = Category.of_int comp_cat.(k); lat = comp_lat.(k) }
              :: !comps
          done;
          {
            src = src.(i);
            dst = dst.(i);
            kind = edge_kind_of_tag kindi.(i);
            base = base.(i);
            components = !comps;
            removed_by =
              (if removed.(i) < 0 then None
               else Some (Category.of_int removed.(i)));
          })
    with Invalid_argument _ -> failwith "Graph.unmarshal: malformed bytes"
  in
  { num_instrs; edges; first_in; floors; compiled = compile ~edges ~floors }

(* ---------- building ---------- *)

module Builder = struct
  type b = {
    mutable edge_buf : edge list;
    mutable n_edges : int;
    mutable n_instrs : int;
    mutable floors : (int * int * component list) list;
  }

  let create () = { edge_buf = []; n_edges = 0; n_instrs = 0; floors = [] }

  (** Constrain [node] to arrive no earlier than [base] plus the (category
      owned) components. *)
  let add_floor b ~node ~base ~components =
    b.floors <- (node, base, components) :: b.floors

  let add_edge b ~src ~dst ~kind ?(base = 0) ?(components = []) ?removed_by () =
    assert (src < dst);
    b.edge_buf <- { src; dst; kind; base; components; removed_by } :: b.edge_buf;
    b.n_edges <- b.n_edges + 1

  let note_instr b = b.n_instrs <- b.n_instrs + 1

  let c_graphs = Telemetry.counter "graph.finished"
  let c_nodes = Telemetry.counter "graph.nodes"
  let c_edges = Telemetry.counter "graph.edges"
  let c_components = Telemetry.counter "graph.edge_components"

  (** Finalize into CSR form (counting sort of edges by destination). *)
  let finish b : t =
    let sp = Telemetry.start_span "graph.compile" in
    let num_instrs = b.n_instrs in
    let n_nodes = 5 * num_instrs in
    let counts = Array.make (n_nodes + 1) 0 in
    List.iter (fun e -> counts.(e.dst + 1) <- counts.(e.dst + 1) + 1) b.edge_buf;
    for v = 1 to n_nodes do
      counts.(v) <- counts.(v) + counts.(v - 1)
    done;
    let first_in = Array.copy counts in
    let dummy =
      { src = 0; dst = 0; kind = DD; base = 0; components = []; removed_by = None }
    in
    let edges = Array.make b.n_edges dummy in
    let cursor = Array.copy first_in in
    List.iter
      (fun e ->
        edges.(cursor.(e.dst)) <- e;
        cursor.(e.dst) <- cursor.(e.dst) + 1)
      b.edge_buf;
    let compiled = compile ~edges ~floors:b.floors in
    Telemetry.incr c_graphs;
    Telemetry.add c_nodes n_nodes;
    Telemetry.add c_edges b.n_edges;
    Telemetry.add c_components (Array.length compiled.comp_mask);
    if Telemetry.enabled () then
      Telemetry.end_span sp
        ~attrs:
          [
            ("instrs", string_of_int num_instrs);
            ("edges", string_of_int b.n_edges);
          ]
    else Telemetry.end_span sp;
    { num_instrs; edges; first_in; floors = b.floors; compiled }
end

(* ---------- evaluation ---------- *)

(* Generic (boxed) evaluation, only used when an [override] needs to
   inspect full edge records. *)
let eval_generic ~(ideal : Category.Set.t) ~(override : edge -> int option)
    (t : t) : int array =
  let n = num_nodes t in
  let time = Array.make n 0 in
  let floor = Hashtbl.create 4 in
  List.iter
    (fun (node, base, components) ->
      let lat =
        List.fold_left
          (fun acc { cat; lat } ->
            if Category.Set.mem cat ideal then acc else acc + lat)
          base components
      in
      Hashtbl.replace floor node
        (max lat (Option.value ~default:0 (Hashtbl.find_opt floor node))))
    t.floors;
  for v = 0 to n - 1 do
    let lo = t.first_in.(v) and hi = t.first_in.(v + 1) in
    let best = ref 0 in
    for k = lo to hi - 1 do
      let e = t.edges.(k) in
      let lat =
        match override e with Some l -> Some l | None -> edge_latency ideal e
      in
      match lat with
      | None -> ()
      | Some lat ->
        let cand = time.(e.src) + lat in
        if cand > !best then best := cand
    done;
    (match Hashtbl.find_opt floor v with
     | Some f when f > !best -> best := f
     | _ -> ());
    time.(v) <- !best
  done;
  time

(** [eval_into ?ideal t time] fills [time] (length >= [num_nodes t]) with
    the arrival time of every node under the idealization, in one
    topological pass over the compiled arrays, allocating nothing.  The
    inner loop is the hot path of every graph-backed cost query: a subset
    sweep calls it once per category subset on one scratch buffer. *)
let c_evals = Telemetry.counter "graph.evals"

let eval_into ?(ideal = Category.Set.empty) (t : t) (time : int array) : unit =
  let n = num_nodes t in
  if Array.length time < n then invalid_arg "Graph.eval_into: buffer too short";
  (* single branch + atomic add; keeps this path allocation-free *)
  Telemetry.incr c_evals;
  let s : int = ideal in
  let c = t.compiled in
  let nf = Array.length c.f_node in
  let fi = ref 0 in
  for v = 0 to n - 1 do
    let best = ref 0 in
    let hi = t.first_in.(v + 1) in
    for k = t.first_in.(v) to hi - 1 do
      if c.e_removed.(k) land s = 0 then begin
        let lat = ref c.e_base.(k) in
        for j = c.e_comp_off.(k) to c.e_comp_off.(k + 1) - 1 do
          if c.comp_mask.(j) land s = 0 then lat := !lat + c.comp_lat.(j)
        done;
        let cand = time.(c.e_src.(k)) + !lat in
        if cand > !best then best := cand
      end
    done;
    while !fi < nf && c.f_node.(!fi) = v do
      let lat = ref c.f_base.(!fi) in
      for j = c.f_off.(!fi) to c.f_off.(!fi + 1) - 1 do
        if c.f_comp_mask.(j) land s = 0 then lat := !lat + c.f_comp_lat.(j)
      done;
      if !lat > !best then best := !lat;
      incr fi
    done;
    time.(v) <- !best
  done

(** [eval ?ideal ?override t] computes the arrival time of every node under
    the given idealization (default: none), in one topological pass.  All
    edges point forward in node order, so node order is a topological
    order.  [override], when given, may replace an edge's latency
    (returning [None] leaves the idealized latency in force); it enables
    finer-grained what-if queries than category idealization, e.g. zeroing
    a single instruction's execution latency (Tune et al.'s per-instruction
    cost).  Without an override the query runs on the compiled flat-array
    representation. *)
let eval ?(ideal = Category.Set.empty) ?override (t : t) : int array =
  match override with
  | Some override -> eval_generic ~ideal ~override t
  | None ->
    let time = Array.make (num_nodes t) 0 in
    eval_into ~ideal t time;
    time

(** Critical-path length: arrival time of the last C node (plus one cycle to
    retire it), i.e. the modeled execution time. *)
let critical_length ?ideal ?override (t : t) : int =
  if t.num_instrs = 0 then 0
  else
    let time = eval ?ideal ?override t in
    time.(node ~seq:(t.num_instrs - 1) ~kind:C) + 1

(** [eval_subsets_scalar t sets] computes {!critical_length} under every
    idealization in [sets] with one full scalar graph pass per subset,
    sweeping the compiled graph with one scratch buffer per pool job (zero
    per-query allocation) and fanning the sweep out across the domain
    pool.  Results are index-aligned with [sets].  This is the reference
    implementation the bit-sliced {!eval_subsets} is checked against (the
    [sliced-eval-exact] conformance law) and the fallback oracle for
    differential debugging. *)
let eval_subsets_scalar (t : t) (sets : Category.Set.t array) : int array =
  let m = Array.length sets in
  let out = Array.make m 0 in
  if t.num_instrs > 0 && m > 0 then begin
    let sp = Telemetry.start_span "graph.eval_subsets_scalar" in
    let sink = node ~seq:(t.num_instrs - 1) ~kind:C in
    Icost_util.Pool.parallel_chunks m (fun ~lo ~hi ->
        let buf = Array.make (num_nodes t) 0 in
        for i = lo to hi - 1 do
          eval_into ~ideal:sets.(i) t buf;
          out.(i) <- buf.(sink) + 1
        done);
    if Telemetry.enabled () then
      Telemetry.end_span sp ~attrs:[ ("sets", string_of_int m) ]
    else Telemetry.end_span sp
  end;
  out

(* ---------- bit-sliced evaluation ---------- *)

let max_lanes = 64

let c_sliced = Telemetry.counter "graph.sliced_evals"

(* One bit-sliced topological pass pricing [nl] subsets
   ([sets.(lo) .. sets.(lo + nl - 1)]) at once.  [slab] holds the
   arrival-time vector of every node, node-major with stride [nl]
   (lane [l] of node [v] lives at [slab.(v * nl + l)]); [latbuf] and
   [lset] are per-pass scratch of length >= [nl].

   Each lane runs exactly the max-plus recurrence of {!eval_into} — the
   same edges in the same order with the same integer latencies — so per
   lane the result is identical to a scalar pass by construction.  All
   per-lane decisions are made branch-free: [ktab.(mask)] is a per-chunk
   row of keep masks, [-1] in lane [l] when [mask] is NOT idealized in
   that lane (the component contributes / the edge survives) and [0]
   when it is, so component sums become [d land row.(l)] accumulations
   and removal becomes an [land] on the candidate delta.  The max-plus
   update itself is the branch-free
   [cur + (d land lnot (d asr 62))] (adds [d] only when positive, i.e.
   [max cur (cur + d)] on 63-bit ints), because the taken/not-taken
   pattern of a compare-and-store max is data-dependent noise that
   mispredicts; removing it is what lets a lane update retire in a few
   ALU ops.  [ktab] only needs rows for masks the compiler emits:
   singleton category masks ([compile] builds every component and
   removal mask with [cat_mask]) plus row 0 (all [-1]) for
   never-removed edges. *)
let eval_chunk (t : t) (sets : Category.Set.t array) ~lo ~nl
    ~(slab : int array) ~(latbuf : int array) ~(lset : int array)
    ~(ktab : int array array) (out : int array) : unit =
  let n = num_nodes t in
  let c = t.compiled in
  let nf = Array.length c.f_node in
  for l = 0 to nl - 1 do
    lset.(l) <- sets.(lo + l)
  done;
  for ci = 0 to Category.count - 1 do
    let mask = 1 lsl ci in
    let row = ktab.(mask) in
    for l = 0 to nl - 1 do
      row.(l) <- (if mask land lset.(l) = 0 then -1 else 0)
    done
  done;
  let fi = ref 0 in
  for v = 0 to n - 1 do
    (* node [v]'s lane vector is maximized in place in the slab; no edge
       is a self-loop (src < dst), so reads of [soff + l] never alias it *)
    let boff = v * nl in
    (* manual zeroing: [Array.fill] is a C call, too heavy per node *)
    for l = 0 to nl - 1 do
      Array.unsafe_set slab (boff + l) 0
    done;
    let hi = t.first_in.(v + 1) in
    for k = t.first_in.(v) to hi - 1 do
      let rm = Array.unsafe_get c.e_removed k in
      let base = Array.unsafe_get c.e_base k in
      let o0 = Array.unsafe_get c.e_comp_off k in
      let o1 = Array.unsafe_get c.e_comp_off (k + 1) in
      let soff = Array.unsafe_get c.e_src k * nl in
      if o0 = o1 then
        if rm = 0 then
          (* latency identical in every lane: pure streaming max *)
          for l = 0 to nl - 1 do
            let cur = Array.unsafe_get slab (boff + l) in
            let d = Array.unsafe_get slab (soff + l) + base - cur in
            Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
          done
        else begin
          (* removable, constant latency (CD/FBW/CBW): masking the delta
             with the keep row suppresses the candidate in idealized
             lanes *)
          let row = Array.unsafe_get ktab rm in
          for l = 0 to nl - 1 do
            let cur = Array.unsafe_get slab (boff + l) in
            let d =
              (Array.unsafe_get slab (soff + l) + base - cur)
              land Array.unsafe_get row l
            in
            Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
          done
        end
      else if rm = 0 && o0 + 1 = o1 then begin
        (* one component, never removed: fold the component through its
           keep row inline *)
        let crow = Array.unsafe_get ktab (Array.unsafe_get c.comp_mask o0) in
        let d0 = Array.unsafe_get c.comp_lat o0 in
        for l = 0 to nl - 1 do
          let cur = Array.unsafe_get slab (boff + l) in
          let d =
            Array.unsafe_get slab (soff + l)
            + base
            + (d0 land Array.unsafe_get crow l)
            - cur
          in
          Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
        done
      end
      else begin
        (* general: accumulate per-lane latency component-major, so the
           component data is read once per edge instead of once per
           lane; [ktab.(0)] is all [-1], so never-removed edges flow
           through the same removal mask unchanged *)
        Array.fill latbuf 0 nl base;
        for j = o0 to o1 - 1 do
          let crow = Array.unsafe_get ktab (Array.unsafe_get c.comp_mask j) in
          let d = Array.unsafe_get c.comp_lat j in
          for l = 0 to nl - 1 do
            Array.unsafe_set latbuf l
              (Array.unsafe_get latbuf l + (d land Array.unsafe_get crow l))
          done
        done;
        let rrow = Array.unsafe_get ktab rm in
        for l = 0 to nl - 1 do
          let cur = Array.unsafe_get slab (boff + l) in
          let d =
            (Array.unsafe_get slab (soff + l) + Array.unsafe_get latbuf l - cur)
            land Array.unsafe_get rrow l
          in
          Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
        done
      end
    done;
    while !fi < nf && c.f_node.(!fi) = v do
      let fb = c.f_base.(!fi) in
      let j0 = c.f_off.(!fi) and j1 = c.f_off.(!fi + 1) in
      Array.fill latbuf 0 nl fb;
      for j = j0 to j1 - 1 do
        let crow = Array.unsafe_get ktab (Array.unsafe_get c.f_comp_mask j) in
        let d = Array.unsafe_get c.f_comp_lat j in
        for l = 0 to nl - 1 do
          Array.unsafe_set latbuf l
            (Array.unsafe_get latbuf l + (d land Array.unsafe_get crow l))
        done
      done;
      for l = 0 to nl - 1 do
        let cur = Array.unsafe_get slab (boff + l) in
        let d = Array.unsafe_get latbuf l - cur in
        Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
      done;
      incr fi
    done
  done;
  let soff = node ~seq:(t.num_instrs - 1) ~kind:C * nl in
  for l = 0 to nl - 1 do
    out.(lo + l) <- slab.(soff + l) + 1
  done

(* ---------- pinned-prefix lanes (streaming fragments) ---------- *)

(* Variant of {!eval_chunk} for segment fragments: the first [n_pinned]
   nodes are boundary nodes whose per-lane arrival times were computed by
   the previous segment and are loaded verbatim instead of evaluated
   (their in-edge lists are empty by construction), and [ext_floors]
   injects per-lane lower bounds for edges whose source fell off the
   pinned prefix (register/store/line producers older than the boundary).
   Because every edge satisfies [src < dst], continuing the max-plus
   recurrence from pinned absolute times is exactly the monolithic
   evaluation restarted mid-graph — streaming is bit-exact, not
   approximate.  The caller keeps the whole [slab] (node-major, stride
   [nl]) to extract the next segment's carries; no [out] row is written.

   [pinned] is node-major with stride [pin_stride] and lane offset [lo]
   (so carries can be stored once for all 256 subsets and evaluated in
   32-lane chunks); [ext_floors] rows use the same [lo] offset and must be
   sorted by node. *)
let eval_lanes_pinned (t : t) (sets : Category.Set.t array) ~lo ~nl
    ~(n_pinned : int) ~(pinned : int array) ~(pin_stride : int)
    ~(ext_floors : (int * int array) array) ~(latbuf : int array)
    ~(lset : int array) ~(ktab : int array array) ~(slab : int array) : unit =
  let n = num_nodes t in
  let c = t.compiled in
  let nf = Array.length c.f_node in
  for l = 0 to nl - 1 do
    lset.(l) <- sets.(lo + l)
  done;
  for ci = 0 to Category.count - 1 do
    let mask = 1 lsl ci in
    let row = ktab.(mask) in
    for l = 0 to nl - 1 do
      row.(l) <- (if mask land lset.(l) = 0 then -1 else 0)
    done
  done;
  for v = 0 to n_pinned - 1 do
    let boff = v * nl and poff = (v * pin_stride) + lo in
    for l = 0 to nl - 1 do
      Array.unsafe_set slab (boff + l) (Array.unsafe_get pinned (poff + l))
    done
  done;
  let fi = ref 0 in
  while !fi < nf && c.f_node.(!fi) < n_pinned do incr fi done;
  let nef = Array.length ext_floors in
  let efi = ref 0 in
  while !efi < nef && fst ext_floors.(!efi) < n_pinned do incr efi done;
  for v = n_pinned to n - 1 do
    let boff = v * nl in
    for l = 0 to nl - 1 do
      Array.unsafe_set slab (boff + l) 0
    done;
    let hi = t.first_in.(v + 1) in
    for k = t.first_in.(v) to hi - 1 do
      let rm = Array.unsafe_get c.e_removed k in
      let base = Array.unsafe_get c.e_base k in
      let o0 = Array.unsafe_get c.e_comp_off k in
      let o1 = Array.unsafe_get c.e_comp_off (k + 1) in
      let soff = Array.unsafe_get c.e_src k * nl in
      if o0 = o1 then
        if rm = 0 then
          for l = 0 to nl - 1 do
            let cur = Array.unsafe_get slab (boff + l) in
            let d = Array.unsafe_get slab (soff + l) + base - cur in
            Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
          done
        else begin
          let row = Array.unsafe_get ktab rm in
          for l = 0 to nl - 1 do
            let cur = Array.unsafe_get slab (boff + l) in
            let d =
              (Array.unsafe_get slab (soff + l) + base - cur)
              land Array.unsafe_get row l
            in
            Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
          done
        end
      else if rm = 0 && o0 + 1 = o1 then begin
        let crow = Array.unsafe_get ktab (Array.unsafe_get c.comp_mask o0) in
        let d0 = Array.unsafe_get c.comp_lat o0 in
        for l = 0 to nl - 1 do
          let cur = Array.unsafe_get slab (boff + l) in
          let d =
            Array.unsafe_get slab (soff + l)
            + base
            + (d0 land Array.unsafe_get crow l)
            - cur
          in
          Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
        done
      end
      else begin
        Array.fill latbuf 0 nl base;
        for j = o0 to o1 - 1 do
          let crow = Array.unsafe_get ktab (Array.unsafe_get c.comp_mask j) in
          let d = Array.unsafe_get c.comp_lat j in
          for l = 0 to nl - 1 do
            Array.unsafe_set latbuf l
              (Array.unsafe_get latbuf l + (d land Array.unsafe_get crow l))
          done
        done;
        let rrow = Array.unsafe_get ktab rm in
        for l = 0 to nl - 1 do
          let cur = Array.unsafe_get slab (boff + l) in
          let d =
            (Array.unsafe_get slab (soff + l) + Array.unsafe_get latbuf l - cur)
            land Array.unsafe_get rrow l
          in
          Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
        done
      end
    done;
    while !fi < nf && c.f_node.(!fi) = v do
      let fb = c.f_base.(!fi) in
      let j0 = c.f_off.(!fi) and j1 = c.f_off.(!fi + 1) in
      Array.fill latbuf 0 nl fb;
      for j = j0 to j1 - 1 do
        let crow = Array.unsafe_get ktab (Array.unsafe_get c.f_comp_mask j) in
        let d = Array.unsafe_get c.f_comp_lat j in
        for l = 0 to nl - 1 do
          Array.unsafe_set latbuf l
            (Array.unsafe_get latbuf l + (d land Array.unsafe_get crow l))
        done
      done;
      for l = 0 to nl - 1 do
        let cur = Array.unsafe_get slab (boff + l) in
        let d = Array.unsafe_get latbuf l - cur in
        Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
      done;
      incr fi
    done;
    while !efi < nef && fst ext_floors.(!efi) = v do
      let row = snd ext_floors.(!efi) in
      for l = 0 to nl - 1 do
        let cur = Array.unsafe_get slab (boff + l) in
        let d = Array.unsafe_get row (lo + l) - cur in
        Array.unsafe_set slab (boff + l) (cur + (d land lnot (d asr 62)))
      done;
      incr efi
    done
  done

(* ---------- packed (SWAR) lanes ---------- *)

(* When the compiled graph can prove every arrival time stays below 2^20
   ([lat_bound]), three lanes share one 63-bit word: 21-bit fields at bits
   0/21/42, each a 20-bit value plus one guard bit.  All lane values are
   non-negative and bounded, so field sums never carry across field
   boundaries, and a word-wide max costs ~8 ALU ops for 3 lanes:

     m  = ((cand | H) - cur) & H     guard of each field survives the
                                     subtract iff cand >= cur there
     fm = m - (m >> 20)              expand surviving guards to 0xFFFFF
     max = (cand & fm) | (cur & ~fm)

   Keep rows hold per-field VALUE masks (0xFFFFF when the category is not
   idealized in that lane, 0 when it is), so component contributions are
   [(lat * sw_rep) land row] and removal masks the whole candidate to 0
   (sound because times are non-negative, so max(cur, 0) = cur). *)

let sw_vmax = (1 lsl 20) - 1
let sw_rep = 1 lor (1 lsl 21) lor (1 lsl 42)
let sw_high = (sw_vmax + 1) * sw_rep
let sw_keep = sw_vmax * sw_rep

let[@inline always] sw_max cur cand =
  let m = ((cand lor sw_high) - cur) land sw_high in
  let fm = m - (m lsr 20) in
  cand land fm lor (cur land lnot fm)

(* Packed twin of {!eval_chunk}: [nl] lanes in [pw = ceil (nl / 3)] words
   per node.  The lane vector is padded to whole words with copies of the
   last subset, so padding fields run a real lane's recurrence and the
   overflow bound covers them; only [nl] results are unpacked.  A node's
   first in-edge stores its candidate directly (candidates are
   non-negative, so the store doubles as the zero-init), which drops both
   the per-node zero fill and one max per node. *)
let eval_chunk_swar (t : t) (sets : Category.Set.t array) ~lo ~nl
    ~(slab : int array) ~(latbuf : int array) ~(lset : int array)
    ~(ktab : int array array) (out : int array) : unit =
  let n = num_nodes t in
  let c = t.compiled in
  let nf = Array.length c.f_node in
  let pw = (nl + 2) / 3 in
  for l = 0 to (3 * pw) - 1 do
    lset.(l) <- sets.(lo + min l (nl - 1))
  done;
  for ci = 0 to Category.count - 1 do
    let mask = 1 lsl ci in
    let row = ktab.(mask) in
    for w = 0 to pw - 1 do
      let r = ref 0 in
      for f = 0 to 2 do
        if mask land lset.((3 * w) + f) = 0 then
          r := !r lor (sw_vmax lsl (21 * f))
      done;
      row.(w) <- !r
    done
  done;
  let fi = ref 0 in
  for v = 0 to n - 1 do
    let boff = v * pw in
    let k0 = t.first_in.(v) in
    let hi = t.first_in.(v + 1) in
    if k0 = hi then
      for w = 0 to pw - 1 do
        Array.unsafe_set slab (boff + w) 0
      done
    else
      for k = k0 to hi - 1 do
        let rm = Array.unsafe_get c.e_removed k in
        let o0 = Array.unsafe_get c.e_comp_off k in
        let o1 = Array.unsafe_get c.e_comp_off (k + 1) in
        let soff = Array.unsafe_get c.e_src k * pw in
        let baserep = Array.unsafe_get c.e_base k * sw_rep in
        if o0 = o1 then
          if rm = 0 then
            if k = k0 then
              for w = 0 to pw - 1 do
                Array.unsafe_set slab (boff + w)
                  (Array.unsafe_get slab (soff + w) + baserep)
              done
            else
              for w = 0 to pw - 1 do
                let cur = Array.unsafe_get slab (boff + w) in
                let cand = Array.unsafe_get slab (soff + w) + baserep in
                Array.unsafe_set slab (boff + w) (sw_max cur cand)
              done
          else begin
            let rrow = Array.unsafe_get ktab rm in
            if k = k0 then
              for w = 0 to pw - 1 do
                Array.unsafe_set slab (boff + w)
                  ((Array.unsafe_get slab (soff + w) + baserep)
                  land Array.unsafe_get rrow w)
              done
            else
              for w = 0 to pw - 1 do
                let cur = Array.unsafe_get slab (boff + w) in
                let cand =
                  (Array.unsafe_get slab (soff + w) + baserep)
                  land Array.unsafe_get rrow w
                in
                Array.unsafe_set slab (boff + w) (sw_max cur cand)
              done
          end
        else if rm = 0 && o0 + 1 = o1 then begin
          let crow = Array.unsafe_get ktab (Array.unsafe_get c.comp_mask o0) in
          let d0 = Array.unsafe_get c.comp_lat o0 * sw_rep in
          if k = k0 then
            for w = 0 to pw - 1 do
              Array.unsafe_set slab (boff + w)
                (Array.unsafe_get slab (soff + w)
                + baserep
                + (d0 land Array.unsafe_get crow w))
            done
          else
            for w = 0 to pw - 1 do
              let cur = Array.unsafe_get slab (boff + w) in
              let cand =
                Array.unsafe_get slab (soff + w)
                + baserep
                + (d0 land Array.unsafe_get crow w)
              in
              Array.unsafe_set slab (boff + w) (sw_max cur cand)
            done
        end
        else begin
          for w = 0 to pw - 1 do
            Array.unsafe_set latbuf w baserep
          done;
          for j = o0 to o1 - 1 do
            let crow =
              Array.unsafe_get ktab (Array.unsafe_get c.comp_mask j)
            in
            let d = Array.unsafe_get c.comp_lat j * sw_rep in
            for w = 0 to pw - 1 do
              Array.unsafe_set latbuf w
                (Array.unsafe_get latbuf w + (d land Array.unsafe_get crow w))
            done
          done;
          let rrow = Array.unsafe_get ktab rm in
          if k = k0 then
            for w = 0 to pw - 1 do
              Array.unsafe_set slab (boff + w)
                ((Array.unsafe_get slab (soff + w) + Array.unsafe_get latbuf w)
                land Array.unsafe_get rrow w)
            done
          else
            for w = 0 to pw - 1 do
              let cur = Array.unsafe_get slab (boff + w) in
              let cand =
                (Array.unsafe_get slab (soff + w) + Array.unsafe_get latbuf w)
                land Array.unsafe_get rrow w
              in
              Array.unsafe_set slab (boff + w) (sw_max cur cand)
            done
        end
      done;
    while !fi < nf && c.f_node.(!fi) = v do
      let fb = c.f_base.(!fi) * sw_rep in
      let j0 = c.f_off.(!fi) and j1 = c.f_off.(!fi + 1) in
      for w = 0 to pw - 1 do
        Array.unsafe_set latbuf w fb
      done;
      for j = j0 to j1 - 1 do
        let crow = Array.unsafe_get ktab (Array.unsafe_get c.f_comp_mask j) in
        let d = Array.unsafe_get c.f_comp_lat j * sw_rep in
        for w = 0 to pw - 1 do
          Array.unsafe_set latbuf w
            (Array.unsafe_get latbuf w + (d land Array.unsafe_get crow w))
        done
      done;
      for w = 0 to pw - 1 do
        let cur = Array.unsafe_get slab (boff + w) in
        Array.unsafe_set slab (boff + w)
          (sw_max cur (Array.unsafe_get latbuf w))
      done;
      incr fi
    done
  done;
  let soff = node ~seq:(t.num_instrs - 1) ~kind:C * pw in
  for l = 0 to nl - 1 do
    out.(lo + l) <-
      (Array.unsafe_get slab (soff + (l / 3)) lsr (21 * (l mod 3)))
      land sw_vmax
      + 1
  done

(** [eval_slices ?lanes t sets] is {!eval_subsets_scalar} computed
    bit-sliced: each pool chunk prices up to [lanes] subsets (clamped to
    1..{!max_lanes}, default {!max_lanes}) per pass over the compiled
    edge arrays.  Per lane the recurrence is identical to the scalar
    pass, so results are bit-identical regardless of [lanes] or the pool
    job count; chunks write disjoint slices of the output. *)
let eval_slices ?(lanes = max_lanes) (t : t) (sets : Category.Set.t array) :
    int array =
  let m = Array.length sets in
  let lanes = if lanes < 1 then 1 else min lanes (min max_lanes (max 1 m)) in
  let out = Array.make m 0 in
  if t.num_instrs > 0 && m > 0 then begin
    let sp = Telemetry.start_span "graph.eval_subsets" in
    let n = num_nodes t in
    (* the packed path needs every arrival time (+1 for the reported
       critical length) to fit a 20-bit field *)
    let packed =
      t.compiled.lat_bound >= 0 && t.compiled.lat_bound + 1 <= sw_vmax
    in
    let nchunks = (m + lanes - 1) / lanes in
    Icost_util.Pool.parallel_chunks nchunks (fun ~lo ~hi ->
        if packed then begin
          let pwmax = (lanes + 2) / 3 in
          let slab = Array.make (n * pwmax) 0 in
          let latbuf = Array.make pwmax 0 in
          let lset = Array.make (3 * pwmax) 0 in
          (* keep rows: one per singleton category mask, refreshed per
             chunk, plus a constant all-keep row shared by every mask the
             compiler never emits (only row 0 is ever dereferenced) *)
          let keep_all = Array.make pwmax sw_keep in
          let ktab = Array.make 256 keep_all in
          for ci = 0 to Category.count - 1 do
            ktab.(1 lsl ci) <- Array.make pwmax 0
          done;
          for ch = lo to hi - 1 do
            let slo = ch * lanes in
            let nl = min lanes (m - slo) in
            Telemetry.incr c_sliced;
            eval_chunk_swar t sets ~lo:slo ~nl ~slab ~latbuf ~lset ~ktab out
          done
        end
        else begin
          let slab = Array.make (n * lanes) 0 in
          let latbuf = Array.make lanes 0 in
          let lset = Array.make lanes 0 in
          let keep_all = Array.make lanes (-1) in
          let ktab = Array.make 256 keep_all in
          for ci = 0 to Category.count - 1 do
            ktab.(1 lsl ci) <- Array.make lanes 0
          done;
          for ch = lo to hi - 1 do
            let slo = ch * lanes in
            let nl = min lanes (m - slo) in
            Telemetry.incr c_sliced;
            eval_chunk t sets ~lo:slo ~nl ~slab ~latbuf ~lset ~ktab out
          done
        end);
    if Telemetry.enabled () then
      Telemetry.end_span sp
        ~attrs:
          [
            ("sets", string_of_int m);
            ("lanes", string_of_int lanes);
            ("passes", string_of_int nchunks);
            ("packed", string_of_bool packed);
          ]
    else Telemetry.end_span sp
  end;
  out

(** [eval_subsets t sets] computes {!critical_length} under every
    idealization in [sets]; results are index-aligned with [sets].  The
    implementation is the bit-sliced {!eval_slices} (up to {!max_lanes}
    subsets per edge-array pass); {!eval_subsets_scalar} remains as the
    reference oracle. *)
let eval_subsets (t : t) (sets : Category.Set.t array) : int array =
  (* 32 lanes measures fastest on the 10k-instr kernels: enough to amortize
     per-edge decode, small enough that a chunk's slab stays cache-resident *)
  eval_slices ~lanes:32 t sets

(** Cost of a set of edges (Tune et al.): speedup from zeroing the latency
    of every edge matching [pred]. *)
let cost_of_edges ?ideal (t : t) pred : int =
  let base = critical_length ?ideal t in
  let zeroed = critical_length ?ideal ~override:(fun e -> if pred e then Some 0 else None) t in
  base - zeroed

(** Cost of one dynamic instruction's execution latency: zero its EP edge. *)
let instr_cost ?ideal (t : t) ~seq : int =
  cost_of_edges ?ideal t (fun e -> e.kind = EP && seq_of_node e.dst = seq)

(** Slack of a node: how much later it could arrive without growing the
    critical path.  Computed from forward times and backward requirement
    times in two passes. *)
let slacks ?(ideal = Category.Set.empty) (t : t) : int array =
  let n = num_nodes t in
  let time = eval ~ideal t in
  let cp = if n = 0 then 0 else time.(n - 1) in
  (* latest(v): latest arrival of v keeping the last C node at cp *)
  let latest = Array.make n max_int in
  if n > 0 then latest.(n - 1) <- cp;
  for v = n - 1 downto 0 do
    let lo = t.first_in.(v) and hi = t.first_in.(v + 1) in
    for k = lo to hi - 1 do
      let e = t.edges.(k) in
      match edge_latency ideal e with
      | None -> ()
      | Some lat ->
        if latest.(v) <> max_int && latest.(v) - lat < latest.(e.src) then
          latest.(e.src) <- latest.(v) - lat
    done
  done;
  Array.init n (fun v ->
      if latest.(v) = max_int then max_int else latest.(v) - time.(v))

(** [critical_path t] returns the node ids of one critical path, last node
    first, together with the edge kinds taken (paired with the *downstream*
    node).  Ties are broken toward the earliest incoming edge. *)
let critical_path ?(ideal = Category.Set.empty) (t : t) : (int * edge_kind option) list =
  if t.num_instrs = 0 then []
  else begin
    let time = eval ~ideal t in
    let rec walk v acc =
      let hi = t.first_in.(v + 1) in
      let pred = ref None in
      let found = ref false in
      let k = ref t.first_in.(v) in
      (* stop at the first (earliest) incoming edge on the critical path *)
      while (not !found) && !k < hi do
        let e = t.edges.(!k) in
        (match edge_latency ideal e with
         | None -> ()
         | Some lat ->
           if time.(e.src) + lat = time.(v) then begin
             pred := Some e;
             found := true
           end);
        incr k
      done;
      match !pred with
      | Some e when time.(v) > 0 -> walk e.src ((v, Some e.kind) :: acc)
      | _ -> (v, None) :: acc
    in
    walk (node ~seq:(t.num_instrs - 1) ~kind:C) []
  end

(** Count of edges by kind (model statistics and tests). *)
let edge_histogram (t : t) =
  let tbl = Hashtbl.create 12 in
  Array.iter
    (fun e ->
      Hashtbl.replace tbl e.kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.kind)))
    t.edges;
  tbl

let num_edges t = Array.length t.edges

(** Graphviz DOT rendering (for small graphs, e.g. the Figure 2 demo).
    Critical-path edges are drawn bold. *)
let to_dot ?(ideal = Category.Set.empty) (t : t) : string =
  let time = eval ~ideal t in
  let on_cp =
    let cp = critical_path ~ideal t in
    let tbl = Hashtbl.create 64 in
    let rec mark = function
      | (v, _) :: ((w, _) :: _ as rest) ->
        Hashtbl.replace tbl (v, w) ();
        mark rest
      | _ -> ()
    in
    mark cp;
    fun src dst -> Hashtbl.mem tbl (src, dst)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph microexecution {\n  rankdir=LR;\n";
  for i = 0 to t.num_instrs - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_%d { label=\"i%d\";" i i);
    Array.iter
      (fun k ->
        let v = node ~seq:i ~kind:k in
        Buffer.add_string buf
          (Printf.sprintf " n%d [label=\"%s%d\\nt=%d\"];" v (kind_name k) i time.(v)))
      node_kinds;
    Buffer.add_string buf " }\n"
  done;
  Array.iter
    (fun e ->
      let lat = Option.value ~default:0 (edge_latency ideal e) in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s:%d\"%s];\n" e.src e.dst
           (edge_kind_name e.kind) lat
           (if on_cp e.src e.dst then " penwidth=3" else "")))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Compact text rendering of a small graph: one line per instruction with
    node times, then the edge list. *)
let pp_small ppf ?(ideal = Category.Set.empty) (t : t) =
  let time = eval ~ideal t in
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.num_instrs - 1 do
    Format.fprintf ppf "i%-3d" i;
    Array.iter
      (fun k ->
        Format.fprintf ppf "  %s=%-4d" (kind_name k) time.(node ~seq:i ~kind:k))
      node_kinds;
    Format.fprintf ppf "@,"
  done;
  Array.iter
    (fun e ->
      match edge_latency ideal e with
      | None -> ()
      | Some lat ->
        Format.fprintf ppf "%s -> %s  %s lat=%d@," (node_name e.src) (node_name e.dst)
          (edge_kind_name e.kind) lat)
    t.edges;
  Format.fprintf ppf "@]"
