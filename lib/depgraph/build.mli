(** Dependence-graph construction.

    {!of_sim} builds the full graph of a simulated execution (dynamic
    latencies from the baseline run, structure from the machine
    description — the static/dynamic split of Figure 5b); {!of_infos}
    builds a fragment from records the shotgun profiler reconstructed from
    samples.  Both share the same edge-emission logic. *)

module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo
module Category = Icost_core.Category

(** Everything the graph needs to know about one dynamic instruction.
    Producer indices are sequence numbers within the same graph; producers
    before a fragment's start must be omitted. *)
type instr_info = {
  reg_producers : int list;
  mem_producer : int option;  (** forwarding store *)
  share_src : int option;  (** load whose miss covers this load's line *)
  exec_base : int;  (** execution latency not owned by any category *)
  exec_components : (Category.t * int) list;
  imiss_delay : int;  (** I-cache/I-TLB stall (owned by Imiss) *)
  fu_wait : int;  (** issue/FU contention (owned by Bw) *)
  store_wait : int;  (** store-bandwidth commit contention (owned by Bw) *)
  mispredict : bool;
  taken_branch : bool;  (** taken control transfer (fetch-group boundary) *)
}

(** Structural graph parameters (from the machine description), with the
    Table 2 model refinements exposed for ablation. *)
type params = {
  window : int;
  fetch_bw : int;
  commit_bw : int;
  fetch_taken_limit : int;
  wakeup_latency : int;
  branch_recovery : int;
  explicit_bw : bool;
      (** true: FBW/CBW bandwidth edges (the paper's refined model);
          false: bandwidth as latency on DD/CC edges (previous work) *)
  pp_edges : bool;  (** model cache-line sharing with PP edges *)
}

val params_of_config : Config.t -> params

val exec_decomposition :
  Config.t -> Trace.dyn -> Events.evt -> int * (Category.t * int) list
(** Execution-latency decomposition (base, category components) for the EP
    edge of an instruction. *)

val info_of_sim : Config.t -> Trace.dyn -> Events.evt -> Ooo.slot -> instr_info

val emit :
  params ->
  Graph.Builder.b ->
  prev_mispredict:bool ->
  taken_limit_src:int option ->
  seq:int ->
  instr_info ->
  unit
(** Emit all edges of one instruction into a builder (calls
    [Builder.note_instr] itself).  [taken_limit_src] is the dispatch of the
    (m - fetch_taken_limit)-th taken branch for the m-th.  Exposed so the
    streaming core can grow segment fragments with the exact same
    edge-emission logic as the monolithic graph. *)

val of_infos : params -> instr_info array -> Graph.t

val of_sim : Config.t -> Trace.t -> Events.evt array -> Ooo.result -> Graph.t
(** Build the full graph of a simulated execution.  The result must be a
    baseline (un-idealized) run: its dynamic contention latencies label
    the RE/CC edges. *)

val oracle : Graph.t -> Icost_core.Cost.oracle
(** Cost oracle backed by graph re-evaluation. *)
