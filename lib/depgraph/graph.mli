(** The microexecution dependence-graph model (Tables 2 and 3 of the paper).

    Each dynamic instruction contributes five nodes — [D]ispatch, [R]eady,
    [E]xecute, com[P]lete, [C]ommit — connected by latency-labelled
    dependence edges (see {!edge_kind}).  Edge latencies are decomposed by
    owning {!Icost_core.Category}, so idealizing a category set is a pure
    re-evaluation of the graph: owned components contribute zero and some
    edges (PD, CD, FBW, CBW, PP) disappear entirely. *)

module Category = Icost_core.Category

type node_kind = D | R | E | P | C

val node_kinds : node_kind array
val kind_index : node_kind -> int
val kind_name : node_kind -> string

(** The twelve edge kinds of Table 3. *)
type edge_kind =
  | DD  (** in-order dispatch (+ I-cache miss latency) *)
  | FBW  (** finite fetch bandwidth (incl. the taken-branch limit) *)
  | CD  (** finite re-order buffer *)
  | PD  (** control dependence after a mispredicted branch *)
  | DR  (** execution follows dispatch *)
  | PR  (** data dependences (register and memory) *)
  | RE  (** execute after ready (+ contention) *)
  | EP  (** complete after execute (execution latency) *)
  | PP  (** cache-line sharing between loads *)
  | PC  (** commit follows completion *)
  | CC  (** in-order commit (+ store bandwidth) *)
  | CBW  (** commit bandwidth *)

val edge_kind_name : edge_kind -> string

(** A latency component owned by a category: idealizing the category
    zeroes the component. *)
type component = { cat : Category.t; lat : int }

type edge = {
  src : int;  (** node id *)
  dst : int;
  kind : edge_kind;
  base : int;  (** latency no idealization removes *)
  components : component list;
  removed_by : Category.t option;
      (** the edge (constraint included) disappears when this category is
          idealized *)
}

type compiled
(** Flat-int-array form of the edge/floor latency data, precomputed at
    {!Builder.finish} time and used by the allocation-free evaluation
    path ({!eval_into}, {!eval_subsets}). *)

type t = {
  num_instrs : int;
  edges : edge array;  (** sorted by [dst] *)
  first_in : int array;
      (** CSR index: incoming edges of node [v] are
          [edges.(first_in.(v)) .. edges.(first_in.(v+1) - 1)] *)
  floors : (int * int * component list) list;
      (** (node, base, components): minimum arrival times for nodes whose
          stall has no incoming edge to ride on (e.g. the first
          instruction's I-cache miss) *)
  compiled : compiled;
}

val num_nodes : t -> int
val num_edges : t -> int

val node : seq:int -> kind:node_kind -> int
(** Node id of instruction [seq]'s [kind] node. *)

val seq_of_node : int -> int
val kind_of_node : int -> node_kind
val node_name : int -> string

val edge_latency : Category.Set.t -> edge -> int option
(** Effective latency under an idealization; [None] if the edge is
    removed. *)

(** Incremental construction; see {!Build} for the high-level entry
    points. *)
module Builder : sig
  type b

  val create : unit -> b
  val note_instr : b -> unit

  val add_edge :
    b ->
    src:int ->
    dst:int ->
    kind:edge_kind ->
    ?base:int ->
    ?components:component list ->
    ?removed_by:Category.t ->
    unit ->
    unit
  (** Edges must point forward ([src < dst]); node order is then a
      topological order. *)

  val add_floor : b -> node:int -> base:int -> components:component list -> unit
  val finish : b -> t
end

val marshal : t -> string
(** Compact byte serialization for snapshotting.  The derived compiled
    arrays are dropped (rebuilt by {!unmarshal}) and edge records are
    transposed into flat int arrays so decoding is allocation-cheap:
    the result is ~40% smaller and ~2x faster to load than
    [Marshal.to_string] of the whole graph. *)

val unmarshal : string -> t
(** Inverse of {!marshal}; recompiles the flat evaluation arrays.
    @raise Failure on malformed bytes.  Callers must authenticate the
    bytes first (e.g. a digest check) — this is not hardened against
    adversarial input. *)

val eval : ?ideal:Category.Set.t -> ?override:(edge -> int option) -> t -> int array
(** Arrival time of every node under the idealization (default none), in
    one topological pass.  [override] may replace an edge's latency
    ([None] keeps the idealized latency), enabling finer what-if queries
    than category idealization. *)

val eval_into : ?ideal:Category.Set.t -> t -> int array -> unit
(** Like {!eval}, but fills a caller-provided scratch buffer (length >=
    {!num_nodes}) from the compiled representation, allocating nothing.
    Use for repeated what-if queries over one graph.
    @raise Invalid_argument if the buffer is too short. *)

val critical_length : ?ideal:Category.Set.t -> ?override:(edge -> int option) -> t -> int
(** Arrival of the last C node plus one retire cycle: the modeled
    execution time. *)

val eval_subsets : t -> Category.Set.t array -> int array
(** [eval_subsets t sets] is [Array.map (fun s -> critical_length ~ideal:s t) sets],
    computed bit-sliced ({!eval_slices} with the default lane count): each
    pass over the compiled edge arrays prices up to {!max_lanes} subsets at
    once, so a 256-subset sweep is 4 edge-array streams instead of 256.
    Bit-identical to {!eval_subsets_scalar} (checked by the
    [sliced-eval-exact] conformance law). *)

val eval_subsets_scalar : t -> Category.Set.t array -> int array
(** Reference implementation: one full scalar {!eval_into} pass per
    subset, with one reusable buffer per {!Icost_util.Pool} job, fanned
    out across the pool.  Kept as the differential oracle for the sliced
    path. *)

val max_lanes : int
(** Maximum subsets priced per bit-sliced pass (64): lanes live in one
    node-major int slab, and 64 keeps a full-width pass's per-node working
    set within a cache line budget while already amortizing the edge
    stream 64-fold. *)

val eval_slices : ?lanes:int -> t -> Category.Set.t array -> int array
(** [eval_slices ?lanes t sets]: bit-sliced subset sweep with an explicit
    lane count (clamped to 1..{!max_lanes}; default {!max_lanes}).  Per
    lane the max-plus recurrence is identical to the scalar pass, so the
    result is invariant under [lanes] and the pool job count. *)

val eval_lanes_pinned :
  t ->
  Category.Set.t array ->
  lo:int ->
  nl:int ->
  n_pinned:int ->
  pinned:int array ->
  pin_stride:int ->
  ext_floors:(int * int array) array ->
  latbuf:int array ->
  lset:int array ->
  ktab:int array array ->
  slab:int array ->
  unit
(** Bit-sliced pass over a streaming segment fragment: the first
    [n_pinned] nodes are boundary nodes loaded verbatim from [pinned]
    (node-major, stride [pin_stride], lane offset [lo]) instead of
    evaluated, and [ext_floors] (sorted by node, rows offset by [lo])
    injects per-lane lower bounds for producers older than the pinned
    prefix.  Evaluates lanes [sets.(lo) .. sets.(lo + nl - 1)]
    ([nl <= max_lanes]) into the caller's [slab] (node-major, stride
    [nl]), which is retained so the caller can extract the next segment's
    boundary carries.  [latbuf]/[lset] are scratch of length >= [nl];
    [ktab] must have 256 rows of length >= [nl] with row 0 all [-1].
    Since every edge satisfies [src < dst], continuing the recurrence from
    pinned absolute times is exactly the monolithic evaluation restarted
    mid-graph (bit-exact). *)

val cost_of_edges : ?ideal:Category.Set.t -> t -> (edge -> bool) -> int
(** Speedup from zeroing every matching edge (Tune et al.). *)

val instr_cost : ?ideal:Category.Set.t -> t -> seq:int -> int
(** Cost of one dynamic instruction's execution latency (its EP edge). *)

val slacks : ?ideal:Category.Set.t -> t -> int array
(** Per-node slack: how much later the node could arrive without growing
    the critical path ([max_int] for nodes with no path to the sink). *)

val critical_path : ?ideal:Category.Set.t -> t -> (int * edge_kind option) list
(** One critical path, source first; each element pairs a node with the
    kind of the edge taken {e into} it ([None] at the source). *)

val edge_histogram : t -> (edge_kind, int) Hashtbl.t
val to_dot : ?ideal:Category.Set.t -> t -> string
(** Graphviz rendering (small graphs); critical-path edges drawn bold. *)

val pp_small : Format.formatter -> ?ideal:Category.Set.t -> t -> unit
(** Compact text rendering: node times per instruction, then the edges. *)
