(** Telemetry exporters: Chrome trace-event JSON, flat metrics JSON and a
    human span tree.  See telemetry_export.mli.

    JSON is emitted by hand (the repository is dependency-free beyond the
    stdlib); the subset produced — objects, arrays, strings, ints, floats,
    null — round-trips through any JSON parser, and the test suite checks
    exactly that with a minimal parser of its own. *)

module Telemetry = Icost_util.Telemetry
module Pool = Icost_util.Pool

type manifest = {
  tool : string;
  version : string;
  git : string;
  ocaml : string;
  config_digest : string;
  workloads : string list;
  seed : int;
  jobs : int;
  icost_jobs_env : string option;
  service : (float * int) option;
  faults : string;  (* active Fault spec, or "none" *)
  retries : int;  (* client re-sends this run (service.retries) *)
  respawns : int;  (* supervisor shard respawns (service.respawns) *)
  failovers : int;  (* re-delivered in-flight requests (service.failovers) *)
}

let digest v = Digest.to_hex (Digest.string (Marshal.to_string v []))

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let manifest ?(version = "1.0.0") ?(config_digest = "") ?(seed = 0) ?service
    ~workloads () =
  {
    tool = "icost";
    version;
    git = git_describe ();
    ocaml = Sys.ocaml_version;
    config_digest;
    workloads;
    seed;
    jobs = Pool.jobs ();
    icost_jobs_env = Sys.getenv_opt "ICOST_JOBS";
    service;
    faults =
      (match Icost_util.Fault.active_spec () with
       | Some spec -> spec
       | None -> "none");
    retries = Telemetry.value (Telemetry.counter "service.retries");
    respawns = Telemetry.value (Telemetry.counter "service.respawns");
    failovers = Telemetry.value (Telemetry.counter "service.failovers");
  }

(* ---------- JSON emission ---------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jstr s = Printf.sprintf "\"%s\"" (escape s)

let jfloat f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let jlist items = "[" ^ String.concat "," items ^ "]"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let manifest_json (m : manifest) =
  jobj
    ([
       ("tool", jstr m.tool);
       ("version", jstr m.version);
       ("git", jstr m.git);
       ("ocaml", jstr m.ocaml);
       ("config", jstr m.config_digest);
       ("workloads", jlist (List.map jstr m.workloads));
       ("seed", string_of_int m.seed);
       ("jobs", string_of_int m.jobs);
       ( "icost_jobs",
         match m.icost_jobs_env with None -> "null" | Some s -> jstr s );
       ("faults", jstr m.faults);
       ("retries", string_of_int m.retries);
       ("respawns", string_of_int m.respawns);
       ("failovers", string_of_int m.failovers);
     ]
    @
    match m.service with
    | None -> []
    | Some (uptime_s, requests) ->
      [
        ( "service",
          jobj
            [
              ("uptime_s", jfloat uptime_s);
              ("requests", string_of_int requests);
            ] );
      ])

let span_args (attrs : (string * string) list) =
  jobj (List.map (fun (k, v) -> (k, jstr v)) attrs)

let trace_json (m : manifest) =
  let spans = Telemetry.spans () in
  let t0 =
    List.fold_left (fun acc (s : Telemetry.span_record) -> Float.min acc s.start)
      infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let event (s : Telemetry.span_record) =
    jobj
      ([
         ("name", jstr s.name);
         ("cat", jstr "icost");
         ("ph", jstr "X");
         ("ts", jfloat ((s.start -. t0) *. 1e6));
         ("dur", jfloat (s.dur *. 1e6));
         ("pid", "1");
         ("tid", string_of_int s.tid);
       ]
      @ if s.attrs = [] then [] else [ ("args", span_args s.attrs) ])
  in
  jobj
    [
      ("displayTimeUnit", jstr "ms");
      ("otherData", manifest_json m);
      ("traceEvents", jlist (List.map event spans));
    ]

let metrics_json (m : manifest) =
  let spans = Telemetry.spans () in
  let root_wall =
    List.fold_left
      (fun acc (s : Telemetry.span_record) ->
        if s.parent = 0 then acc +. s.dur else acc)
      0. spans
  in
  jobj
    [
      ("schema", jstr "icost.metrics.v1");
      ("manifest", manifest_json m);
      ( "counters",
        jobj
          (List.map
             (fun (k, v) -> (k, string_of_int v))
             (Telemetry.counters ())) );
      ( "gauges",
        jobj (List.map (fun (k, v) -> (k, jfloat v)) (Telemetry.gauges ())) );
      ( "spans",
        jobj
          [
            ("count", string_of_int (List.length spans));
            ("root_wall_s", jfloat root_wall);
          ] );
    ]

let write_file file contents =
  let oc = open_out file in
  output_string oc contents;
  output_char oc '\n';
  close_out oc

let write_trace ~file m = write_file file (trace_json m)

let write_metrics ~file m = write_file file (metrics_json m)

(* ---------- span tree ---------- *)

(* Aggregation trie: spans keyed by their call path (chain of names up to
   the root), accumulating call count and total duration per path. *)
type tnode = {
  mutable count : int;
  mutable total : float;
  children : (string, tnode) Hashtbl.t;
}

let new_tnode () = { count = 0; total = 0.; children = Hashtbl.create 4 }

let span_tree () =
  let spans = Telemetry.spans () in
  let by_id = Hashtbl.create 256 in
  List.iter
    (fun (s : Telemetry.span_record) -> Hashtbl.replace by_id s.id s)
    spans;
  let rec path (s : Telemetry.span_record) =
    match Hashtbl.find_opt by_id s.parent with
    | Some p -> path p @ [ s.name ]
    | None -> [ s.name ]
  in
  let root = new_tnode () in
  List.iter
    (fun (s : Telemetry.span_record) ->
      let rec insert node = function
        | [] ->
          node.count <- node.count + 1;
          node.total <- node.total +. s.dur
        | name :: rest ->
          let child =
            match Hashtbl.find_opt node.children name with
            | Some c -> c
            | None ->
              let c = new_tnode () in
              Hashtbl.add node.children name c;
              c
          in
          insert child rest
      in
      insert root (path s))
    spans;
  let buf = Buffer.create 1024 in
  let rec print depth node =
    let kids =
      Hashtbl.fold (fun name c acc -> (name, c) :: acc) node.children []
      |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
    in
    List.iter
      (fun (name, c) ->
        Buffer.add_string buf
          (Printf.sprintf "%s%-*s %6dx %10.3f ms\n" (String.make (2 * depth) ' ')
             (max 1 (36 - (2 * depth)))
             name c.count (c.total *. 1e3));
        print (depth + 1) c)
      kids
  in
  print 0 root;
  Buffer.contents buf
