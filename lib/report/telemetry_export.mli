(** Exporters for the {!Icost_util.Telemetry} sink.

    Three renderings of one measured run:

    - {b Chrome trace-event JSON} ({!trace_json}/{!write_trace}): the
      completed spans as ["X"] (complete) events — open in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  [ts]
      and [dur] are microseconds; [ts] is relative to the earliest span;
      [tid] is the OCaml domain id, so domain-pool utilization is the
      per-row occupancy of the timeline.
    - {b flat metrics JSON} ({!metrics_json}/{!write_metrics}): every
      counter and gauge plus span totals, for CI artifact diffing.
    - {b a human span tree} ({!span_tree}): spans aggregated by call
      path with counts and total durations.

    Every JSON artifact embeds a {!manifest} — config digest, workload
    list, sampling seed, job count, git revision — so artifacts from
    different machines and CI runs are comparable (same manifest modulo
    [git] ⇒ same measured configuration). *)

type manifest = {
  tool : string;
  version : string;
  git : string;  (** [git describe --always --dirty], or ["unknown"] *)
  ocaml : string;  (** [Sys.ocaml_version] *)
  config_digest : string;  (** {!digest} of the machine configuration *)
  workloads : string list;
  seed : int;  (** profiler sampling seed *)
  jobs : int;  (** {!Icost_util.Pool.jobs} at export time *)
  icost_jobs_env : string option;  (** raw [ICOST_JOBS], if set *)
  service : (float * int) option;
      (** server (uptime seconds, requests served), for artifacts written
          by a shutting-down [icost serve]; absent for one-shot runs *)
  faults : string;
      (** normalized {!Icost_util.Fault} spec active at export time, or
          ["none"] — a chaos run is distinguishable from a clean one by
          its artifacts alone *)
  retries : int;
      (** client re-sends recorded by the [service.retries] counter *)
  respawns : int;
      (** dead shards respawned by the supervisor ([service.respawns]);
          0 outside a sharded router process *)
  failovers : int;
      (** in-flight requests re-delivered after a shard death or drain
          ([service.failovers]); 0 outside a sharded router process *)
}

val digest : 'a -> string
(** MD5 hex digest of the marshalled value; deterministic for a given
    configuration value and compiler version.  Use on
    [Icost_uarch.Config.t] (an immutable record) to stamp the machine
    configuration into the manifest. *)

val manifest :
  ?version:string ->
  ?config_digest:string ->
  ?seed:int ->
  ?service:float * int ->
  workloads:string list ->
  unit ->
  manifest
(** Assemble a manifest for the current process ([git], [ocaml], [jobs],
    [icost_jobs_env], [faults] and [retries] are captured here). *)

val manifest_json : manifest -> string
(** The manifest alone as a JSON object (embedded verbatim in both
    artifact kinds). *)

val trace_json : manifest -> string
(** Chrome trace-event JSON of all completed spans recorded so far. *)

val metrics_json : manifest -> string
(** Flat metrics JSON: manifest + all counters and gauges + span totals. *)

val write_trace : file:string -> manifest -> unit
val write_metrics : file:string -> manifest -> unit

val span_tree : unit -> string
(** Aggregated span tree: one line per distinct call path with call count
    and summed duration, children indented under parents and sorted by
    total time.  Empty string when no spans were recorded. *)
