(** Out-of-order processor timing model (the machine of Table 6).

    Consumes a committed dynamic trace plus its event annotations and
    produces per-instruction stage timings and the total cycle count.
    Wrong-path instructions are not simulated; a misprediction contributes
    a fetch-redirect bubble.  Every idealization of the paper's Table 1 is
    honored through {!Icost_uarch.Config.ideal}, which is how the
    "multisim" oracle measures costs. *)

module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace

(** Per-instruction stage times (cycles, starting at 0). *)
type slot = {
  fetch : int;  (** cycle the instruction left the I-cache *)
  dispatch : int;  (** D: entered the instruction window *)
  ready : int;  (** R: all operands available *)
  exec_start : int;  (** E: issued to a functional unit *)
  complete : int;  (** P: result available *)
  commit : int;  (** C: retired *)
  exec_lat : int;  (** execution latency used (after idealization) *)
  fu_wait : int;  (** [exec_start - ready]: issue/FU contention *)
  imiss_delay : int;  (** I-cache/I-TLB stall charged to this instruction *)
  store_wait : int;  (** extra commit delay from store-bandwidth contention *)
}

type result = {
  cycles : int;  (** commit cycle of the last instruction, plus one *)
  slots : slot array;
  config : Config.t;
}

val load_latency_parts : Config.t -> Events.evt -> int * int
(** (dl1 hit component, miss component) of a load's execution latency. *)

val exec_latency : Config.t -> Trace.dyn -> Events.evt -> int
(** Execution latency after applying the configuration's idealizations. *)

val imiss_delay : Config.t -> Events.evt -> int
(** I-cache + I-TLB stall charged when fetching the instruction. *)

val mispredicts : Config.t -> Events.evt -> bool

val fetch_queue_size : int
(** How far fetch may run ahead of dispatch. *)

val run : Config.t -> Trace.t -> Events.evt array -> result
(** Time the execution.  [evts] must come from
    {!Icost_uarch.Events.annotate} on a configuration with the same
    structural parameters. *)

val cycles : Config.t -> Trace.t -> Events.evt array -> int
val ipc : result -> float

(** Streaming twin of {!run}: identical timing semantics over bounded
    state (a fixed ring of recent slots plus footprint-bounded completion
    maps), so arbitrarily long traces can be timed one instruction at a
    time.  Feeding the instructions of a trace in order yields slots
    bit-identical to {!run} on that trace. *)
module Stream : sig
  type t

  val create : Config.t -> t
  (** Fresh simulator state (cycle 0, empty window). *)

  val step : t -> Trace.dyn -> Events.evt -> slot
  (** Time the next committed instruction; must be fed strictly in trace
      order with its matching annotation. *)

  val processed : t -> int
  (** Instructions timed so far. *)

  val cycles : t -> int
  (** Commit cycle of the last instruction plus one (0 before any). *)
end
