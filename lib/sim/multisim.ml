(** The "multiple idealized simulations" cost oracle.

    The most direct (and most expensive) way to measure [cost(S)]: rerun the
    whole timing simulation with the event classes in [S] idealized.  This
    is the paper's baseline methodology, against which the dependence-graph
    and profiler oracles are validated in Table 7. *)

module Category = Icost_core.Category
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace

(** Translate a category set into simulator idealization switches. *)
let ideal_of_set (s : Category.Set.t) : Config.ideal =
  {
    Config.perfect_icache = Category.Set.mem Category.Imiss s;
    perfect_dcache = Category.Set.mem Category.Dmiss s;
    zero_dl1 = Category.Set.mem Category.Dl1 s;
    zero_short_alu = Category.Set.mem Category.Shalu s;
    zero_long_alu = Category.Set.mem Category.Lgalu s;
    perfect_bpred = Category.Set.mem Category.Bmisp s;
    infinite_bw = Category.Set.mem Category.Bw s;
    big_window = Category.Set.mem Category.Win s;
  }

module Telemetry = Icost_util.Telemetry

let c_queries = Telemetry.counter "multisim.queries"

(** One what-if measurement: re-time the trace with the requested
    idealizations.  Events were classified once (on the un-idealized
    machine) and are reused across runs, so every measurement sees the
    same event stream — only latencies and resources change.  Each query
    is one [multisim.eval] telemetry span carrying the idealized set's
    name (the per-idealization wall-clock axis of a trace). *)
let point (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array)
    (s : Category.Set.t) : float =
  let sp = Telemetry.start_span "multisim.eval" in
  Telemetry.incr c_queries;
  let cfg = { cfg with ideal = ideal_of_set s } in
  let cycles = float_of_int (Ooo.cycles cfg trace evts) in
  if Telemetry.enabled () then
    Telemetry.end_span sp ~attrs:[ ("set", Category.Set.name s) ]
  else Telemetry.end_span sp;
  cycles

(** [oracle_batch cfg trace evts sets] measures every idealization in
    [sets] — the fan-out axis of the methodology: each element is an
    independent full re-simulation over the same immutable trace and event
    stream, so the batch runs on the {!Icost_util.Pool} domain pool.
    Results are index-aligned with [sets] and bit-identical to mapping
    the point oracle sequentially. *)
let oracle_batch (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array)
    (sets : Category.Set.t array) : float array =
  let f = point cfg trace evts in
  Telemetry.with_span "multisim.batch"
    ~attrs:[ ("sets", string_of_int (Array.length sets)) ]
    (fun () -> Icost_util.Pool.parallel_map f sets)

let oracle (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array) :
    Icost_core.Cost.oracle =
  Icost_core.Cost.with_batch
    ~batch:(oracle_batch cfg trace evts)
    (point cfg trace evts)
