(** The "multiple idealized simulations" cost oracle: rerun the whole
    timing simulation with each requested event class idealized — the
    paper's ground-truth methodology (validated against in Table 7). *)

module Category = Icost_core.Category
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Trace = Icost_isa.Trace

val ideal_of_set : Category.Set.t -> Config.ideal
(** Translate a category set into simulator idealization switches. *)

val oracle : Config.t -> Trace.t -> Events.evt array -> Icost_core.Cost.oracle
(** Events are classified once and reused across runs, so every
    measurement sees the same event stream — only latencies and resources
    change. *)

val oracle_batch :
  Config.t -> Trace.t -> Events.evt array -> Category.Set.t array -> float array
(** Measure every idealization in the batch, fanning the independent
    simulations out across the {!Icost_util.Pool} domain pool.  Results
    are index-aligned with the input and bit-identical to mapping
    {!oracle} sequentially. *)
