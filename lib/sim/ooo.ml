(** Out-of-order processor timing model.

    Consumes a committed dynamic trace plus its event annotations
    ({!Icost_uarch.Events}) and produces per-instruction stage timings
    (fetch, dispatch, ready, execute, complete, commit) and the total cycle
    count.  The model implements the machine of Table 6:

    - in-order fetch with finite bandwidth, termination at the configured
      number of taken branches per cycle, I-cache miss stalls, and a finite
      fetch queue providing back-pressure from dispatch;
    - in-order dispatch into a finite instruction window (re-order buffer);
    - out-of-order issue limited by issue width and functional-unit pools
      (non-pipelined dividers), with a configurable issue-wakeup latency;
    - data-cache hierarchy latencies with MSHR-style line sharing: a load
      that hits a line whose miss is still outstanding completes only when
      the original miss returns (a "partial miss");
    - branch mispredictions modeled as a fetch redirect: the front end
      restarts so that the next instruction dispatches no earlier than the
      branch's completion plus the branch-recovery latency;
    - in-order commit with finite bandwidth.

    Wrong-path instructions are not simulated (their effect is the redirect
    bubble), matching the dependence-graph model's PD edge.

    Every idealization of the paper's Table 1 is honored through
    {!Icost_uarch.Config.ideal}: the *same* trace and the *same* event
    annotations are re-timed with selected latencies zeroed or resources
    made infinite, which is how the "multisim" cost oracle measures
    [cost(S) = t_base - t(S idealized)]. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Config = Icost_uarch.Config
module Events = Icost_uarch.Events
module Telemetry = Icost_util.Telemetry

(** Per-instruction stage times (cycles, starting at 0). *)
type slot = {
  fetch : int;  (** cycle the instruction left the I-cache *)
  dispatch : int;  (** D: entered the instruction window *)
  ready : int;  (** R: all operands available *)
  exec_start : int;  (** E: issued to a functional unit *)
  complete : int;  (** P: result available *)
  commit : int;  (** C: retired *)
  exec_lat : int;  (** execution latency actually used (after idealization) *)
  fu_wait : int;  (** [exec_start - ready]: issue/FU contention *)
  imiss_delay : int;  (** I-cache/I-TLB stall charged to this instruction *)
  store_wait : int;  (** extra commit delay from store-bandwidth contention *)
}

type result = {
  cycles : int;  (** total execution time: commit cycle of the last instruction + 1 *)
  slots : slot array;
  config : Config.t;
}

(* Issue-slot accounting: number of instructions issued in a given cycle. *)
module Issue_table = struct
  type t = { counts : (int, int) Hashtbl.t; width : int }

  let create width = { counts = Hashtbl.create 4096; width }

  let rec first_free t cycle =
    if t.width >= Config.huge_bw then cycle
    else
      match Hashtbl.find_opt t.counts cycle with
      | Some c when c >= t.width -> first_free t (cycle + 1)
      | _ -> cycle

  let reserve t cycle =
    if t.width < Config.huge_bw then
      Hashtbl.replace t.counts cycle
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts cycle))
end

(* Functional-unit pool: per-cycle occupancy accounting.  A pool of K
   pipelined units admits K issues per cycle (initiation interval 1);
   non-pipelined dividers occupy a unit for their whole latency, so a
   divide marks every cycle of its execution as occupied. *)
module Fu_pool = struct
  type t = { used : (int, int) Hashtbl.t; size : int; mutable contended : int }

  let create size = { used = Hashtbl.create 4096; size; contended = 0 }

  let count t cycle = Option.value ~default:0 (Hashtbl.find_opt t.used cycle)

  (* earliest start >= [cycle] where a unit is free for [busy] consecutive
     cycles *)
  let earliest t ~busy cycle =
    let fits c =
      let rec go k = k >= busy || (count t (c + k) < t.size && go (k + 1)) in
      go 0
    in
    let rec search c = if fits c then c else search (c + 1) in
    search cycle

  let reserve t ~from ~busy =
    for c = from to from + busy - 1 do
      Hashtbl.replace t.used c (count t c + 1)
    done
end

(** Decompose a load's execution latency into (dl1 hit component, miss
    component).  The miss component covers L2/memory and D-TLB handling. *)
let load_latency_parts (cfg : Config.t) (e : Events.evt) =
  let hit = cfg.dl1_lat in
  let miss =
    (if e.dl1_miss then cfg.l2_lat + if e.dl2_miss then cfg.mem_lat else 0 else 0)
    + if e.dtlb_miss then cfg.tlb_miss_lat else 0
  in
  (hit, miss)

(** Execution latency after applying idealizations. *)
let exec_latency (cfg : Config.t) (d : Trace.dyn) (e : Events.evt) =
  let ideal = cfg.ideal in
  let c = Isa.class_of d.instr in
  match c with
  | Isa.Mem_load ->
    let hit, miss = load_latency_parts cfg e in
    let hit = if ideal.zero_dl1 then 0 else hit in
    let miss = if ideal.perfect_dcache then 0 else miss in
    hit + miss
  | Isa.Mem_store -> if ideal.zero_short_alu then 0 else Config.exec_latency cfg c
  | Isa.Short_alu | Isa.Ctrl | Isa.Nop_class ->
    if ideal.zero_short_alu then 0 else Config.exec_latency cfg c
  | Isa.Int_mul | Isa.Int_div | Isa.Fp_add | Isa.Fp_mul | Isa.Fp_div ->
    if ideal.zero_long_alu then 0 else Config.exec_latency cfg c

(** I-cache + I-TLB stall charged when fetching [d]. *)
let imiss_delay (cfg : Config.t) (e : Events.evt) =
  if cfg.ideal.perfect_icache then 0
  else
    (if e.il1_miss then cfg.l2_lat + if e.il2_miss then cfg.mem_lat else 0 else 0)
    + if e.itlb_miss then cfg.tlb_miss_lat else 0

let mispredicts (cfg : Config.t) (e : Events.evt) =
  e.mispredict && not cfg.ideal.perfect_bpred

(* Size of the fetch queue decoupling fetch from dispatch: fetch may run at
   most this many instructions ahead of dispatch. *)
let fetch_queue_size = 32

let c_runs = Telemetry.counter "sim.runs"
let c_instrs = Telemetry.counter "sim.instructions"

let simulate (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array) : result =
  let n = Trace.length trace in
  if n = 0 then { cycles = 0; slots = [||]; config = cfg }
  else begin
    let window = Config.effective_window cfg in
    let fetch_bw = Config.effective_fetch_bw cfg in
    let commit_bw = Config.effective_commit_bw cfg in
    let issue = Issue_table.create (Config.effective_issue_width cfg) in
    let int_alu = Fu_pool.create cfg.num_int_alu in
    let int_mul = Fu_pool.create cfg.num_int_mul in
    let fp_alu = Fu_pool.create cfg.num_fp_alu in
    let fp_mul = Fu_pool.create cfg.num_fp_mul in
    let mem_port = Fu_pool.create cfg.num_mem_ports in
    let pool_of c =
      match Config.fu_pool_of_class c with
      | Config.Int_alu_pool -> int_alu
      | Config.Int_mul_pool -> int_mul
      | Config.Fp_alu_pool -> fp_alu
      | Config.Fp_mul_pool -> fp_mul
      | Config.Mem_port_pool -> mem_port
    in
    let slots = Array.make n
        { fetch = 0; dispatch = 0; ready = 0; exec_start = 0; complete = 0;
          commit = 0; exec_lat = 0; fu_wait = 0; imiss_delay = 0; store_wait = 0 }
    in
    (* stores retired per cycle (L1 write-port contention; Fig. 5b's dynamic
       CC latency).  Lifted by the bw idealization. *)
    let store_commits : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    (* fetch-stage state *)
    let fetch_cycle = ref 0 in
    let fetched_this_cycle = ref 0 in
    let taken_this_cycle = ref 0 in
    (* when a mispredicted branch is pending, fetch resumes only after it
       completes; [pending_redirect] holds its index *)
    let pending_redirect = ref (-1) in
    for i = 0 to n - 1 do
      let d = Trace.get trace i in
      let e = evts.(i) in
      (* ---- fetch ---- *)
      let stall_floor = ref 0 in
      (* redirect after a mispredicted branch: the next correct-path
         instruction dispatches >= complete(branch) + branch_recovery, so its
         fetch resumes frontend_depth earlier than that *)
      if !pending_redirect >= 0 then begin
        let b = slots.(!pending_redirect) in
        stall_floor :=
          max !stall_floor (b.complete + cfg.branch_recovery - cfg.frontend_depth);
        pending_redirect := -1
      end;
      (* fetch-queue back-pressure *)
      if i >= fetch_queue_size then
        stall_floor := max !stall_floor (slots.(i - fetch_queue_size).dispatch - cfg.frontend_depth);
      if !stall_floor > !fetch_cycle then begin
        fetch_cycle := !stall_floor;
        fetched_this_cycle := 0;
        taken_this_cycle := 0
      end;
      (* bandwidth and taken-branch limits close the current fetch cycle
         (both are part of the paper's "bw" idealization) *)
      if !fetched_this_cycle >= fetch_bw
         || (fetch_bw < Config.huge_bw && !taken_this_cycle >= cfg.fetch_taken_limit)
      then begin
        incr fetch_cycle;
        fetched_this_cycle := 0;
        taken_this_cycle := 0
      end;
      let imiss = imiss_delay cfg e in
      if imiss > 0 then begin
        (* the line must arrive before the instruction can be delivered *)
        fetch_cycle := !fetch_cycle + imiss;
        fetched_this_cycle := 0;
        taken_this_cycle := 0
      end;
      let fetch = !fetch_cycle in
      incr fetched_this_cycle;
      if Isa.is_branch d.instr && d.taken then incr taken_this_cycle;
      if mispredicts cfg e then pending_redirect := i;
      (* ---- dispatch ---- *)
      let dispatch = ref (fetch + cfg.frontend_depth) in
      if i > 0 then dispatch := max !dispatch slots.(i - 1).dispatch;
      if fetch_bw < Config.huge_bw && i >= fetch_bw then
        dispatch := max !dispatch (slots.(i - fetch_bw).dispatch + 1);
      if i >= window then dispatch := max !dispatch slots.(i - window).commit;
      let dispatch = !dispatch in
      (* ---- ready: operands ---- *)
      let ready = ref (dispatch + 1) in
      List.iter
        (fun (_, p) ->
          ready := max !ready (slots.(p).complete + (cfg.wakeup_latency - 1)))
        d.reg_deps;
      (match d.mem_dep with
       | Some p when p >= 0 ->
         ready := max !ready (slots.(p).complete + (cfg.wakeup_latency - 1))
       | _ -> ());
      let ready = !ready in
      (* ---- issue: issue slot + functional unit ---- *)
      let cls = Isa.class_of d.instr in
      let pool = pool_of cls in
      let exec_lat = exec_latency cfg d e in
      let busy =
        match cls with
        | Isa.Int_div | Isa.Fp_div -> max 1 exec_lat (* non-pipelined *)
        | _ -> 1
      in
      (* find a cycle with both a free unit and a free issue slot *)
      let rec find c =
        let c' = Fu_pool.earliest pool ~busy c in
        let c'' = Issue_table.first_free issue c' in
        if c'' = c' then c' else find c''
      in
      let exec_start = find ready in
      Issue_table.reserve issue exec_start;
      Fu_pool.reserve pool ~from:exec_start ~busy;
      if exec_start > ready then pool.Fu_pool.contended <- pool.Fu_pool.contended + 1;
      (* ---- complete, with cache-line sharing (partial misses) ---- *)
      let complete = ref (exec_start + exec_lat) in
      (match e.share_src with
       | Some src when not cfg.ideal.perfect_dcache ->
         complete := max !complete slots.(src).complete
       | _ -> ());
      let complete = !complete in
      (* ---- commit ---- *)
      let commit = ref (complete + 1) in
      if i > 0 then commit := max !commit slots.(i - 1).commit;
      if commit_bw < Config.huge_bw && i >= commit_bw then
        commit := max !commit (slots.(i - commit_bw).commit + 1);
      let store_wait = ref 0 in
      if Isa.is_store d.instr && commit_bw < Config.huge_bw then begin
        let stores_at c = Option.value ~default:0 (Hashtbl.find_opt store_commits c) in
        let rec free c = if stores_at c < cfg.store_commit_bw then c else free (c + 1) in
        let c = free !commit in
        store_wait := c - !commit;
        commit := c;
        Hashtbl.replace store_commits c (stores_at c + 1)
      end;
      let commit = !commit in
      slots.(i) <-
        { fetch; dispatch; ready; exec_start; complete; commit; exec_lat;
          fu_wait = exec_start - ready; imiss_delay = imiss;
          store_wait = !store_wait }
    done;
    { cycles = slots.(n - 1).commit + 1; slots; config = cfg }
  end

(** [run cfg trace evts] times the execution of [trace] on the machine
    [cfg].  [evts] must come from {!Icost_uarch.Events.annotate} on a
    configuration with the same structural parameters.  Each run is one
    telemetry span ([sim.run]) and bumps the instructions-simulated
    counter; both are single-branch no-ops when the sink is disabled. *)
let run (cfg : Config.t) (trace : Trace.t) (evts : Events.evt array) : result =
  if not (Telemetry.enabled ()) then simulate cfg trace evts
  else begin
    let sp = Telemetry.start_span "sim.run" in
    let r = simulate cfg trace evts in
    Telemetry.incr c_runs;
    Telemetry.add c_instrs (Array.length r.slots);
    Telemetry.end_span sp
      ~attrs:
        [
          ("instrs", string_of_int (Array.length r.slots));
          ("cycles", string_of_int r.cycles);
        ];
    r
  end

(** Convenience: total cycles only. *)
let cycles cfg trace evts = (run cfg trace evts).cycles

(** Streaming twin of [simulate]: identical timing semantics, bounded
    state.  Because every stage time of instruction [i] depends only on the
    last [max (window, fetch queue, fetch/commit bandwidth)] slots, the
    last completion per architectural register / store address / missing
    cache line, and a handful of scalar fetch-stage variables, the whole
    simulator state fits in a fixed-size ring plus footprint-bounded maps —
    so arbitrarily long traces can be timed without materializing their
    slots.  [step] is a line-for-line transcription of the [simulate] loop
    body; the bit-identity of the two is pinned by tests. *)
module Stream = struct
  type t = {
    cfg : Config.t;
    window : int;
    fetch_bw : int;
    commit_bw : int;
    issue : Issue_table.t;
    int_alu : Fu_pool.t;
    int_mul : Fu_pool.t;
    fp_alu : Fu_pool.t;
    fp_mul : Fu_pool.t;
    mem_port : Fu_pool.t;
    store_commits : (int, int) Hashtbl.t;
    ring : slot array;  (** last [ring_cap] slots, indexed by [seq mod ring_cap] *)
    ring_cap : int;
    reg_complete : int array;
        (** completion cycle of the last writer of each register: the trace
            invariant that a reg dep always names the most recent writer
            makes this equivalent to [slots.(p).complete] *)
    store_complete : (int, int) Hashtbl.t;  (** byte address -> last store completion *)
    line_complete : (int, int) Hashtbl.t;
        (** data line -> completion of the last load that missed on it
            (mirrors the annotator's [last_line_miss] keying) *)
    mutable count : int;
    mutable fetch_cycle : int;
    mutable fetched_this_cycle : int;
    mutable taken_this_cycle : int;
    mutable redirect_complete : int;
        (** completion cycle of a pending mispredicted branch (always the
            immediately preceding instruction), or -1 *)
    mutable next_prune : int;
  }

  let zero_slot =
    { fetch = 0; dispatch = 0; ready = 0; exec_start = 0; complete = 0;
      commit = 0; exec_lat = 0; fu_wait = 0; imiss_delay = 0; store_wait = 0 }

  (* The cycle-keyed contention tables grow with simulated time; entries
     below the (monotone) dispatch/commit frontiers can never be probed or
     reserved again, so they are dropped periodically. *)
  let prune_period = 4096

  let create (cfg : Config.t) : t =
    let window = Config.effective_window cfg in
    let fetch_bw = Config.effective_fetch_bw cfg in
    let commit_bw = Config.effective_commit_bw cfg in
    let ring_cap =
      max window
        (max fetch_queue_size
           (max
              (if fetch_bw < Config.huge_bw then fetch_bw else 1)
              (if commit_bw < Config.huge_bw then commit_bw else 1)))
    in
    {
      cfg;
      window;
      fetch_bw;
      commit_bw;
      issue = Issue_table.create (Config.effective_issue_width cfg);
      int_alu = Fu_pool.create cfg.num_int_alu;
      int_mul = Fu_pool.create cfg.num_int_mul;
      fp_alu = Fu_pool.create cfg.num_fp_alu;
      fp_mul = Fu_pool.create cfg.num_fp_mul;
      mem_port = Fu_pool.create cfg.num_mem_ports;
      store_commits = Hashtbl.create 1024;
      ring = Array.make ring_cap zero_slot;
      ring_cap;
      reg_complete = Array.make Isa.num_regs 0;
      store_complete = Hashtbl.create 1024;
      line_complete = Hashtbl.create 1024;
      count = 0;
      fetch_cycle = 0;
      fetched_this_cycle = 0;
      taken_this_cycle = 0;
      redirect_complete = -1;
      next_prune = prune_period;
    }

  (* slot of instruction [count - k]; valid for 1 <= k <= min count ring_cap *)
  let back t k = t.ring.((t.count - k) mod t.ring_cap)

  let prune t ~dispatch ~commit =
    let drop tbl pred =
      let dead = Hashtbl.fold (fun k _ acc -> if pred k then k :: acc else acc) tbl [] in
      List.iter (Hashtbl.remove tbl) dead
    in
    (* issue slots and FU cycles are only ever probed from ready >=
       dispatch + 1 of a later instruction, and dispatch is monotone *)
    drop t.issue.Issue_table.counts (fun c -> c <= dispatch);
    List.iter
      (fun (p : Fu_pool.t) -> drop p.Fu_pool.used (fun c -> c <= dispatch))
      [ t.int_alu; t.int_mul; t.fp_alu; t.fp_mul; t.mem_port ];
    (* store-commit cycles are probed from the (monotone) commit frontier *)
    drop t.store_commits (fun c -> c < commit);
    (* completed-producer tables are probed into [ready] (respectively
       [complete]), both >= dispatch + 1 of a later instruction: entries
       at or below the dispatch frontier can never win a max again, so
       the tables track the live data footprint, not the cumulative one *)
    let drop_v tbl pred =
      let dead =
        Hashtbl.fold (fun k v acc -> if pred v then k :: acc else acc) tbl []
      in
      List.iter (Hashtbl.remove tbl) dead
    in
    let wake = t.cfg.wakeup_latency - 1 in
    drop_v t.store_complete (fun c -> c + wake <= dispatch);
    drop_v t.line_complete (fun c -> c <= dispatch)

  let step (t : t) (d : Trace.dyn) (e : Events.evt) : slot =
    let cfg = t.cfg in
    let i = t.count in
    let pool_of c =
      match Config.fu_pool_of_class c with
      | Config.Int_alu_pool -> t.int_alu
      | Config.Int_mul_pool -> t.int_mul
      | Config.Fp_alu_pool -> t.fp_alu
      | Config.Fp_mul_pool -> t.fp_mul
      | Config.Mem_port_pool -> t.mem_port
    in
    (* ---- fetch ---- *)
    let stall_floor = ref 0 in
    if t.redirect_complete >= 0 then begin
      stall_floor :=
        max !stall_floor (t.redirect_complete + cfg.branch_recovery - cfg.frontend_depth);
      t.redirect_complete <- -1
    end;
    if i >= fetch_queue_size then
      stall_floor := max !stall_floor ((back t fetch_queue_size).dispatch - cfg.frontend_depth);
    if !stall_floor > t.fetch_cycle then begin
      t.fetch_cycle <- !stall_floor;
      t.fetched_this_cycle <- 0;
      t.taken_this_cycle <- 0
    end;
    if t.fetched_this_cycle >= t.fetch_bw
       || (t.fetch_bw < Config.huge_bw && t.taken_this_cycle >= cfg.fetch_taken_limit)
    then begin
      t.fetch_cycle <- t.fetch_cycle + 1;
      t.fetched_this_cycle <- 0;
      t.taken_this_cycle <- 0
    end;
    let imiss = imiss_delay cfg e in
    if imiss > 0 then begin
      t.fetch_cycle <- t.fetch_cycle + imiss;
      t.fetched_this_cycle <- 0;
      t.taken_this_cycle <- 0
    end;
    let fetch = t.fetch_cycle in
    t.fetched_this_cycle <- t.fetched_this_cycle + 1;
    if Isa.is_branch d.instr && d.taken then t.taken_this_cycle <- t.taken_this_cycle + 1;
    (* ---- dispatch ---- *)
    let dispatch = ref (fetch + cfg.frontend_depth) in
    if i > 0 then dispatch := max !dispatch (back t 1).dispatch;
    if t.fetch_bw < Config.huge_bw && i >= t.fetch_bw then
      dispatch := max !dispatch ((back t t.fetch_bw).dispatch + 1);
    if i >= t.window then dispatch := max !dispatch (back t t.window).commit;
    let dispatch = !dispatch in
    (* ---- ready: operands ---- *)
    let ready = ref (dispatch + 1) in
    List.iter
      (fun (r, p) ->
        if p >= 0 then ready := max !ready (t.reg_complete.(r) + (cfg.wakeup_latency - 1)))
      d.reg_deps;
    (match d.mem_dep with
     | Some p when p >= 0 ->
       let c =
         match d.mem_addr with
         | Some a -> Option.value ~default:0 (Hashtbl.find_opt t.store_complete a)
         | None -> 0
       in
       ready := max !ready (c + (cfg.wakeup_latency - 1))
     | _ -> ());
    let ready = !ready in
    (* ---- issue: issue slot + functional unit ---- *)
    let cls = Isa.class_of d.instr in
    let pool = pool_of cls in
    let exec_lat = exec_latency cfg d e in
    let busy =
      match cls with Isa.Int_div | Isa.Fp_div -> max 1 exec_lat | _ -> 1
    in
    let rec find c =
      let c' = Fu_pool.earliest pool ~busy c in
      let c'' = Issue_table.first_free t.issue c' in
      if c'' = c' then c' else find c''
    in
    let exec_start = find ready in
    Issue_table.reserve t.issue exec_start;
    Fu_pool.reserve pool ~from:exec_start ~busy;
    if exec_start > ready then pool.Fu_pool.contended <- pool.Fu_pool.contended + 1;
    (* ---- complete, with cache-line sharing (partial misses) ---- *)
    let complete = ref (exec_start + exec_lat) in
    (match e.share_src with
     | Some _ when not cfg.ideal.perfect_dcache -> (
       match Hashtbl.find_opt t.line_complete e.line with
       | Some c -> complete := max !complete c
       | None -> ())
     | _ -> ());
    let complete = !complete in
    (* ---- commit ---- *)
    let commit = ref (complete + 1) in
    if i > 0 then commit := max !commit (back t 1).commit;
    if t.commit_bw < Config.huge_bw && i >= t.commit_bw then
      commit := max !commit ((back t t.commit_bw).commit + 1);
    let store_wait = ref 0 in
    if Isa.is_store d.instr && t.commit_bw < Config.huge_bw then begin
      let stores_at c = Option.value ~default:0 (Hashtbl.find_opt t.store_commits c) in
      let rec free c = if stores_at c < cfg.store_commit_bw then c else free (c + 1) in
      let c = free !commit in
      store_wait := c - !commit;
      commit := c;
      Hashtbl.replace t.store_commits c (stores_at c + 1)
    end;
    let commit = !commit in
    let slot =
      { fetch; dispatch; ready; exec_start; complete; commit; exec_lat;
        fu_wait = exec_start - ready; imiss_delay = imiss; store_wait = !store_wait }
    in
    t.ring.(i mod t.ring_cap) <- slot;
    (match Isa.dest d.instr with
     | Some rd -> t.reg_complete.(rd) <- complete
     | None -> ());
    if Isa.is_store d.instr then (
      match d.mem_addr with
      | Some a -> Hashtbl.replace t.store_complete a complete
      | None -> ());
    if Isa.is_load d.instr && e.dl1_miss then Hashtbl.replace t.line_complete e.line complete;
    if mispredicts cfg e then t.redirect_complete <- complete;
    t.count <- i + 1;
    if t.count >= t.next_prune then begin
      prune t ~dispatch ~commit;
      t.next_prune <- t.count + prune_period
    end;
    slot

  let processed t = t.count

  let cycles t = if t.count = 0 then 0 else (back t 1).commit + 1
end

(** Instructions per cycle of a result. *)
let ipc r =
  if r.cycles = 0 then 0. else float_of_int (Array.length r.slots) /. float_of_int r.cycles
