(** Model of the hardware performance monitors (Section 5.1).

    Two sample types are collected while the program runs:

    - {b signature samples}: a start PC plus two signature bits for each of
      the next [sig_len] (default 1000) dynamic instructions — long and
      narrow;
    - {b detailed samples}: for a single dynamic instruction, the latencies
      and dynamic dependences the hardware can observe (execution latency,
      FU contention, I-cache stall, store-forward and line-share distances,
      indirect branch target, misprediction flag), plus the signature bits
      of the [context] (default 10) instructions before and after — short
      and wide.

    The sampler reads the simulator's trace, events and timing exactly as a
    PMU would observe a real execution; crucially, the *software* side
    ({!Construct}) never sees anything beyond these samples and the program
    binary. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Prng = Icost_util.Prng

type signature_sample = {
  start_pc : int;
  sig_bits : int array;  (** [sig_len] entries of 2-bit values *)
}

type detailed_sample = {
  pc : int;
  context_bits : int array;  (** 2*context+1 entries centered on this instruction *)
  exec_lat : int;  (** measured execution latency (includes miss handling) *)
  fu_wait : int;
  store_wait : int;
  imiss_delay : int;
  mem_dep_dist : int option;  (** distance (in dynamic instrs) to the forwarding store *)
  share_dist : int option;  (** distance to the load whose miss covers this line *)
  indirect_target : int option;  (** actual target, for indirect jumps *)
  mispredict : bool;
  taken : bool;
}

type opts = {
  sig_len : int;
  sig_period : int;  (** average dynamic instructions between signature samples *)
  det_period : int;  (** dynamic instructions between detailed samples *)
  context : int;  (** signature context width on each side of a detailed sample *)
  seed : int;
}

let default_opts =
  { sig_len = 1000; sig_period = 1500; det_period = 13; context = 10; seed = 0x5a5 }

type db = {
  signatures : signature_sample array;
  (* detailed samples indexed by PC, as the software algorithm looks them up *)
  detailed : (int, detailed_sample list) Hashtbl.t;
  num_detailed : int;
}

(** All signature bits of the run (shared by both sample types). *)
let all_bits (trace : Trace.t) (evts : Events.evt array) : int array =
  Array.init (Trace.length trace) (fun i ->
      Signature.bits (Trace.get trace i) evts.(i))

let detailed_of (cfg : Icost_uarch.Config.t) (trace : Trace.t)
    (evts : Events.evt array) (result : Ooo.result) (bits : int array)
    ~context i : detailed_sample =
  let d = Trace.get trace i in
  let e = evts.(i) in
  let slot = result.slots.(i) in
  let n = Trace.length trace in
  let context_bits =
    Array.init ((2 * context) + 1) (fun k ->
        let j = i - context + k in
        if j >= 0 && j < n then bits.(j) else 0)
  in
  {
    pc = d.pc;
    context_bits;
    exec_lat = slot.exec_lat;
    fu_wait = slot.fu_wait;
    store_wait = slot.store_wait;
    imiss_delay = Ooo.imiss_delay cfg e;
    mem_dep_dist = Option.map (fun p -> i - p) d.mem_dep;
    share_dist = Option.map (fun p -> i - p) e.share_src;
    indirect_target =
      (if Isa.is_indirect d.instr then Some d.next_pc else None);
    mispredict = e.mispredict;
    taken = d.taken;
  }

let c_signature = Icost_util.Telemetry.counter "profiler.signature_samples"
let c_detailed = Icost_util.Telemetry.counter "profiler.detailed_samples"

(** Run the monitors over an execution and collect both sample streams. *)
let collect ?(opts = default_opts) (cfg : Icost_uarch.Config.t)
    (trace : Trace.t) (evts : Events.evt array) (result : Ooo.result) : db =
  let sp = Icost_util.Telemetry.start_span "profiler.collect" in
  let n = Trace.length trace in
  let bits = all_bits trace evts in
  let prng = Prng.create opts.seed in
  (* signature samples at randomized intervals (so hot paths are sampled in
     proportion to their frequency) *)
  let signatures = ref [] in
  let i = ref (Prng.int prng (max 1 opts.sig_period)) in
  while !i + opts.sig_len < n do
    let start = !i in
    signatures :=
      {
        start_pc = (Trace.get trace start).pc;
        sig_bits = Array.sub bits start opts.sig_len;
      }
      :: !signatures;
    i := start + max 1 (opts.sig_period + Prng.int_range prng (-100) 100)
  done;
  (* detailed samples: sparse, one instruction at a time *)
  let detailed = Hashtbl.create 4096 in
  let num = ref 0 in
  let j = ref (Prng.int prng (max 1 opts.det_period)) in
  while !j < n do
    let s = detailed_of cfg trace evts result bits ~context:opts.context !j in
    Hashtbl.replace detailed s.pc
      (s :: Option.value ~default:[] (Hashtbl.find_opt detailed s.pc));
    incr num;
    j := !j + max 1 opts.det_period
  done;
  let db =
    { signatures = Array.of_list (List.rev !signatures); detailed; num_detailed = !num }
  in
  Icost_util.Telemetry.add c_signature (Array.length db.signatures);
  Icost_util.Telemetry.add c_detailed db.num_detailed;
  Icost_util.Telemetry.end_span sp;
  db

let lookup db pc = Option.value ~default:[] (Hashtbl.find_opt db.detailed pc)
