(** End-to-end shotgun profiling (Section 5).

    Ties the pieces together: run the hardware monitors over an execution
    ({!Sampler}), reconstruct graph fragments from the samples
    ({!Construct}), and aggregate fragment-level cost measurements into a
    {!Icost_core.Cost.oracle} that drop-in replaces the simulator-based
    oracles.  The profiler's estimate of execution time under idealization
    [S] is the sum of fragment critical-path lengths under [S]; because
    breakdowns are ratios of costs to baseline time, the estimate is
    statistically representative as long as fragments sample the execution
    uniformly. *)

module Config = Icost_uarch.Config
module Trace = Icost_isa.Trace
module Events = Icost_uarch.Events
module Ooo = Icost_sim.Ooo
module Program = Icost_isa.Program
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Category = Icost_core.Category

type stats = {
  num_signatures : int;
  num_detailed : int;
  fragments_built : int;
  fragments_aborted : int;
  aborted_by : (Construct.abort_reason * int) list;
  match_rate : float;  (** fraction of instructions with a detailed sample *)
  instructions_covered : int;
}

type t = {
  graphs : Graph.t array;  (** one per successfully built fragment *)
  stats : stats;
}

module Telemetry = Icost_util.Telemetry

let c_built = Telemetry.counter "profiler.fragments_built"
let c_aborted = Telemetry.counter "profiler.fragments_aborted"
let c_matched = Telemetry.counter "profiler.samples_matched"
let c_defaulted = Telemetry.counter "profiler.samples_defaulted"

(** Profile an execution: collect samples and reconstruct fragments.
    [opts] controls the sampling rates. *)
let profile ?(opts = Sampler.default_opts) (cfg : Config.t)
    (program : Program.t) (trace : Trace.t) (evts : Events.evt array)
    (result : Ooo.result) : t =
  let sp = Telemetry.start_span "profiler.profile" in
  let db = Sampler.collect ~opts cfg trace evts result in
  let params = Build.params_of_config cfg in
  (* Each signature reconstructs independently (shared state is the
     read-only sample database), so fan the construction out and stitch
     the results back in signature order — the profile must be identical
     whatever ICOST_JOBS says. *)
  let outcomes =
    Icost_util.Pool.parallel_map
      (fun ss ->
        match
          Construct.fragment_of_signature cfg program db ~context:opts.context
            ss
        with
        | Construct.Built frag ->
          Ok (Build.of_infos params frag.infos, frag.matched, frag.defaulted)
        | Construct.Aborted (reason, _) -> Error reason)
      db.signatures
  in
  let built = ref [] in
  let aborted = Hashtbl.create 4 in
  let n_aborted = ref 0 in
  let matched = ref 0 and total = ref 0 in
  Array.iter
    (fun outcome ->
      match outcome with
      | Ok (g, m, d) ->
        matched := !matched + m;
        total := !total + m + d;
        built := g :: !built
      | Error reason ->
        incr n_aborted;
        Hashtbl.replace aborted reason
          (1 + Option.value ~default:0 (Hashtbl.find_opt aborted reason)))
    outcomes;
  let graphs = Array.of_list (List.rev !built) in
  Telemetry.add c_built (Array.length graphs);
  Telemetry.add c_aborted !n_aborted;
  Telemetry.add c_matched !matched;
  Telemetry.add c_defaulted (!total - !matched);
  if Telemetry.enabled () then
    Telemetry.end_span sp
      ~attrs:
        [
          ("fragments", string_of_int (Array.length graphs));
          ("aborted", string_of_int !n_aborted);
        ]
  else Telemetry.end_span sp;
  {
    graphs;
    stats =
      {
        num_signatures = Array.length db.signatures;
        num_detailed = db.num_detailed;
        fragments_built = Array.length graphs;
        fragments_aborted = !n_aborted;
        aborted_by =
          (* canonical order, so the record compares equal across runs *)
          List.sort compare
            (Hashtbl.fold (fun r c acc -> (r, c) :: acc) aborted []);
        match_rate =
          (if !total = 0 then 0. else float_of_int !matched /. float_of_int !total);
        instructions_covered = !total;
      };
  }

(** The profiler's cost oracle: summed critical-path length of all
    fragments under the given idealization.  The batch path prices every
    requested subset over one fragment at a time (each fragment is one
    bit-sliced {!Graph.eval_subsets} sweep) and accumulates in the same
    fragment order with the same float additions as the point path, so
    the two are bit-identical. *)
let oracle (t : t) : Icost_core.Cost.oracle =
  let point s =
    Array.fold_left
      (fun acc g -> acc +. float_of_int (Graph.critical_length ~ideal:s g))
      0. t.graphs
  in
  let batch sets =
    let m = Array.length sets in
    let out = Array.make m 0. in
    Array.iter
      (fun g ->
        let row = Graph.eval_subsets g sets in
        for i = 0 to m - 1 do
          out.(i) <- out.(i) +. float_of_int row.(i)
        done)
      t.graphs;
    out
  in
  Icost_core.Cost.with_batch ~batch point
