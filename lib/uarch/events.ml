(** Event annotation: one deterministic pass over the dynamic trace that
    classifies every microarchitectural event — cache and TLB misses, branch
    mispredictions, cache-line sharing between loads.

    The classification is computed once per (program, machine) pair and
    reused by the baseline simulation, every idealized simulation and the
    dependence-graph analysis.  This mirrors the paper's graph methodology:
    idealization edits the *latency* of events, not which events occurred,
    so all cost measurements see the same event stream. *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace

type evt = {
  il1_miss : bool;
  il2_miss : bool;  (** instruction fetch missed in the shared L2 as well *)
  itlb_miss : bool;
  dl1_miss : bool;
  dl2_miss : bool;  (** data access missed in the shared L2 as well *)
  dtlb_miss : bool;
  line : int;  (** data line address, -1 for non-memory instructions *)
  share_src : int option;
      (** for a load: [seq] of the most recent earlier load that missed on
          the same line (the paper's PP edge — partial-miss modeling) *)
  mispredict : bool;
}

let no_evt =
  {
    il1_miss = false;
    il2_miss = false;
    itlb_miss = false;
    dl1_miss = false;
    dl2_miss = false;
    dtlb_miss = false;
    line = -1;
    share_src = None;
    mispredict = false;
  }

type summary = {
  il1_misses : int;
  il2_misses : int;
  dl1_misses : int;
  dl2_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  mispredicts : int;
  cond_branches : int;
  loads : int;
  stores : int;
}

(** [slice evts ~start ~len] extracts the annotation window matching
    {!Icost_isa.Trace.slice}: [share_src] references are renumbered, and
    sources before the window are dropped (their misses have returned). *)
let slice (evts : evt array) ~start ~len =
  Array.init len (fun i ->
      let e = evts.(start + i) in
      let share_src =
        Option.bind e.share_src (fun s -> if s >= start then Some (s - start) else None)
      in
      { e with share_src })

(** Optional prefetchers, used by the prefetching case study: a classic
    per-static-load stride prefetcher for the D-cache and a next-line
    prefetcher for the I-cache.  Prefetching changes which accesses miss,
    i.e. the *event stream* — which is exactly how a real optimization
    differs from an idealization, and what lets the experiments check that
    the predicted cost of the removed events matches the realized
    speedup. *)
type prefetch = {
  stride_loads : bool;  (** stride-predict D-cache lines per static load *)
  next_line_icache : bool;  (** prefetch the sequentially next I-cache line *)
}

let no_prefetch = { stride_loads = false; next_line_icache = false }

(* Per-static-load stride predictor state. *)
type stride_entry = { mutable last : int; mutable stride : int; mutable conf : int }

(* Stateful annotator: the per-instruction classification factored out so
   streaming callers can feed dynamic instructions one at a time; [annotate]
   below is a thin wrapper, so both paths warm identical structures in
   identical order. *)
type annotator = {
  a_cfg : Config.t;
  a_prefetch : prefetch;
  a_il1 : Cache.t;
  a_dl1 : Cache.t;
  a_l2 : Cache.t;
  a_itlb : Cache.t;
  a_dtlb : Cache.t;
  a_bp : Bpred.t;
  (* last load that missed on a given line *)
  a_last_line_miss : (int, int) Hashtbl.t;
  a_strides : (int, stride_entry) Hashtbl.t;
  mutable a_il2_misses : int;
  mutable a_dl2_misses : int;
  mutable a_mispredicts : int;
  mutable a_cond_branches : int;
  mutable a_loads : int;
  mutable a_stores : int;
}

let annotator ?(prefetch = no_prefetch) (cfg : Config.t) : annotator =
  {
    a_cfg = cfg;
    a_prefetch = prefetch;
    a_il1 =
      Cache.create_bytes ~name:"il1" ~size:cfg.il1_size ~ways:cfg.il1_ways
        ~line_size:cfg.line_size;
    a_dl1 =
      Cache.create_bytes ~name:"dl1" ~size:cfg.dl1_size ~ways:cfg.dl1_ways
        ~line_size:cfg.line_size;
    a_l2 =
      Cache.create_bytes ~name:"l2" ~size:cfg.l2_size ~ways:cfg.l2_ways
        ~line_size:cfg.line_size;
    a_itlb =
      Cache.create ~name:"itlb" ~lines:cfg.itlb_entries ~ways:cfg.itlb_entries
        ~line_size:cfg.page_size;
    a_dtlb =
      Cache.create ~name:"dtlb" ~lines:cfg.dtlb_entries ~ways:cfg.dtlb_entries
        ~line_size:cfg.page_size;
    a_bp = Bpred.create cfg;
    a_last_line_miss = Hashtbl.create 1024;
    a_strides = Hashtbl.create 256;
    a_il2_misses = 0;
    a_dl2_misses = 0;
    a_mispredicts = 0;
    a_cond_branches = 0;
    a_loads = 0;
    a_stores = 0;
  }

(* a confident stride predictor fills the next expected line ahead of the
   access, so the later demand access hits *)
let stride_prefetch (a : annotator) d_static addr =
  if a.a_prefetch.stride_loads then begin
    let entry =
      match Hashtbl.find_opt a.a_strides d_static with
      | Some e -> e
      | None ->
        let e = { last = addr; stride = 0; conf = 0 } in
        Hashtbl.add a.a_strides d_static e;
        e
    in
    let observed = addr - entry.last in
    if observed = entry.stride && observed <> 0 then entry.conf <- min 3 (entry.conf + 1)
    else begin
      entry.stride <- observed;
      entry.conf <- 0
    end;
    entry.last <- addr;
    if entry.conf >= 2 then begin
      let target = addr + entry.stride in
      ignore (Cache.access a.a_l2 target);
      ignore (Cache.access a.a_dl1 target)
    end
  end

let annotate_next (a : annotator) (d : Trace.dyn) : evt =
  let cfg = a.a_cfg in
  (* --- instruction-side accesses --- *)
  let itlb_miss = not (Cache.access a.a_itlb d.pc) in
  let il1_miss = not (Cache.access a.a_il1 d.pc) in
  let il2_miss = il1_miss && not (Cache.access a.a_l2 d.pc) in
  if a.a_prefetch.next_line_icache && il1_miss then begin
    let next = d.pc + cfg.line_size in
    ignore (Cache.access a.a_l2 next);
    ignore (Cache.access a.a_il1 next)
  end;
  (* --- data-side accesses --- *)
  let dl1_miss, dl2_miss, dtlb_miss, line, share_src =
    match d.mem_addr with
    | None -> (false, false, false, -1, None)
    | Some addr ->
      let dtlb_miss = not (Cache.access a.a_dtlb addr) in
      let dl1_miss = not (Cache.access a.a_dl1 addr) in
      let dl2_miss = dl1_miss && not (Cache.access a.a_l2 addr) in
      if Isa.is_load d.instr then stride_prefetch a d.static_ix addr;
      let line = addr / cfg.line_size in
      let share_src =
        if Isa.is_load d.instr then
          if dl1_miss then begin
            Hashtbl.replace a.a_last_line_miss line d.seq;
            None
          end
          else Hashtbl.find_opt a.a_last_line_miss line
        else None
      in
      if Isa.is_load d.instr then a.a_loads <- a.a_loads + 1
      else a.a_stores <- a.a_stores + 1;
      (dl1_miss, dl2_miss, dtlb_miss, line, share_src)
  in
  (* --- branch prediction --- *)
  let mispredict =
    match d.instr with
    | Isa.Branch _ ->
      a.a_cond_branches <- a.a_cond_branches + 1;
      let correct = Bpred.update_cond a.a_bp ~pc:d.pc ~taken:d.taken in
      not correct
    | Isa.Jump _ -> false
    | Isa.Call _ ->
      Bpred.ras_push a.a_bp ~return_pc:(d.pc + 4);
      false
    | Isa.Ret -> not (Bpred.ras_pop_check a.a_bp ~target:d.next_pc)
    | Isa.Jump_reg _ -> not (Bpred.update_indirect a.a_bp ~pc:d.pc ~target:d.next_pc)
    | _ -> false
  in
  if mispredict then a.a_mispredicts <- a.a_mispredicts + 1;
  if il2_miss then a.a_il2_misses <- a.a_il2_misses + 1;
  if dl2_miss then a.a_dl2_misses <- a.a_dl2_misses + 1;
  { il1_miss; il2_miss; itlb_miss; dl1_miss; dl2_miss; dtlb_miss; line; share_src; mispredict }

let annotator_summary (a : annotator) : summary =
  {
    il1_misses = snd (Cache.stats a.a_il1);
    il2_misses = a.a_il2_misses;
    dl1_misses = snd (Cache.stats a.a_dl1);
    dl2_misses = a.a_dl2_misses;
    itlb_misses = snd (Cache.stats a.a_itlb);
    dtlb_misses = snd (Cache.stats a.a_dtlb);
    mispredicts = a.a_mispredicts;
    cond_branches = a.a_cond_branches;
    loads = a.a_loads;
    stores = a.a_stores;
  }

(** [annotate ?prefetch cfg trace] classifies every instruction of [trace].
    The same structures are warmed in trace order, so the result is
    deterministic. *)
let annotate ?(prefetch = no_prefetch) (cfg : Config.t) (trace : Trace.t) :
    evt array * summary =
  let a = annotator ~prefetch cfg in
  let evts = Array.init (Trace.length trace) (fun i -> annotate_next a (Trace.get trace i)) in
  (evts, annotator_summary a)
