(** Event annotation: one deterministic pass over the dynamic trace that
    classifies every microarchitectural event — cache and TLB misses,
    branch mispredictions, cache-line sharing between loads.

    The classification is computed once per (program, machine) pair and
    reused by the baseline simulation, every idealized simulation and the
    graph analysis: idealization edits the {e latency} of events, not
    which events occurred, so all cost measurements see the same event
    stream (the paper's graph methodology). *)

module Isa = Icost_isa.Isa
module Trace = Icost_isa.Trace

type evt = {
  il1_miss : bool;
  il2_miss : bool;  (** instruction fetch missed the shared L2 as well *)
  itlb_miss : bool;
  dl1_miss : bool;
  dl2_miss : bool;  (** data access missed the shared L2 as well *)
  dtlb_miss : bool;
  line : int;  (** data line address; -1 for non-memory instructions *)
  share_src : int option;
      (** for a load: [seq] of the most recent earlier load that missed on
          the same line (the paper's PP edge — partial-miss modeling) *)
  mispredict : bool;
}

val no_evt : evt

type summary = {
  il1_misses : int;
  il2_misses : int;
  dl1_misses : int;
  dl2_misses : int;
  itlb_misses : int;
  dtlb_misses : int;
  mispredicts : int;
  cond_branches : int;
  loads : int;
  stores : int;
}

val slice : evt array -> start:int -> len:int -> evt array
(** Extract the annotation window matching {!Icost_isa.Trace.slice}:
    [share_src] references are renumbered; sources before the window are
    dropped (their misses have returned). *)

(** Optional prefetchers (used by the prefetching case study): a classic
    per-static-load stride prefetcher for the D-cache and a next-line
    prefetcher for the I-cache.  Prefetching changes which accesses miss —
    the event stream itself — which is how a real optimization differs
    from an idealization. *)
type prefetch = {
  stride_loads : bool;
  next_line_icache : bool;
}

val no_prefetch : prefetch

val annotate :
  ?prefetch:prefetch -> Config.t -> Trace.t -> evt array * summary
(** Classify every instruction of the trace.  The structures are warmed in
    trace order, so the result is deterministic. *)

(** {1 Streaming}

    A stateful annotator over the same classification pass, for callers
    that feed the dynamic stream one instruction at a time ([annotate] is
    implemented on top of it, so the two are bit-identical). *)

type annotator

val annotator : ?prefetch:prefetch -> Config.t -> annotator
(** Fresh cold caches, TLBs and branch predictor. *)

val annotate_next : annotator -> Trace.dyn -> evt
(** Classify the next instruction; must be fed strictly in trace order. *)

val annotator_summary : annotator -> summary
(** Event totals over everything fed so far. *)
