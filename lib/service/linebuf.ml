(* Incremental '\n'-splitter shared by the client and the acceptor.  See
   linebuf.mli. *)

type t = {
  mutable lines : string list;  (* completed lines, oldest first *)
  partial : Buffer.t;  (* trailing bytes of an unterminated line *)
}

let create () = { lines = []; partial = Buffer.create 256 }

(* bounded scan: [Bytes.index_from_opt] would run past [len] into stale
   bytes of a reused read chunk.  [unsafe_get] is safe here — [feed]
   clamps [len] to the chunk's length before scanning. *)
let index_nl b start len =
  let rec go i =
    if i >= len then -1
    else if Bytes.unsafe_get b i = '\n' then i
    else go (i + 1)
  in
  go start

let feed t (b : bytes) ~len =
  let len = min len (Bytes.length b) in
  let rec collect start acc =
    let i = index_nl b start len in
    if i < 0 then begin
      Buffer.add_subbytes t.partial b start (len - start);
      List.rev acc
    end
    else begin
      let seg = Bytes.sub_string b start (i - start) in
      let line =
        if Buffer.length t.partial = 0 then seg
        else begin
          let l = Buffer.contents t.partial ^ seg in
          Buffer.clear t.partial;
          l
        end
      in
      collect (i + 1) (line :: acc)
    end
  in
  match collect 0 [] with
  | [] -> ()
  (* both readers drain the queue before feeding, so this append is
     almost always onto [] *)
  | fresh -> t.lines <- t.lines @ fresh

let pop t =
  match t.lines with
  | line :: rest ->
    t.lines <- rest;
    Some line
  | [] -> None

let pending_bytes t = Buffer.length t.partial
