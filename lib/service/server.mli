(** The resident icost analysis daemon ([icost serve]).

    Listens on a Unix domain socket and answers [icost.rpc.v1] requests
    ({!Protocol}).  The expensive per-query work of the one-shot CLI —
    interpreting the workload, annotating events, running the baseline
    simulation, compiling the dependence graph, building a memoized cost
    oracle — is done once per session key and then served from three
    stacked {!Cache}s:

    - {b prep}: (workload, warmup, measure) -> prepared execution
      (machine-variant independent, shared by every variant and engine);
    - {b baseline}: prep key + config digest -> baseline [Ooo.run] result
      (shared by the graph and profiler engines on the same variant);
    - {b session}: baseline key + engine + seed -> memoized oracle (and
      the compiled graph for the graph engine).

    Analysis requests flow through a bounded {!Scheduler}; a full queue
    is answered with an [overloaded] error (backpressure) and a draining
    server with [shutting_down].  Requests may carry a deadline, checked
    cooperatively between oracle evaluations ([deadline_exceeded]).
    [status] and [shutdown] are answered inline by the connection reader
    so they work even when the compute queue is saturated.

    Shutdown (a [shutdown] request, SIGINT or SIGTERM) is graceful: stop
    accepting connections, complete every accepted request, flush replies,
    close connections, remove the socket file, return. *)

type opts = {
  socket : string;  (** Unix domain socket path *)
  workers : int;  (** scheduler worker threads (see {!Scheduler}) *)
  queue_limit : int;  (** accepted-but-not-running bound *)
  cache_cap : int;  (** max entries per cache layer *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers that trigger graceful shutdown
          (the CLI wants this; in-process tests do not) *)
  on_ready : (unit -> unit) option;
      (** called once the socket is listening, before the accept loop *)
}

val default_opts : opts
(** socket ["icostd.sock"], 4 workers, queue limit 64, cache cap 8,
    signals handled, no ready hook. *)

type stats = { uptime_s : float; requests_total : int }
(** Returned by {!run} for the exit report and the telemetry manifest. *)

val run : opts -> stats
(** Serve until shutdown.  Blocks the calling thread; everything else
    (connection readers, scheduler workers) runs on threads spawned here
    and is joined before returning.
    @raise Failure if the socket path is already served by a live daemon
    (a stale socket file left by a crash is silently replaced). *)
