(** The resident icost analysis daemon ([icost serve]).

    Listens on a Unix domain socket — and, with [opts.tcp], a TCP
    endpoint sharing the same accept loop and connection bookkeeping
    ({!Acceptor}) — and answers [icost.rpc.v1] requests ({!Protocol}).
    Pipelined requests on one connection are answered in request order
    (the acceptor's sequence-ordered writer), and a [batch] frame runs
    its items under per-item supervision in one scheduler slot.
    The expensive per-query work of the one-shot CLI —
    interpreting the workload, annotating events, running the baseline
    simulation, compiling the dependence graph, building a memoized cost
    oracle — is done once per session key and then served from three
    stacked {!Cache}s:

    - {b prep}: (workload, warmup, measure) -> prepared execution
      (machine-variant independent, shared by every variant and engine);
    - {b baseline}: prep key + config digest -> baseline [Ooo.run] result
      (shared by the graph and profiler engines on the same variant);
    - {b session}: baseline key + engine + seed -> memoized oracle (and
      the compiled graph for the graph engine).

    Analysis requests flow through a bounded {!Scheduler}; a full queue
    is answered with an [overloaded] error (backpressure) and a draining
    server with [shutting_down].  Requests may carry a deadline, checked
    cooperatively between oracle evaluations ([deadline_exceeded]).
    [status], [health] and [shutdown] are answered inline by the
    connection reader so they work even when the compute queue is
    saturated.

    {b Supervision.}  An analysis that raises is converted to a typed
    [internal] error reply; the failed target's session-cache entry is
    evicted so a retry rebuilds it rather than inheriting poisoned state.
    Repeated failures on the same session key trip a per-key circuit
    {!Breaker}: further requests for that target fail fast with
    [unavailable] until the cooldown elapses (then one trial request is
    let through).

    {b Graceful degradation.}  Before queueing each analysis the server
    checks two high-water marks — queue depth at 3/4 of [queue_limit],
    and the OCaml heap against [mem_high_mb].  Tripping either sheds the
    coldest session/baseline cache entries down to half of [cache_cap]
    and reports [health = "degraded"] for a short hold window.  Shed
    counts surface in [health] replies and the [service.shed] telemetry
    counter.

    {b Fault injection.}  Every seam of the request path — accept, read,
    write, decode, enqueue/dequeue, worker body, cache build, deadline
    check — is an {!Icost_util.Fault} injection point (see
    [doc/protocol.md] for the point list); all are single-branch no-ops
    unless armed via [ICOST_FAULTS] or [icost serve --faults].

    Shutdown (a [shutdown] request, SIGINT or SIGTERM) is graceful: stop
    accepting connections, complete every accepted request, flush replies,
    close connections, remove the socket file, return. *)

type opts = {
  socket : string;  (** Unix domain socket path *)
  tcp : (string * int) option;
      (** additional TCP listener (host, port); port [0] binds an
          ephemeral port, reported through [on_tcp_port] *)
  workers : int;  (** scheduler worker threads (see {!Scheduler}) *)
  queue_limit : int;  (** accepted-but-not-running bound *)
  cache_cap : int;  (** max entries per cache layer *)
  breaker_threshold : int;
      (** consecutive failures on one session key that trip its breaker *)
  breaker_cooldown : float;
      (** seconds an open breaker fails fast before a half-open trial *)
  mem_high_mb : int;
      (** heap high-water mark (MiB) that triggers cache shedding *)
  cache_dir : string option;
      (** persistent {!Snapshot} store directory; [None] disables disk
          warm starts (sessions are rebuilt from scratch after restart) *)
  handle_signals : bool;
      (** install SIGINT/SIGTERM handlers that trigger graceful shutdown
          (the CLI wants this; in-process tests do not) *)
  on_ready : (unit -> unit) option;
      (** called once the socket is listening, before the accept loop *)
  on_tcp_port : (int -> unit) option;
      (** called with the bound TCP port once listening (before
          [on_ready]); never called when [tcp] is [None] *)
}

val default_opts : opts
(** socket ["icostd.sock"], no TCP listener, 4 workers, queue limit 64,
    cache cap 8, breaker threshold 3 / cooldown 5s, memory high-water
    4096 MiB, no cache dir, signals handled, no ready hook. *)

val sweep_point_key :
  Protocol.target -> Icost_uarch.Config.t -> engine:string -> string
(** The sweep-point cache key for one priced grid point:
    [workload|warmup|measure|config-digest(point)|engine].  The digest
    marshals the whole config record, so two points differing in {e any}
    swept field get distinct keys (asserted by the test suite), and a
    sweep point can never alias a prep entry ([prep_key] has no digest
    segment). *)

val session_key :
  Protocol.target ->
  Icost_uarch.Config.t ->
  Icost_experiments.Runner.oracle_kind ->
  string
(** The session cache / snapshot store key for a target:
    [workload|warmup|measure|config-digest|engine|seed] (seed normalized
    to 0 for non-profiler engines).  Exposed so the one-shot CLI can
    address the same {!Snapshot} store as a running daemon. *)

type stats = { uptime_s : float; requests_total : int }
(** Returned by {!run} for the exit report and the telemetry manifest. *)

val run : opts -> stats
(** Serve until shutdown.  Blocks the calling thread; everything else
    (connection readers, scheduler workers) runs on threads spawned here
    and is joined before returning.
    @raise Failure if the socket path is already served by a live daemon
    (a stale socket file left by a crash is silently replaced), or the
    TCP endpoint cannot be bound. *)
