(** Shard supervision: death detection, respawn, failure budgets.

    The router forks one {b supervisor} — a dedicated single-threaded
    child process — before it creates any thread, and the supervisor in
    turn forks and owns the shard fleet.  This sidesteps the classic
    fork-after-threads trap: a respawn happens while the router is full
    of acceptor and connection threads, so the router itself must never
    fork again; the supervisor stays thread-free for its whole life and
    can fork safely at any time.

    {2 Monitor loop}

    The supervisor's loop, a few dozen times per second:

    - {b reap}: [waitpid WNOHANG] over the fleet.  A dead shard is
      reported [Down] and scheduled for respawn — immediately after a
      commanded drain, after a decorrelated-jitter backoff
      ([uniform(base, 3*previous)], capped) for a crash.
    - {b storm budget}: crash times are kept in a sliding window; when
      [storm_budget] deaths land inside [storm_window_s] the shard's
      breaker trips — the supervisor stops respawning for
      [breaker_cooldown_s] and reports [Breaker_open] with the
      remaining time, which the router converts into fail-fast
      [unavailable] replies carrying [retry_after_ms].  The respawn at
      cooldown's end is the half-open trial: another quick death
      re-trips, a surviving shard lets the window drain.
    - {b probe}: every [probe_interval_s] each live shard's socket is
      health-probed with a [probe_timeout_s] budget; [probe_fails]
      consecutive failures mean the process is wedged (alive but not
      serving) and it is SIGKILLed into the ordinary respawn path.
    - {b respawn}: the predecessor's socket file is probed and, if
      stale, unlinked ({!Endpoint.probe_unix_socket}) before the
      replacement is forked; the respawn is reported [Up] once the new
      socket accepts, with the death-to-live latency.  The replacement
      warm-starts from the shard's snapshot directory (it inherits the
      same [--cache-dir] subdir).

    The router talks to the supervisor over two pipes of
    newline-delimited text: commands in ({!command}), events out
    ({!event}).  EOF on the command pipe (the router died) is treated
    as {!Stop}, so a crashed router never leaves orphan shards behind.

    Fault points: [probe_timeout] forces a probe to time out
    deterministically ([ICOST_FAULTS=probe_timeout:@1+]); the
    complementary [shard_exit] point (in {!Server}) makes a shard exit
    abruptly on a chosen request. *)

type opts = {
  backoff_base_ms : float;  (** respawn backoff floor (default 25) *)
  backoff_cap_ms : float;  (** respawn backoff ceiling (default 1000) *)
  storm_budget : int;
      (** crashes within [storm_window_s] that trip the breaker (5) *)
  storm_window_s : float;  (** sliding crash-counting window (10) *)
  breaker_cooldown_s : float;  (** no-respawn period once tripped (3) *)
  probe_interval_s : float;  (** health-probe period per shard (0.5) *)
  probe_timeout_s : float;  (** reply budget per probe (1.0) *)
  probe_fails : int;  (** consecutive failures before SIGKILL (3) *)
  spawn_wait_s : float;  (** socket-live budget after a fork (10) *)
  grace_s : float;  (** stop escalation step: poll, SIGTERM, SIGKILL (2) *)
  seed : int;  (** backoff-jitter PRNG seed *)
}

val default_opts : opts

(** {2 Wire protocol between router and supervisor} *)

type event =
  | Up of { shard : int; pid : int; latency_ms : int }
      (** shard's socket accepts; [latency_ms] measures spawn-start (or
          death-detection, for a respawn) to socket-live *)
  | Down of { shard : int; reason : string }
  | Breaker_open of { shard : int; retry_after_ms : int }
  | Stopped  (** the whole fleet is reaped; the supervisor exits next *)

type command =
  | Drain of int
      (** send the shard an [icost.rpc.v1] [drain] op and respawn it the
          moment it exits — no backoff, no storm charge *)
  | Stop
      (** stop respawning, SIGTERM the fleet, escalate to SIGKILL after
          [grace_s], emit [Stopped], exit *)

val event_to_line : event -> string
val event_of_line : string -> event option
val command_to_line : command -> string
val command_of_line : string -> command option

(** {2 Pure pieces (unit-tested in isolation)} *)

val backoff_ms : opts -> prng:Icost_util.Prng.t -> prev_ms:float -> float
(** Decorrelated jitter: uniform in [[base, max base (3*prev)]], capped
    at [backoff_cap_ms].  Always >= base, <= cap. *)

type storm
(** Sliding window of crash timestamps for one shard. *)

val storm_make : unit -> storm

val storm_record :
  opts -> storm -> now:float -> [ `Ok | `Tripped of float ]
(** Record a crash at [now]; [`Tripped until] once [storm_budget]
    crashes landed within the trailing [storm_window_s]. *)

val reap : ?grace_s:float -> int list -> unit
(** Escalating reap: poll [waitpid WNOHANG]; send SIGTERM to survivors
    after [grace_s], SIGKILL after [2 * grace_s], abandon (leaving a
    zombie for init) after an additional hard deadline rather than hang
    forever.  Never blocks on a wedged process. *)

(** {2 The supervisor process} *)

val run_supervisor :
  opts ->
  shards:int ->
  spawn:(int -> int) ->
  socket_of:(int -> string) ->
  cmd:Unix.file_descr ->
  evt:Unix.file_descr ->
  handle_signals:bool ->
  'a
(** Main loop of the supervisor child.  [spawn i] must fork shard [i]
    and return its pid (the child must exec the server and close the
    supervisor's pipe ends); [socket_of i] is the shard's socket path.
    Spawns the whole fleet first (reporting [Up] per shard), then
    monitors until {!Stop} or command-pipe EOF.  Never returns — exits
    the process. *)
