(** Shared accept loop and connection bookkeeping.

    Both the plain server and the shard router serve the same kind of
    endpoint set (a Unix socket, optionally a TCP listener) with the
    same connection discipline, so the machinery lives here once:

    - a [select]-driven accept loop over any number of listeners, woken
      by a self-pipe on stop;
    - a thread per connection, tracked for join-at-shutdown;
    - bounded line reading (the icost.rpc.v1 request cap);
    - {b sequence-ordered reply writes}: the connection reader assigns
      each request a sequence number, and replies — produced inline or
      by worker threads finishing in any order — are parked until every
      earlier reply is on the wire.  This is what turns "pipelining" from
      "replies may arrive out of order, match by id" into the protocol's
      in-order guarantee.

    The transport-level fault points ([accept_reset], [conn_reset],
    [write_short]) are owned by this module. *)

type conn
(** One client connection.  Owned by its reader thread; written to by
    any thread through {!write_line}. *)

val conn_fd : conn -> Unix.file_descr

val next_seq : conn -> int
(** Allocate the next reply sequence number.  Call from the connection's
    reader thread only, exactly once per request line; every allocated
    sequence must eventually be passed to {!write_line} exactly once or
    later replies park forever. *)

val write_line : conn -> seq:int -> string -> unit
(** Queue one reply line (terminated by ['\n'] by the caller) for slot
    [seq].  Lines reach the wire strictly in sequence order; a line whose
    predecessors are still outstanding is parked.  Writes to a dead
    connection are discarded but still advance the sequence window. *)

val read_line_bounded :
  conn -> max:int -> [ `Line of string | `Too_long | `Eof ]
(** Read one ['\n']-terminated line, refusing to buffer more than [max]
    bytes while searching for the newline. *)

type t

val create : Endpoint.listener list -> t
(** Takes ownership of the listeners (closed when {!serve} returns). *)

val request_stop : t -> unit
(** Ask {!serve} to return; safe from signal handlers and any thread. *)

val stop_requested : t -> bool

val serve : t -> on_conn:(conn -> unit) -> unit
(** Accept until {!request_stop}; each connection runs [on_conn] on its
    own thread (the fd is closed when [on_conn] returns).  Closes the
    listeners — unlinking Unix socket files — before returning, so no
    new connections arrive while the caller drains. *)

val finish : t -> unit
(** Dismantle after {!serve} returned: shut down surviving connections,
    join their threads, close the self-pipe. *)
