(* Shard supervisor.  See supervise.mli for the architecture. *)

module Fault = Icost_util.Fault
module Prng = Icost_util.Prng
module P = Protocol

type opts = {
  backoff_base_ms : float;
  backoff_cap_ms : float;
  storm_budget : int;
  storm_window_s : float;
  breaker_cooldown_s : float;
  probe_interval_s : float;
  probe_timeout_s : float;
  probe_fails : int;
  spawn_wait_s : float;
  grace_s : float;
  seed : int;
}

let default_opts =
  {
    backoff_base_ms = 25.;
    backoff_cap_ms = 1000.;
    storm_budget = 5;
    storm_window_s = 10.;
    breaker_cooldown_s = 3.;
    probe_interval_s = 0.5;
    probe_timeout_s = 1.0;
    probe_fails = 3;
    spawn_wait_s = 10.;
    grace_s = 2.;
    seed = 0x51ee7;
  }

(* a wedged probe can be forced deterministically: ICOST_FAULTS=probe_timeout:@K *)
let fp_probe_timeout = Fault.point "probe_timeout"

(* ---------- router <-> supervisor wire ---------- *)

type event =
  | Up of { shard : int; pid : int; latency_ms : int }
  | Down of { shard : int; reason : string }
  | Breaker_open of { shard : int; retry_after_ms : int }
  | Stopped

type command = Drain of int | Stop

let event_to_line = function
  | Up { shard; pid; latency_ms } -> Printf.sprintf "up %d %d %d" shard pid latency_ms
  | Down { shard; reason } ->
    (* reason is free text and comes last, so it may contain spaces (but
       never a newline: one event per line) *)
    Printf.sprintf "down %d %s" shard
      (String.map (function '\n' | '\r' -> ' ' | ch -> ch) reason)
  | Breaker_open { shard; retry_after_ms } ->
    Printf.sprintf "breaker %d %d" shard retry_after_ms
  | Stopped -> "stopped"

let split_words line = String.split_on_char ' ' line

let event_of_line line =
  match split_words line with
  | [ "up"; sh; pid; lat ] -> (
    match (int_of_string_opt sh, int_of_string_opt pid, int_of_string_opt lat) with
    | Some shard, Some pid, Some latency_ms -> Some (Up { shard; pid; latency_ms })
    | _ -> None)
  | "down" :: sh :: rest -> (
    match int_of_string_opt sh with
    | Some shard -> Some (Down { shard; reason = String.concat " " rest })
    | None -> None)
  | [ "breaker"; sh; ms ] -> (
    match (int_of_string_opt sh, int_of_string_opt ms) with
    | Some shard, Some retry_after_ms ->
      Some (Breaker_open { shard; retry_after_ms })
    | _ -> None)
  | [ "stopped" ] -> Some Stopped
  | _ -> None

let command_to_line = function
  | Drain i -> Printf.sprintf "drain %d" i
  | Stop -> "stop"

let command_of_line line =
  match split_words line with
  | [ "drain"; sh ] -> Option.map (fun i -> Drain i) (int_of_string_opt sh)
  | [ "stop" ] -> Some Stop
  | _ -> None

(* ---------- pure pieces ---------- *)

(* Decorrelated jitter (the same AWS variant as the client's retry
   backoff): each delay is uniform in [base, 3 * previous], so a fleet of
   shards crashing together respawns spread out instead of in lockstep. *)
let backoff_ms o ~prng ~prev_ms =
  let span = Float.max 0. ((3. *. prev_ms) -. o.backoff_base_ms) in
  Float.min o.backoff_cap_ms (o.backoff_base_ms +. (Prng.float prng *. span))

type storm = float list ref (* crash times, most recent first *)

let storm_make () : storm = ref []

let storm_record o (s : storm) ~now =
  let cutoff = now -. o.storm_window_s in
  let recent = now :: List.filter (fun t -> t > cutoff) !s in
  s := recent;
  if List.length recent >= o.storm_budget then
    `Tripped (now +. o.breaker_cooldown_s)
  else `Ok

(* ---------- escalating reap ---------- *)

let kill_quiet signal pid = try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap ?(grace_s = 2.0) pids =
  let started = Unix.gettimeofday () in
  let term_at = started +. grace_s in
  let kill_at = term_at +. grace_s in
  (* a SIGKILLed process that still does not exit is wedged in the kernel
     (uninterruptible sleep); abandon the zombie to init instead of
     hanging shutdown on it *)
  let abandon_at = kill_at +. (5. *. Float.max 1. grace_s) in
  let termed = ref false in
  let killed = ref false in
  let rec loop alive =
    let alive =
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _ -> false
          | exception Unix.Unix_error _ -> false)
        alive
    in
    if alive <> [] then begin
      let now = Unix.gettimeofday () in
      if now >= abandon_at then ()
      else begin
        if now >= kill_at && not !killed then begin
          killed := true;
          List.iter (kill_quiet Sys.sigkill) alive
        end
        else if now >= term_at && not !termed then begin
          termed := true;
          List.iter (kill_quiet Sys.sigterm) alive
        end;
        ignore (Unix.select [] [] [] 0.02);
        loop alive
      end
    end
  in
  loop pids

(* ---------- supervisor process ---------- *)

type slot = {
  mutable pid : int;  (* 0 = down *)
  mutable draining : bool;  (* commanded drain in flight: free respawn *)
  mutable down_since : float;  (* death-detection time *)
  mutable next_attempt : float;
  mutable prev_backoff_ms : float;
  mutable probe_failures : int;
  mutable last_probe : float;
  storm : storm;
}

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let probe_frame =
  P.encode_request { P.req_id = 0; deadline_ms = None; op = P.Health } ^ "\n"

(* One liveness probe: connect, send a health frame, wait for any reply
   bytes within the budget.  The server answers health inline on the
   connection thread even under full load, so this measures "is the
   process serving its socket", not "is it idle". *)
let probe_ok o ~socket =
  if Fault.fire fp_probe_timeout then false
  else
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error _ -> false
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          match
            Unix.connect fd (Unix.ADDR_UNIX socket);
            write_all fd probe_frame
          with
          | () -> (
            match Unix.select [ fd ] [] [] o.probe_timeout_s with
            | [ _ ], _, _ -> (
              match Unix.read fd (Bytes.create 1) 0 1 with
              | n -> n > 0
              | exception Unix.Unix_error _ -> false)
            | _ -> false)
          | exception Unix.Unix_error _ -> false)

let send_drain_op o ~socket =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        try
          Unix.connect fd (Unix.ADDR_UNIX socket);
          write_all fd
            (P.encode_request { P.req_id = 0; deadline_ms = None; op = P.Drain }
             ^ "\n");
          (* wait for the ack (or EOF) so the drain was at least
             delivered; the exit itself is observed via waitpid *)
          ignore (Unix.select [ fd ] [] [] o.probe_timeout_s)
        with Unix.Unix_error _ -> ())

let run_supervisor o ~shards ~spawn ~socket_of ~cmd:cmd_r ~evt:evt_w
    ~handle_signals =
  let prng = Prng.create (o.seed lxor 0x5e4f5e4f) in
  let stop_flag = ref false in
  if handle_signals then begin
    let h = Sys.Signal_handle (fun _ -> stop_flag := true) in
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ())
  end;
  let slots =
    Array.init shards (fun _ ->
        {
          pid = 0;
          draining = false;
          down_since = Unix.gettimeofday ();
          next_attempt = 0.;
          prev_backoff_ms = 0.;
          probe_failures = 0;
          last_probe = 0.;
          storm = storm_make ();
        })
  in
  let emit ev =
    try write_all evt_w (event_to_line ev ^ "\n")
    with Unix.Unix_error _ -> stop_flag := true
    (* the router is gone; fall through to the stop path *)
  in
  let unlink_stale i =
    match Endpoint.probe_unix_socket (socket_of i) with
    | `Stale -> ( try Unix.unlink (socket_of i) with Unix.Unix_error _ -> ())
    | `Absent | `Live -> ()
  in
  (* fork shard [i] and wait for its socket to accept; false when the
     child died or never came up within the budget *)
  let respawn i =
    let slot = slots.(i) in
    let t0 = Unix.gettimeofday () in
    let since = if slot.down_since > 0. then slot.down_since else t0 in
    unlink_stale i;
    let pid = spawn i in
    let deadline = t0 +. o.spawn_wait_s in
    let rec wait () =
      if Endpoint.probe_unix_socket (socket_of i) = `Live then true
      else if
        (match Unix.waitpid [ Unix.WNOHANG ] pid with
         | 0, _ -> false
         | _ -> true
         | exception Unix.Unix_error _ -> true)
        || Unix.gettimeofday () >= deadline
      then false
      else begin
        ignore (Unix.select [] [] [] 0.01);
        wait ()
      end
    in
    if wait () then begin
      slot.pid <- pid;
      slot.draining <- false;
      slot.probe_failures <- 0;
      slot.last_probe <- Unix.gettimeofday ();
      emit
        (Up
           {
             shard = i;
             pid;
             latency_ms =
               int_of_float (Float.round ((Unix.gettimeofday () -. since) *. 1e3));
           });
      true
    end
    else begin
      kill_quiet Sys.sigkill pid;
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      false
    end
  in
  (* a crash (or failed respawn) charges the storm window and schedules
     the next attempt; a drain respawns immediately for free *)
  let schedule_retry i ~now =
    let slot = slots.(i) in
    if slot.draining then begin
      (* commanded drain: respawn immediately, no storm charge.  The
         flag is consumed here so a failing respawn falls back to the
         ordinary backoff path instead of retrying in a hot loop. *)
      slot.draining <- false;
      slot.next_attempt <- now
    end
    else begin
      match storm_record o slot.storm ~now with
      | `Ok ->
        let ms = backoff_ms o ~prng ~prev_ms:slot.prev_backoff_ms in
        slot.prev_backoff_ms <- ms;
        slot.next_attempt <- now +. (ms /. 1e3)
      | `Tripped until ->
        slot.prev_backoff_ms <- o.backoff_base_ms;
        slot.next_attempt <- until;
        emit
          (Breaker_open
             {
               shard = i;
               retry_after_ms =
                 int_of_float (Float.ceil ((until -. now) *. 1e3));
             })
    end
  in
  let stop () =
    let alive =
      Array.to_list slots |> List.filter_map (fun s -> if s.pid > 0 then Some s.pid else None)
    in
    List.iter (kill_quiet Sys.sigterm) alive;
    reap ~grace_s:o.grace_s alive;
    emit Stopped;
    Unix._exit 0
  in
  let cmdbuf = Buffer.create 256 in
  let read_commands timeout =
    match Unix.select [ cmd_r ] [] [] timeout with
    | [ _ ], _, _ -> (
      let chunk = Bytes.create 512 in
      match Unix.read cmd_r chunk 0 (Bytes.length chunk) with
      | 0 -> stop_flag := true (* router closed its end *)
      | n ->
        Buffer.add_subbytes cmdbuf chunk 0 n;
        let text = Buffer.contents cmdbuf in
        let parts = String.split_on_char '\n' text in
        let rec go = function
          | [] -> ()
          | [ tail ] ->
            Buffer.clear cmdbuf;
            Buffer.add_string cmdbuf tail
          | line :: rest ->
            (match command_of_line line with
             | Some (Drain i) when i >= 0 && i < shards ->
               let slot = slots.(i) in
               if slot.pid > 0 && not slot.draining then begin
                 slot.draining <- true;
                 send_drain_op o ~socket:(socket_of i)
               end
             | Some Stop -> stop_flag := true
             | Some (Drain _) | None -> ());
            go rest
        in
        go parts
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> stop_flag := true)
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* initial fleet: one attempt each here; a shard that fails to come up
     enters the ordinary retry/backoff path below, and the router's
     readiness wait decides how long to tolerate that *)
  Array.iteri
    (fun i slot ->
      slot.down_since <- 0.;
      if not (respawn i) then begin
        slot.down_since <- Unix.gettimeofday ();
        emit (Down { shard = i; reason = "failed to start" });
        schedule_retry i ~now:slot.down_since
      end)
    slots;
  let rec loop () =
    if !stop_flag then stop ();
    read_commands 0.02;
    if !stop_flag then stop ();
    let now = Unix.gettimeofday () in
    Array.iteri
      (fun i slot ->
        (* death detection *)
        if slot.pid > 0 then begin
          match Unix.waitpid [ Unix.WNOHANG ] slot.pid with
          | 0, _ -> ()
          | _, status ->
            slot.pid <- 0;
            slot.down_since <- now;
            let reason =
              if slot.draining then "drained"
              else
                match status with
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
            in
            emit (Down { shard = i; reason });
            schedule_retry i ~now
          | exception Unix.Unix_error _ ->
            slot.pid <- 0;
            slot.down_since <- now;
            emit (Down { shard = i; reason = "lost" });
            schedule_retry i ~now
        end;
        (* respawn when due *)
        if slot.pid = 0 && now >= slot.next_attempt then
          if not (respawn i) then begin
            emit (Down { shard = i; reason = "respawn failed" });
            schedule_retry i ~now:(Unix.gettimeofday ())
          end;
        (* liveness probe *)
        if
          slot.pid > 0 && not slot.draining
          && now -. slot.last_probe >= o.probe_interval_s
        then begin
          slot.last_probe <- now;
          if probe_ok o ~socket:(socket_of i) then slot.probe_failures <- 0
          else begin
            slot.probe_failures <- slot.probe_failures + 1;
            if slot.probe_failures >= o.probe_fails then begin
              (* alive but not serving: kill it into the respawn path *)
              kill_quiet Sys.sigkill slot.pid;
              slot.probe_failures <- 0
            end
          end
        end)
      slots;
    loop ()
  in
  loop ()
