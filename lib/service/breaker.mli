(** Per-key circuit breaker for the analysis server.

    A request whose worker raises gets a typed [internal] reply, but a
    {e persistently} failing target (a workload/config whose build
    deterministically crashes, say) would otherwise burn a worker and a
    full cache rebuild on every retry.  The breaker cuts that loop:
    after [threshold] consecutive failures on one key the key {e trips
    open} and requests for it fail fast with [unavailable] — no queue
    slot, no worker — until [cooldown] seconds elapse.  The first
    request after the cooldown is the half-open trial: success closes
    the breaker, another failure re-opens it immediately (the
    consecutive-failure count is retained, not reset, by a trip).

    Keys are the server's session-cache keys, so the breaker's notion
    of "same target" matches the cache's.  The table is bounded: when
    more than a small cap of keys are tracked, the stalest entry is
    dropped (a dropped entry merely forgets failure history).

    Trips are mirrored into the [service.breaker_open] telemetry
    counter and a plain tally for the [health] reply. *)

type t

val create : ?threshold:int -> ?cooldown:float -> unit -> t
(** [threshold] (default 3, clamped to >= 1): consecutive failures on a
    key that trip it open.  [cooldown] (default 5 s, clamped to >= 0):
    seconds a tripped key stays open. *)

val check : t -> string -> [ `Ok | `Open ]
(** [`Open] while the key is tripped and its cooldown has not elapsed.
    Never modifies failure counts. *)

val success : t -> string -> unit
(** Close the key and forget its failure history. *)

val failure : t -> string -> unit
(** Count one failure; trips the key open when the consecutive count
    reaches the threshold (and on every failure after that). *)

val open_count : t -> int
(** Keys currently open (cooldown not yet elapsed). *)

val trips_total : t -> int
(** Times any key transitioned to open since [create]. *)
