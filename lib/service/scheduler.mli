(** Bounded request scheduler for the icost server.

    A fixed set of worker {e threads} pulls jobs from a bounded FIFO
    queue.  Threads, not domains: within one OCaml 5 domain only one
    thread runs OCaml code at a time, but a worker thread that enters a
    {!Icost_util.Pool} fan-out (every heavy analysis path does — workload
    preparation, multisim batches, graph subset sweeps) blocks on a
    condition variable and yields the domain, so concurrent requests
    interleave their orchestration while the {e domain pool} provides the
    actual parallelism.  This keeps exactly one process-wide compute pool
    (sized by [--jobs]/[ICOST_JOBS]) no matter how many requests are in
    flight, instead of multiplying domains per request.

    Backpressure is explicit: {!submit} never blocks and never buffers
    beyond [queue_limit] — a full queue yields [`Overloaded], which the
    server turns into a typed protocol error so clients retry instead of
    the daemon accumulating unbounded work (OOM).  The queue depth is
    mirrored into the [service.queue_depth] telemetry gauge.

    {!drain} is the graceful half of shutdown: it stops intake, lets both
    the running and the already-queued jobs finish, and joins the
    workers. *)

type t

val create : workers:int -> queue_limit:int -> t
(** Spawn [workers] (clamped to >= 1) threads.  [queue_limit] (clamped to
    >= 1) bounds jobs that are accepted but not yet running. *)

val submit : t -> (unit -> unit) -> [ `Accepted | `Overloaded | `Draining ]
(** Enqueue a job.  Jobs must not raise; the scheduler catches and drops
    anything that escapes (the server wraps every request with its own
    error reply long before this backstop). *)

val queue_depth : t -> int
(** Jobs accepted but not yet started. *)

val inflight : t -> int
(** Jobs currently running. *)

val drain : t -> unit
(** Refuse new submissions, run everything already accepted to
    completion, then join the worker threads.  Idempotent. *)
