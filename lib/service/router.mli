(** Shard router: fan one service endpoint across K worker processes.

    [run] forks [shards] child processes, each a full {!Server} (its own
    scheduler, caches, breaker, shedding and — inherited through the fork
    — fault injection) listening on a private Unix socket
    ([<socket>.shard<i>]) with a private snapshot directory
    ([<cache-dir>/shard-<i>]).  The parent then serves the public Unix
    socket (and optional TCP endpoint) through the shared {!Acceptor} and
    routes each analysis request to the shard owning its target:

    - {b routing}: FNV-1a 64-bit hash of the target's preparation key
      ([workload|warmup|measure]), so every variant/engine session of one
      prepared workload lands on the same shard and shares its prep
      cache.  The hash is position-independent state — the same key maps
      to the same shard across restarts and across processes.
    - {b passthrough}: single analysis frames are forwarded verbatim and
      the shard's reply line is relayed untouched, so replies stay
      bit-identical to a direct connection.
    - {b batch}: a [batch] frame whose analysis items all route to one
      shard is relayed verbatim (the affinity fast path — router cost
      per frame, not per item).  Otherwise the frame is partitioned by
      shard, the sub-batches are scattered concurrently, and the
      per-item results are stitched back in the original order.
      [status]/[health] items are answered by the router itself
      (aggregated); an unreachable shard marks only its own items
      [unavailable].
    - {b aggregation}: top-level [status]/[health] fan out to every shard
      and roll up (sums for counters, worst-of for health, [shards = K]);
      [uptime_s]/[requests_total] are the router's own.
    - {b lifecycle}: [shutdown] (or SIGINT/SIGTERM) broadcasts shutdown
      to every shard, stops accepting, drains connections and reaps the
      children before returning.

    A shard that cannot be reached (crashed, mid-restart) answers its
    requests with typed [unavailable] errors — after one transparent
    reconnect attempt — without affecting other shards. *)

type opts = {
  socket : string;  (** public Unix socket; shards get [<socket>.shard<i>] *)
  tcp : (string * int) option;  (** optional public TCP endpoint *)
  shards : int;  (** worker processes (>= 1) *)
  shard : Server.opts;
      (** template for each shard: workers, queue limit, cache caps,
          breaker, memory high-water, snapshot root ([cache_dir] gets a
          per-shard subdirectory).  [socket]/[tcp]/hooks are overridden. *)
  handle_signals : bool;
  on_ready : (unit -> unit) option;
      (** called once every shard is up and the public sockets listen *)
  on_tcp_port : (int -> unit) option;  (** bound TCP port (port 0 ok) *)
}

val default_opts : opts
(** 2 shards over {!Server.default_opts}, no TCP, signals handled. *)

val shard_of_key : shards:int -> string -> int
(** FNV-1a 64-bit hash of the key, reduced mod [shards].  Deterministic
    across restarts and processes (no randomized seed). *)

val route_key : Protocol.target -> string
(** The routing key of a target: its preparation key
    [workload|w<warmup>|m<measure>] — variant/engine/seed intentionally
    excluded so all sessions of one prepared workload share a shard. *)

val shard_socket : string -> int -> string
(** [shard_socket public i] is shard [i]'s private socket path. *)

type stats = { uptime_s : float; requests_total : int }

val run : opts -> stats
(** Serve until shutdown; blocks, like {!Server.run}.  Forks the shard
    processes {e before} creating any listener or thread, so it must be
    called from a quiescent process (the CLI does; beware domains).
    @raise Failure if a shard fails to come up or an endpoint cannot be
    bound (already-started shards are torn down first). *)
