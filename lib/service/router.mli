(** Shard router: fan one service endpoint across K worker processes.

    [run] first forks a {!Supervise} supervisor — while this process is
    still quiescent — and the supervisor forks the shard fleet: [shards]
    child processes, each a full {!Server} (its own scheduler, caches,
    breaker, shedding and — inherited through the fork — fault
    injection) listening on a private Unix socket ([<socket>.shard<i>])
    with a private snapshot directory ([<cache-dir>/shard-<i>]).  The
    router then serves the public Unix socket (and optional TCP
    endpoint) through the shared {!Acceptor} and routes each analysis
    request to the shard owning its target:

    - {b routing}: FNV-1a 64-bit hash of the target's preparation key
      ([workload|warmup|measure]), so every variant/engine session of one
      prepared workload lands on the same shard and shares its prep
      cache.  The hash is position-independent state — the same key maps
      to the same shard across restarts and across processes.
    - {b passthrough}: single analysis frames are forwarded verbatim and
      the shard's reply line is relayed untouched, so replies stay
      bit-identical to a direct connection.
    - {b batch}: a [batch] frame whose analysis items all route to one
      shard is relayed verbatim (the affinity fast path — router cost
      per frame, not per item).  Otherwise the frame is partitioned by
      shard, the sub-batches are scattered concurrently, and the
      per-item results are stitched back in the original order.
      [status]/[health] items are answered by the router itself
      (aggregated).
    - {b aggregation}: top-level [status]/[health] fan out to every shard
      and roll up (sums for counters, worst-of for health, [shards = K]);
      [uptime_s]/[requests_total]/[respawns]/[failovers] are the
      router's own.

    {2 Self-healing}

    The supervisor watches the fleet (waitpid + periodic health probes)
    and respawns dead shards with decorrelated-jitter backoff; its
    [Up]/[Down]/[Breaker_open] events drive a per-shard state the
    routing paths consult:

    - {b down / restarting}: requests for the shard {e park} (bounded by
      the failover budget) and are delivered to the respawned
      replacement — which warm-starts from the shard's snapshot
      directory — so a crash costs latency, not errors.  All traffic on
      the relay paths is idempotent, so re-delivery after a mid-flight
      death is safe; a scatter-gather sub-batch lost to an uncommanded
      crash instead degrades to per-item typed [unavailable] errors (the
      other shards' items are unaffected).
    - {b breaker open}: a shard crashing more than the storm budget
      allows stops being respawned for a cooldown; its requests fail
      fast with [unavailable] carrying [retry_after_ms].
    - {b rolling restart}: the [drain] op cycles the fleet one shard at
      a time — drain (finish in-flight, persist snapshots, exit),
      respawn, wait for up — with the cycling shard's traffic parked, so
      a fleet restart is client-invisible.  Serialized; a concurrent
      [drain] is refused.
    - {b lifecycle}: [shutdown] (or SIGINT/SIGTERM) stops accepting,
      drains connections, then stops the supervisor, which SIGTERMs the
      fleet (graceful shard drain) with SIGKILL escalation. *)

type opts = {
  socket : string;  (** public Unix socket; shards get [<socket>.shard<i>] *)
  tcp : (string * int) option;  (** optional public TCP endpoint *)
  shards : int;  (** worker processes (>= 1) *)
  shard : Server.opts;
      (** template for each shard: workers, queue limit, cache caps,
          breaker, memory high-water, snapshot root ([cache_dir] gets a
          per-shard subdirectory).  [socket]/[tcp]/hooks are overridden;
          shards always handle SIGTERM (the supervisor stops them with
          signals). *)
  supervise : Supervise.opts;  (** respawn/backoff/breaker/probe knobs *)
  failover_budget_s : float;
      (** how long a request parks waiting out a respawn before giving
          up with [unavailable] (default 8) *)
  handle_signals : bool;
  on_ready : (unit -> unit) option;
      (** called once every shard is up and the public sockets listen *)
  on_tcp_port : (int -> unit) option;  (** bound TCP port (port 0 ok) *)
}

val default_opts : opts
(** 2 shards over {!Server.default_opts}, {!Supervise.default_opts}, no
    TCP, signals handled. *)

val shard_of_key : shards:int -> string -> int
(** FNV-1a 64-bit hash of the key, reduced mod [shards].  Deterministic
    across restarts and processes (no randomized seed). *)

val route_key : Protocol.target -> string
(** The routing key of a target: its preparation key
    [workload|w<warmup>|m<measure>] — variant/engine/seed intentionally
    excluded so all sessions of one prepared workload share a shard. *)

val shard_socket : string -> int -> string
(** [shard_socket public i] is shard [i]'s private socket path. *)

val reap : ?grace_s:float -> int list -> unit
(** Escalating, non-blocking reap of child pids — alias of
    {!Supervise.reap}: poll, SIGTERM after [grace_s], SIGKILL after
    [2*grace_s], abandon rather than hang on an unkillable process. *)

type stats = { uptime_s : float; requests_total : int }

val run : opts -> stats
(** Serve until shutdown; blocks, like {!Server.run}.  Forks the
    supervisor {e before} creating any listener or thread, so it must be
    called from a quiescent process (the CLI does; beware domains).
    @raise Failure if the fleet fails to come up or an endpoint cannot
    be bound (the supervisor and already-started shards are torn down
    first). *)
