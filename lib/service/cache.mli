(** Concurrent single-flight LRU cache for server sessions.

    The server keeps prepared workloads, baseline simulation results and
    memoized cost oracles in instances of this cache, keyed by strings
    derived from the request target (see [doc/protocol.md] for the exact
    key layout).  Two properties matter more than raw speed here:

    - {b single flight}: when N clients miss on the same key at once, the
      builder runs exactly once; the other N-1 block until the value is
      ready and then share it.  A builder that raises re-raises to its own
      caller and leaves the key absent, so waiters (and later requests)
      retry the build instead of inheriting a poisoned entry.
    - {b bounded size}: at most [cap] ready entries are retained; inserting
      past the cap evicts the least-recently-used ready entry (in-flight
      entries are never evicted).

    Every cache mirrors its hit/miss/eviction counts into
    {!Icost_util.Telemetry} counters ([service.cache.<name>.hits] etc.,
    live only while the sink is enabled) {e and} keeps plain internal
    tallies that feed the [status] reply unconditionally. *)

type 'v t

val create : name:string -> cap:int -> 'v t
(** [cap] is clamped to >= 1.  [name] labels the telemetry counters. *)

val find_or_add : 'v t -> string -> (unit -> 'v) -> 'v
(** Return the cached value for the key, building it with the thunk on a
    miss.  The thunk runs outside the cache lock; concurrent callers on
    the same key wait for it rather than re-running it.  The build is an
    {!Icost_util.Fault} injection point named [cache_build.<name>]: when
    armed, the builder raises [Fault.Injected] instead of running. *)

val remove : 'v t -> string -> bool
(** Drop the key's entry if it is resolved (ready or failed); in-flight
    builds are left alone.  Used by the server's per-request supervision
    to evict a session whose analysis raised.  Returns whether an entry
    was dropped. *)

val trim : 'v t -> keep:int -> int
(** Evict coldest-first until at most [keep] ready entries remain (the
    graceful-degradation shedding path); returns the count shed, which
    is also added to the eviction tallies. *)

val length : 'v t -> int
(** Ready entries currently held. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : 'v t -> stats
