(* Single-flight LRU cache.  See cache.mli for the contract.

   One mutex guards the table, the LRU stamps and the tallies; builders
   run outside it with the entry parked in the [Pending] state so other
   threads on the same key block on the condition variable instead of
   duplicating work.  [cap] is small (a handful of analysis sessions), so
   eviction is a linear scan for the oldest ready stamp rather than a
   linked list. *)

module Telemetry = Icost_util.Telemetry
module Fault = Icost_util.Fault

type 'v state = Pending | Ready of 'v | Failed of exn

type 'v entry = { mutable state : 'v state; mutable stamp : int }

type 'v t = {
  mutex : Mutex.t;
  changed : Condition.t;  (* signalled when any Pending entry resolves *)
  tbl : (string, 'v entry) Hashtbl.t;
  cap : int;
  fp_build : Fault.point;  (* "cache_build.<name>": builder raises *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  c_hits : Telemetry.counter;
  c_misses : Telemetry.counter;
  c_evictions : Telemetry.counter;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~name ~cap =
  {
    mutex = Mutex.create ();
    changed = Condition.create ();
    tbl = Hashtbl.create 16;
    cap = max 1 cap;
    fp_build = Fault.point ("cache_build." ^ name);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    c_hits = Telemetry.counter (Printf.sprintf "service.cache.%s.hits" name);
    c_misses = Telemetry.counter (Printf.sprintf "service.cache.%s.misses" name);
    c_evictions =
      Telemetry.counter (Printf.sprintf "service.cache.%s.evictions" name);
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* Evict ready entries (never pending ones), oldest stamp first, until at
   most [limit] remain.  Caller holds the lock; returns the count shed. *)
let evict_down_to t limit =
  let ready_count () =
    Hashtbl.fold
      (fun _ e n -> match e.state with Ready _ -> n + 1 | _ -> n)
      t.tbl 0
  in
  let shed = ref 0 in
  while ready_count () > limit do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match (e.state, acc) with
          | Ready _, None -> Some (k, e.stamp)
          | Ready _, Some (_, stamp) when e.stamp < stamp -> Some (k, e.stamp)
          | _ -> acc)
        t.tbl None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      incr shed;
      t.evictions <- t.evictions + 1;
      Telemetry.incr t.c_evictions
  done;
  !shed

let enforce_cap t = ignore (evict_down_to t t.cap)

let rec find_or_add (t : 'v t) (key : string) (build : unit -> 'v) : 'v =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.tbl key with
  | Some ({ state = Ready v; _ } as e) ->
    touch t e;
    t.hits <- t.hits + 1;
    Mutex.unlock t.mutex;
    Telemetry.incr t.c_hits;
    v
  | Some { state = Pending; _ } ->
    (* someone is building it: wait for the resolution, then re-examine *)
    Condition.wait t.changed t.mutex;
    Mutex.unlock t.mutex;
    find_or_add t key build
  | Some { state = Failed _; _ } ->
    (* a previous builder failed; clear the tombstone and retry so a
       transient error does not poison the key forever *)
    Hashtbl.remove t.tbl key;
    Mutex.unlock t.mutex;
    find_or_add t key build
  | None ->
    t.misses <- t.misses + 1;
    let entry = { state = Pending; stamp = 0 } in
    touch t entry;
    Hashtbl.replace t.tbl key entry;
    Mutex.unlock t.mutex;
    Telemetry.incr t.c_misses;
    let outcome =
      match
        Fault.trip t.fp_build;
        build ()
      with
      | v -> Ready v
      | exception e -> Failed e
    in
    Mutex.lock t.mutex;
    entry.state <- outcome;
    touch t entry;
    if (match outcome with Ready _ -> true | _ -> false) then enforce_cap t;
    Condition.broadcast t.changed;
    Mutex.unlock t.mutex;
    (match outcome with
     | Ready v -> v
     | Failed e -> raise e
     | Pending -> assert false)

let remove t key =
  Mutex.lock t.mutex;
  let removed =
    match Hashtbl.find_opt t.tbl key with
    | Some { state = Ready _ | Failed _; _ } ->
      Hashtbl.remove t.tbl key;
      true
    | Some { state = Pending; _ } | None -> false
  in
  Mutex.unlock t.mutex;
  removed

let trim t ~keep =
  Mutex.lock t.mutex;
  let shed = evict_down_to t (max 0 keep) in
  Mutex.unlock t.mutex;
  shed

let length t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ e n -> match e.state with Ready _ -> n + 1 | _ -> n)
      t.tbl 0
  in
  Mutex.unlock t.mutex;
  n

let stats t =
  Mutex.lock t.mutex;
  let entries =
    Hashtbl.fold
      (fun _ e n -> match e.state with Ready _ -> n + 1 | _ -> n)
      t.tbl 0
  in
  let s =
    { hits = t.hits; misses = t.misses; evictions = t.evictions; entries }
  in
  Mutex.unlock t.mutex;
  s
