module Fault = Icost_util.Fault

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* guards the wire, [parked], [wseq] and [alive] *)
  rbuf : Linebuf.t;  (* received bytes, split into lines on arrival *)
  scratch : bytes;  (* per-connection read chunk, reused across calls *)
  mutable alive : bool;
  mutable rseq : int;  (* next sequence the reader hands out *)
  mutable wseq : int;  (* next sequence to reach the wire *)
  parked : (int, string) Hashtbl.t;  (* replies waiting on predecessors *)
}

(* injection points for the transport seams; no-op single branches unless
   armed via ICOST_FAULTS / --faults *)
let fp_accept = Fault.point "accept_reset"
let fp_read = Fault.point "conn_reset"
let fp_write_short = Fault.point "write_short"

let conn_fd c = c.fd

(* Loop until the whole line is on the wire: [Unix.write_substring] may
   write fewer bytes than asked (and the [write_short] fault point forces
   exactly that), which used to truncate replies mid-line and desync the
   stream.  EINTR restarts the same write. *)
let write_all_fd fd (s : string) =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let remaining = len - off in
      let attempt =
        if Fault.fire fp_write_short then max 1 (remaining / 2) else remaining
      in
      match Unix.write_substring fd s off attempt with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let next_seq c =
  let s = c.rseq in
  c.rseq <- s + 1;
  s

(* Park the line under its sequence slot, then flush every consecutive
   slot starting at [wseq].  Whichever thread completes the missing slot
   drains the run, so ordering needs no dedicated writer thread.  Dead
   connections keep consuming slots (dropping the bytes) so that replies
   parked behind them are reclaimed rather than leaked. *)
let write_line (c : conn) ~seq line =
  Mutex.lock c.wmutex;
  Hashtbl.replace c.parked seq line;
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt c.parked c.wseq with
    | None -> continue := false
    | Some l ->
      Hashtbl.remove c.parked c.wseq;
      c.wseq <- c.wseq + 1;
      if c.alive then (
        try write_all_fd c.fd l with Unix.Unix_error _ -> c.alive <- false)
  done;
  Mutex.unlock c.wmutex

(* Read one '\n'-terminated line, refusing to buffer more than [max]
   bytes of unterminated tail.  Completed lines are handed out before the
   size check and the check is strict, so a line of exactly [max] bytes
   always reaches the decoder (whose own bound is strict too); anything
   longer is rejected, either here as [`Too_long] or, when the
   terminating newline lands in the same read, by the decoder's own size
   message. *)
let read_line_bounded (c : conn) ~max:max_bytes :
    [ `Line of string | `Too_long | `Eof ] =
  let chunk = c.scratch in
  let rec loop () =
    match Linebuf.pop c.rbuf with
    | Some line -> `Line line
    | None ->
      if Linebuf.pending_bytes c.rbuf > max_bytes then `Too_long
      else if Fault.fire fp_read then `Eof (* injected connection reset *)
      else begin
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> `Eof
        | n ->
          Linebuf.feed c.rbuf chunk ~len:n;
          loop ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET), _, _) ->
          `Eof
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
  in
  loop ()

type t = {
  listeners : Endpoint.listener list;
  wake_r : Unix.file_descr;  (* self-pipe: any write wakes the accept loop *)
  wake_w : Unix.file_descr;
  stop : bool Atomic.t;
  conns_mutex : Mutex.t;
  mutable conns : (conn * Thread.t) list;
}

let create listeners =
  let wake_r, wake_w = Unix.pipe () in
  {
    listeners;
    wake_r;
    wake_w;
    stop = Atomic.make false;
    conns_mutex = Mutex.create ();
    conns = [];
  }

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    (* the pipe write is the only async-signal-ish operation, safe from
       both signal handlers and connection threads *)
    try ignore (Unix.write_substring t.wake_w "x" 0 1) with _ -> ()

let stop_requested t = Atomic.get t.stop

let spawn_conn t fd on_conn =
  let c =
    {
      fd;
      wmutex = Mutex.create ();
      rbuf = Linebuf.create ();
      scratch = Bytes.create 16384;
      alive = true;
      rseq = 0;
      wseq = 0;
      parked = Hashtbl.create 8;
    }
  in
  let th =
    Thread.create
      (fun () ->
        (try on_conn c with _ -> ());
        Mutex.lock c.wmutex;
        c.alive <- false;
        Mutex.unlock c.wmutex;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      ()
  in
  Mutex.lock t.conns_mutex;
  t.conns <- (c, th) :: t.conns;
  Mutex.unlock t.conns_mutex

let serve t ~on_conn =
  let lfds = List.map Endpoint.listener_fd t.listeners in
  let rec loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.select (t.wake_r :: lfds) [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | readable, _, _ ->
        List.iter
          (fun lfd ->
            if List.mem lfd readable && not (Atomic.get t.stop) then
              match Unix.accept lfd with
              | fd, _ when Fault.fire fp_accept ->
                (* injected accept-time reset: drop the connection unserved *)
                (try Unix.close fd with Unix.Unix_error _ -> ())
              | fd, _ ->
                (* no-op on Unix sockets; on TCP, request/reply round
                   trips must not wait out Nagle *)
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                spawn_conn t fd on_conn
              | exception Unix.Unix_error _ -> ())
          lfds;
        loop ()
    end
  in
  loop ();
  List.iter Endpoint.close_listener t.listeners

let finish t =
  Mutex.lock t.conns_mutex;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun ((c : conn), _) ->
      (* a blocked reader does not wake on [close] alone *)
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  try Unix.close t.wake_w with Unix.Unix_error _ -> ()
