(** Persistent compiled-graph snapshots — the [icost.graphcache.v1] format.

    A snapshot captures everything a session needs to answer queries
    without re-running the expensive preparation pipeline: the prepared
    workload (interpreted trace + annotated events), the compiled
    dependence graph (fullgraph engine) and the memoized subset-time
    table the session has accumulated.  Snapshots are keyed by the same
    [workload|window|config-digest|engine|seed] string as the server's
    session cache, so [icost serve --cache-dir] warm-starts after a
    restart and one-shot CLI runs can reuse each other's work.

    {2 File format}

    {v
    "icost.graphcache.v1\n"                         magic + version
    8-byte big-endian length | 16-byte MD5 | bytes   section: session key
    8-byte big-endian length | 16-byte MD5 | bytes   section: payload
    v}

    The payload section is an OCaml [Marshal] image; its digest is
    verified {e before} unmarshaling, so truncated or bit-flipped files
    are rejected without ever feeding attacker-controlled bytes to
    [Marshal.from_string].  Writes go to a temp file in the same
    directory and [rename] into place, so readers never observe a
    partial snapshot.  Any rejection ([`Reject]) or absence ([`Miss])
    falls back to a clean rebuild; a snapshot is never load-bearing.

    A rejected file is additionally {b quarantined}: renamed to
    [<file>.quarantined] (atomic, evidence kept for post-mortems) so the
    next load of the same key is a plain [`Miss] that rebuilds and
    overwrites — a crash-corrupted snapshot costs one rejection ever,
    not one per restart.

    Loads and saves tick the [graph.snapshot_hits] /
    [graph.snapshot_misses] / [graph.snapshot_rejects] /
    [graph.snapshot_quarantined] telemetry counters (live while the sink
    is enabled); the server additionally tallies them into its [status]
    reply. *)

type payload = {
  engine : string;  (** {!Icost_experiments.Runner.oracle_kind_name} *)
  key : string;  (** full session key; verified against the request *)
  prepared : Icost_experiments.Runner.prepared;
  graph : string option;
      (** {!Icost_depgraph.Graph.marshal} bytes, fullgraph engine only —
          the compact transposed form loads ~2x faster than a direct
          [Marshal] image of the graph *)
  memo : (Icost_core.Category.Set.t * float) array;
      (** memoized subset times, {!Icost_core.Cost.memo_entries} order *)
}

val file_of : dir:string -> key:string -> string
(** Snapshot path for a key: [dir/<md5-hex-of-key>.snap]. *)

val save : dir:string -> key:string -> payload -> unit
(** Write atomically (temp file + rename), creating [dir] if missing.
    Raises [Sys_error]/[Unix.Unix_error] on I/O failure — callers on the
    serving path use {!establish}/{!persist}, which swallow those. *)

val load : dir:string -> key:string -> [ `Hit of payload | `Miss | `Reject of string ]
(** [`Miss] when no snapshot exists for the key; [`Reject reason] for a
    bad magic/version, truncated or corrupted sections, a key mismatch,
    or an engine/shape mismatch.  A rejected file is quarantined (see
    module doc): renamed [*.quarantined], so asking again is [`Miss].
    Never raises on malformed input. *)

(** {2 Session establishment}

    The shared build-or-warm-start path used by the server's session
    cache and the one-shot CLI: consult the snapshot store (when a cache
    directory is configured), otherwise build fresh and seed the store. *)

type established = {
  est_engine : string;  (** {!Icost_experiments.Runner.oracle_kind_name} *)
  est_prepared : Icost_experiments.Runner.prepared;
  est_oracle : Icost_core.Cost.oracle;  (** memoized *)
  est_memo : Icost_core.Cost.memo;  (** handle for snapshot dumps *)
  est_graph : unit -> Icost_depgraph.Graph.t option;
      (** memoized, thread-safe; on a warm start the first call decodes
          the snapshot's graph bytes, so memo-covered queries never pay
          for graph reconstruction *)
  est_graph_bytes : string option;
      (** {!Icost_depgraph.Graph.marshal} image of the graph, kept so
          {!persist} never re-encodes it *)
  est_disk : [ `Hit | `Miss | `Reject | `Off ];
      (** what the snapshot store said; [`Off] without a cache dir *)
  est_persisted : int ref;  (** memo entries already on disk *)
}

val establish :
  ?cache_dir:string ->
  key:string ->
  kind:Icost_experiments.Runner.oracle_kind ->
  cfg:Icost_uarch.Config.t ->
  seed:int ->
  prepare:(unit -> Icost_experiments.Runner.prepared) ->
  baseline:(Icost_experiments.Runner.prepared -> Icost_sim.Ooo.result) ->
  unit ->
  established
(** Establish a session for [key].  On a snapshot hit the prepared
    workload, graph and memo table come from disk and the underlying
    engine is rebuilt lazily (mutex-guarded, [Lazy] is not
    thread-safe) only if a query ever misses the seeded memo; [prepare]
    and [baseline] are not called.  Otherwise the session is built
    fresh — exactly the constructors the server used before snapshots
    existed — and, when a cache dir is configured, saved best-effort.
    [seed] only reaches the profiler's sampling PRNG. *)

val persist : dir:string -> key:string -> established -> unit
(** Re-save the snapshot if the memo grew since the last save (analysis
    answered new subsets), so the next cold start replays them from
    disk.  No-op when nothing grew; I/O errors are swallowed. *)
