(** The [icost.rpc.v1] wire protocol.

    Newline-delimited JSON over a Unix domain socket or a TCP connection:
    each request is one JSON object on one line, each reply is one JSON
    object on one line.  Replies carry the request's [id] and are
    delivered {b in request order} when a client pipelines several
    requests on one connection.  The full wire
    format is specified in [doc/protocol.md]; this module is the only
    encoder/decoder on either side (server and client share it, so a
    round-trip through {!encode_request}/{!decode_request} is the
    identity by construction and the test suite checks it).

    Reproducibility: a request fully determines its answer.  The [target]
    carries every input of the analysis — workload, machine variant, cost
    engine, warm-up/measure window and the sampling [seed] (fed to the
    profiler's SplitMix64 {!Icost_util.Prng}) — so two clients issuing the
    same request receive bit-identical replies, equal to what the one-shot
    CLI produces for the same flags. *)

val version : string
(** ["icost.rpc.v1"] — sent in every message; the server rejects other
    values with [Bad_request] rather than guessing. *)

val max_request_bytes : int
(** Upper bound on one request line (65536).  Longer lines are answered
    with a typed [Bad_request] error and the connection is closed (the
    stream is no longer in sync). *)

val max_batch_items : int
(** Upper bound on the number of sub-queries in one [Batch] frame (256);
    larger batches are rejected whole as [Bad_request]. *)

val max_sweep_axes : int
(** Upper bound on the number of parameter axes in one [Sweep] frame (8);
    each axis is further capped at {!Icost_sensitivity.Param.max_points_per_axis}
    grid points by the spec parser. *)

(** What to analyze.  Defaults (applied by {!decode_request} for missing
    fields) mirror the CLI: variant [base], engine [graph], the standard
    warm-up/measure window, the profiler's default seed. *)
type target = {
  workload : string;  (** required; a {!Icost_workloads.Workload} name *)
  variant : string;  (** base | dl1 | wakeup | bmisp *)
  engine : string;
      (** graph | multisim | profiler | stream (segmented bounded-memory
          re-analysis; answers are bit-identical to [graph] on the same
          window) *)
  warmup : int;
  measure : int;
  seed : int;  (** profiler sampling seed (see module doc) *)
}

val default_target : target
(** [workload] is [""] (no default — requests without one are rejected). *)

type op =
  | Breakdown of { target : target; focus : string }
      (** Table 4-style breakdown; [focus] selects the interaction rows. *)
  | Icost of { target : target; sets : string list }
      (** Cost + interaction cost of each category set, e.g. ["dl1,win"]. *)
  | Graph_stats of { target : target }
      (** Dependence-graph shape (always uses the graph engine). *)
  | Sweep of { target : target; params : string list }
      (** Parametric sensitivity sweep ({!Icost_sensitivity.Sweep}): each
          element of [params] is one axis grid spec
          (["window=16..256:16"], see {!Icost_sensitivity.Param.parse_axis}).
          The target's engine selects how points are priced (graph
          critical path or re-simulated cycles; the profiler is
          rejected); points are evaluated against the target's prepared
          workload and cached per config digest.  A point whose
          evaluation fails yields a typed per-point error, mirroring
          batch items.  At most {!max_sweep_axes} axes. *)
  | Batch of { ops : op list }
      (** N sub-queries in one frame: one decode, one queue slot, one
          reply ([R_batch]) with per-item results in request order.  A
          semantically bad item (unknown workload, nested batch, ...)
          yields a per-item typed error without poisoning its siblings;
          at most {!max_batch_items} items. *)
  | Status  (** server statistics: uptime, queue, cache, jobs *)
  | Health
      (** cheap liveness/degradation probe, answered inline even under
          full load: ok | degraded | draining, open breakers, shed count *)
  | Drain
      (** rolling restart.  A standalone server (or a shard) acks with
          [R_drain], finishes in-flight work, persists its snapshots and
          exits — the supervisor respawns it.  A router restarts its
          shard fleet one shard at a time, parking traffic bound for the
          shard being cycled, and answers [R_drain] with the number of
          shards restarted once the whole fleet has been cycled with zero
          failed requests.  Not idempotent (a retry restarts the fleet
          again), so the client never auto-retries it. *)
  | Shutdown  (** graceful drain-then-exit *)

type request = { req_id : int; deadline_ms : int option; op : op }

type breakdown_row = { row_label : string; row_percent : float; row_cycles : float }

type icost_row = {
  set_name : string;
  set_cost : float;
  set_icost : float;
  set_class : string;  (** independent | parallel | serial *)
}

type status_body = {
  uptime_s : float;
  requests_total : int;
  inflight : int;
  queue_depth : int;
  sessions : int;  (** entries in the session cache *)
  cache_hits : int;
      (** summed over the prep/baseline/session/reply caches (the frame
          memo is excluded — its hits re-serve bytes the reply cache
          already counted) *)
  cache_misses : int;
  cache_evictions : int;
  snapshot_hits : int;  (** persistent graph-snapshot store; all 0 without --cache-dir *)
  snapshot_misses : int;
  snapshot_rejects : int;
  sweep_points : int;  (** sweep grid points evaluated or served since start *)
  sweep_cache_hits : int;  (** of which the sweep-point cache already held *)
  segments : int;
      (** streaming segments analyzed since start (stream-engine
          preparations); 0 when the stream engine was never used *)
  stream_peak_mb : float;
      (** largest peak heap observed by any stream-engine preparation,
          in MB; 0 when the stream engine was never used *)
  pool_jobs : int;
  shards : int;
      (** worker shards behind this endpoint: 0 for a standalone server,
          K for a router aggregating K shard processes *)
  respawns : int;
      (** shard processes respawned by the supervisor since start (death
          detected by waitpid/probe, or cycled by a [Drain]); 0 for a
          standalone server *)
  failovers : int;
      (** relayed frames that hit a dead or restarting shard and were
          transparently re-delivered after its respawn; 0 standalone *)
  health : string;  (** ok | degraded | draining (see [doc/protocol.md]) *)
  draining : bool;
}

type health_body = {
  h_health : string;  (** ok | degraded | draining *)
  h_breakers_open : int;  (** session keys currently tripped open *)
  h_shed : int;  (** cache entries shed under pressure since start *)
}

type error_code =
  | Bad_request  (** malformed/oversized/unknown-name request *)
  | Overloaded  (** accept queue full — retry later (backpressure) *)
  | Unavailable
      (** the target's circuit breaker is open after repeated failures,
          or a shard is unreachable; fail-fast — retry after cooldown *)
  | Deadline_exceeded  (** the request's [deadline_ms] elapsed *)
  | Shutting_down  (** server is draining; no new work accepted *)
  | Internal  (** analysis raised; message carries the exception text *)

(** One grid point of a sweep curve, in ascending [sp_value] order within
    its curve: [Ok (cycles, delta)] where [delta] is the first difference
    d(cycles)/d(param) against the previous evaluated point (0 for the
    lowest point), or a typed per-point error that does not poison the
    rest of the sweep (the batch-item error model). *)
type sweep_point = {
  sp_value : int;
  sp_outcome : (float * float, error_code * string) result;
}

type sweep_knee = {
  kn_value : int;  (** the saturation knee on this axis *)
  kn_marginal : float;  (** cycles saved per unit over the step reaching it *)
  kn_saturated : bool;
      (** false when the curve was still paying off at the grid edge *)
}

type sweep_curve = {
  curve_param : string;  (** axis name, e.g. ["window"] *)
  curve_base : int;  (** the session config's own value on this axis *)
  curve_knee : sweep_knee option;  (** absent with fewer than two points *)
  curve_points : sweep_point list;
}

type result_body =
  | R_breakdown of { baseline : float; rows : breakdown_row list }
  | R_icost of { baseline : float; rows : icost_row list }
  | R_graph_stats of { instrs : int; nodes : int; edges : int; critical_path : int }
  | R_sweep of { baseline : float; curves : sweep_curve list }
      (** [baseline] is the unperturbed session config's cycles — always
          bit-identical to the same target's [R_breakdown.baseline] *)
  | R_batch of { results : (result_body, error_code * string) result list }
      (** per-item outcomes, positionally matching the batch's [ops] *)
  | R_status of status_body
  | R_health of health_body
  | R_drain of { restarted : int }
      (** shards cycled by a router's rolling restart; 0 from a
          standalone server or shard (it acks, then exits itself) *)
  | R_shutdown

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

val idempotent : op -> bool
(** Whether re-sending the operation can change server state beyond its
    caches: true for every op except [Shutdown] (and a [Batch] containing
    one).  The client's retry machinery refuses to retry non-idempotent
    ops. *)

val retryable : error_code -> bool
(** Whether an error is worth retrying unchanged after a backoff:
    [Overloaded], [Unavailable] and [Internal] (transient by design —
    supervision evicts the failed session, so a retry rebuilds).
    [Bad_request], [Deadline_exceeded] and [Shutting_down] would fail
    identically again. *)

type reply = { rep_id : int; body : (result_body, error_code * string) result }

(** {2 Retry hints}

    A fail-fast [Unavailable] produced by shard supervision (the
    restart-storm breaker) tells the client how long the condition is
    expected to last.  On the wire the hint is a structured
    ["retry_after_ms"] integer next to [code]/[msg] (decoders that
    predate it ignore unknown fields); in the OCaml [(code, msg)] error
    it is embedded in the message text, where {!retry_after_of_msg}
    recovers it and the client's backoff uses it as a sleep floor. *)

val retry_after_clause : int -> string
(** ["retry_after_ms=N"] — splice into an error message. *)

val retry_after_of_msg : string -> int option
(** Recover the first ["retry_after_ms=N"] clause of a message. *)

val encode_error_reply :
  rep_id:int -> error_code -> string -> retry_after_ms:int -> string
(** A full error reply line whose error object carries the structured
    ["retry_after_ms"] field.  {!decode_reply} still yields the plain
    [(code, msg)] pair — embed the clause in [msg] too when the OCaml
    client must see it. *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result
(** [Error msg] for anything that is not a well-formed v1 request; the
    server turns it into a [Bad_request] reply. *)

val encode_reply : reply -> string
val decode_reply : string -> (reply, string) result

(** {2 Pre-encoded reply assembly}

    The server's reply cache stores result objects in already-encoded
    form; these helpers build reply lines around such fragments.  Their
    output is byte-identical to {!encode_reply} on the equivalent tree,
    so cached and freshly computed replies cannot be told apart on the
    wire. *)

val encode_op : op -> string
(** Canonical encoding of one op — the same object shape as a batch
    item (no envelope).  Stable across decode/encode round-trips, which
    makes it usable as a cache key for idempotent queries. *)

val encode_result : result_body -> string
(** The bare result object of a successful reply. *)

val encode_ok_reply : rep_id:int -> result:string -> string
(** Wrap an [encode_result] fragment in a success envelope. *)

val encode_batch_result :
  results:(string, error_code * string) result list -> string
(** The bare batch result object assembled from per-item fragments
    ([Ok] carries an [encode_result] string) in request order. *)

val encode_batch_reply :
  rep_id:int ->
  results:(string, error_code * string) result list ->
  string
(** [encode_batch_result] wrapped in a success envelope. *)

val split_frame_id : string -> (int * int) option
(** [Some (id, pos)] when the line starts with the canonical
    [{"v":"icost.rpc.v1","id":] prefix followed by the request id whose
    digits end at [pos]; [None] for any other field order.  The suffix
    from [pos] identifies the frame up to its id — the memo key used by
    the router's route cache and the server's frame cache (see
    [doc/protocol.md]). *)
