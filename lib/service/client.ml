(* Blocking protocol client with a resilient session layer.  See
   client.mli. *)

module Telemetry = Icost_util.Telemetry
module Prng = Icost_util.Prng
module P = Protocol

type t = {
  fd : Unix.file_descr;
  buf : Linebuf.t;
  scratch : bytes;  (* per-connection read chunk, reused across calls *)
}

exception Disconnected of string

let () =
  Printexc.register_printer (function
    | Disconnected msg -> Some (Printf.sprintf "Client.Disconnected(%S)" msg)
    | _ -> None)

let c_retries = Telemetry.counter "service.retries"

let retries_tally = Atomic.make 0

let retries_total () = Atomic.get retries_tally

(* ---------- bare connection ---------- *)

let connect_error addr err =
  let hint =
    match (addr, err) with
    | Endpoint.Unix_path _, Unix.ENOENT ->
      "socket file does not exist (daemon not started, or already exited)"
    | Endpoint.Unix_path _, Unix.ECONNREFUSED ->
      "connection refused (stale socket file with no listener behind it)"
    | Endpoint.Tcp _, Unix.ECONNREFUSED ->
      "connection refused (no daemon listening at this endpoint)"
    | _, e -> Unix.error_message e
  in
  Failure
    (Printf.sprintf "cannot connect to %s: %s" (Endpoint.addr_to_string addr)
       hint)

let connect_addr ?(retry_for = 0.) addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt backoff =
    match Endpoint.connect_fd addr with
    | fd -> { fd; buf = Linebuf.create (); scratch = Bytes.create 65536 }
    | exception Unix.Unix_error (err, _, _) ->
      let now = Unix.gettimeofday () in
      if now < deadline then begin
        (* capped exponential backoff, clamped to the remaining window,
           instead of a fixed-period poll *)
        ignore (Unix.select [] [] [] (Float.min backoff (deadline -. now)));
        attempt (Float.min (backoff *. 2.) 0.25)
      end
      else raise (connect_error addr err)
  in
  attempt 0.01

let connect ?retry_for ~socket () =
  connect_addr ?retry_for (Endpoint.Unix_path socket)

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_line c =
  match Linebuf.pop c.buf with
  | Some line -> line
  | None ->
    let chunk = c.scratch in
    let rec fill () =
      match Unix.read c.fd chunk 0 (Bytes.length chunk) with
      | 0 -> raise (Disconnected "connection closed by server")
      | n -> (
        Linebuf.feed c.buf chunk ~len:n;
        match Linebuf.pop c.buf with
        | Some line -> line
        | None -> fill ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE) as e, _, _)
        -> raise (Disconnected (Unix.error_message e))
    in
    fill ()

let send_line c (line : string) =
  let line = line ^ "\n" in
  let rec write_all off =
    if off < String.length line then
      match Unix.write_substring c.fd line off (String.length line - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE) as e, _, _)
        -> raise (Disconnected (Unix.error_message e))
  in
  write_all 0

let recv_line = read_line
let send c (req : P.request) = send_line c (P.encode_request req)

let recv c : P.reply =
  match P.decode_reply (read_line c) with
  | Ok reply -> reply
  | Error msg -> failwith ("undecodable reply: " ^ msg)

let call c (req : P.request) : P.reply =
  send c req;
  recv c

(* Write the whole window before reading anything: the server's
   sequence-ordered writer guarantees replies come back in request
   order, so reading N replies positionally is correct. *)
let pipeline c (reqs : P.request list) : P.reply list =
  List.iter (send c) reqs;
  List.map (fun _ -> recv c) reqs

let with_client ?retry_for ~socket f =
  let c = connect ?retry_for ~socket () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

let with_addr ?retry_for addr f =
  let c = connect_addr ?retry_for addr in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)

(* ---------- resilient session layer ---------- *)

type retry_opts = {
  retries : int;
  budget_ms : int;
  base_backoff_ms : float;
  max_backoff_ms : float;
}

let default_retry_opts =
  { retries = 2; budget_ms = 5000; base_backoff_ms = 25.; max_backoff_ms = 1000. }

type session = {
  addr : Endpoint.addr;
  opts : retry_opts;
  prng : Prng.t;  (* jitter source; seeded per session *)
  mutable conn : t option;
  mutable retried : int;
}

let connect_session_addr ?(opts = default_retry_opts) ?retry_for addr =
  let conn = connect_addr ?retry_for addr in
  {
    addr;
    opts;
    prng = Prng.create (Hashtbl.hash (Endpoint.addr_to_string addr) lxor 0x5e551e);
    conn = Some conn;
    retried = 0;
  }

let connect_session ?opts ?retry_for ~socket () =
  connect_session_addr ?opts ?retry_for (Endpoint.Unix_path socket)

let close_session s =
  Option.iter close s.conn;
  s.conn <- None

let session_retries s = s.retried

let conn_of s =
  match s.conn with
  | Some c -> c
  | None ->
    let c = connect_addr s.addr in
    s.conn <- Some c;
    c

let drop_conn s =
  Option.iter close s.conn;
  s.conn <- None

let count_retry s =
  s.retried <- s.retried + 1;
  Atomic.incr retries_tally;
  Telemetry.incr c_retries

(* Decorrelated jitter (AWS architecture-blog variant): each sleep is
   uniform in [base, 3 * previous], capped, and clamped to whatever is
   left of the per-call budget so the last retry never oversleeps it.
   [floor_ms] is the server's retry hint ([retry_after_ms], e.g. from a
   breaker refusal): sleeping less would burn a retry on a refusal the
   server already promised, so the hint floors the jittered sleep —
   still clamped to the budget. *)
let backoff_sleep ?(floor_ms = 0.) s ~prev ~deadline =
  let o = s.opts in
  let base = o.base_backoff_ms /. 1e3 in
  let cap = o.max_backoff_ms /. 1e3 in
  let span = Float.max 0. ((3. *. prev) -. base) in
  let sleep = Float.min cap (base +. (Prng.float s.prng *. span)) in
  let sleep = Float.max sleep (floor_ms /. 1e3) in
  let remaining = deadline -. Unix.gettimeofday () in
  let sleep = Float.min sleep (Float.max 0. remaining) in
  if sleep > 0. then ignore (Unix.select [] [] [] sleep);
  sleep

let call_with_retry s (req : P.request) : P.reply =
  let deadline =
    Unix.gettimeofday () +. (float_of_int s.opts.budget_ms /. 1e3)
  in
  let idempotent = P.idempotent req.P.op in
  let may_retry attempt =
    idempotent && attempt < s.opts.retries
    && Unix.gettimeofday () < deadline
  in
  let rec go attempt prev_sleep =
    let outcome =
      match call (conn_of s) req with
      | reply -> `Reply reply
      | exception Disconnected msg ->
        (* the dead socket cannot carry the next attempt *)
        drop_conn s;
        `Dropped msg
    in
    match outcome with
    | `Reply ({ P.body = Ok _; _ } as reply) -> reply
    | `Reply ({ P.body = Error (code, msg); _ } as reply) ->
      if P.retryable code && may_retry attempt then begin
        count_retry s;
        let floor_ms =
          match P.retry_after_of_msg msg with
          | Some ms -> float_of_int ms
          | None -> 0.
        in
        let slept = backoff_sleep ~floor_ms s ~prev:prev_sleep ~deadline in
        go (attempt + 1) slept
      end
      else reply
    | `Dropped msg ->
      if may_retry attempt then begin
        count_retry s;
        let slept = backoff_sleep s ~prev:prev_sleep ~deadline in
        go (attempt + 1) slept
      end
      else raise (Disconnected msg)
  in
  go 0 0.
