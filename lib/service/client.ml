(* Blocking protocol client.  See client.mli. *)

module P = Protocol

type t = { fd : Unix.file_descr; pending : Buffer.t }

let connect ?(retry_for = 0.) ~socket () =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec attempt () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> { fd; pending = Buffer.create 256 }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        ignore (Unix.select [] [] [] 0.05);
        attempt ()
      end
      else
        failwith
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message err))
  in
  attempt ()

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let read_line c =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents c.pending in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.pending;
      Buffer.add_string c.pending (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None -> None
  in
  let rec loop () =
    match take_line () with
    | Some line -> line
    | None ->
      (match Unix.read c.fd chunk 0 (Bytes.length chunk) with
       | 0 -> failwith "connection closed by server"
       | n ->
         Buffer.add_subbytes c.pending chunk 0 n;
         loop ()
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

let call c (req : P.request) : P.reply =
  let line = P.encode_request req ^ "\n" in
  let rec write_all off =
    if off < String.length line then
      write_all (off + Unix.write_substring c.fd line off (String.length line - off))
  in
  write_all 0;
  match P.decode_reply (read_line c) with
  | Ok reply -> reply
  | Error msg -> failwith ("undecodable reply: " ^ msg)

let with_client ?retry_for ~socket f =
  let c = connect ?retry_for ~socket () in
  Fun.protect ~finally:(fun () -> close c) (fun () -> f c)
