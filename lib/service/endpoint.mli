(** Service endpoints: Unix-domain and TCP addresses, listeners, connects.

    The daemon historically spoke only over one Unix socket; scale-out
    added a TCP listener alongside it and a shard router that dials
    worker processes.  This module is the one place that knows how to
    bind, probe and dial either transport, so the server, the router and
    the client all share the same semantics:

    - {b Unix}: a stale socket file left by a crash is detected (probe
      connect) and replaced; a live one makes {!listen} fail.
    - {b TCP}: [SO_REUSEADDR] on listeners, [TCP_NODELAY] on every
      connected socket (request/reply round trips must not wait out
      Nagle), port [0] binds an ephemeral port reported by
      {!bound_port}. *)

type addr =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int  (** host (numeric or resolvable name), port *)

val addr_to_string : addr -> string
(** [path] for Unix sockets, ["host:port"] for TCP. *)

val parse_tcp : string -> (string * int, string) result
(** Parse a ["HOST:PORT"] endpoint spec (the [--tcp] flag).  The host may
    be a name or a numeric address; the port must be in [0, 65535]. *)

val probe_unix_socket : string -> [ `Absent | `Stale | `Live ]
(** Classify a Unix socket path with a probe connect: no file, a stale
    file left by a dead process (connection refused — safe to unlink and
    rebind), or a live listener.  {!listen} uses this to replace stale
    sockets; the shard supervisor uses it to clear a crashed
    predecessor's socket before respawning its replacement. *)

type listener

val listen : addr -> listener
(** Bind and listen.
    @raise Failure when a Unix path is already served by a live daemon,
    or a TCP endpoint cannot be bound (message names the address). *)

val listener_fd : listener -> Unix.file_descr

val bound_port : listener -> int option
(** The actual port of a TCP listener (useful after binding port 0);
    [None] for Unix listeners. *)

val close_listener : listener -> unit
(** Close the fd; additionally unlink a Unix listener's socket file. *)

val connect_fd : addr -> Unix.file_descr
(** Dial the address once ([TCP_NODELAY] set on TCP sockets).
    @raise Unix.Unix_error on failure (callers add retry/backoff). *)
