(* Bounded worker-thread scheduler.  See scheduler.mli. *)

module Telemetry = Icost_util.Telemetry
module Fault = Icost_util.Fault

let g_depth = Telemetry.gauge "service.queue_depth"

(* injection points: refuse an enqueue as if the queue were full; stall a
   worker briefly after dequeue (work is delayed, never lost) *)
let fp_enqueue = Fault.point "sched_reject"

let fp_dequeue = Fault.point "sched_delay"

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  queue_limit : int;
  mutable inflight : int;
  mutable draining : bool;
  mutable threads : Thread.t list;
  mutable drained : bool;
}

let set_depth_gauge t = Telemetry.set g_depth (float_of_int (Queue.length t.queue))

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.work_ready t.mutex
    done;
    if Queue.is_empty t.queue then begin
      (* draining and nothing left: this worker is done *)
      Mutex.unlock t.mutex
    end
    else begin
      let job = Queue.pop t.queue in
      t.inflight <- t.inflight + 1;
      set_depth_gauge t;
      Mutex.unlock t.mutex;
      if Fault.fire fp_dequeue then Thread.delay 0.002;
      (try job () with _ -> ());
      Mutex.lock t.mutex;
      t.inflight <- t.inflight - 1;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ~workers ~queue_limit =
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      queue_limit = max 1 queue_limit;
      inflight = 0;
      draining = false;
      threads = [];
      drained = false;
    }
  in
  t.threads <- List.init (max 1 workers) (fun _ -> Thread.create worker_loop t);
  t

let submit t job =
  Mutex.lock t.mutex;
  let verdict =
    if t.draining then `Draining
    else if Queue.length t.queue >= t.queue_limit || Fault.fire fp_enqueue then
      `Overloaded
    else begin
      Queue.add job t.queue;
      set_depth_gauge t;
      Condition.signal t.work_ready;
      `Accepted
    end
  in
  Mutex.unlock t.mutex;
  verdict

let queue_depth t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let inflight t =
  Mutex.lock t.mutex;
  let n = t.inflight in
  Mutex.unlock t.mutex;
  n

let drain t =
  Mutex.lock t.mutex;
  t.draining <- true;
  let already = t.drained in
  t.drained <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  if not already then List.iter Thread.join t.threads
