(** Incremental splitter for newline-delimited streams.

    Both wire readers (the client and the acceptor) receive arbitrary
    chunks and must hand out '\n'-terminated lines.  Splitting each chunk
    as it arrives keeps reading linear in the bytes received; the naive
    alternative — appending to one growing buffer and re-scanning it per
    chunk — is quadratic in the number of chunks, which is exactly the
    shape of a large pipelined batch reply. *)

type t

val create : unit -> t

val feed : t -> bytes -> len:int -> unit
(** Consume [len] bytes from the front of the chunk: complete lines
    (without their terminator) join the queue in arrival order, an
    unterminated tail is kept for the next feed. *)

val pop : t -> string option
(** Oldest completed line not yet consumed, or [None] when only an
    unterminated tail (or nothing) is buffered. *)

val pending_bytes : t -> int
(** Size of the unterminated tail — the basis for the acceptor's
    oversized-line bound: a line is over-long only once this many bytes
    arrive without a newline. *)
