(* Resident analysis daemon.  See server.mli for the architecture. *)

module Telemetry = Icost_util.Telemetry
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Stream_core = Icost_stream.Core
module Runner = Icost_experiments.Runner
module Texport = Icost_report.Telemetry_export
module Sparam = Icost_sensitivity.Param
module Sweep = Icost_sensitivity.Sweep
module P = Protocol

type opts = {
  socket : string;
  tcp : (string * int) option;
  workers : int;
  queue_limit : int;
  cache_cap : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  mem_high_mb : int;
  cache_dir : string option;
  handle_signals : bool;
  on_ready : (unit -> unit) option;
  on_tcp_port : (int -> unit) option;
}

let default_opts =
  {
    socket = "icostd.sock";
    tcp = None;
    workers = 4;
    queue_limit = 64;
    cache_cap = 8;
    breaker_threshold = 3;
    breaker_cooldown = 5.;
    mem_high_mb = 4096;
    cache_dir = None;
    handle_signals = true;
    on_ready = None;
    on_tcp_port = None;
  }

type stats = { uptime_s : float; requests_total : int }

(* a request failed validation before any analysis ran *)
exception Bad of string

(* a request's deadline elapsed (checked between oracle evaluations) *)
exception Deadline

(* a sweep completed but at least one grid point reported a per-point
   error: the body is a valid success reply, yet it must bypass the
   reply/frame memos — point failures are transient by design (injected
   faults, mid-sweep deadlines), so re-asking must re-evaluate *)
exception Partial_sweep of P.result_body

(* A session keeps the full establishment record (not just the oracle):
   the memo handle and session key are what [Snapshot.persist] needs to
   re-save a grown memo table after each successful analysis. *)
type session = {
  est : Snapshot.established;
  skey : string;
  gstats : P.result_body option Atomic.t;
      (* memoized graph-stats reply: the stats are a pure function of the
         established session, and recomputing them walks the whole graph
         (critical_length is a full topological pass), so warm queries
         would otherwise pay a per-item cost proportional to the trace *)
}

type t = {
  opts : opts;
  started : float;
  sched : Scheduler.t;
  prep_cache : Runner.prepared Cache.t;
  baseline_cache : Ooo.result Cache.t;
  session_cache : session Cache.t;
  reply_cache : string Cache.t;
      (* encoded result objects keyed by the canonical op encoding: every
         analysis op is a pure function of its target, so a repeated query
         can be answered from the wire bytes of the first — without even
         re-encoding the floats.  Failures are never cached (the builder
         raises), and the breaker/fault/deadline checks run before the
         lookup so supervision semantics are unchanged on hits. *)
  sweep_cache : float Cache.t;
      (* priced sweep grid points keyed by prep key + config digest of
         the perturbed point + engine (see [sweep_point_key]): the unit
         of reuse is one (workload window, config point) evaluation, so
         two sweeps over overlapping grids — or one sweep re-issued with
         a wider range — only pay for the new points.  Values are bare
         cycle counts, so the cap can be generous. *)
  frame_cache : string Cache.t;
      (* the same idea one level up: encoded result fragments of whole
         frames, keyed by the frame text minus its request id
         ({!P.split_frame_id}).  A hit skips decoding, per-item cache
         lookups and reply assembly entirely.  Populated only by frames
         whose every item is an analysis op that succeeded; bypassed
         while faults are armed or the server is draining, and purged
         whenever supervision charges a failure, so breaker/fault
         semantics are identical to the uncached path. *)
  requests : int Atomic.t;
  shutdown_requested : bool Atomic.t;
  breaker : Breaker.t;
  degraded_until : float Atomic.t;  (* monotonic-ish; 0. means healthy *)
  shed_tally : int Atomic.t;  (* cache entries shed under pressure *)
  (* snapshot-store outcomes; server-local because the Telemetry
     counters are no-ops unless a sink is enabled *)
  snap_hits : int Atomic.t;
  snap_misses : int Atomic.t;
  snap_rejects : int Atomic.t;
  (* sweep tallies for the status op, same rationale *)
  sweep_points : int Atomic.t;
  sweep_hits : int Atomic.t;
  acc : Acceptor.t;  (* accept loop + connection bookkeeping + ordered writes *)
}

let c_requests = Telemetry.counter "service.requests"
let c_ok = Telemetry.counter "service.replies_ok"
let c_err = Telemetry.counter "service.replies_error"
let c_shed = Telemetry.counter "service.shed"

(* injection points threaded through every seam of the request path; each
   is a no-op single branch unless armed via ICOST_FAULTS / --faults (the
   transport points — accept_reset, conn_reset, write_short — live in
   Acceptor, shared with the shard router) *)
let fp_decode = Fault.point "decode_fail"
let fp_worker = Fault.point "worker_raise"
let fp_deadline = Fault.point "deadline_expire"

let fp_shard_exit = Fault.point "shard_exit"
(* simulates kill -9 mid-request: the process vanishes without draining,
   flushing or unlinking its socket — the supervisor's job is to make
   this invisible to clients.  Only analysis traffic advances the hit
   count: the supervisor's own health probes (and other control frames)
   must not perturb a deterministic @K schedule. *)

let has_sub line needle =
  let n = String.length line and m = String.length needle in
  let i = ref 0 and found = ref false in
  while (not !found) && !i + m <= n do
    let j = ref 0 in
    while !j < m && line.[!i + !j] = needle.[!j] do
      incr j
    done;
    if !j = m then found := true else incr i
  done;
  !found

let control_frame line =
  has_sub line "\"op\":\"health\""
  || has_sub line "\"op\":\"status\""
  || has_sub line "\"op\":\"drain\""
  || has_sub line "\"op\":\"shutdown\""

(* ---------- request validation ---------- *)

let config_of_variant = function
  | "base" -> Config.default
  | "dl1" -> Config.loop_dl1
  | "wakeup" -> Config.loop_wakeup
  | "bmisp" -> Config.loop_bmisp
  | other -> raise (Bad (Printf.sprintf "unknown variant %S" other))

let kind_of_engine = function
  | "graph" | "fullgraph" -> Runner.Fullgraph
  | "multisim" -> Runner.Multisim
  | "profiler" -> Runner.Profiler
  | "stream" -> Runner.Streamed
  | other -> raise (Bad (Printf.sprintf "unknown engine %S" other))

let workload_of_name name =
  match Workload.find name with
  | Some w -> w
  | None -> raise (Bad (Printf.sprintf "unknown workload %S" name))

let category_of_name name =
  match Category.of_name name with
  | Some c -> c
  | None -> raise (Bad (Printf.sprintf "unknown category %S" name))

let set_of_spec spec =
  String.split_on_char ',' spec
  |> List.map (fun n -> category_of_name (String.trim n))
  |> Category.Set.of_list

(* ---------- session construction (the cached preparation path) ---------- *)

(* Cache keys nest: prep ⊂ baseline ⊂ session, so a cache hit at any
   layer implies agreement on everything the layer below depends on.  The
   seed only reaches the profiler's sampling PRNG, so non-profiler
   sessions normalize it away rather than splitting the cache. *)
let prep_key (tg : P.target) =
  Printf.sprintf "%s|w%d|m%d" tg.workload tg.warmup tg.measure

(* The four variant constants cover every non-sweep request, so their
   digests are precomputed once — the digest sits on the per-item hot
   path twice (breaker key + session lookup).  Anything else (sweep
   points carry fresh perturbed configs) falls through to a real
   marshalled digest: the digest covers every field of the record, so
   any swept parameter separates the keys, and unknown configs must not
   be memoized by physical identity or a long sweep would grow the memo
   without bound. *)
let cfg_digest =
  let known =
    List.map
      (fun c -> (c, Texport.digest c))
      [ Config.default; Config.loop_dl1; Config.loop_wakeup; Config.loop_bmisp ]
  in
  fun cfg ->
    match List.assq_opt cfg known with
    | Some d -> d
    | None -> Texport.digest cfg

let baseline_key (tg : P.target) cfg =
  Printf.sprintf "%s|%s" (prep_key tg) (cfg_digest cfg)

(* One priced grid point of a sweep: workload window + the digest of the
   whole perturbed config + pricing engine.  Deliberately *not* derived
   from the variant name — two sweep points must never alias each other
   (or a prep/baseline entry) even when every human-visible field
   matches, so the digest does the separating. *)
let sweep_point_key (tg : P.target) cfg ~engine =
  Printf.sprintf "%s|%s|%s" (prep_key tg) (cfg_digest cfg) engine

let session_key (tg : P.target) cfg kind =
  let seed = match kind with Runner.Profiler -> tg.seed | _ -> 0 in
  Printf.sprintf "%s|%s|s%d" (baseline_key tg cfg)
    (Runner.oracle_kind_name kind)
    seed

let prepared_of t (tg : P.target) =
  let w = workload_of_name tg.workload in
  let settings =
    { Runner.warmup = tg.warmup; measure = tg.measure; benches = [ tg.workload ] }
  in
  Cache.find_or_add t.prep_cache (prep_key tg) (fun () ->
      Runner.prepare settings w)

let session_of t (tg : P.target) : Runner.prepared * session =
  let cfg = config_of_variant tg.variant in
  let kind = kind_of_engine tg.engine in
  let skey = session_key tg cfg kind in
  let baseline_of prepared =
    Cache.find_or_add t.baseline_cache (baseline_key tg cfg) (fun () ->
        Runner.baseline_run cfg prepared)
  in
  match t.opts.cache_dir with
  | None ->
    (* no snapshot store: resolve preparation before the session lookup,
       keeping the request path (and cache tallies) of a store-less
       server exactly as they were *)
    let prepared = prepared_of t tg in
    let session =
      Cache.find_or_add t.session_cache skey (fun () ->
          let est =
            Snapshot.establish ~key:skey ~kind ~cfg ~seed:tg.seed
              ~prepare:(fun () -> prepared)
              ~baseline:(fun _ -> baseline_of prepared)
              ()
          in
          { est; skey; gstats = Atomic.make None })
    in
    (prepared, session)
  | Some dir ->
    (* snapshot store on: defer preparation into [establish] so a disk
       hit skips the prepare/baseline pipeline entirely, then seed the
       prep cache from the result so later requests on other variants
       and engines still share it *)
    let session =
      Cache.find_or_add t.session_cache skey (fun () ->
          let est =
            Snapshot.establish ~cache_dir:dir ~key:skey ~kind ~cfg
              ~seed:tg.seed
              ~prepare:(fun () -> prepared_of t tg)
              ~baseline:baseline_of ()
          in
          (match est.Snapshot.est_disk with
           | `Hit -> Atomic.incr t.snap_hits
           | `Miss -> Atomic.incr t.snap_misses
           | `Reject -> Atomic.incr t.snap_rejects
           | `Off -> ());
          { est; skey; gstats = Atomic.make None })
    in
    let prepared =
      Cache.find_or_add t.prep_cache (prep_key tg) (fun () ->
          session.est.Snapshot.est_prepared)
    in
    (prepared, session)

(* Re-save the session's snapshot when an analysis grew its memo table,
   so the next cold start replays those subsets from disk. *)
let maybe_persist t (session : session) =
  Option.iter
    (fun dir -> Snapshot.persist ~dir ~key:session.skey session.est)
    t.opts.cache_dir

(* ---------- analysis ---------- *)

let check_deadline = function
  | None -> ()
  | Some t -> if Fault.fire fp_deadline || Unix.gettimeofday () > t then raise Deadline

(* The guard makes long queries cooperatively cancellable: Breakdown and
   icost evaluations are loops over subset queries, so the deadline is
   honored between (not within) individual oracle evaluations. *)
let guard deadline (oracle : Cost.oracle) : Cost.oracle =
  {
    Cost.point =
      (fun s ->
        check_deadline deadline;
        oracle.Cost.point s);
    batch =
      Option.map
        (fun b sets ->
          check_deadline deadline;
          b sets)
        oracle.Cost.batch;
  }

(* Render a sweep engine result into wire shape, mapping each failed
   point's exception to the same typed codes a failed batch item gets. *)
let sweep_body (res : Sweep.result) : P.result_body =
  let code_of = function
    | Deadline -> (P.Deadline_exceeded, "deadline elapsed")
    | Bad msg -> (P.Bad_request, msg)
    | Fault.Injected p ->
      (P.Internal, Printf.sprintf "injected fault at point %S" p)
    | Failure m | Invalid_argument m -> (P.Internal, m)
    | e -> (P.Internal, Printexc.to_string e)
  in
  let curve (cv : Sweep.curve) =
    {
      P.curve_param = cv.Sweep.cv_param.Sparam.p_name;
      curve_base = cv.Sweep.cv_base_value;
      curve_knee =
        Option.map
          (fun (k : Sweep.knee) ->
            {
              P.kn_value = k.Sweep.kn_value;
              kn_marginal = k.Sweep.kn_marginal;
              kn_saturated = k.Sweep.kn_saturated;
            })
          cv.Sweep.cv_knee;
      curve_points =
        List.map
          (fun (pt : Sweep.point) ->
            match pt.Sweep.pt_outcome with
            | Ok cycles ->
              let delta =
                Option.value ~default:0.
                  (List.assoc_opt pt.Sweep.pt_value cv.Sweep.cv_deltas)
              in
              { P.sp_value = pt.Sweep.pt_value; sp_outcome = Ok (cycles, delta) }
            | Error e ->
              { P.sp_value = pt.Sweep.pt_value; sp_outcome = Error (code_of e) })
          cv.Sweep.cv_points;
    }
  in
  P.R_sweep
    { baseline = res.Sweep.sw_baseline;
      curves = List.map curve res.Sweep.sw_curves }

let analyze t ~deadline (op : P.op) : P.result_body =
  match op with
  | P.Breakdown { target; focus } ->
    let focus_cat = category_of_name focus in
    let _, session = session_of t target in
    check_deadline deadline;
    let bd =
      Breakdown.focus
        ~oracle:(guard deadline session.est.Snapshot.est_oracle)
        ~focus_cat
    in
    maybe_persist t session;
    P.R_breakdown
      {
        baseline = bd.baseline_cycles;
        rows =
          List.map
            (fun (r : Breakdown.row) ->
              {
                P.row_label = Breakdown.row_label r;
                row_percent = r.percent;
                row_cycles = r.cycles;
              })
            bd.rows;
      }
  | P.Icost { target; sets } ->
    let specs = List.map set_of_spec sets in
    let _, session = session_of t target in
    check_deadline deadline;
    let o = guard deadline session.est.Snapshot.est_oracle in
    let base = Cost.query o Category.Set.empty in
    let rows =
      List.map
        (fun set ->
          {
            P.set_name = Category.Set.name set;
            set_cost = Cost.cost o set;
            set_icost = Cost.icost_ie o set;
            set_class =
              Cost.interaction_name (Cost.classify (Cost.icost_ie o set));
          })
        specs
    in
    maybe_persist t session;
    P.R_icost { baseline = base; rows }
  | P.Graph_stats { target } ->
    let target = { target with P.engine = "graph" } in
    let prepared, session = session_of t target in
    check_deadline deadline;
    (match Atomic.get session.gstats with
     | Some body -> body
     | None ->
       (match session.est.Snapshot.est_graph () with
        | Some g ->
          let body =
            P.R_graph_stats
              {
                instrs = Trace.length prepared.trace;
                nodes = Graph.num_nodes g;
                edges = Graph.num_edges g;
                critical_path = Graph.critical_length g;
              }
          in
          (* racing threads compute the same deterministic value, so the
             last write winning is harmless *)
          Atomic.set session.gstats (Some body);
          body
        | None -> raise (Bad "graph engine produced no graph")))
  | P.Sweep { target; params } ->
    (* Per-point evaluation reuses the target's prepared execution (the
       prep cache) and goes through the digest-keyed sweep-point cache;
       the deadline is honored between points (an expired point answers
       deadline_exceeded individually, like a batch item after expiry).
       The baseline point failing is fatal and propagates — the curves
       are meaningless without their reference. *)
    let cfg = config_of_variant target.variant in
    let engine =
      match Sweep.engine_of_string target.engine with
      | Ok e -> e
      | Error m -> raise (Bad m)
    in
    let axes =
      match Sparam.parse_axes params with
      | Ok a -> a
      | Error m -> raise (Bad m)
    in
    if List.length axes > P.max_sweep_axes then
      raise
        (Bad
           (Printf.sprintf "sweep exceeds %d axes (%d)" P.max_sweep_axes
              (List.length axes)));
    let prepared = prepared_of t target in
    check_deadline deadline;
    let ename = Sweep.engine_name engine in
    let point_cache cfg_pt build =
      let fresh = ref false in
      let v =
        Cache.find_or_add t.sweep_cache
          (sweep_point_key target cfg_pt ~engine:ename)
          (fun () ->
            fresh := true;
            check_deadline deadline;
            build ())
      in
      (v, not !fresh)
    in
    let res = Sweep.run ~point_cache ~engine ~cfg ~prepared ~axes () in
    ignore (Atomic.fetch_and_add t.sweep_points res.Sweep.sw_points);
    ignore (Atomic.fetch_and_add t.sweep_hits res.Sweep.sw_cache_hits);
    let body = sweep_body res in
    let clean =
      List.for_all
        (fun cv ->
          List.for_all
            (fun pt -> Result.is_ok pt.Sweep.pt_outcome)
            cv.Sweep.cv_points)
        res.Sweep.sw_curves
    in
    if clean then body else raise (Partial_sweep body)
  | P.Batch _ | P.Status | P.Health | P.Drain | P.Shutdown ->
    assert false (* batch items are dispatched individually; the rest are
                    handled inline, never queued *)

(* ---------- health & graceful degradation ---------- *)

let health_of t =
  if Atomic.get t.shutdown_requested then "draining"
  else if Unix.gettimeofday () < Atomic.get t.degraded_until then "degraded"
  else "ok"

(* High-water checks run on the connection thread before each analysis is
   queued.  Tripping either (queue nearly full, or the OCaml heap past the
   configured budget) sheds the coldest session/baseline entries — the
   expensive state — and holds [health] at "degraded" for a short window so
   clients polling [health] see the pressure even after it clears. *)
let check_pressure t =
  let queue_high = max 1 (3 * t.opts.queue_limit / 4) in
  let heap_mb =
    (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / (1024 * 1024)
  in
  if Scheduler.queue_depth t.sched >= queue_high || heap_mb >= t.opts.mem_high_mb
  then begin
    Atomic.set t.degraded_until (Unix.gettimeofday () +. 2.0);
    let keep = t.opts.cache_cap / 2 in
    let shed =
      Cache.trim t.session_cache ~keep
      + Cache.trim t.baseline_cache ~keep
      + Cache.trim t.reply_cache ~keep:(16 * t.opts.cache_cap)
      + Cache.trim t.frame_cache ~keep:(4 * t.opts.cache_cap)
      + Cache.trim t.sweep_cache ~keep:(32 * t.opts.cache_cap)
    in
    if shed > 0 then begin
      ignore (Atomic.fetch_and_add t.shed_tally shed);
      Telemetry.add c_shed shed
    end
  end

(* The circuit-breaker key is the session cache key: failures are tracked
   per analysis target.  Validation errors surface from inside the job (as
   Bad_request) rather than here, so an unknown name yields [None]. *)
let breaker_key_of (op : P.op) : string option =
  let of_target (tg : P.target) =
    match
      (config_of_variant tg.variant, kind_of_engine tg.engine)
    with
    | cfg, kind -> Some (session_key tg cfg kind)
    | exception Bad _ -> None
  in
  match op with
  | P.Breakdown { target; _ } | P.Icost { target; _ } | P.Sweep { target; _ } ->
    of_target target
  | P.Graph_stats { target } -> of_target { target with P.engine = "graph" }
  | P.Batch _ | P.Status | P.Health | P.Drain | P.Shutdown -> None

let status_body t : P.status_body =
  let sum_caches f =
    f (Cache.stats t.prep_cache)
    + f (Cache.stats t.baseline_cache)
    + f (Cache.stats t.session_cache)
    + f (Cache.stats t.sweep_cache)
    + f (Cache.stats t.reply_cache)
  in
  {
    P.uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests;
    inflight = Scheduler.inflight t.sched;
    queue_depth = Scheduler.queue_depth t.sched;
    sessions = Cache.length t.session_cache;
    cache_hits = sum_caches (fun (s : Cache.stats) -> s.hits);
    cache_misses = sum_caches (fun (s : Cache.stats) -> s.misses);
    cache_evictions = sum_caches (fun (s : Cache.stats) -> s.evictions);
    snapshot_hits = Atomic.get t.snap_hits;
    snapshot_misses = Atomic.get t.snap_misses;
    snapshot_rejects = Atomic.get t.snap_rejects;
    sweep_points = Atomic.get t.sweep_points;
    sweep_cache_hits = Atomic.get t.sweep_hits;
    segments = Stream_core.segments_total ();
    stream_peak_mb = Stream_core.peak_mb_hwm ();
    pool_jobs = Pool.jobs ();
    shards = 0;
    respawns = 0;
    failovers = 0;
    health = health_of t;
    draining = Atomic.get t.shutdown_requested;
  }

let health_body t : P.health_body =
  {
    P.h_health = health_of t;
    h_breakers_open = Breaker.open_count t.breaker;
    h_shed = Atomic.get t.shed_tally;
  }

(* ---------- wire I/O ---------- *)

(* Replies go through the acceptor's sequence-ordered writer: the reader
   assigns each request line a sequence slot, and a reply — whether
   written inline or by a worker thread finishing out of order — reaches
   the wire only after every earlier slot, giving pipelined clients
   replies in request order. *)
let write_reply (c : Acceptor.conn) ~seq (reply : P.reply) =
  Acceptor.write_line c ~seq (P.encode_reply reply ^ "\n");
  match reply.P.body with
  | Ok _ -> Telemetry.incr c_ok
  | Error _ -> Telemetry.incr c_err

(* success reply assembled from a pre-encoded result fragment *)
let write_ok_line (c : Acceptor.conn) ~seq (line : string) =
  Acceptor.write_line c ~seq (line ^ "\n");
  Telemetry.incr c_ok

let error_reply id code msg = { P.rep_id = id; body = Error (code, msg) }

(* ---------- request dispatch ---------- *)

let initiate_shutdown t =
  if not (Atomic.exchange t.shutdown_requested true) then
    Acceptor.request_stop t.acc

let exn_message = function
  | Failure m -> m
  | Invalid_argument m -> m
  | Fault.Injected p -> Printf.sprintf "injected fault at point %S" p
  | e -> Printexc.to_string e

(* Run one analysis op under full supervision (breaker check, worker
   fault point, session eviction + breaker charge on raise) and return a
   typed outcome as an already-encoded result object.  Shared by the
   single-op job and each batch item, so a batch exercises exactly the
   same failure machinery per item.

   Analysis results go through the reply cache: the checks (deadline,
   breaker, worker fault point) run before the lookup, so an expired or
   breaker-blocked request is refused even when the answer is cached,
   and armed faults keep firing per item.  Only successful results are
   stored — a raising builder leaves the key absent.

   The second component of the return value says whether the result may
   be memoized one level up (the frame cache): true everywhere except a
   sweep that carries per-point errors, whose failures are transient and
   must stay re-executable. *)
let exec_op t ~deadline (op : P.op) :
    (string, P.error_code * string) result * bool =
  match op with
  | P.Status -> (Ok (P.encode_result (P.R_status (status_body t))), true)
  | P.Health -> (Ok (P.encode_result (P.R_health (health_body t))), true)
  | P.Shutdown ->
    (Error (P.Bad_request, "shutdown is not allowed inside a batch"), true)
  | P.Drain ->
    (Error (P.Bad_request, "drain is not allowed inside a batch"), true)
  | P.Batch _ -> (Error (P.Bad_request, "batch items cannot nest"), true)
  | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op ->
    let skey = breaker_key_of op in
    let breaker_open =
      match skey with
      | Some k -> Breaker.check t.breaker k = `Open
      | None -> false
    in
    if breaker_open then
      ( Error
          ( P.Unavailable,
            "circuit breaker open for this target; retry after cooldown" ),
        true )
    else begin
      match
        check_deadline deadline;
        Fault.trip fp_worker;
        Cache.find_or_add t.reply_cache (P.encode_op op) (fun () ->
            P.encode_result (analyze t ~deadline op))
      with
      | encoded ->
        Option.iter (fun k -> Breaker.success t.breaker k) skey;
        (Ok encoded, true)
      | exception Partial_sweep body ->
        (* a degraded-but-valid answer: success to the client and the
           breaker, invisible to the reply and frame memos *)
        Option.iter (fun k -> Breaker.success t.breaker k) skey;
        (Ok (P.encode_result body), false)
      | exception Bad msg -> (Error (P.Bad_request, msg), true)
      | exception Deadline ->
        (Error (P.Deadline_exceeded, "deadline elapsed"), true)
      | exception e ->
        (* supervision: the raise must not poison later requests — evict
           the session so a retry rebuilds it, and charge the failure to
           this target's breaker *)
        Option.iter
          (fun k ->
            ignore (Cache.remove t.session_cache k);
            Breaker.failure t.breaker k)
          skey;
        (* a charged failure may have tripped this target's breaker:
           drop every memoized frame so no frame naming the target can
           dodge the breaker's fail-fast answer.  (Frames cannot be
           purged per-target — the key is opaque text — and failures
           are rare enough that a full drop is cheap.) *)
        ignore (Cache.trim t.frame_cache ~keep:0);
        (Error (P.Internal, exn_message e), true)
    end

let span_attrs (op : P.op) =
  match op with
  | P.Breakdown { target; _ } | P.Icost { target; _ } | P.Graph_stats { target }
  | P.Sweep { target; _ } ->
    [
      ("op", (match op with
              | P.Breakdown _ -> "breakdown"
              | P.Icost _ -> "icost"
              | P.Sweep _ -> "sweep"
              | _ -> "graph-stats"));
      ("workload", target.P.workload);
      ("engine", target.P.engine);
    ]
  | P.Batch { ops } ->
    [ ("op", "batch"); ("items", string_of_int (List.length ops)) ]
  | P.Status | P.Health | P.Drain | P.Shutdown -> []

exception Frame_miss

(* Probe the frame cache without populating: the raising builder leaves
   the key absent.  [None] when the frame is not in canonical form or
   the fast path must step aside (armed faults change per-item outcomes;
   a draining server must answer [Shutting_down]). *)
let frame_fast_path t (line : string) : (int * string * string option) option =
  match P.split_frame_id line with
  | None -> None
  | Some (id, pos) ->
    if Fault.enabled () || Atomic.get t.shutdown_requested then None
    else begin
      let key = String.sub line pos (String.length line - pos) in
      match Cache.find_or_add t.frame_cache key (fun () -> raise Frame_miss) with
      | frag -> Some (id, key, Some frag)
      | exception Frame_miss -> Some (id, key, None)
    end

let handle_decoded t (c : Acceptor.conn) ~seq ~fkey (line : string) =
  let decoded =
    if Fault.fire fp_decode then Error "injected decode fault"
    else P.decode_request line
  in
  match decoded with
  | Error msg -> write_reply c ~seq (error_reply 0 P.Bad_request msg)
  | Ok req ->
    let id = req.P.req_id in
    (match req.P.op with
     | P.Status ->
       write_reply c ~seq { P.rep_id = id; body = Ok (P.R_status (status_body t)) }
     | P.Health ->
       write_reply c ~seq { P.rep_id = id; body = Ok (P.R_health (health_body t)) }
     | P.Shutdown ->
       write_reply c ~seq { P.rep_id = id; body = Ok P.R_shutdown };
       initiate_shutdown t
     | P.Drain ->
       (* drain-for-restart: finish in-flight work and exit.  Snapshots
          are already on disk (persisted after every analysis), so the
          ack can go out before the shutdown sequence starts.  A
          standalone server restarts nothing itself — [restarted] counts
          shards, and only the router has those. *)
       write_reply c ~seq { P.rep_id = id; body = Ok (P.R_drain { restarted = 0 }) };
       initiate_shutdown t
     | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _ | P.Batch _) as
       op ->
       check_pressure t;
       let deadline =
         Option.map
           (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1e3))
           req.P.deadline_ms
       in
       (* One scheduler slot per frame — a batch amortizes queueing the
          way it amortizes decoding.  The shared deadline is checked
          between items, so items after expiry answer deadline_exceeded
          individually instead of losing the whole frame. *)
       (* Memoize the whole frame's result fragment when every item is a
          pure analysis query that succeeded (status/health are
          time-varying; failures must stay re-executable).  The armed-
          faults/draining bypass happened before [fkey] was produced. *)
       let memo_frame frag =
         match fkey with
         | None -> ()
         | Some key ->
           ignore (Cache.find_or_add t.frame_cache key (fun () -> frag))
       in
       let analysis_only ops =
         List.for_all
           (function
             | P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _ -> true
             | _ -> false)
           ops
       in
       let job () =
         Telemetry.with_span "service.request" ~attrs:(span_attrs op)
         @@ fun () ->
         match op with
         | P.Batch { ops } ->
           let outcomes = List.map (fun o -> exec_op t ~deadline o) ops in
           let results = List.map fst outcomes in
           let frag = P.encode_batch_result ~results in
           if
             analysis_only ops
             && List.for_all Result.is_ok results
             && List.for_all snd outcomes
           then memo_frame frag;
           write_ok_line c ~seq (P.encode_ok_reply ~rep_id:id ~result:frag)
         | op ->
           (match exec_op t ~deadline op with
            | Ok result, memoizable ->
              if memoizable then memo_frame result;
              write_ok_line c ~seq (P.encode_ok_reply ~rep_id:id ~result)
            | Error (code, msg), _ ->
              write_reply c ~seq (error_reply id code msg))
       in
       (match Scheduler.submit t.sched job with
        | `Accepted -> ()
        | `Overloaded ->
          write_reply c ~seq
            (error_reply id P.Overloaded
               (Printf.sprintf "queue full (limit %d); retry later"
                  t.opts.queue_limit))
        | `Draining ->
          write_reply c ~seq
            (error_reply id P.Shutting_down "server is draining")))

let handle_line t (c : Acceptor.conn) ~seq (line : string) =
  if Fault.enabled () && (not (control_frame line)) && Fault.fire fp_shard_exit
  then Unix._exit 70;
  Atomic.incr t.requests;
  Telemetry.incr c_requests;
  match frame_fast_path t line with
  | Some (id, _, Some frag) ->
    write_ok_line c ~seq (P.encode_ok_reply ~rep_id:id ~result:frag)
  | fast ->
    let fkey = match fast with Some (_, key, None) -> Some key | _ -> None in
    handle_decoded t c ~seq ~fkey line

let conn_loop t (c : Acceptor.conn) =
  let rec loop () =
    match Acceptor.read_line_bounded c ~max:P.max_request_bytes with
    | `Eof -> ()
    | `Too_long ->
      (* the stream cannot be re-synchronized after an oversized request:
         answer with a typed error, then drop the connection *)
      write_reply c ~seq:(Acceptor.next_seq c)
        (error_reply 0 P.Bad_request
           (Printf.sprintf "request exceeds %d bytes" P.max_request_bytes))
    | `Line line ->
      if String.trim line <> "" then
        handle_line t c ~seq:(Acceptor.next_seq c) line;
      loop ()
  in
  loop ()

(* ---------- lifecycle ---------- *)

let run (opts : opts) : stats =
  (* a client that disconnects mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* validate the endpoints before spawning any worker threads, so an
     "already served" / "cannot listen" failure leaks nothing *)
  let unix_listener = Endpoint.listen (Endpoint.Unix_path opts.socket) in
  let tcp_listener =
    match opts.tcp with
    | None -> None
    | Some (host, port) -> (
        match Endpoint.listen (Endpoint.Tcp (host, port)) with
        | l ->
          Option.iter
            (fun f -> Option.iter f (Endpoint.bound_port l))
            opts.on_tcp_port;
          Some l
        | exception e ->
          Endpoint.close_listener unix_listener;
          raise e)
  in
  let listeners =
    unix_listener :: (match tcp_listener with None -> [] | Some l -> [ l ])
  in
  let t =
    {
      opts;
      started = Unix.gettimeofday ();
      sched = Scheduler.create ~workers:opts.workers ~queue_limit:opts.queue_limit;
      prep_cache = Cache.create ~name:"prep" ~cap:opts.cache_cap;
      baseline_cache = Cache.create ~name:"baseline" ~cap:opts.cache_cap;
      session_cache = Cache.create ~name:"session" ~cap:opts.cache_cap;
      (* encoded replies are ~1 KB each, so the cap can be far more
         generous than for sessions *)
      reply_cache = Cache.create ~name:"replies" ~cap:(32 * opts.cache_cap);
      frame_cache = Cache.create ~name:"frames" ~cap:(8 * opts.cache_cap);
      (* bare floats: even a generous cap costs next to nothing *)
      sweep_cache = Cache.create ~name:"sweep" ~cap:(64 * opts.cache_cap);
      requests = Atomic.make 0;
      shutdown_requested = Atomic.make false;
      breaker =
        Breaker.create ~threshold:opts.breaker_threshold
          ~cooldown:opts.breaker_cooldown ();
      degraded_until = Atomic.make 0.;
      shed_tally = Atomic.make 0;
      snap_hits = Atomic.make 0;
      snap_misses = Atomic.make 0;
      snap_rejects = Atomic.make 0;
      sweep_points = Atomic.make 0;
      sweep_hits = Atomic.make 0;
      acc = Acceptor.create listeners;
    }
  in
  if opts.handle_signals then begin
    let h = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ())
  end;
  Option.iter (fun f -> f ()) opts.on_ready;
  Acceptor.serve t.acc ~on_conn:(conn_loop t);
  (* --- graceful shutdown: listeners are closed; drain, then dismantle --- *)
  Scheduler.drain t.sched;
  Acceptor.finish t.acc;
  { uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests }
