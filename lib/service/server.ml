(* Resident analysis daemon.  See server.mli for the architecture. *)

module Telemetry = Icost_util.Telemetry
module Pool = Icost_util.Pool
module Fault = Icost_util.Fault
module Config = Icost_uarch.Config
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Breakdown = Icost_core.Breakdown
module Trace = Icost_isa.Trace
module Ooo = Icost_sim.Ooo
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Sampler = Icost_profiler.Sampler
module Workload = Icost_workloads.Workload
module Runner = Icost_experiments.Runner
module Texport = Icost_report.Telemetry_export
module P = Protocol

type opts = {
  socket : string;
  workers : int;
  queue_limit : int;
  cache_cap : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  mem_high_mb : int;
  cache_dir : string option;
  handle_signals : bool;
  on_ready : (unit -> unit) option;
}

let default_opts =
  {
    socket = "icostd.sock";
    workers = 4;
    queue_limit = 64;
    cache_cap = 8;
    breaker_threshold = 3;
    breaker_cooldown = 5.;
    mem_high_mb = 4096;
    cache_dir = None;
    handle_signals = true;
    on_ready = None;
  }

type stats = { uptime_s : float; requests_total : int }

(* a request failed validation before any analysis ran *)
exception Bad of string

(* a request's deadline elapsed (checked between oracle evaluations) *)
exception Deadline

(* A session keeps the full establishment record (not just the oracle):
   the memo handle and session key are what [Snapshot.persist] needs to
   re-save a grown memo table after each successful analysis. *)
type session = { est : Snapshot.established; skey : string }

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t;  (* one writer at a time per connection *)
  pending : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  mutable alive : bool;
}

type t = {
  opts : opts;
  started : float;
  sched : Scheduler.t;
  prep_cache : Runner.prepared Cache.t;
  baseline_cache : Ooo.result Cache.t;
  session_cache : session Cache.t;
  requests : int Atomic.t;
  shutdown_requested : bool Atomic.t;
  breaker : Breaker.t;
  degraded_until : float Atomic.t;  (* monotonic-ish; 0. means healthy *)
  shed_tally : int Atomic.t;  (* cache entries shed under pressure *)
  (* snapshot-store outcomes; server-local because the Telemetry
     counters are no-ops unless a sink is enabled *)
  snap_hits : int Atomic.t;
  snap_misses : int Atomic.t;
  snap_rejects : int Atomic.t;
  wake_w : Unix.file_descr;  (* self-pipe: any write wakes the accept loop *)
  conns_mutex : Mutex.t;
  mutable conns : (conn * Thread.t) list;
}

let c_requests = Telemetry.counter "service.requests"
let c_ok = Telemetry.counter "service.replies_ok"
let c_err = Telemetry.counter "service.replies_error"
let c_shed = Telemetry.counter "service.shed"

(* injection points threaded through every seam of the request path; each
   is a no-op single branch unless armed via ICOST_FAULTS / --faults *)
let fp_accept = Fault.point "accept_reset"
let fp_read = Fault.point "conn_reset"
let fp_write_short = Fault.point "write_short"
let fp_decode = Fault.point "decode_fail"
let fp_worker = Fault.point "worker_raise"
let fp_deadline = Fault.point "deadline_expire"

(* ---------- request validation ---------- *)

let config_of_variant = function
  | "base" -> Config.default
  | "dl1" -> Config.loop_dl1
  | "wakeup" -> Config.loop_wakeup
  | "bmisp" -> Config.loop_bmisp
  | other -> raise (Bad (Printf.sprintf "unknown variant %S" other))

let kind_of_engine = function
  | "graph" | "fullgraph" -> Runner.Fullgraph
  | "multisim" -> Runner.Multisim
  | "profiler" -> Runner.Profiler
  | other -> raise (Bad (Printf.sprintf "unknown engine %S" other))

let workload_of_name name =
  match Workload.find name with
  | Some w -> w
  | None -> raise (Bad (Printf.sprintf "unknown workload %S" name))

let category_of_name name =
  match Category.of_name name with
  | Some c -> c
  | None -> raise (Bad (Printf.sprintf "unknown category %S" name))

let set_of_spec spec =
  String.split_on_char ',' spec
  |> List.map (fun n -> category_of_name (String.trim n))
  |> Category.Set.of_list

(* ---------- session construction (the cached preparation path) ---------- *)

(* Cache keys nest: prep ⊂ baseline ⊂ session, so a cache hit at any
   layer implies agreement on everything the layer below depends on.  The
   seed only reaches the profiler's sampling PRNG, so non-profiler
   sessions normalize it away rather than splitting the cache. *)
let prep_key (tg : P.target) =
  Printf.sprintf "%s|w%d|m%d" tg.workload tg.warmup tg.measure

let baseline_key (tg : P.target) cfg =
  Printf.sprintf "%s|%s" (prep_key tg) (Texport.digest cfg)

let session_key (tg : P.target) cfg kind =
  let seed = match kind with Runner.Profiler -> tg.seed | _ -> 0 in
  Printf.sprintf "%s|%s|s%d" (baseline_key tg cfg)
    (Runner.oracle_kind_name kind)
    seed

let prepared_of t (tg : P.target) =
  let w = workload_of_name tg.workload in
  let settings =
    { Runner.warmup = tg.warmup; measure = tg.measure; benches = [ tg.workload ] }
  in
  Cache.find_or_add t.prep_cache (prep_key tg) (fun () ->
      Runner.prepare settings w)

let session_of t (tg : P.target) : Runner.prepared * session =
  let cfg = config_of_variant tg.variant in
  let kind = kind_of_engine tg.engine in
  let skey = session_key tg cfg kind in
  let baseline_of prepared =
    Cache.find_or_add t.baseline_cache (baseline_key tg cfg) (fun () ->
        Runner.baseline_run cfg prepared)
  in
  match t.opts.cache_dir with
  | None ->
    (* no snapshot store: resolve preparation before the session lookup,
       keeping the request path (and cache tallies) of a store-less
       server exactly as they were *)
    let prepared = prepared_of t tg in
    let session =
      Cache.find_or_add t.session_cache skey (fun () ->
          let est =
            Snapshot.establish ~key:skey ~kind ~cfg ~seed:tg.seed
              ~prepare:(fun () -> prepared)
              ~baseline:(fun _ -> baseline_of prepared)
              ()
          in
          { est; skey })
    in
    (prepared, session)
  | Some dir ->
    (* snapshot store on: defer preparation into [establish] so a disk
       hit skips the prepare/baseline pipeline entirely, then seed the
       prep cache from the result so later requests on other variants
       and engines still share it *)
    let session =
      Cache.find_or_add t.session_cache skey (fun () ->
          let est =
            Snapshot.establish ~cache_dir:dir ~key:skey ~kind ~cfg
              ~seed:tg.seed
              ~prepare:(fun () -> prepared_of t tg)
              ~baseline:baseline_of ()
          in
          (match est.Snapshot.est_disk with
           | `Hit -> Atomic.incr t.snap_hits
           | `Miss -> Atomic.incr t.snap_misses
           | `Reject -> Atomic.incr t.snap_rejects
           | `Off -> ());
          { est; skey })
    in
    let prepared =
      Cache.find_or_add t.prep_cache (prep_key tg) (fun () ->
          session.est.Snapshot.est_prepared)
    in
    (prepared, session)

(* Re-save the session's snapshot when an analysis grew its memo table,
   so the next cold start replays those subsets from disk. *)
let maybe_persist t (session : session) =
  Option.iter
    (fun dir -> Snapshot.persist ~dir ~key:session.skey session.est)
    t.opts.cache_dir

(* ---------- analysis ---------- *)

let check_deadline = function
  | None -> ()
  | Some t -> if Fault.fire fp_deadline || Unix.gettimeofday () > t then raise Deadline

(* The guard makes long queries cooperatively cancellable: Breakdown and
   icost evaluations are loops over subset queries, so the deadline is
   honored between (not within) individual oracle evaluations. *)
let guard deadline (oracle : Cost.oracle) : Cost.oracle =
  {
    Cost.point =
      (fun s ->
        check_deadline deadline;
        oracle.Cost.point s);
    batch =
      Option.map
        (fun b sets ->
          check_deadline deadline;
          b sets)
        oracle.Cost.batch;
  }

let analyze t ~deadline (op : P.op) : P.result_body =
  match op with
  | P.Breakdown { target; focus } ->
    let focus_cat = category_of_name focus in
    let _, session = session_of t target in
    check_deadline deadline;
    let bd =
      Breakdown.focus
        ~oracle:(guard deadline session.est.Snapshot.est_oracle)
        ~focus_cat
    in
    maybe_persist t session;
    P.R_breakdown
      {
        baseline = bd.baseline_cycles;
        rows =
          List.map
            (fun (r : Breakdown.row) ->
              {
                P.row_label = Breakdown.row_label r;
                row_percent = r.percent;
                row_cycles = r.cycles;
              })
            bd.rows;
      }
  | P.Icost { target; sets } ->
    let specs = List.map set_of_spec sets in
    let _, session = session_of t target in
    check_deadline deadline;
    let o = guard deadline session.est.Snapshot.est_oracle in
    let base = Cost.query o Category.Set.empty in
    let rows =
      List.map
        (fun set ->
          {
            P.set_name = Category.Set.name set;
            set_cost = Cost.cost o set;
            set_icost = Cost.icost_ie o set;
            set_class =
              Cost.interaction_name (Cost.classify (Cost.icost_ie o set));
          })
        specs
    in
    maybe_persist t session;
    P.R_icost { baseline = base; rows }
  | P.Graph_stats { target } ->
    let target = { target with P.engine = "graph" } in
    let prepared, session = session_of t target in
    check_deadline deadline;
    (match session.est.Snapshot.est_graph () with
     | Some g ->
       P.R_graph_stats
         {
           instrs = Trace.length prepared.trace;
           nodes = Graph.num_nodes g;
           edges = Graph.num_edges g;
           critical_path = Graph.critical_length g;
         }
     | None -> raise (Bad "graph engine produced no graph"))
  | P.Status | P.Health | P.Shutdown ->
    assert false (* handled inline, never queued *)

(* ---------- health & graceful degradation ---------- *)

let health_of t =
  if Atomic.get t.shutdown_requested then "draining"
  else if Unix.gettimeofday () < Atomic.get t.degraded_until then "degraded"
  else "ok"

(* High-water checks run on the connection thread before each analysis is
   queued.  Tripping either (queue nearly full, or the OCaml heap past the
   configured budget) sheds the coldest session/baseline entries — the
   expensive state — and holds [health] at "degraded" for a short window so
   clients polling [health] see the pressure even after it clears. *)
let check_pressure t =
  let queue_high = max 1 (3 * t.opts.queue_limit / 4) in
  let heap_mb =
    (Gc.quick_stat ()).Gc.heap_words * (Sys.word_size / 8) / (1024 * 1024)
  in
  if Scheduler.queue_depth t.sched >= queue_high || heap_mb >= t.opts.mem_high_mb
  then begin
    Atomic.set t.degraded_until (Unix.gettimeofday () +. 2.0);
    let keep = t.opts.cache_cap / 2 in
    let shed =
      Cache.trim t.session_cache ~keep + Cache.trim t.baseline_cache ~keep
    in
    if shed > 0 then begin
      ignore (Atomic.fetch_and_add t.shed_tally shed);
      Telemetry.add c_shed shed
    end
  end

(* The circuit-breaker key is the session cache key: failures are tracked
   per analysis target.  Validation errors surface from inside the job (as
   Bad_request) rather than here, so an unknown name yields [None]. *)
let breaker_key_of (op : P.op) : string option =
  let of_target (tg : P.target) =
    match
      (config_of_variant tg.variant, kind_of_engine tg.engine)
    with
    | cfg, kind -> Some (session_key tg cfg kind)
    | exception Bad _ -> None
  in
  match op with
  | P.Breakdown { target; _ } | P.Icost { target; _ } -> of_target target
  | P.Graph_stats { target } -> of_target { target with P.engine = "graph" }
  | P.Status | P.Health | P.Shutdown -> None

let status_body t : P.status_body =
  let sum3 f =
    f (Cache.stats t.prep_cache)
    + f (Cache.stats t.baseline_cache)
    + f (Cache.stats t.session_cache)
  in
  {
    P.uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests;
    inflight = Scheduler.inflight t.sched;
    queue_depth = Scheduler.queue_depth t.sched;
    sessions = Cache.length t.session_cache;
    cache_hits = sum3 (fun (s : Cache.stats) -> s.hits);
    cache_misses = sum3 (fun (s : Cache.stats) -> s.misses);
    cache_evictions = sum3 (fun (s : Cache.stats) -> s.evictions);
    snapshot_hits = Atomic.get t.snap_hits;
    snapshot_misses = Atomic.get t.snap_misses;
    snapshot_rejects = Atomic.get t.snap_rejects;
    pool_jobs = Pool.jobs ();
    health = health_of t;
    draining = Atomic.get t.shutdown_requested;
  }

let health_body t : P.health_body =
  {
    P.h_health = health_of t;
    h_breakers_open = Breaker.open_count t.breaker;
    h_shed = Atomic.get t.shed_tally;
  }

(* ---------- wire I/O ---------- *)

(* Loop until the whole line is on the wire: [Unix.write_substring] may
   write fewer bytes than asked (and the [write_short] fault point forces
   exactly that), which used to truncate replies mid-line and desync the
   stream.  EINTR restarts the same write. *)
let write_all_fd fd (s : string) =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let remaining = len - off in
      let attempt =
        if Fault.fire fp_write_short then max 1 (remaining / 2) else remaining
      in
      match Unix.write_substring fd s off attempt with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let write_reply (c : conn) (reply : P.reply) =
  let line = P.encode_reply reply ^ "\n" in
  Mutex.lock c.wmutex;
  (try if c.alive then write_all_fd c.fd line
   with Unix.Unix_error _ -> c.alive <- false);
  Mutex.unlock c.wmutex;
  (match reply.P.body with
   | Ok _ -> Telemetry.incr c_ok
   | Error _ -> Telemetry.incr c_err)

let error_reply id code msg = { P.rep_id = id; body = Error (code, msg) }

(* Read one '\n'-terminated line, refusing to buffer more than the
   protocol's request cap.  [take_line] runs before the size check and the
   check is strict, so a line of exactly [max_request_bytes] always reaches
   the decoder (which accepts it — its bound is strict too); anything
   longer is rejected, either here as [`Too_long] or, when the terminating
   newline lands in the same read, by the decoder's own size message.
   Both paths answer [bad_request]. *)
let read_line_bounded (c : conn) : [ `Line of string | `Too_long | `Eof ] =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents c.pending in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear c.pending;
      Buffer.add_string c.pending
        (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None -> None
  in
  let rec loop () =
    match take_line () with
    | Some line -> `Line line
    | None ->
      if Buffer.length c.pending > P.max_request_bytes then `Too_long
      else if Fault.fire fp_read then `Eof (* injected connection reset *)
      else begin
        match Unix.read c.fd chunk 0 (Bytes.length chunk) with
        | 0 -> `Eof
        | n ->
          Buffer.add_subbytes c.pending chunk 0 n;
          loop ()
        | exception Unix.Unix_error ((Unix.EBADF | Unix.ECONNRESET), _, _) ->
          `Eof
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      end
  in
  loop ()

(* ---------- request dispatch ---------- *)

let initiate_shutdown t =
  if not (Atomic.exchange t.shutdown_requested true) then
    (* wake the accept loop; the pipe write is the only async-signal-ish
       operation, safe from both signal handlers and connection threads *)
    try ignore (Unix.write_substring t.wake_w "x" 0 1) with _ -> ()

let exn_message = function
  | Failure m -> m
  | Invalid_argument m -> m
  | Fault.Injected p -> Printf.sprintf "injected fault at point %S" p
  | e -> Printexc.to_string e

let handle_line t (c : conn) (line : string) =
  Atomic.incr t.requests;
  Telemetry.incr c_requests;
  let decoded =
    if Fault.fire fp_decode then Error "injected decode fault"
    else P.decode_request line
  in
  match decoded with
  | Error msg -> write_reply c (error_reply 0 P.Bad_request msg)
  | Ok req ->
    let id = req.P.req_id in
    (match req.P.op with
     | P.Status -> write_reply c { P.rep_id = id; body = Ok (P.R_status (status_body t)) }
     | P.Health ->
       write_reply c { P.rep_id = id; body = Ok (P.R_health (health_body t)) }
     | P.Shutdown ->
       write_reply c { P.rep_id = id; body = Ok P.R_shutdown };
       initiate_shutdown t
     | (P.Breakdown { target; _ } | P.Icost { target; _ } | P.Graph_stats { target })
       as op ->
       check_pressure t;
       let skey = breaker_key_of op in
       let breaker_open =
         match skey with
         | Some k -> Breaker.check t.breaker k = `Open
         | None -> false
       in
       if breaker_open then
         write_reply c
           (error_reply id P.Unavailable
              "circuit breaker open for this target; retry after cooldown")
       else begin
         let deadline =
           Option.map
             (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1e3))
             req.P.deadline_ms
         in
         let job () =
           let reply =
             Telemetry.with_span "service.request"
               ~attrs:
                 [
                   ("op", (match op with
                           | P.Breakdown _ -> "breakdown"
                           | P.Icost _ -> "icost"
                           | _ -> "graph-stats"));
                   ("workload", target.P.workload);
                   ("engine", target.P.engine);
                 ]
             @@ fun () ->
             match (Fault.trip fp_worker; analyze t ~deadline op) with
             | body ->
               Option.iter (fun k -> Breaker.success t.breaker k) skey;
               { P.rep_id = id; body = Ok body }
             | exception Bad msg -> error_reply id P.Bad_request msg
             | exception Deadline ->
               error_reply id P.Deadline_exceeded "deadline elapsed"
             | exception e ->
               (* supervision: the raise must not poison later requests —
                  evict the session so a retry rebuilds it, and charge the
                  failure to this target's breaker *)
               Option.iter
                 (fun k ->
                   ignore (Cache.remove t.session_cache k);
                   Breaker.failure t.breaker k)
                 skey;
               error_reply id P.Internal (exn_message e)
           in
           write_reply c reply
         in
         match Scheduler.submit t.sched job with
         | `Accepted -> ()
         | `Overloaded ->
           write_reply c
             (error_reply id P.Overloaded
                (Printf.sprintf "queue full (limit %d); retry later"
                   t.opts.queue_limit))
         | `Draining ->
           write_reply c (error_reply id P.Shutting_down "server is draining")
       end)

let conn_loop t (c : conn) =
  let rec loop () =
    match read_line_bounded c with
    | `Eof -> ()
    | `Too_long ->
      (* the stream cannot be re-synchronized after an oversized request:
         answer with a typed error, then drop the connection *)
      write_reply c
        (error_reply 0 P.Bad_request
           (Printf.sprintf "request exceeds %d bytes" P.max_request_bytes))
    | `Line line ->
      if String.trim line <> "" then handle_line t c line;
      loop ()
  in
  (try loop () with _ -> ());
  Mutex.lock c.wmutex;
  c.alive <- false;
  Mutex.unlock c.wmutex;
  (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* ---------- lifecycle ---------- *)

let setup_socket path =
  if Sys.file_exists path then begin
    (* distinguish a live daemon from a stale file left by a crash *)
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "socket %s is already served" path)
    else Unix.unlink path
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let run (opts : opts) : stats =
  (* a client that disconnects mid-reply must not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* validate the socket before spawning any worker threads, so a
     "already served" failure leaks nothing *)
  let listen_fd = setup_socket opts.socket in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      opts;
      started = Unix.gettimeofday ();
      sched = Scheduler.create ~workers:opts.workers ~queue_limit:opts.queue_limit;
      prep_cache = Cache.create ~name:"prep" ~cap:opts.cache_cap;
      baseline_cache = Cache.create ~name:"baseline" ~cap:opts.cache_cap;
      session_cache = Cache.create ~name:"session" ~cap:opts.cache_cap;
      requests = Atomic.make 0;
      shutdown_requested = Atomic.make false;
      breaker =
        Breaker.create ~threshold:opts.breaker_threshold
          ~cooldown:opts.breaker_cooldown ();
      degraded_until = Atomic.make 0.;
      shed_tally = Atomic.make 0;
      snap_hits = Atomic.make 0;
      snap_misses = Atomic.make 0;
      snap_rejects = Atomic.make 0;
      wake_w;
      conns_mutex = Mutex.create ();
      conns = [];
    }
  in
  if opts.handle_signals then begin
    let h = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ())
  end;
  Option.iter (fun f -> f ()) opts.on_ready;
  let rec accept_loop () =
    if not (Atomic.get t.shutdown_requested) then begin
      match Unix.select [ listen_fd; wake_r ] [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | readable, _, _ ->
        if List.mem listen_fd readable && not (Atomic.get t.shutdown_requested)
        then begin
          (match Unix.accept listen_fd with
           | fd, _ when Fault.fire fp_accept ->
             (* injected accept-time reset: drop the connection unserved *)
             (try Unix.close fd with Unix.Unix_error _ -> ())
           | fd, _ ->
             let c =
               { fd; wmutex = Mutex.create (); pending = Buffer.create 256;
                 alive = true }
             in
             let th = Thread.create (conn_loop t) c in
             Mutex.lock t.conns_mutex;
             t.conns <- (c, th) :: t.conns;
             Mutex.unlock t.conns_mutex
           | exception Unix.Unix_error _ -> ());
          accept_loop ()
        end
    end
  in
  accept_loop ();
  (* --- graceful shutdown: drain, then dismantle --- *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Scheduler.drain t.sched;
  Mutex.lock t.conns_mutex;
  let conns = t.conns in
  t.conns <- [];
  Mutex.unlock t.conns_mutex;
  List.iter
    (fun ((c : conn), _) ->
      (* a blocked reader does not wake on [close] alone *)
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter (fun (_, th) -> Thread.join th) conns;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  (try Unix.close wake_w with Unix.Unix_error _ -> ());
  (try Unix.unlink opts.socket with Unix.Unix_error _ -> ());
  { uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests }
