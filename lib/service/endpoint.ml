type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "%s:%d" h p

let parse_tcp s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad TCP endpoint %S: expected HOST:PORT" s)
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      if host = "" then Error (Printf.sprintf "bad TCP endpoint %S: empty host" s)
      else
        match int_of_string_opt port with
        | Some p when p >= 0 && p <= 65535 -> Ok (host, p)
        | _ -> Error (Printf.sprintf "bad TCP endpoint %S: bad port %S" s port))

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = addrs; _ } when Array.length addrs > 0 -> addrs.(0)
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

type listener = { lfd : Unix.file_descr; laddr : addr; lport : int option }

(* A socket file may be left behind by a crashed daemon.  Distinguish
   stale from live with a probe connect: refused -> stale, remove and
   rebind; accepted -> another daemon is serving it. *)
let probe_unix_socket path =
  if not (Sys.file_exists path) then `Absent
  else
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> `Stale
        | exception Unix.Unix_error _ -> `Stale)

let listen_backlog = 256

let listen_unix path =
  (match probe_unix_socket path with
  | `Absent -> ()
  | `Stale -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | `Live -> failwith (Printf.sprintf "socket %s is already served" path));
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd listen_backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { lfd = fd; laddr = Unix_path path; lport = None }

let listen_tcp host port =
  let inet = resolve_host host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (inet, port));
     Unix.listen fd listen_backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     let msg =
       match e with
       | Unix.Unix_error (err, _, _) ->
           Printf.sprintf "cannot listen on %s:%d: %s" host port
             (Unix.error_message err)
       | Failure m -> m
       | e -> Printexc.to_string e
     in
     failwith msg);
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  { lfd = fd; laddr = Tcp (host, bound); lport = Some bound }

let listen = function
  | Unix_path p -> listen_unix p
  | Tcp (h, p) -> listen_tcp h p

let listener_fd l = l.lfd
let bound_port l = l.lport

let close_listener l =
  (try Unix.close l.lfd with Unix.Unix_error _ -> ());
  match l.laddr with
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let connect_fd = function
  | Unix_path path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
  | Tcp (host, port) ->
      let inet = resolve_host host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (inet, port));
         Unix.setsockopt fd Unix.TCP_NODELAY true
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
