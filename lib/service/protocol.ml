(* icost.rpc.v1 encoder/decoder.  See protocol.mli and doc/protocol.md. *)

let version = "icost.rpc.v1"

let max_request_bytes = 65536
let max_batch_items = 256
let max_sweep_axes = 8

type target = {
  workload : string;
  variant : string;
  engine : string;
  warmup : int;
  measure : int;
  seed : int;
}

let default_target =
  {
    workload = "";
    variant = "base";
    engine = "graph";
    warmup = Icost_experiments.Runner.default_settings.warmup;
    measure = Icost_experiments.Runner.default_settings.measure;
    seed = Icost_profiler.Sampler.default_opts.seed;
  }

type op =
  | Breakdown of { target : target; focus : string }
  | Icost of { target : target; sets : string list }
  | Graph_stats of { target : target }
  | Sweep of { target : target; params : string list }
  | Batch of { ops : op list }
  | Status
  | Health
  | Drain
  | Shutdown

let rec idempotent = function
  | Shutdown | Drain -> false
  | Batch { ops } -> List.for_all idempotent ops
  | _ -> true

type request = { req_id : int; deadline_ms : int option; op : op }

type breakdown_row = { row_label : string; row_percent : float; row_cycles : float }

type icost_row = {
  set_name : string;
  set_cost : float;
  set_icost : float;
  set_class : string;
}

type status_body = {
  uptime_s : float;
  requests_total : int;
  inflight : int;
  queue_depth : int;
  sessions : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  snapshot_hits : int;
  snapshot_misses : int;
  snapshot_rejects : int;
  sweep_points : int;
  sweep_cache_hits : int;
  segments : int;
  stream_peak_mb : float;
  pool_jobs : int;
  shards : int;
  respawns : int;
  failovers : int;
  health : string;
  draining : bool;
}

type health_body = {
  h_health : string;
  h_breakers_open : int;
  h_shed : int;
}

type error_code =
  | Bad_request
  | Overloaded
  | Unavailable
  | Deadline_exceeded
  | Shutting_down
  | Internal

(* One grid point of a sweep curve: cycles and the first difference
   d(cycles)/d(param) against the previous evaluated point in
   ascending-value order (0 for the lowest point), or a typed per-point
   error that — like a batch item's — does not poison its siblings. *)
type sweep_point = {
  sp_value : int;
  sp_outcome : (float * float, error_code * string) result;
}

type sweep_knee = { kn_value : int; kn_marginal : float; kn_saturated : bool }

type sweep_curve = {
  curve_param : string;
  curve_base : int;
  curve_knee : sweep_knee option;
  curve_points : sweep_point list;
}

type result_body =
  | R_breakdown of { baseline : float; rows : breakdown_row list }
  | R_icost of { baseline : float; rows : icost_row list }
  | R_graph_stats of { instrs : int; nodes : int; edges : int; critical_path : int }
  | R_sweep of { baseline : float; curves : sweep_curve list }
  | R_batch of { results : (result_body, error_code * string) result list }
  | R_status of status_body
  | R_health of health_body
  | R_drain of { restarted : int }
  | R_shutdown

let error_code_name = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Unavailable -> "unavailable"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_code_of_name = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "unavailable" -> Some Unavailable
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

let retryable = function
  | Overloaded | Unavailable | Internal -> true
  | Bad_request | Deadline_exceeded | Shutting_down -> false

type reply = { rep_id : int; body : (result_body, error_code * string) result }

(* ---------- encoding ---------- *)

let target_fields (t : target) =
  [
    ("workload", Json.Str t.workload);
    ("variant", Json.Str t.variant);
    ("engine", Json.Str t.engine);
    ("warmup", Json.Int t.warmup);
    ("measure", Json.Int t.measure);
    ("seed", Json.Int t.seed);
  ]

(* Shared between top-level requests and batch items: a batch item is the
   same object shape as a request minus the envelope (v/id/deadline). *)
let rec op_fields (op : op) =
  match op with
  | Breakdown { target; focus } ->
    (("op", Json.Str "breakdown") :: target_fields target)
    @ [ ("focus", Json.Str focus) ]
  | Icost { target; sets } ->
    (("op", Json.Str "icost") :: target_fields target)
    @ [ ("sets", Json.Arr (List.map (fun s -> Json.Str s) sets)) ]
  | Graph_stats { target } ->
    ("op", Json.Str "graph-stats") :: target_fields target
  | Sweep { target; params } ->
    (("op", Json.Str "sweep") :: target_fields target)
    @ [ ("params", Json.Arr (List.map (fun s -> Json.Str s) params)) ]
  | Batch { ops } ->
    [
      ("op", Json.Str "batch");
      ("reqs", Json.Arr (List.map (fun o -> Json.Obj (op_fields o)) ops));
    ]
  | Status -> [ ("op", Json.Str "status") ]
  | Health -> [ ("op", Json.Str "health") ]
  | Drain -> [ ("op", Json.Str "drain") ]
  | Shutdown -> [ ("op", Json.Str "shutdown") ]

let encode_request (r : request) : string =
  let head = [ ("v", Json.Str version); ("id", Json.Int r.req_id) ] in
  let deadline =
    match r.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Int ms) ]
  in
  Json.encode (Json.Obj (head @ op_fields r.op @ deadline))

let error_json code msg =
  Json.Obj [ ("code", Json.Str (error_code_name code)); ("msg", Json.Str msg) ]

(* ---------- retry hints ----------

   A fail-fast error produced by supervision (a shard's restart-storm
   breaker) carries how long the condition is expected to last.  On the
   wire it is a structured ["retry_after_ms"] field next to code/msg;
   inside the OCaml types the error stays [(code, msg)], so the hint is
   also embedded in the message text as ["retry_after_ms=N"] where
   {!retry_after_of_msg} can recover it (the client's backoff uses it as
   a sleep floor). *)

let retry_after_clause ms = Printf.sprintf "retry_after_ms=%d" (max 0 ms)

let retry_after_of_msg msg =
  let tag = "retry_after_ms=" in
  let tl = String.length tag in
  let n = String.length msg in
  let rec find i =
    if i + tl > n then None
    else if String.sub msg i tl = tag then begin
      let e = ref (i + tl) in
      while !e < n && msg.[!e] >= '0' && msg.[!e] <= '9' do incr e done;
      if !e = i + tl then find (i + 1)
      else int_of_string_opt (String.sub msg (i + tl) (!e - (i + tl)))
    end
    else find (i + 1)
  in
  find 0

let error_json_retry code msg ~retry_after_ms =
  Json.Obj
    [
      ("code", Json.Str (error_code_name code));
      ("msg", Json.Str msg);
      ("retry_after_ms", Json.Int (max 0 retry_after_ms));
    ]

let encode_error_reply ~rep_id code msg ~retry_after_ms : string =
  Json.encode
    (Json.Obj
       [
         ("v", Json.Str version);
         ("id", Json.Int rep_id);
         ("ok", Json.Bool false);
         ("error", error_json_retry code msg ~retry_after_ms);
       ])

let rec result_json = function
  | R_breakdown { baseline; rows } ->
    Json.Obj
      [
        ("kind", Json.Str "breakdown");
        ("baseline", Json.Float baseline);
        ( "rows",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("label", Json.Str r.row_label);
                     ("percent", Json.Float r.row_percent);
                     ("cycles", Json.Float r.row_cycles);
                   ])
               rows) );
      ]
  | R_icost { baseline; rows } ->
    Json.Obj
      [
        ("kind", Json.Str "icost");
        ("baseline", Json.Float baseline);
        ( "rows",
          Json.Arr
            (List.map
               (fun r ->
                 Json.Obj
                   [
                     ("set", Json.Str r.set_name);
                     ("cost", Json.Float r.set_cost);
                     ("icost", Json.Float r.set_icost);
                     ("class", Json.Str r.set_class);
                   ])
               rows) );
      ]
  | R_graph_stats { instrs; nodes; edges; critical_path } ->
    Json.Obj
      [
        ("kind", Json.Str "graph-stats");
        ("instrs", Json.Int instrs);
        ("nodes", Json.Int nodes);
        ("edges", Json.Int edges);
        ("critical_path", Json.Int critical_path);
      ]
  | R_sweep { baseline; curves } ->
    Json.Obj
      [
        ("kind", Json.Str "sweep");
        ("baseline", Json.Float baseline);
        ( "curves",
          Json.Arr
            (List.map
               (fun c ->
                 Json.Obj
                   (("param", Json.Str c.curve_param)
                    :: ("base_value", Json.Int c.curve_base)
                    :: (match c.curve_knee with
                       | None -> []
                       | Some k ->
                         [
                           ( "knee",
                             Json.Obj
                               [
                                 ("value", Json.Int k.kn_value);
                                 ("marginal", Json.Float k.kn_marginal);
                                 ("saturated", Json.Bool k.kn_saturated);
                               ] );
                         ])
                   @ [
                       ( "points",
                         Json.Arr
                           (List.map
                              (fun p ->
                                match p.sp_outcome with
                                | Ok (cycles, delta) ->
                                  Json.Obj
                                    [
                                      ("ok", Json.Bool true);
                                      ("value", Json.Int p.sp_value);
                                      ("cycles", Json.Float cycles);
                                      ("delta", Json.Float delta);
                                    ]
                                | Error (code, msg) ->
                                  Json.Obj
                                    [
                                      ("ok", Json.Bool false);
                                      ("value", Json.Int p.sp_value);
                                      ("error", error_json code msg);
                                    ])
                              c.curve_points) );
                     ]))
               curves) );
      ]
  | R_batch { results } ->
    Json.Obj
      [
        ("kind", Json.Str "batch");
        ( "results",
          Json.Arr
            (List.map
               (function
                 | Ok body ->
                   Json.Obj
                     [ ("ok", Json.Bool true); ("result", result_json body) ]
                 | Error (code, msg) ->
                   Json.Obj
                     [ ("ok", Json.Bool false); ("error", error_json code msg) ])
               results) );
      ]
  | R_status s ->
    Json.Obj
      [
        ("kind", Json.Str "status");
        ("uptime_s", Json.Float s.uptime_s);
        ("requests_total", Json.Int s.requests_total);
        ("inflight", Json.Int s.inflight);
        ("queue_depth", Json.Int s.queue_depth);
        ("sessions", Json.Int s.sessions);
        ("cache_hits", Json.Int s.cache_hits);
        ("cache_misses", Json.Int s.cache_misses);
        ("cache_evictions", Json.Int s.cache_evictions);
        ("snapshot_hits", Json.Int s.snapshot_hits);
        ("snapshot_misses", Json.Int s.snapshot_misses);
        ("snapshot_rejects", Json.Int s.snapshot_rejects);
        ("sweep_points", Json.Int s.sweep_points);
        ("sweep_cache_hits", Json.Int s.sweep_cache_hits);
        ("segments", Json.Int s.segments);
        ("stream_peak_mb", Json.Float s.stream_peak_mb);
        ("pool_jobs", Json.Int s.pool_jobs);
        ("shards", Json.Int s.shards);
        ("respawns", Json.Int s.respawns);
        ("failovers", Json.Int s.failovers);
        ("health", Json.Str s.health);
        ("draining", Json.Bool s.draining);
      ]
  | R_health h ->
    Json.Obj
      [
        ("kind", Json.Str "health");
        ("health", Json.Str h.h_health);
        ("breakers_open", Json.Int h.h_breakers_open);
        ("shed", Json.Int h.h_shed);
      ]
  | R_drain { restarted } ->
    Json.Obj [ ("kind", Json.Str "drain"); ("restarted", Json.Int restarted) ]
  | R_shutdown -> Json.Obj [ ("kind", Json.Str "shutdown") ]

let encode_reply (r : reply) : string =
  let head = [ ("v", Json.Str version); ("id", Json.Int r.rep_id) ] in
  let rest =
    match r.body with
    | Ok result -> [ ("ok", Json.Bool true); ("result", result_json result) ]
    | Error (code, msg) ->
      [ ("ok", Json.Bool false); ("error", error_json code msg) ]
  in
  Json.encode (Json.Obj (head @ rest))

(* ---------- pre-encoded reply assembly ----------

   The server's reply cache stores result objects as already-encoded
   JSON; these helpers splice such fragments into reply envelopes.  The
   splices must stay byte-identical to [encode_reply] on the equivalent
   tree — clients and tests compare replies as raw strings. *)

let encode_op (op : op) : string = Json.encode (Json.Obj (op_fields op))

let encode_result (body : result_body) : string = Json.encode (result_json body)

let add_envelope buf rep_id =
  Buffer.add_string buf "{\"v\":\"";
  Buffer.add_string buf version;
  Buffer.add_string buf "\",\"id\":";
  Buffer.add_string buf (string_of_int rep_id);
  Buffer.add_string buf ",\"ok\":true,\"result\":"

let encode_ok_reply ~rep_id ~(result : string) : string =
  let buf = Buffer.create (String.length result + 64) in
  add_envelope buf rep_id;
  Buffer.add_string buf result;
  Buffer.add_char buf '}';
  Buffer.contents buf

let encode_batch_result ~(results : (string, error_code * string) result list)
    : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"kind\":\"batch\",\"results\":[";
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      match item with
      | Ok result ->
        Buffer.add_string buf "{\"ok\":true,\"result\":";
        Buffer.add_string buf result;
        Buffer.add_char buf '}'
      | Error (code, msg) ->
        Buffer.add_string buf
          (Json.encode
             (Json.Obj
                [ ("ok", Json.Bool false); ("error", error_json code msg) ])))
    results;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let encode_batch_reply ~rep_id
    ~(results : (string, error_code * string) result list) : string =
  encode_ok_reply ~rep_id ~result:(encode_batch_result ~results)

(* ---------- frame identity ----------

   Both relay layers memoize on the raw frame text: the router caches a
   frame's destination shard, the server caches a frame's encoded result.
   The request [id] is the one part of an otherwise repeated frame that
   varies, and our own encoder emits it in a fixed position right after
   the version field, so the memo key is the frame with the id digits
   sliced out.  Frames in any other field order (hand-written clients)
   simply return [None] and take the decode path — the memos are an
   optimisation, never a requirement. *)

let canonical_prefix = "{\"v\":\"icost.rpc.v1\",\"id\":"

let split_frame_id line =
  let pl = String.length canonical_prefix in
  let n = String.length line in
  let rec same i = i = pl || (line.[i] = canonical_prefix.[i] && same (i + 1)) in
  if n <= pl || not (same 0) then None
  else begin
    let e = ref pl in
    while !e < n && line.[!e] >= '0' && line.[!e] <= '9' do incr e done;
    if !e = pl || !e = n then None
    else
      match int_of_string_opt (String.sub line pl (!e - pl)) with
      | Some id -> Some (id, !e)
      | None -> None
  end

(* ---------- decoding ---------- *)

let ( let* ) = Result.bind

let field_or name default extract j =
  match Json.member name j with
  | None -> Ok default
  | Some v ->
    (match extract v with
     | Some x -> Ok x
     | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let required name extract j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v ->
    (match extract v with
     | Some x -> Ok x
     | None -> Error (Printf.sprintf "field %S has the wrong type" name))

let check_version j =
  let* v = required "v" Json.get_str j in
  if v = version then Ok ()
  else Error (Printf.sprintf "unsupported protocol version %S" v)

let decode_target j =
  let* workload = required "workload" Json.get_str j in
  let* variant = field_or "variant" default_target.variant Json.get_str j in
  let* engine = field_or "engine" default_target.engine Json.get_str j in
  let* warmup = field_or "warmup" default_target.warmup Json.get_int j in
  let* measure = field_or "measure" default_target.measure Json.get_int j in
  let* seed = field_or "seed" default_target.seed Json.get_int j in
  if warmup < 0 || measure <= 0 then Error "warmup must be >= 0, measure > 0"
  else Ok { workload; variant; engine; warmup; measure; seed }

(* An op is decoded from the fields of its carrier object: the top-level
   request for single ops, or one element of "reqs" for batch items (same
   shape minus the v/id/deadline envelope).  A structurally malformed item
   fails the whole frame — per-item errors are reserved for semantic
   failures (unknown workload, nested batch, ...) discovered at execution. *)
let rec decode_op j =
  let* opname = required "op" Json.get_str j in
  match opname with
  | "breakdown" ->
    let* target = decode_target j in
    let* focus = field_or "focus" "dl1" Json.get_str j in
    Ok (Breakdown { target; focus })
  | "icost" ->
    let* target = decode_target j in
    let* sets =
      field_or "sets" [ "dl1,win" ]
        (fun v ->
          match Json.get_arr v with
          | None -> None
          | Some items ->
            let strs = List.filter_map Json.get_str items in
            if List.length strs = List.length items then Some strs else None)
        j
    in
    if sets = [] then Error "sets must be non-empty"
    else Ok (Icost { target; sets })
  | "graph-stats" ->
    let* target = decode_target j in
    Ok (Graph_stats { target })
  | "sweep" ->
    let* target = decode_target j in
    let* params =
      required "params"
        (fun v ->
          match Json.get_arr v with
          | None -> None
          | Some items ->
            let strs = List.filter_map Json.get_str items in
            if List.length strs = List.length items then Some strs else None)
        j
    in
    if params = [] then Error "params must be non-empty"
    else if List.length params > max_sweep_axes then
      Error
        (Printf.sprintf "sweep exceeds %d axes (%d)" max_sweep_axes
           (List.length params))
    else Ok (Sweep { target; params })
  | "batch" ->
    (match Json.member "reqs" j with
     | None -> Error "missing field \"reqs\""
     | Some v ->
       (match Json.get_arr v with
        | None -> Error "field \"reqs\" has the wrong type"
        | Some [] -> Error "reqs must be non-empty"
        | Some items when List.length items > max_batch_items ->
          Error
            (Printf.sprintf "batch exceeds %d items (%d)" max_batch_items
               (List.length items))
        | Some items ->
          let rec go acc = function
            | [] -> Ok (Batch { ops = List.rev acc })
            | item :: rest ->
              let* op = decode_op item in
              go (op :: acc) rest
          in
          go [] items))
  | "status" -> Ok Status
  | "health" -> Ok Health
  | "drain" -> Ok Drain
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown op %S" other)

let decode_request (line : string) : (request, string) result =
  if String.length line > max_request_bytes then
    Error
      (Printf.sprintf "request exceeds %d bytes (%d)" max_request_bytes
         (String.length line))
  else
    let* j =
      match Json.parse line with
      | j -> Ok j
      | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)
    in
    let* () = check_version j in
    let* req_id = required "id" Json.get_int j in
    let* deadline_ms =
      field_or "deadline_ms" None (fun v -> Option.map Option.some (Json.get_int v)) j
    in
    let* () =
      match deadline_ms with
      | Some ms when ms < 0 -> Error "deadline_ms must be >= 0"
      | _ -> Ok ()
    in
    let* op = decode_op j in
    Ok { req_id; deadline_ms; op }

let decode_rows j ~of_obj =
  match Json.get_arr j with
  | None -> Error "rows is not an array"
  | Some items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* r = of_obj item in
        go (r :: acc) rest
    in
    go [] items

let decode_error e =
  let* code_name = required "code" Json.get_str e in
  let* msg = required "msg" Json.get_str e in
  match error_code_of_name code_name with
  | Some code -> Ok (code, msg)
  | None -> Error (Printf.sprintf "unknown error code %S" code_name)

let rec decode_result j =
  let* kind = required "kind" Json.get_str j in
  match kind with
  | "breakdown" ->
    let* baseline = required "baseline" Json.get_float j in
    let* rows =
      match Json.member "rows" j with
      | None -> Error "missing rows"
      | Some rows ->
        decode_rows rows ~of_obj:(fun item ->
            let* row_label = required "label" Json.get_str item in
            let* row_percent = required "percent" Json.get_float item in
            let* row_cycles = required "cycles" Json.get_float item in
            Ok { row_label; row_percent; row_cycles })
    in
    Ok (R_breakdown { baseline; rows })
  | "icost" ->
    let* baseline = required "baseline" Json.get_float j in
    let* rows =
      match Json.member "rows" j with
      | None -> Error "missing rows"
      | Some rows ->
        decode_rows rows ~of_obj:(fun item ->
            let* set_name = required "set" Json.get_str item in
            let* set_cost = required "cost" Json.get_float item in
            let* set_icost = required "icost" Json.get_float item in
            let* set_class = required "class" Json.get_str item in
            Ok { set_name; set_cost; set_icost; set_class })
    in
    Ok (R_icost { baseline; rows })
  | "graph-stats" ->
    let* instrs = required "instrs" Json.get_int j in
    let* nodes = required "nodes" Json.get_int j in
    let* edges = required "edges" Json.get_int j in
    let* critical_path = required "critical_path" Json.get_int j in
    Ok (R_graph_stats { instrs; nodes; edges; critical_path })
  | "sweep" ->
    let* baseline = required "baseline" Json.get_float j in
    let* curves =
      match Json.member "curves" j with
      | None -> Error "missing curves"
      | Some curves ->
        decode_rows curves ~of_obj:(fun c ->
            let* curve_param = required "param" Json.get_str c in
            let* curve_base = required "base_value" Json.get_int c in
            let* curve_knee =
              match Json.member "knee" c with
              | None -> Ok None
              | Some k ->
                let* kn_value = required "value" Json.get_int k in
                let* kn_marginal = required "marginal" Json.get_float k in
                let* kn_saturated = required "saturated" Json.get_bool k in
                Ok (Some { kn_value; kn_marginal; kn_saturated })
            in
            let* curve_points =
              match Json.member "points" c with
              | None -> Error "missing points"
              | Some points ->
                decode_rows points ~of_obj:(fun p ->
                    let* ok = required "ok" Json.get_bool p in
                    let* sp_value = required "value" Json.get_int p in
                    if ok then
                      let* cycles = required "cycles" Json.get_float p in
                      let* delta = required "delta" Json.get_float p in
                      Ok { sp_value; sp_outcome = Ok (cycles, delta) }
                    else
                      match Json.member "error" p with
                      | None -> Error "missing error"
                      | Some e ->
                        let* code, msg = decode_error e in
                        Ok { sp_value; sp_outcome = Error (code, msg) })
            in
            Ok { curve_param; curve_base; curve_knee; curve_points })
    in
    Ok (R_sweep { baseline; curves })
  | "batch" ->
    (match Json.member "results" j with
     | None -> Error "missing results"
     | Some v ->
       (match Json.get_arr v with
        | None -> Error "results is not an array"
        | Some items ->
          let rec go acc = function
            | [] -> Ok (R_batch { results = List.rev acc })
            | item :: rest ->
              let* r = decode_result_item item in
              go (r :: acc) rest
          in
          go [] items))
  | "status" ->
    let* uptime_s = required "uptime_s" Json.get_float j in
    let* requests_total = required "requests_total" Json.get_int j in
    let* inflight = required "inflight" Json.get_int j in
    let* queue_depth = required "queue_depth" Json.get_int j in
    let* sessions = required "sessions" Json.get_int j in
    let* cache_hits = required "cache_hits" Json.get_int j in
    let* cache_misses = required "cache_misses" Json.get_int j in
    let* cache_evictions = required "cache_evictions" Json.get_int j in
    let* snapshot_hits = required "snapshot_hits" Json.get_int j in
    let* snapshot_misses = required "snapshot_misses" Json.get_int j in
    let* snapshot_rejects = required "snapshot_rejects" Json.get_int j in
    (* absent in pre-sweep frames: default 0 keeps old captures decodable *)
    let* sweep_points = field_or "sweep_points" 0 Json.get_int j in
    let* sweep_cache_hits = field_or "sweep_cache_hits" 0 Json.get_int j in
    (* absent in pre-stream frames: default 0 keeps old captures decodable *)
    let* segments = field_or "segments" 0 Json.get_int j in
    let* stream_peak_mb = field_or "stream_peak_mb" 0. Json.get_float j in
    let* pool_jobs = required "pool_jobs" Json.get_int j in
    (* absent in pre-batch frames: default 0 keeps old captures decodable *)
    let* shards = field_or "shards" 0 Json.get_int j in
    (* absent in pre-supervision frames, same rationale *)
    let* respawns = field_or "respawns" 0 Json.get_int j in
    let* failovers = field_or "failovers" 0 Json.get_int j in
    let* health = required "health" Json.get_str j in
    let* draining = required "draining" Json.get_bool j in
    Ok
      (R_status
         {
           uptime_s;
           requests_total;
           inflight;
           queue_depth;
           sessions;
           cache_hits;
           cache_misses;
           cache_evictions;
           snapshot_hits;
           snapshot_misses;
           snapshot_rejects;
           sweep_points;
           sweep_cache_hits;
           segments;
           stream_peak_mb;
           pool_jobs;
           shards;
           respawns;
           failovers;
           health;
           draining;
         })
  | "health" ->
    let* h_health = required "health" Json.get_str j in
    let* h_breakers_open = required "breakers_open" Json.get_int j in
    let* h_shed = required "shed" Json.get_int j in
    Ok (R_health { h_health; h_breakers_open; h_shed })
  | "drain" ->
    let* restarted = field_or "restarted" 0 Json.get_int j in
    Ok (R_drain { restarted })
  | "shutdown" -> Ok R_shutdown
  | other -> Error (Printf.sprintf "unknown result kind %S" other)

and decode_result_item j =
  let* ok = required "ok" Json.get_bool j in
  if ok then begin
    match Json.member "result" j with
    | None -> Error "missing result"
    | Some r ->
      let* body = decode_result r in
      Ok (Ok body)
  end
  else begin
    match Json.member "error" j with
    | None -> Error "missing error"
    | Some e ->
      let* code, msg = decode_error e in
      Ok (Error (code, msg))
  end

let decode_reply (line : string) : (reply, string) result =
  let* j =
    match Json.parse line with
    | j -> Ok j
    | exception Json.Parse_error m -> Error ("malformed JSON: " ^ m)
  in
  let* () = check_version j in
  let* rep_id = required "id" Json.get_int j in
  let* ok = required "ok" Json.get_bool j in
  if ok then begin
    match Json.member "result" j with
    | None -> Error "missing result"
    | Some result ->
      let* body = decode_result result in
      Ok { rep_id; body = Ok body }
  end
  else begin
    match Json.member "error" j with
    | None -> Error "missing error"
    | Some e ->
      let* code, msg = decode_error e in
      Ok { rep_id; body = Error (code, msg) }
  end
