(** Blocking [icost.rpc.v1] client ([icost query] and the test suite).

    One connection, one outstanding request at a time: {!call} writes the
    request line and blocks until the matching reply line arrives.  (The
    protocol allows pipelining with out-of-order replies; this client
    deliberately does not use it — the CLI and tests want simple
    call/response semantics.) *)

type t

val connect : ?retry_for:float -> socket:string -> unit -> t
(** Connect to the server's Unix socket.  [retry_for] (seconds, default
    [0.]) keeps retrying on connection failure — the standard way to wait
    for a daemon that was just forked to come up.
    @raise Failure when the socket cannot be connected in time. *)

val call : t -> Protocol.request -> Protocol.reply
(** Send one request, wait for its reply.
    @raise Failure on a closed connection or an undecodable reply. *)

val close : t -> unit

val with_client : ?retry_for:float -> socket:string -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)
