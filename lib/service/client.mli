(** Blocking [icost.rpc.v1] client ([icost query] and the test suite).

    Speaks to a daemon over a Unix socket or TCP ({!Endpoint.addr}).
    {!call} writes one request line and blocks until its reply line
    arrives; {!pipeline} writes a whole window of requests before reading
    the replies positionally — correct because the server answers
    pipelined requests in request order.

    Two layers:

    - the bare connection ({!connect}/{!call}/{!close}) raises
      {!Disconnected} when the server drops the link mid-call;
    - the resilient {!session} layer wraps it with automatic reconnect
      and bounded retry ({!call_with_retry}): exponential backoff with
      decorrelated jitter, a wall-clock retry budget, and the rule that
      only idempotent operations on retryable errors are re-sent (see
      {!Protocol.idempotent} and {!Protocol.retryable} — [shutdown] is
      never retried). *)

type t

exception Disconnected of string
(** The connection died mid-conversation (EOF, [EPIPE], [ECONNRESET]).
    Distinct from [Failure] so retry machinery can tell a transport drop
    (reconnect and re-send) from a protocol error (give up). *)

val connect : ?retry_for:float -> socket:string -> unit -> t
(** Connect to the server's Unix socket.  [retry_for] (seconds, default
    [0.]) keeps retrying on connection failure with capped exponential
    backoff (10ms doubling to 250ms) — the standard way to wait for a
    daemon that was just forked to come up.
    @raise Failure when the socket cannot be connected in time; the
    message distinguishes a missing socket file ([ENOENT] — daemon not
    started or already exited) from a refused connection ([ECONNREFUSED]
    — stale socket file, no listener behind it). *)

val connect_addr : ?retry_for:float -> Endpoint.addr -> t
(** {!connect} generalized to either transport. *)

val call : t -> Protocol.request -> Protocol.reply
(** Send one request, wait for its reply.
    @raise Disconnected when the server closes or resets the connection.
    @raise Failure on an undecodable reply. *)

val send : t -> Protocol.request -> unit
(** Write one request without waiting for its reply (pipelining). *)

val recv : t -> Protocol.reply
(** Block for the next reply line.  With the server's in-order reply
    guarantee, the k-th {!recv} answers the k-th {!send}. *)

val pipeline : t -> Protocol.request list -> Protocol.reply list
(** Write the whole request window, then read its replies positionally
    ([List.nth replies k] answers [List.nth reqs k]). *)

val send_line : t -> string -> unit
(** Raw passthrough (the shard router forwarding frames verbatim):
    write [line ^ "\n"]. *)

val recv_line : t -> string
(** Raw passthrough: the next reply line, newline stripped.
    @raise Disconnected on EOF/reset. *)

val close : t -> unit

val with_client : ?retry_for:float -> socket:string -> (t -> 'a) -> 'a
(** [connect], run, [close] (also on exceptions). *)

val with_addr : ?retry_for:float -> Endpoint.addr -> (t -> 'a) -> 'a
(** {!with_client} generalized to either transport. *)

(** {1 Resilient sessions} *)

type retry_opts = {
  retries : int;  (** max re-sends per call (0 disables retrying) *)
  budget_ms : int;  (** wall-clock retry budget per call, milliseconds *)
  base_backoff_ms : float;  (** first backoff sleep *)
  max_backoff_ms : float;  (** backoff cap *)
}

val default_retry_opts : retry_opts
(** 2 retries, 5000ms budget, 25ms base backoff capped at 1000ms. *)

type session

val connect_session :
  ?opts:retry_opts -> ?retry_for:float -> socket:string -> unit -> session
(** Like {!connect}, plus the retry policy used by {!call_with_retry}. *)

val connect_session_addr :
  ?opts:retry_opts -> ?retry_for:float -> Endpoint.addr -> session
(** {!connect_session} generalized to either transport. *)

val call_with_retry : session -> Protocol.request -> Protocol.reply
(** {!call} with resilience: on a {!Disconnected} transport drop the
    session reconnects and re-sends; on a retryable error reply
    ({!Protocol.retryable}) it backs off (exponential, decorrelated
    jitter, clamped to the remaining budget) and re-sends.  Both paths
    consume one retry from [opts.retries] and stop when the budget
    elapses — the last reply (or {!Disconnected}) is then surfaced
    as-is.  Non-idempotent requests ([shutdown]) are never re-sent.
    @raise Disconnected when the transport drops and no retry remains. *)

val close_session : session -> unit

val session_retries : session -> int
(** Re-sends performed by this session so far. *)

val retries_total : unit -> int
(** Process-wide re-send tally (all sessions), mirrored into the
    [service.retries] telemetry counter; feeds the run manifest. *)
