(* Persistent compiled-graph snapshots.  See snapshot.mli for the format. *)

module Telemetry = Icost_util.Telemetry
module Category = Icost_core.Category
module Cost = Icost_core.Cost
module Config = Icost_uarch.Config
module Ooo = Icost_sim.Ooo
module Multisim = Icost_sim.Multisim
module Build = Icost_depgraph.Build
module Graph = Icost_depgraph.Graph
module Profile = Icost_profiler.Profile
module Sampler = Icost_profiler.Sampler
module Stream_core = Icost_stream.Core
module Runner = Icost_experiments.Runner

let magic = "icost.graphcache.v1\n"

type payload = {
  engine : string;
  key : string;
  prepared : Runner.prepared;
  graph : string option;  (** {!Graph.marshal} bytes, fullgraph engine only *)
  memo : (Category.Set.t * float) array;
}

let c_hits = Telemetry.counter "graph.snapshot_hits"
let c_misses = Telemetry.counter "graph.snapshot_misses"
let c_rejects = Telemetry.counter "graph.snapshot_rejects"
let c_quarantined = Telemetry.counter "graph.snapshot_quarantined"

let file_of ~dir ~key = Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".snap")

(* ---------- encoding ---------- *)

let add_u64 buf (n : int) =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xff))
  done

let get_u64 s off =
  let n = ref 0 in
  for i = 0 to 7 do
    n := (!n lsl 8) lor Char.code s.[off + i]
  done;
  !n

(* length | md5 | bytes *)
let add_section buf (data : string) =
  add_u64 buf (String.length data);
  Buffer.add_string buf (Digest.string data);
  Buffer.add_string buf data

let save ~dir ~key (p : payload) : unit =
  if not (Sys.file_exists dir) then begin
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end;
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  add_section buf key;
  add_section buf (Marshal.to_string p []);
  let file = file_of ~dir ~key in
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try Buffer.output_buffer oc buf
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp file

exception Bad_snapshot of string

let load ~dir ~key : [ `Hit of payload | `Miss | `Reject of string ] =
  let file = file_of ~dir ~key in
  if not (Sys.file_exists file) then begin
    Telemetry.incr c_misses;
    `Miss
  end
  else begin
    let result =
      try
        let ic = open_in_bin file in
        let s =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let len = String.length s in
        let mlen = String.length magic in
        if len < mlen || String.sub s 0 mlen <> magic then
          raise (Bad_snapshot "bad magic or version");
        (* walk the length-prefixed sections, checking bounds and digests
           before touching the bytes; digest and unmarshal work at
           offsets so a multi-MB payload is never copied *)
        let section off =
          if off + 24 > len then raise (Bad_snapshot "truncated header");
          let dlen = get_u64 s off in
          if dlen < 0 || off + 24 + dlen > len then
            raise (Bad_snapshot "truncated section");
          let digest = String.sub s (off + 8) 16 in
          if Digest.substring s (off + 24) dlen <> digest then
            raise (Bad_snapshot "section digest mismatch");
          (off + 24, dlen, off + 24 + dlen)
        in
        let koff, klen, off = section mlen in
        if String.sub s koff klen <> key then
          raise (Bad_snapshot "session key mismatch");
        let poff, _, off = section off in
        if off <> len then raise (Bad_snapshot "trailing bytes");
        (* the digest has vouched for the bytes; unmarshal is now safe *)
        let p : payload =
          try Marshal.from_string s poff
          with Failure _ -> raise (Bad_snapshot "unreadable payload")
        in
        if p.key <> key then raise (Bad_snapshot "payload key mismatch");
        `Hit p
      with
      | Bad_snapshot reason -> `Reject reason
      | Sys_error _ | End_of_file -> `Reject "unreadable file"
    in
    (match result with
     | `Hit _ -> Telemetry.incr c_hits
     | `Reject _ ->
       Telemetry.incr c_rejects;
       (* quarantine: move the corrupt file aside so the next load is a
          plain miss that rebuilds and overwrites, instead of re-reading
          and re-rejecting the same bytes on every restart.  The rename
          is atomic and keeps the evidence for post-mortems; a racing
          writer that just replaced the file with a good snapshot loses
          it to the quarantine and rebuilds once — correct, merely
          wasteful, and only possible while the file is actively torn. *)
       (try
          Sys.rename file (file ^ ".quarantined");
          Telemetry.incr c_quarantined
        with Sys_error _ -> ())
     | `Miss -> ());
    result
  end

(* ---------- session establishment ---------- *)

type established = {
  est_engine : string;
  est_prepared : Runner.prepared;
  est_oracle : Cost.oracle;
  est_memo : Cost.memo;
  est_graph : unit -> Graph.t option;
  est_graph_bytes : string option;
  est_disk : [ `Hit | `Miss | `Reject | `Off ];
  est_persisted : int ref;
}

(* Memoize a thunk: [Lazy.force] is not thread-safe, so the cell is
   mutex-guarded; a build that raises leaves the cell empty and the lock
   released, so later calls retry. *)
let memoized (build : unit -> 'a) : unit -> 'a =
  let m = Mutex.create () in
  let cell = ref None in
  fun () ->
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        match !cell with
        | Some v -> v
        | None ->
          let v = build () in
          cell := Some v;
          v)

let lazy_oracle (build : unit -> Cost.oracle) : Cost.oracle =
  let force = memoized build in
  {
    Cost.point = (fun s -> Cost.query (force ()) s);
    batch = Some (fun sets -> Cost.query_batch (force ()) sets);
  }

let save_quiet ~dir ~key p =
  try save ~dir ~key p
  with Sys_error _ | Unix.Unix_error _ -> ()

let establish ?cache_dir ~key ~(kind : Runner.oracle_kind) ~(cfg : Config.t)
    ~seed ~(prepare : unit -> Runner.prepared)
    ~(baseline : Runner.prepared -> Ooo.result) () : established =
  let engine = Runner.oracle_kind_name kind in
  let disk =
    match cache_dir with
    | None -> `Off
    | Some dir -> (
      match load ~dir ~key with
      | `Hit p when p.engine = engine ->
        (* a fullgraph snapshot without its graph cannot serve
           graph-stats; rebuild rather than limp *)
        if kind = Runner.Fullgraph && p.graph = None then
          `Reject "missing graph"
        else `Hit p
      | `Hit _ -> `Reject "engine mismatch"
      | (`Miss | `Reject _) as r -> r)
  in
  match disk with
  | `Hit p ->
    let graph =
      match (kind, p.graph) with
      | Runner.Fullgraph, Some gs ->
        (* the bytes are digest-verified, so decoding is deferred off the
           warm-start path: memo-covered queries never pay for it.  An
           unreadable image (an encoding bug, not corruption) falls back
           to a fresh build. *)
        memoized (fun () ->
            Some
              (try Graph.unmarshal gs
               with Failure _ ->
                 Runner.graph_of ~baseline:(baseline p.prepared) cfg
                   p.prepared))
      | _ -> fun () -> None
    in
    let underlying =
      match kind with
      | Runner.Fullgraph ->
        lazy_oracle (fun () ->
            match graph () with
            | Some g -> Build.oracle g
            | None -> assert false (* fullgraph always decodes a graph *))
      | Runner.Multisim ->
        Multisim.oracle cfg p.prepared.Runner.trace p.prepared.Runner.evts
      | Runner.Profiler ->
        (* profiling is expensive; only pay for it if a query ever
           escapes the seeded memo *)
        lazy_oracle (fun () ->
            Profile.oracle
              (Runner.profiler_run
                 ~opts:{ Sampler.default_opts with seed }
                 ~baseline:(baseline p.prepared) cfg p.prepared))
      | Runner.Streamed ->
        (* segmented re-analysis is cheap relative to a cold prepare and
           needs no persistent image; defer it past the seeded memo *)
        lazy_oracle (fun () ->
            Stream_core.oracle (Runner.stream_run cfg p.prepared))
    in
    let memo = Cost.memo_make underlying in
    Cost.memo_seed memo p.memo;
    {
      est_engine = engine;
      est_prepared = p.prepared;
      est_oracle = Cost.memo_oracle memo;
      est_memo = memo;
      est_graph = graph;
      est_graph_bytes = p.graph;
      est_disk = `Hit;
      est_persisted = ref (Array.length p.memo);
    }
  | (`Miss | `Reject _ | `Off) as miss ->
    let prepared = prepare () in
    let graph, underlying =
      match kind with
      | Runner.Multisim ->
        (None, Multisim.oracle cfg prepared.Runner.trace prepared.Runner.evts)
      | Runner.Fullgraph ->
        let g = Runner.graph_of ~baseline:(baseline prepared) cfg prepared in
        (Some g, Build.oracle g)
      | Runner.Profiler ->
        ( None,
          Profile.oracle
            (Runner.profiler_run
               ~opts:{ Sampler.default_opts with seed }
               ~baseline:(baseline prepared) cfg prepared) )
      | Runner.Streamed ->
        (None, Stream_core.oracle (Runner.stream_run cfg prepared))
    in
    let graph_bytes = Option.map Graph.marshal graph in
    let memo = Cost.memo_make underlying in
    Option.iter
      (fun dir ->
        save_quiet ~dir ~key
          { engine; key; prepared; graph = graph_bytes; memo = [||] })
      cache_dir;
    {
      est_engine = engine;
      est_prepared = prepared;
      est_oracle = Cost.memo_oracle memo;
      est_memo = memo;
      est_graph = (fun () -> graph);
      est_graph_bytes = graph_bytes;
      est_disk = (match miss with `Reject _ -> `Reject | (`Miss | `Off) as m -> m);
      est_persisted = ref 0;
    }

let persist ~dir ~key (e : established) : unit =
  if Cost.memo_size e.est_memo > !(e.est_persisted) then begin
    let entries = Cost.memo_entries e.est_memo in
    save_quiet ~dir ~key
      {
        engine = e.est_engine;
        key;
        prepared = e.est_prepared;
        graph = e.est_graph_bytes;
        memo = entries;
      };
    e.est_persisted := Array.length entries
  end
