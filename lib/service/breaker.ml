(* Per-key circuit breaker.  See breaker.mli for the contract. *)

module Telemetry = Icost_util.Telemetry

let c_trips = Telemetry.counter "service.breaker_open"

(* [fails] is consecutive failures; a trip sets [opened_until] without
   resetting [fails], so the half-open trial after the cooldown re-opens
   on its first failure.  [stamp] orders entries for bounded-table
   eviction. *)
type entry = {
  mutable fails : int;
  mutable opened_until : float;
  mutable stamp : int;
}

type t = {
  mutex : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
  threshold : int;
  cooldown : float;
  max_keys : int;
  mutable tick : int;
  mutable trips : int;
}

let create ?(threshold = 3) ?(cooldown = 5.) () =
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create 16;
    threshold = max 1 threshold;
    cooldown = Float.max 0. cooldown;
    max_keys = 128;
    tick = 0;
    trips = 0;
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

(* caller holds the lock *)
let drop_stalest t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | None -> Some (k, e.stamp)
        | Some (_, stamp) when e.stamp < stamp -> Some (k, e.stamp)
        | _ -> acc)
      t.tbl None
  in
  match victim with None -> () | Some (k, _) -> Hashtbl.remove t.tbl k

let check t key =
  Mutex.lock t.mutex;
  let verdict =
    match Hashtbl.find_opt t.tbl key with
    | Some e when Unix.gettimeofday () < e.opened_until -> `Open
    | _ -> `Ok
  in
  Mutex.unlock t.mutex;
  verdict

let success t key =
  Mutex.lock t.mutex;
  Hashtbl.remove t.tbl key;
  Mutex.unlock t.mutex

let failure t key =
  Mutex.lock t.mutex;
  let e =
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e
    | None ->
      if Hashtbl.length t.tbl >= t.max_keys then drop_stalest t;
      let e = { fails = 0; opened_until = 0.; stamp = 0 } in
      Hashtbl.replace t.tbl key e;
      e
  in
  touch t e;
  e.fails <- e.fails + 1;
  let tripped = e.fails >= t.threshold in
  if tripped then begin
    e.opened_until <- Unix.gettimeofday () +. t.cooldown;
    t.trips <- t.trips + 1
  end;
  Mutex.unlock t.mutex;
  if tripped then Telemetry.incr c_trips

let open_count t =
  Mutex.lock t.mutex;
  let now = Unix.gettimeofday () in
  let n =
    Hashtbl.fold
      (fun _ e acc -> if now < e.opened_until then acc + 1 else acc)
      t.tbl 0
  in
  Mutex.unlock t.mutex;
  n

let trips_total t =
  Mutex.lock t.mutex;
  let n = t.trips in
  Mutex.unlock t.mutex;
  n
