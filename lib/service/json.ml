(* Minimal JSON reader/printer for icost.rpc.v1.  See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

(* The encoder writes straight into one output buffer: a service reply
   frame can be tens of kilobytes (batch replies), so building it from
   per-node string concatenation would allocate several times the output
   size in garbage on every reply. *)

let needs_escape c = c = '"' || c = '\\' || Char.code c < 0x20

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  (* almost every string on the wire is a clean identifier; scan first and
     copy in one move rather than char-by-char *)
  let clean =
    let n = String.length s in
    let rec go i = i = n || ((not (needs_escape s.[i])) && go (i + 1)) in
    go 0
  in
  if clean then Buffer.add_string buf s else add_escaped buf s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then invalid_arg "Json.encode: non-finite float"
  else Printf.sprintf "%.17g" f

let rec encode_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s -> add_str buf s
  | Arr l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        encode_into buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_str buf k;
        Buffer.add_char buf ':';
        encode_into buf v)
      fields;
    Buffer.add_char buf '}'

let encode j =
  let buf = Buffer.create 256 in
  encode_into buf j;
  Buffer.contents buf

(* ---------- parsing ---------- *)

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode one Unicode scalar value as UTF-8 (surrogates were combined by
   the caller; lone surrogates are replaced with U+FFFD). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let hex4 st =
  let digit () =
    match peek st with
    | Some c ->
      advance st;
      (match c with
       | '0' .. '9' -> Char.code c - Char.code '0'
       | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
       | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
       | _ -> fail st "bad \\u escape")
    | None -> fail st "bad \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' ->
      advance st;
      Buffer.contents buf
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> fail st "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 st in
            let cp =
              (* high surrogate followed by \uDC00-\uDFFF -> one scalar *)
              if cp >= 0xd800 && cp <= 0xdbff
                 && st.pos + 1 < String.length st.src
                 && st.src.[st.pos] = '\\'
                 && st.src.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  0x10000 + ((cp - 0xd800) lsl 10) + (lo - 0xdc00)
                else 0xfffd
              end
              else if cp >= 0xd800 && cp <= 0xdfff then 0xfffd
              else cp
            in
            add_utf8 buf cp
          | _ -> fail st "bad escape"));
      loop ()
    | Some c when Char.code c < 0x20 -> fail st "raw control char in string"
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec scan () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
      advance st;
      scan ()
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance st;
      scan ()
    | _ -> ()
  in
  scan ();
  let s = String.sub st.src start (st.pos - start) in
  (* Values like 1e309 parse to infinity, which the encoder refuses to
     print — admitting them here would let a request smuggle a value the
     service can never echo back.  Reject at the door instead. *)
  let finite f =
    if Float.is_finite f then Float f
    else fail st (Printf.sprintf "number out of range %S" s)
  in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> finite f
    | None -> fail st (Printf.sprintf "bad number %S" s)
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None ->
      (* integer syntax but beyond native int range: keep it as a float *)
      (match float_of_string_opt s with
       | Some f -> finite f
       | None -> fail st (Printf.sprintf "bad number %S" s))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance st;
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail st "expected ',' or '}'"
      in
      fields []
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          Arr (List.rev (v :: acc))
        | _ -> fail st "expected ',' or ']'"
      in
      items []
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected %C" c)

let parse s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let get_int = function Int n -> Some n | _ -> None

let get_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let get_str = function Str s -> Some s | _ -> None

let get_bool = function Bool b -> Some b | _ -> None

let get_arr = function Arr l -> Some l | _ -> None
