(* Shard router process.  See router.mli for the architecture. *)

module P = Protocol

type opts = {
  socket : string;
  tcp : (string * int) option;
  shards : int;
  shard : Server.opts;
  handle_signals : bool;
  on_ready : (unit -> unit) option;
  on_tcp_port : (int -> unit) option;
}

let default_opts =
  {
    socket = "icostd.sock";
    tcp = None;
    shards = 2;
    shard = Server.default_opts;
    handle_signals = true;
    on_ready = None;
    on_tcp_port = None;
  }

type stats = { uptime_s : float; requests_total : int }

(* ---------- routing ---------- *)

let fnv1a64 (s : string) : int64 =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch ->
      h := Int64.logxor !h (Int64.of_int (Char.code ch));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let shard_of_key ~shards key =
  if shards <= 1 then 0
  else Int64.to_int (Int64.unsigned_rem (fnv1a64 key) (Int64.of_int shards))

(* The preparation key, not the full session key: all variants/engines of
   one prepared workload share a shard (and that shard's prep cache). *)
let route_key (tg : P.target) =
  Printf.sprintf "%s|w%d|m%d" tg.workload tg.warmup tg.measure

let shard_socket public i = Printf.sprintf "%s.shard%d" public i

type t = {
  opts : opts;
  shards : int;
  started : float;
  requests : int Atomic.t;
  draining : bool Atomic.t;
  shards_notified : bool Atomic.t;  (* shutdown already broadcast *)
  acc : Acceptor.t;
  routes : int Cache.t;
      (* frame text (minus the request id) -> destination shard, for
         frames relayed whole.  Routing is a pure function of the frame
         text, so a repeated query skips the full JSON decode — the
         dominant per-frame cost for large relayed batches. *)
}

let shard_of_op t (op : P.op) =
  let tg =
    match op with
    | P.Breakdown { target; _ } | P.Icost { target; _ }
    | P.Graph_stats { target }
    | P.Sweep { target; _ } ->
      target
    | P.Batch _ | P.Status | P.Health | P.Shutdown -> assert false
  in
  shard_of_key ~shards:t.shards (route_key tg)

(* ---------- per-connection shard links ----------

   Each client connection lazily opens its own connection to each shard
   it talks to (no cross-connection multiplexing: frames of different
   clients never interleave on one shard link, so passthrough replies
   can be relayed verbatim without an id-routing table). *)

type links = Client.t option array

let drop_link (links : links) i =
  Option.iter Client.close links.(i);
  links.(i) <- None

let link t (links : links) i =
  match links.(i) with
  | Some c -> c
  | None ->
    let c = Client.connect ~retry_for:2.0 ~socket:(shard_socket t.opts.socket i) () in
    links.(i) <- Some c;
    c

let try_shard t links i f =
  match f (link t links i) with
  | v -> Ok v
  | exception Client.Disconnected msg ->
    drop_link links i;
    Error msg
  | exception Failure msg ->
    drop_link links i;
    Error msg

(* One transparent reconnect: the shard may have restarted between
   requests.  Only idempotent traffic flows through here (analysis ops
   and the shutdown broadcast), so a re-send is safe. *)
let with_shard t links i f =
  match try_shard t links i f with
  | Ok v -> Ok v
  | Error _ -> try_shard t links i f

(* ---------- aggregation ---------- *)

let query_shard t links i op =
  match
    with_shard t links i (fun c ->
        Client.call c { P.req_id = 0; deadline_ms = None; op })
  with
  | Ok reply -> Some reply
  | Error _ -> None

let health_of t ~unreachable ~worst =
  if Atomic.get t.draining then "draining"
  else if unreachable > 0 || worst then "degraded"
  else "ok"

let agg_status t links : P.status_body =
  let bodies =
    List.init t.shards (fun i ->
        match query_shard t links i P.Status with
        | Some { P.body = Ok (P.R_status s); _ } -> Some s
        | _ -> None)
  in
  let reachable = List.filter_map Fun.id bodies in
  let unreachable = t.shards - List.length reachable in
  let sum f = List.fold_left (fun a s -> a + f s) 0 reachable in
  let worst =
    List.exists (fun (s : P.status_body) -> s.P.health <> "ok") reachable
  in
  {
    P.uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests;
    inflight = sum (fun s -> s.P.inflight);
    queue_depth = sum (fun s -> s.P.queue_depth);
    sessions = sum (fun s -> s.P.sessions);
    cache_hits = sum (fun s -> s.P.cache_hits);
    cache_misses = sum (fun s -> s.P.cache_misses);
    cache_evictions = sum (fun s -> s.P.cache_evictions);
    snapshot_hits = sum (fun s -> s.P.snapshot_hits);
    snapshot_misses = sum (fun s -> s.P.snapshot_misses);
    snapshot_rejects = sum (fun s -> s.P.snapshot_rejects);
    sweep_points = sum (fun s -> s.P.sweep_points);
    sweep_cache_hits = sum (fun s -> s.P.sweep_cache_hits);
    pool_jobs = sum (fun s -> s.P.pool_jobs);
    shards = t.shards;
    health = health_of t ~unreachable ~worst;
    draining = Atomic.get t.draining;
  }

let agg_health t links : P.health_body =
  let bodies =
    List.init t.shards (fun i ->
        match query_shard t links i P.Health with
        | Some { P.body = Ok (P.R_health h); _ } -> Some h
        | _ -> None)
  in
  let reachable = List.filter_map Fun.id bodies in
  let unreachable = t.shards - List.length reachable in
  let sum f = List.fold_left (fun a h -> a + f h) 0 reachable in
  let worst =
    List.exists (fun (h : P.health_body) -> h.P.h_health <> "ok") reachable
  in
  {
    P.h_health = health_of t ~unreachable ~worst;
    h_breakers_open = sum (fun h -> h.P.h_breakers_open);
    h_shed = sum (fun h -> h.P.h_shed);
  }

let broadcast_shutdown t links =
  if not (Atomic.exchange t.shards_notified true) then
    for i = 0 to t.shards - 1 do
      ignore
        (with_shard t links i (fun c ->
             Client.call c { P.req_id = 0; deadline_ms = None; op = P.Shutdown }))
    done

(* ---------- dispatch ---------- *)

let write_reply c ~seq (reply : P.reply) =
  Acceptor.write_line c ~seq (P.encode_reply reply ^ "\n")

let error_reply id code msg = { P.rep_id = id; body = Error (code, msg) }

let unreachable_error i msg =
  (P.Unavailable, Printf.sprintf "shard %d unreachable: %s" i msg)

(* Forward one frame verbatim to shard [sh] and relay the shard's reply
   line untouched — byte-identical to asking the shard directly. *)
let forward_to t links c ~seq ~id ~sh line =
  match
    with_shard t links sh (fun sc ->
        Client.send_line sc line;
        Client.recv_line sc)
  with
  | Ok reply_line -> Acceptor.write_line c ~seq (reply_line ^ "\n")
  | Error msg ->
    let code, emsg = unreachable_error sh msg in
    write_reply c ~seq (error_reply id code emsg)

let forward_single t links c ~seq ~id ~line op =
  forward_to t links c ~seq ~id ~sh:(shard_of_op t op) line

(* Affinity fast path: a batch whose items are all analysis ops bound
   for the same shard can be relayed verbatim like a single frame — the
   shard executes the whole batch in one scheduler slot and its reply
   needs no stitching.  This skips the scatter-gather's decode and
   re-encode of every per-item result (the expensive half: replies are
   an order of magnitude larger than requests), so clients that group
   their queries by workload — the natural pattern, since all sessions
   of one workload live on one shard — pay router overhead per frame,
   not per item. *)
let single_shard_batch t (ops : P.op list) : int option =
  let rec go acc = function
    | [] -> acc
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op :: rest -> (
      let sh = shard_of_op t op in
      match acc with
      | None -> go (Some sh) rest
      | Some sh' when sh' = sh -> go acc rest
      | Some _ -> raise Exit)
    (* status/health need aggregation, shutdown/batch per-item errors:
       the slow path answers those without involving a shard *)
    | (P.Status | P.Health | P.Shutdown | P.Batch _) :: _ -> raise Exit
  in
  try go None ops with Exit -> None

(* Scatter-gather: partition items by shard (preserving order inside each
   group), send every sub-batch before reading any reply, then stitch the
   per-item results back into the frame's original item order.  Items the
   router can answer itself (status/health, nested batch, shutdown) never
   leave the process. *)
let handle_batch t links ~deadline_ms ~id (ops : P.op list) : P.result_body =
  let n = List.length ops in
  let slots = Array.make n (Error (P.Internal, "unrouted batch item")) in
  let by_shard = Hashtbl.create 4 in
  List.iteri
    (fun idx op ->
      match op with
      | P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _ ->
        let sh = shard_of_op t op in
        let prev = try Hashtbl.find by_shard sh with Not_found -> [] in
        Hashtbl.replace by_shard sh ((idx, op) :: prev)
      | P.Status -> slots.(idx) <- Ok (P.R_status (agg_status t links))
      | P.Health -> slots.(idx) <- Ok (P.R_health (agg_health t links))
      | P.Shutdown ->
        slots.(idx) <- Error (P.Bad_request, "shutdown is not allowed inside a batch")
      | P.Batch _ -> slots.(idx) <- Error (P.Bad_request, "batch items cannot nest"))
    ops;
  let groups =
    Hashtbl.fold (fun sh items acc -> (sh, List.rev items) :: acc) by_shard []
    |> List.sort compare
  in
  (* scatter: the shards compute their sub-batches concurrently *)
  let sent =
    List.map
      (fun (sh, items) ->
        let sub =
          { P.req_id = id; deadline_ms; op = P.Batch { ops = List.map snd items } }
        in
        (sh, items, with_shard t links sh (fun sc -> Client.send sc sub)))
      groups
  in
  (* gather: no re-send here — a link that dies between send and reply
     only fails its own shard's items (the frame is idempotent, the
     client may retry it whole) *)
  List.iter
    (fun (sh, items, sent_ok) ->
      let fill err = List.iter (fun (idx, _) -> slots.(idx) <- Error err) items in
      match sent_ok with
      | Error msg -> fill (unreachable_error sh msg)
      | Ok () -> (
        let recv () =
          match links.(sh) with
          | Some sc -> Client.recv sc
          | None -> raise (Client.Disconnected "shard link lost")
        in
        match recv () with
        | { P.body = Ok (P.R_batch { results }); _ }
          when List.length results = List.length items ->
          List.iter2 (fun (idx, _) r -> slots.(idx) <- r) items results
        | { P.body = Error (code, msg); _ } ->
          (* whole sub-batch refused (overloaded / draining / breaker):
             every item of this shard inherits the typed error *)
          fill (code, msg)
        | _ -> fill (P.Internal, Printf.sprintf "shard %d: malformed batch reply" sh)
        | exception Client.Disconnected msg ->
          drop_link links sh;
          fill (unreachable_error sh msg)
        | exception Failure msg ->
          drop_link links sh;
          fill (unreachable_error sh msg)))
    sent;
  P.R_batch { results = Array.to_list slots }

(* ---------- route cache ----------

   A frame the router relays verbatim (one analysis op, or a batch whose
   items all land on one shard) is routed by a pure function of its
   text, so the decision is memoized on the frame text minus its request
   id (see {!P.split_frame_id}). *)

exception Unrouted
(* the frame needs the aggregating/stitching slow path (status, health,
   shutdown, mixed-shard or malformed batches) and must not be cached *)

let route_decision t line : int =
  match P.decode_request line with
  | Error _ -> raise Unrouted
  | Ok req -> (
    match req.P.op with
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op ->
      shard_of_op t op
    | P.Batch { ops } -> (
      match single_shard_batch t ops with
      | Some sh -> sh
      | None -> raise Unrouted)
    | P.Status | P.Health | P.Shutdown -> raise Unrouted)

let handle_decoded t links c ~seq line =
  match P.decode_request line with
  | Error msg -> write_reply c ~seq (error_reply 0 P.Bad_request msg)
  | Ok req -> (
    let id = req.P.req_id in
    match req.P.op with
    | P.Status ->
      write_reply c ~seq { P.rep_id = id; body = Ok (P.R_status (agg_status t links)) }
    | P.Health ->
      write_reply c ~seq { P.rep_id = id; body = Ok (P.R_health (agg_health t links)) }
    | P.Shutdown ->
      broadcast_shutdown t links;
      write_reply c ~seq { P.rep_id = id; body = Ok P.R_shutdown };
      Atomic.set t.draining true;
      Acceptor.request_stop t.acc
    | _ when Atomic.get t.draining ->
      write_reply c ~seq (error_reply id P.Shutting_down "server is draining")
    | P.Batch { ops } -> (
      match single_shard_batch t ops with
      | Some sh -> forward_to t links c ~seq ~id ~sh line
      | None ->
        let body =
          handle_batch t links ~deadline_ms:req.P.deadline_ms ~id ops
        in
        write_reply c ~seq { P.rep_id = id; body = Ok body })
    | (P.Breakdown _ | P.Icost _ | P.Graph_stats _ | P.Sweep _) as op ->
      forward_single t links c ~seq ~id ~line op)

let handle_line t links c ~seq line =
  Atomic.incr t.requests;
  (* draining must answer analysis frames with [Shutting_down], so the
     relay fast path only runs while accepting work *)
  if Atomic.get t.draining then handle_decoded t links c ~seq line
  else
    match P.split_frame_id line with
    | None -> handle_decoded t links c ~seq line
    | Some (id, pos) -> (
      let key = String.sub line pos (String.length line - pos) in
      match Cache.find_or_add t.routes key (fun () -> route_decision t line) with
      | sh -> forward_to t links c ~seq ~id ~sh line
      | exception Unrouted -> handle_decoded t links c ~seq line)

let conn_loop t (c : Acceptor.conn) =
  let links : links = Array.make t.shards None in
  let rec loop () =
    match Acceptor.read_line_bounded c ~max:P.max_request_bytes with
    | `Eof -> ()
    | `Too_long ->
      write_reply c ~seq:(Acceptor.next_seq c)
        (error_reply 0 P.Bad_request
           (Printf.sprintf "request exceeds %d bytes" P.max_request_bytes))
    | `Line line ->
      if String.trim line <> "" then
        handle_line t links c ~seq:(Acceptor.next_seq c) line;
      loop ()
  in
  (try loop () with _ -> ());
  Array.iteri (fun i _ -> drop_link links i) links

(* ---------- lifecycle ---------- *)

let rec mkdirs dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let spawn_shard (opts : opts) i =
  let sock = shard_socket opts.socket i in
  let cache_dir =
    Option.map
      (fun root -> Filename.concat root (Printf.sprintf "shard-%d" i))
      opts.shard.Server.cache_dir
  in
  Option.iter mkdirs cache_dir;
  match Unix.fork () with
  | 0 ->
    (* child: a full private server; never returns to the caller's code *)
    let sopts =
      {
        opts.shard with
        Server.socket = sock;
        tcp = None;
        cache_dir;
        handle_signals = opts.handle_signals;
        on_ready = None;
        on_tcp_port = None;
      }
    in
    let code = match Server.run sopts with _ -> 0 | exception _ -> 1 in
    Unix._exit code
  | pid -> pid

let reap pids =
  List.iter
    (fun pid -> try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
    pids

let run (opts : opts) : stats =
  if opts.shards < 1 then invalid_arg "Router.run: shards must be >= 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* fork the shard fleet before any listener or thread exists in this
     process — fork and threads do not mix *)
  let pids = List.init opts.shards (spawn_shard opts) in
  let teardown e =
    List.iter (fun pid -> try Unix.kill pid Sys.sigterm with _ -> ()) pids;
    reap pids;
    raise e
  in
  (* a shard is up when its socket accepts *)
  (try
     for i = 0 to opts.shards - 1 do
       Client.close (Client.connect ~retry_for:30. ~socket:(shard_socket opts.socket i) ())
     done
   with e -> teardown e);
  let listeners =
    try
      let unix_listener = Endpoint.listen (Endpoint.Unix_path opts.socket) in
      match opts.tcp with
      | None -> [ unix_listener ]
      | Some (host, port) -> (
        match Endpoint.listen (Endpoint.Tcp (host, port)) with
        | l ->
          Option.iter
            (fun f -> Option.iter f (Endpoint.bound_port l))
            opts.on_tcp_port;
          [ unix_listener; l ]
        | exception e ->
          Endpoint.close_listener unix_listener;
          raise e)
    with e -> teardown e
  in
  let t =
    {
      opts;
      shards = opts.shards;
      started = Unix.gettimeofday ();
      requests = Atomic.make 0;
      draining = Atomic.make false;
      shards_notified = Atomic.make false;
      acc = Acceptor.create listeners;
      routes = Cache.create ~name:"routes" ~cap:256;
    }
  in
  if opts.handle_signals then begin
    let h =
      Sys.Signal_handle
        (fun _ ->
          Atomic.set t.draining true;
          Acceptor.request_stop t.acc)
    in
    (try Sys.set_signal Sys.sigint h with Invalid_argument _ -> ());
    (try Sys.set_signal Sys.sigterm h with Invalid_argument _ -> ())
  end;
  Option.iter (fun f -> f ()) opts.on_ready;
  Acceptor.serve t.acc ~on_conn:(conn_loop t);
  Atomic.set t.draining true;
  (* shutdown may have arrived as a signal rather than an rpc: make sure
     the shards are told before we wait for them *)
  if not (Atomic.get t.shards_notified) then begin
    let links : links = Array.make t.shards None in
    broadcast_shutdown t links;
    Array.iteri (fun i _ -> drop_link links i) links
  end;
  Acceptor.finish t.acc;
  reap pids;
  { uptime_s = Unix.gettimeofday () -. t.started;
    requests_total = Atomic.get t.requests }
